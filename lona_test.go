package lona_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	lona "repro"
)

func TestQuickstartFlow(t *testing.T) {
	b := lona.NewGraphBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()

	engine, err := lona.NewEngine(g, []float64{0.9, 0.1, 0.8, 0.2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := engine.Run(context.Background(), lona.Query{Algorithm: lona.AlgoForward, K: 2, Aggregate: lona.Sum})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) != 2 {
		t.Fatalf("got %d results", len(ans.Results))
	}
	// Path 0-1-2-3, h=2: F(1)=0.9+0.1+0.8+0.2=2.0 (covers all),
	// F(2)=2.0 too; tie broken toward node 1.
	if ans.Results[0].Node != 1 || math.Abs(ans.Results[0].Value-2.0) > 1e-12 {
		t.Fatalf("top = %+v", ans.Results[0])
	}
	if ans.Stats.Evaluated == 0 {
		t.Fatal("no work recorded")
	}
	// The zero algorithm plans itself and reports the plan.
	auto, err := engine.Run(context.Background(), lona.Query{K: 2, Aggregate: lona.Sum})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Plan == nil || auto.Plan.Reason == "" {
		t.Fatalf("AlgoAuto answer has no plan: %+v", auto)
	}
	if math.Abs(auto.Results[0].Value-ans.Results[0].Value) > 1e-12 {
		t.Fatalf("planned answer %v != forward answer %v", auto.Results[0], ans.Results[0])
	}
}

func TestFacadeGenerators(t *testing.T) {
	g := lona.CollaborationNetwork(0.01, 1)
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty collaboration network")
	}
	c := lona.CitationNetwork(0.01, 1)
	if c.NumNodes() == 0 {
		t.Fatal("empty citation network")
	}
	i := lona.IntrusionNetwork(0.01, 1)
	if i.NumNodes() == 0 {
		t.Fatal("empty intrusion network")
	}
}

func TestFacadeScores(t *testing.T) {
	g := lona.CollaborationNetwork(0.01, 2)
	mix := lona.MixtureScores(g, 0.05, 3)
	if len(mix) != g.NumNodes() {
		t.Fatal("mixture length mismatch")
	}
	bin := lona.BinaryScores(100, 0.25, 3)
	ones := 0
	for _, s := range bin {
		if s == 1 {
			ones++
		}
	}
	if ones != 25 {
		t.Fatalf("binary blacked %d of 100, want 25", ones)
	}
}

func TestFacadeIO(t *testing.T) {
	g := lona.CitationNetwork(0.005, 4)
	var gbuf, sbuf bytes.Buffer
	if err := lona.WriteGraph(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	back, err := lona.ReadGraph(&gbuf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumArcs() != g.NumArcs() {
		t.Fatal("graph IO round trip mismatch")
	}
	scores := lona.MixtureScores(g, 0.01, 5)
	if err := lona.WriteScores(&sbuf, scores); err != nil {
		t.Fatal(err)
	}
	got, err := lona.ReadScores(&sbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scores) {
		t.Fatal("scores IO round trip mismatch")
	}
}

func TestFacadeEndToEndAcrossAlgorithms(t *testing.T) {
	g := lona.IntrusionNetwork(0.02, 6)
	scores := lona.BinaryScores(g.NumNodes(), 0.2, 6)
	engine, err := lona.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := engine.Run(context.Background(), lona.Query{Algorithm: lona.AlgoBase, K: 10, Aggregate: lona.Avg})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []lona.Algorithm{lona.AlgoForward, lona.AlgoBackward, lona.AlgoBackwardNaive, lona.AlgoBaseParallel} {
		got, err := engine.Run(context.Background(), lona.Query{
			Algorithm: algo, K: 10, Aggregate: lona.Avg, Options: lona.Options{Gamma: 0.5},
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for i := range base.Results {
			if math.Abs(got.Results[i].Value-base.Results[i].Value) > 1e-9 {
				t.Fatalf("%v value %d: %v vs %v", algo, i, got.Results[i].Value, base.Results[i].Value)
			}
		}
	}
}
