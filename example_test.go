package lona_test

import (
	"context"
	"fmt"

	lona "repro"
)

// A minimal end-to-end query: build a path graph, score its nodes, and ask
// for the top-2 nodes by 2-hop SUM. A Query executed by Run is the one
// query shape everywhere; the context could carry a deadline.
func ExampleNewEngine() {
	b := lona.NewGraphBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	engine, err := lona.NewEngine(b.Build(), []float64{0.9, 0.1, 0.8, 0.2}, 2)
	if err != nil {
		panic(err)
	}
	ans, err := engine.Run(context.Background(), lona.Query{Algorithm: lona.AlgoForward, K: 2, Aggregate: lona.Sum})
	if err != nil {
		panic(err)
	}
	for i, r := range ans.Results {
		fmt.Printf("#%d node %d F=%.1f\n", i+1, r.Node, r.Value)
	}
	// Output:
	// #1 node 1 F=2.0
	// #2 node 2 F=2.0
}

// The planner picks BackwardNaive when almost every score is zero —
// distribution then touches only the relevant sliver of the network. A
// zero Query.Algorithm (AlgoAuto) invokes it implicitly and the Answer
// records the decision.
func ExampleNewPlanner() {
	b := lona.NewGraphBuilder(100, false)
	for i := 0; i+1 < 100; i++ {
		b.AddEdge(i, i+1)
	}
	scores := make([]float64, 100)
	scores[50] = 1
	engine, err := lona.NewEngine(b.Build(), scores, 2)
	if err != nil {
		panic(err)
	}
	ans, err := engine.Run(context.Background(), lona.Query{K: 3, Aggregate: lona.Sum})
	if err != nil {
		panic(err)
	}
	fmt.Println(ans.Plan.Algorithm)
	// Output:
	// Backward-Naive
}

// A materialized view keeps top-k answers fresh while scores change: one
// BFS per update instead of a full recomputation.
func ExampleNewView() {
	b := lona.NewGraphBuilder(5, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	view, err := lona.NewView(b.Build(), []float64{0, 0, 0, 0, 0}, 1)
	if err != nil {
		panic(err)
	}
	if _, err := view.UpdateScore(2, 1); err != nil {
		panic(err)
	}
	top, err := view.Run(context.Background(), lona.Query{K: 1, Aggregate: lona.Sum})
	if err != nil {
		panic(err)
	}
	fmt.Printf("node %d F=%.0f\n", top.Results[0].Node, top.Results[0].Value)
	// Output:
	// node 1 F=1
}

// Attribute tables derive relevance functions from node properties — here
// a boolean predicate over Λ.
func ExampleNewAttributeTable() {
	attrs := lona.NewAttributeTable(3)
	if err := attrs.AddBool("rpg_fan", []bool{true, false, true}); err != nil {
		panic(err)
	}
	scores, err := attrs.RelevanceBool("rpg_fan")
	if err != nil {
		panic(err)
	}
	fmt.Println(scores)
	// Output:
	// [1 0 1]
}
