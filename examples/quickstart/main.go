// Quickstart: build a small social graph by hand, score a few members as
// fans of a product, and ask every LONA algorithm for the two people whose
// 2-hop circle is most enthusiastic. All algorithms return the same
// answer; they differ only in how much work they do to find it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	lona "repro"
)

func main() {
	// A ten-person network: two tight friend groups bridged by node 4.
	//
	//	0─1─2        7─8
	//	│ ╳ │        │ │
	//	3───┴─4────5─┴─9
	//	           │
	//	           6
	b := lona.NewGraphBuilder(10, false)
	edges := [][2]int{
		{0, 1}, {1, 2}, {0, 3}, {1, 3}, {2, 3}, {0, 2}, // group one (clique-ish)
		{3, 4}, {4, 5}, // bridge
		{5, 6}, {5, 7}, {7, 8}, {8, 9}, {5, 9}, {7, 9}, // group two
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()

	// Relevance: how much each person talks about the product.
	scores := []float64{0.9, 0.8, 0.1, 0.7, 0.0, 0.2, 0.0, 0.1, 0.0, 0.3}

	engine, err := lona.NewEngine(g, scores, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Who has the most product-enthusiastic 2-hop circle?")
	fmt.Println()
	ctx := context.Background()
	for _, algo := range []lona.Algorithm{lona.AlgoBase, lona.AlgoForward, lona.AlgoBackward, lona.AlgoBackwardNaive} {
		ans, err := engine.Run(ctx, lona.Query{
			Algorithm: algo, K: 2, Aggregate: lona.Sum, Options: lona.Options{Gamma: 0.2},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s", algo)
		for _, r := range ans.Results {
			fmt.Printf("  person %d (F=%.2f)", r.Node, r.Value)
		}
		fmt.Printf("   [evaluated %d, pruned %d, distributed %d]\n",
			ans.Stats.Evaluated, ans.Stats.Pruned, ans.Stats.Distributed)
	}

	fmt.Println()
	fmt.Println("AVG instead of SUM rewards small, uniformly keen circles:")
	avg, err := engine.Run(ctx, lona.Query{Algorithm: lona.AlgoForward, K: 2, Aggregate: lona.Avg})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range avg.Results {
		fmt.Printf("  #%d person %d (avg %.3f over its 2-hop circle)\n", i+1, r.Node, r.Value)
	}

	// Candidates restrict who may be ranked without changing who counts:
	// the best seed in group two, still scored over its full 2-hop circle.
	groupTwo := lona.Query{K: 1, Aggregate: lona.Sum, Candidates: []int{5, 6, 7, 8, 9}}
	restricted, err := engine.Run(ctx, groupTwo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("best seed within group two: person %d (F=%.2f, planner chose %v)\n",
		restricted.Results[0].Node, restricted.Results[0].Value, restricted.Plan.Algorithm)
}
