// Target marketing over node attributes: the paper's introduction
// describes networks whose nodes carry an attribute set Λ = {a1,…,at} —
// "a node representing a Facebook user may have attributes showing if
// he/she is interested in online RPG games" — and problem P1 allows the
// relevance function to be a learned classifier. This example builds an
// attribute table over a social network, scores members with a logistic
// "likely console buyer" model, and lets the cost-based planner choose
// the query strategy automatically.
//
// Run with:
//
//	go run ./examples/attributes [-members 15000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	lona "repro"
)

func main() {
	members := flag.Int("members", 15000, "network size")
	flag.Parse()

	g := lona.CollaborationNetwork(float64(*members)/40000, 1234)
	n := g.NumNodes()
	fmt.Printf("social network: %d members, %d friendships\n", n, g.NumEdges())

	// Λ = {rpg_fan, hours_per_week, owns_console, region}
	rng := rand.New(rand.NewSource(55))
	rpg := make([]bool, n)
	hours := make([]float64, n)
	owns := make([]bool, n)
	region := make([]int32, n)
	regions := []string{"na", "eu", "apac"}
	for v := 0; v < n; v++ {
		rpg[v] = rng.Float64() < 0.15
		hours[v] = rng.ExpFloat64() * 6
		owns[v] = rng.Float64() < 0.05
		region[v] = int32(rng.Intn(len(regions)))
	}
	attrs := lona.NewAttributeTable(n)
	for _, err := range []error{
		attrs.AddBool("rpg_fan", rpg),
		attrs.AddNumeric("hours_per_week", hours),
		attrs.AddBool("owns_console", owns),
		attrs.AddCategorical("region", region, regions),
	} {
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("attribute set Λ = %v\n\n", attrs.Names())

	// P1: a classifier turns attributes into relevance — how likely a
	// member is to buy the new console.
	model := lona.LogisticModel{
		Bias: -4,
		Weights: map[string]float64{
			"rpg_fan":        2.5,
			"hours_per_week": 3.0,
			"owns_console":   -1.5, // already owns one: less likely to buy
		},
	}
	scores, err := model.Relevance(attrs)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := lona.NewEngine(g, scores, 2)
	if err != nil {
		log.Fatal(err)
	}

	// The planner inspects the score distribution and picks the strategy.
	ans, err := lona.NewPlanner(engine).Run(context.Background(), lona.Query{K: 10, Aggregate: lona.Sum})
	if err != nil {
		log.Fatal(err)
	}
	results, stats := ans.Results, ans.Stats
	fmt.Printf("planner chose %v — %s\n", ans.Plan.Algorithm, ans.Plan.Reason)
	fmt.Printf("query work: evaluated=%d pruned=%d distributed=%d\n\n",
		stats.Evaluated, stats.Pruned, stats.Distributed)

	fmt.Println("top 10 members whose 2-hop circle is most likely to buy:")
	fmt.Printf("%4s %8s %14s %9s %7s %8s\n", "rank", "member", "circle score", "own f(v)", "rpg?", "region")
	for i, r := range results {
		fan := "-"
		if rpg[r.Node] {
			fan = "yes"
		}
		fmt.Printf("%4d %8d %14.2f %9.3f %7s %8s\n",
			i+1, r.Node, r.Value, scores[r.Node], fan, regions[region[r.Node]])
	}

	// Same query restricted to one region via a categorical predicate —
	// a second relevance function over the same Λ, no re-indexing needed.
	euOnly, err := attrs.RelevanceCategory("region", "eu")
	if err != nil {
		log.Fatal(err)
	}
	for v := range euOnly {
		euOnly[v] *= scores[v] // buyers, masked to the EU region
	}
	euEngine, err := lona.NewEngine(g, euOnly, 2)
	if err != nil {
		log.Fatal(err)
	}
	euAns, err := euEngine.Run(context.Background(), lona.Query{
		Algorithm: lona.AlgoBackward, K: 3, Aggregate: lona.Sum, Options: lona.Options{Gamma: 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbest three seeds counting only EU buyers in their circles:")
	for i, r := range euAns.Results {
		fmt.Printf("  #%d member %d (EU circle score %.2f)\n", i+1, r.Node, r.Value)
	}
}
