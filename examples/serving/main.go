// Serving: a "popularity in your social circle" feature behind lonad. The
// example starts the serving subsystem in-process on a loopback port, then
// plays a realistic client session against the HTTP API:
//
//  1. a cold top-k query (the planner picks the algorithm),
//  2. the same query repeated — served from the generation-keyed cache,
//  3. a live relevance update batch (users gain/lose expertise),
//  4. the query again — the generation bump invalidated the cache, so the
//     answer is recomputed fresh and reflects the update,
//  5. the server's own metrics from /v1/stats.
//
// Run with:
//
//	go run ./examples/serving [-users 8000]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	lona "repro"
)

func main() {
	users := flag.Int("users", 8000, "number of users in the social network")
	flag.Parse()

	// A collaboration-shaped social network with mixture relevance: how
	// likely each user is a database expert (problem P1).
	g := lona.CollaborationNetwork(float64(*users)/40000, 4001)
	scores := lona.MixtureScores(g, 0.01, 4002)
	fmt.Printf("social network: %d users, %d friendships\n", g.NumNodes(), g.NumEdges())

	begin := time.Now()
	srv, err := lona.NewServer(g, scores, 2, lona.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server ready in %.2fs (indexes prepared, view materialized)\n\n", time.Since(begin).Seconds())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("lonad serving on %s\n\n", base)

	query := `{"k":5,"aggregate":"sum","algorithm":"auto"}`

	// 1. Cold query: full engine work, algorithm chosen by the planner.
	ans := postJSON(base+"/v1/topk", query)
	fmt.Printf("cold query:   %s chose %s (%.0fµs server-side)\n",
		mode(ans), ans["algorithm"], ans["elapsed_us"])
	printTop(ans)

	// 2. Repeat: same generation, served from the LRU cache.
	t0 := time.Now()
	ans = postJSON(base+"/v1/topk", query)
	fmt.Printf("repeat query: %s in %.0fµs round-trip — identical answer, no engine work\n\n",
		mode(ans), float64(time.Since(t0).Microseconds()))

	// 3. Live updates: the current #1's circle loses its top expert.
	top := ans["results"].([]any)[0].(map[string]any)
	node := int(top["node"].(float64))
	upd := postJSON(base+"/v1/scores",
		fmt.Sprintf(`{"updates":[{"node":%d,"score":0},{"node":%d,"score":1}]}`, node, (node+1)%g.NumNodes()))
	fmt.Printf("update batch: generation %v, %v aggregates repaired in %.0fµs\n",
		upd["generation"], upd["touched"], upd["elapsed_us"])

	// 4. Same query, new generation: the cache key changed, so the server
	// recomputes against the fresh scores.
	ans = postJSON(base+"/v1/topk", query)
	fmt.Printf("fresh query:  %s at generation %v — the update is visible\n", mode(ans), ans["generation"])
	printTop(ans)

	// 5. The server watches itself.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats struct {
		Cache struct {
			Hits    int     `json:"hits"`
			Misses  int     `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		} `json:"cache"`
		Engine struct {
			Visited int `json:"visited"`
		} `json:"engine"`
	}
	decode(resp, &stats)
	fmt.Printf("stats: %d hits / %d misses (hit rate %.2f), %d neighborhood memberships visited in total\n",
		stats.Cache.Hits, stats.Cache.Misses, stats.Cache.HitRate, stats.Engine.Visited)
}

func postJSON(url, body string) map[string]any {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s -> %d: %s", url, resp.StatusCode, blob)
	}
	var m map[string]any
	decode(resp, &m)
	return m
}

func decode(resp *http.Response, dst any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}

func mode(ans map[string]any) string {
	if cached, _ := ans["cached"].(bool); cached {
		return "cache hit"
	}
	return "computed"
}

func printTop(ans map[string]any) {
	for i, r := range ans["results"].([]any) {
		res := r.(map[string]any)
		fmt.Printf("  #%d user %v — circle expertise %.4f\n", i+1, res["node"], res["value"])
	}
	fmt.Println()
}
