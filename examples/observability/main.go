// Observability: the serving subsystem watching itself. The example
// starts a server with every observability surface enabled and then
// exercises each one:
//
//  1. wide-event logs — one JSON record per query and per edit batch,
//     with slow queries escalated to WARN on the same schema,
//  2. OTLP trace export — each executed query's stitched timeline
//     shipped as OTLP/JSON spans to a collector stub (stand-in for
//     Jaeger/Tempo), one root span plus a sub-span per timed phase,
//  3. rolling-window metrics — the lona_latency_window_* families on
//     /metrics beside the cumulative histograms,
//  4. SLO burn — an aggressive latency objective the workload violates,
//     so /v1/health degrades to 503 while "ok" stays true.
//
// Run with:
//
//	go run ./examples/observability [-users 6000]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	lona "repro"
)

func main() {
	users := flag.Int("users", 6000, "number of users in the social network")
	flag.Parse()

	g := lona.CollaborationNetwork(float64(*users)/40000, 6001)
	scores := lona.MixtureScores(g, 0.01, 6002)
	fmt.Printf("network: %d users, %d friendships\n\n", g.NumNodes(), g.NumEdges())

	// A collector stub standing in for Jaeger/Tempo: it accepts OTLP/JSON
	// on POST /v1/traces and remembers what arrived.
	collector := &collectorStub{}
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(cln, collector) }()

	exporter := lona.NewOTLPExporter("http://"+cln.Addr().String(), lona.OTLPExporterOptions{
		SampleRatio: 1, // keep every trace; production deployments sample
	})

	// Wide events go to stdout as JSON — exactly what `lonad -log json`
	// emits. An unachievable 1µs SLO makes the burn visible immediately.
	logger := slog.New(slog.NewJSONHandler(os.Stdout, nil))
	srv, err := lona.NewServer(g, scores, 2, lona.ServerOptions{
		Logger:        logger,
		SlowQuery:     500 * time.Microsecond,
		SLO:           lona.ServerSLO{Latency: time.Microsecond, Target: 0.99},
		TraceExporter: exporter,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	base := "http://" + ln.Addr().String()

	// 1. Wide events: each of these requests emits one JSON record above
	// this program's own prints — queries as "query" events (WARN once
	// they cross the 500µs slow threshold), the score batch as an
	// "edit_batch" event.
	fmt.Println("--- wide events (one JSON record per query / edit batch) ---")
	for i := 0; i < 5; i++ {
		postJSON(base+"/v1/topk", fmt.Sprintf(`{"k":%d,"aggregate":"sum"}`, 3+i))
	}
	postJSON(base+"/v1/scores", `{"updates":[{"node":1,"score":0.9},{"node":2,"score":0.1}]}`)

	// 2. OTLP export: flush the async exporter, then inspect what the
	// collector received.
	flushCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exporter.Close(flushCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- otlp export ---\ncollector received %d spans across %d batches; trace %s spans: %s\n",
		collector.spans, collector.batches, collector.lastTrace, strings.Join(collector.lastNames, ", "))

	// 3. Rolling windows: the last ~2 minutes of traffic, beside the
	// cumulative histograms that never reset.
	fmt.Println("\n--- /metrics rolling-window families ---")
	for _, line := range strings.Split(getBody(base+"/metrics"), "\n") {
		if strings.HasPrefix(line, "lona_latency_window_queries") ||
			strings.HasPrefix(line, "lona_latency_window_p99_seconds") ||
			strings.HasPrefix(line, "lona_slo_burn_rate") {
			fmt.Println(line)
		}
	}

	// 4. SLO burn: no real query finishes in 1µs, so the error budget is
	// burning and health degrades — 503 for load balancers, "ok" still
	// true because the daemon itself is fine, just slower than promised.
	resp, err := http.Get(base + "/v1/health")
	if err != nil {
		log.Fatal(err)
	}
	var health struct {
		OK     bool   `json:"ok"`
		Status string `json:"status"`
		SLO    *struct {
			BurnRate float64 `json:"burn_rate"`
		} `json:"slo"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &health); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- /v1/health under a burning SLO ---\nHTTP %d: ok=%v status=%q burn_rate=%.1f\n",
		resp.StatusCode, health.OK, health.Status, health.SLO.BurnRate)
}

// collectorStub is a minimal OTLP/JSON sink: it decodes the span batch
// enough to report trace ids and span names.
type collectorStub struct {
	batches, spans int
	lastTrace      string
	lastNames      []string
}

func (c *collectorStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/traces" || r.Method != http.MethodPost {
		http.NotFound(w, r)
		return
	}
	var req struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID string `json:"traceId"`
					Name    string `json:"name"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.batches++
	for _, rs := range req.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				c.spans++
				if sp.TraceID != c.lastTrace {
					c.lastTrace, c.lastNames = sp.TraceID, nil
				}
				c.lastNames = append(c.lastNames, sp.Name)
			}
		}
	}
	w.WriteHeader(http.StatusOK)
}

func postJSON(url, body string) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s -> %d: %s", url, resp.StatusCode, blob)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
}

func getBody(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(blob)
}
