// Gene co-expression: the paper's biology scenario — "the number of times
// a gene is co-expressed with a group of known genes in co-expression
// networks". We build a module-structured co-expression network (planted
// partition: genes inside a functional module are densely co-expressed),
// mark a known pathway gene set, and use the COUNT aggregate to rank genes
// by how many known genes sit within two co-expression hops — the standard
// guilt-by-association screen for function prediction.
//
// The screen should surface unannotated genes from the same module as the
// known set; the example verifies that property explicitly.
//
// Run with:
//
//	go run ./examples/coexpression [-genes 3000] [-modules 30]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	lona "repro"
)

func main() {
	genes := flag.Int("genes", 3000, "number of genes")
	modules := flag.Int("modules", 30, "number of co-expression modules")
	flag.Parse()

	// Genes within a module co-express densely; cross-module edges are
	// rare background correlation. Node g belongs to module g % modules.
	g := lona.CommunityNetwork(*genes, *modules, 0.08, 0.0005, 99)
	fmt.Printf("co-expression network: %d genes, %d edges, %d modules\n",
		g.NumNodes(), g.NumEdges(), *modules)

	// Known pathway: 25 annotated genes, all from module 7.
	const pathwayModule = 7
	rng := rand.New(rand.NewSource(4))
	known := make([]float64, *genes)
	annotated := map[int]bool{}
	for len(annotated) < 25 {
		gene := pathwayModule + (*modules)*rng.Intn(*genes / *modules)
		if !annotated[gene] {
			annotated[gene] = true
			known[gene] = 1
		}
	}
	fmt.Printf("known pathway: %d annotated genes from module %d\n\n", len(annotated), pathwayModule)

	engine, err := lona.NewEngine(g, known, 2)
	if err != nil {
		log.Fatal(err)
	}

	// COUNT: how many known genes within 2 co-expression hops. Backward
	// processing shines here — only 25 of 3000 genes have non-zero scores,
	// so distribution touches a sliver of the network.
	ans, err := engine.Run(context.Background(), lona.Query{
		Algorithm: lona.AlgoBackward, K: 15, Aggregate: lona.Count, Options: lona.Options{Gamma: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	top, stats := ans.Results, ans.Stats
	fmt.Printf("backward query stats: distributed=%d (of %d genes), verified=%d\n\n",
		stats.Distributed, *genes, stats.Evaluated)

	fmt.Println("guilt-by-association candidates (top 2-hop known-gene counts):")
	fmt.Printf("%4s %8s %14s %10s %12s\n", "rank", "gene", "known in 2hop", "module", "annotated?")
	hits, novel := 0, 0
	for i, r := range top {
		module := r.Node % *modules
		mark := ""
		if annotated[r.Node] {
			mark = "yes"
		} else {
			mark = "NO ← candidate"
			if module == pathwayModule {
				novel++
			}
		}
		if module == pathwayModule {
			hits++
		}
		fmt.Printf("%4d %8d %14.0f %10d %12s\n", i+1, r.Node, r.Value, module, mark)
	}
	fmt.Printf("\n%d of %d top genes are from the true pathway module; %d are novel candidates.\n",
		hits, len(top), novel)
	if hits < len(top)/2 {
		log.Fatal("screen failed: the pathway module did not dominate the ranking")
	}

	// AVG variant: normalizing by neighborhood size ranks small, purely
	// pathway-adjacent neighborhoods above big hubs.
	avgAns, err := engine.Run(context.Background(), lona.Query{
		Algorithm: lona.AlgoBackward, K: 5, Aggregate: lona.Avg, Options: lona.Options{Gamma: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAVG-normalized view (pathway density rather than raw count):")
	for i, r := range avgAns.Results {
		fmt.Printf("  #%d gene %d density %.4f (module %d)\n", i+1, r.Node, r.Value, r.Node%*modules)
	}
}
