// Social recommendation: the paper's motivating scenario — "identify the
// popularity of a game console in one's social circle". We simulate a
// collaboration-style social network, assign each member an interest score
// for the console (the paper's mixture relevance with a 1% blacking ratio
// of die-hard fans), and find the members whose 2-hop circles are the most
// interested: the natural seeding set for a marketing campaign.
//
// The example also shows why LONA matters operationally: the same query is
// answered by the naive scan and by both pruning algorithms, with work
// counters printed side by side.
//
// Run with:
//
//	go run ./examples/social [-members 20000] [-k 10]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	lona "repro"
)

func main() {
	members := flag.Int("members", 20000, "network size (nodes)")
	k := flag.Int("k", 10, "how many campaign seeds to select")
	flag.Parse()

	scale := float64(*members) / 40000
	fmt.Printf("building a %d-member social network…\n", *members)
	g := lona.CollaborationNetwork(scale, 2026)
	fmt.Printf("network: %d members, %d friendships\n", g.NumNodes(), g.NumEdges())

	// Interest in the console: 1%% are die-hard fans (score 1), everyone
	// else has a small exponential interest smoothed along friendships.
	scores := lona.MixtureScores(g, 0.01, 7)

	engine, err := lona.NewEngine(g, scores, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("precomputing the differential index (one-time, reused by every campaign query)…")
	start := time.Now()
	engine.PrepareNeighborhoodIndex(0)
	engine.PrepareDifferentialIndex(0)
	fmt.Printf("indexes ready in %.2fs\n\n", time.Since(start).Seconds())

	type outcome struct {
		algo    lona.Algorithm
		seconds float64
		stats   lona.QueryStats
		top     []lona.Result
	}
	var outcomes []outcome
	for _, algo := range []lona.Algorithm{lona.AlgoBase, lona.AlgoForward, lona.AlgoBackward} {
		begin := time.Now()
		ans, err := engine.Run(context.Background(), lona.Query{
			Algorithm: algo, K: *k, Aggregate: lona.Sum,
			Options: lona.Options{Gamma: 0.2, Order: lona.OrderDegreeDesc},
		})
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{algo, time.Since(begin).Seconds(), ans.Stats, ans.Results})
	}

	fmt.Printf("%-10s %9s %11s %9s %12s\n", "algorithm", "time (s)", "evaluated", "pruned", "distributed")
	for _, o := range outcomes {
		fmt.Printf("%-10s %9.4f %11d %9d %12d\n",
			o.algo, o.seconds, o.stats.Evaluated, o.stats.Pruned, o.stats.Distributed)
	}

	fmt.Printf("\ntop %d campaign seeds (identical across algorithms):\n", *k)
	fmt.Printf("%4s %8s %16s %22s\n", "rank", "member", "circle interest", "own interest (f)")
	for i, r := range outcomes[0].top {
		fmt.Printf("%4d %8d %16.3f %22.3f\n", i+1, r.Node, r.Value, scores[r.Node])
	}

	// Sanity: the pruning algorithms agreed with the scan.
	for _, o := range outcomes[1:] {
		for i := range o.top {
			if o.top[i].Value-outcomes[0].top[i].Value > 1e-9 ||
				outcomes[0].top[i].Value-o.top[i].Value > 1e-9 {
				log.Fatalf("%v disagreed with Base at rank %d", o.algo, i+1)
			}
		}
	}
	fmt.Println("\nall algorithms returned the same ranking — pruning is lossless.")
}
