// Intrusion analysis: the paper's security scenario — an "intrusion
// network" where nodes are IP addresses and edges are attack contacts.
// Flagged attacker IPs get relevance 1 (the paper's r=0.2 binary setting,
// Figure 3); the query ranks IPs by how many flagged attackers operate
// within two hops, surfacing coordination hubs and likely staging points.
//
// This is the workload where backward processing dominates: 80% of nodes
// have score zero and are skipped outright by distribution.
//
// Run with:
//
//	go run ./examples/intrusion [-ips 75000] [-k 15]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	lona "repro"
)

func main() {
	ips := flag.Int("ips", 75000, "number of IP addresses")
	k := flag.Int("k", 15, "suspects to report")
	flag.Parse()

	scale := float64(*ips) / 150000
	g := lona.IntrusionNetwork(scale, 404)
	fmt.Printf("intrusion network: %d IPs, %d attack contacts\n", g.NumNodes(), g.NumEdges())

	flags := lona.BinaryScores(g.NumNodes(), 0.2, 405)
	flagged := 0
	for _, f := range flags {
		if f == 1 {
			flagged++
		}
	}
	fmt.Printf("flagged attacker IPs: %d (%.0f%%)\n\n", flagged, 100*float64(flagged)/float64(g.NumNodes()))

	engine, err := lona.NewEngine(g, flags, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Compare the naive scan against backward processing on the same query.
	ctx := context.Background()
	begin := time.Now()
	base, err := engine.Run(ctx, lona.Query{Algorithm: lona.AlgoBase, K: *k, Aggregate: lona.Sum})
	if err != nil {
		log.Fatal(err)
	}
	baseTime := time.Since(begin)
	baseTop, baseStats := base.Results, base.Stats

	begin = time.Now()
	back, err := engine.Run(ctx, lona.Query{
		Algorithm: lona.AlgoBackward, K: *k, Aggregate: lona.Sum, Options: lona.Options{Gamma: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	backTime := time.Since(begin)
	top, stats := back.Results, back.Stats

	fmt.Printf("naive scan:          %.4fs (evaluated %d IPs)\n", baseTime.Seconds(), baseStats.Evaluated)
	fmt.Printf("backward processing: %.4fs (distributed %d, verified %d)\n",
		backTime.Seconds(), stats.Distributed, stats.Evaluated)
	if backTime < baseTime {
		fmt.Printf("speedup: %.1f×\n", baseTime.Seconds()/backTime.Seconds())
	}

	fmt.Printf("\ntop %d coordination hubs (flagged attackers within 2 hops):\n", *k)
	fmt.Printf("%4s %10s %18s %14s\n", "rank", "IP node", "attackers in 2hop", "flagged itself")
	for i, r := range top {
		self := "no"
		if flags[r.Node] == 1 {
			self = "yes"
		}
		fmt.Printf("%4d %10d %18.0f %14s\n", i+1, r.Node, r.Value, self)
	}

	// The two strategies must agree.
	for i := range top {
		if top[i].Value != baseTop[i].Value {
			log.Fatalf("backward disagreed with base at rank %d", i+1)
		}
	}
	fmt.Println("\nbackward processing matched the naive scan exactly.")
}
