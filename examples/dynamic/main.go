// Dynamic monitoring: the paper's introduction describes intrusion traffic
// as "a large, dynamic intrusion network". This example keeps a
// materialized top-k view over such a network while attacker flags stream
// in and out: each flag change repairs only the h-hop neighborhood of the
// changed IP, so the monitoring dashboard's top-k stays fresh at a tiny
// fraction of recomputation cost.
//
// Run with:
//
//	go run ./examples/dynamic [-ips 50000] [-events 2000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	lona "repro"
)

func main() {
	ips := flag.Int("ips", 50000, "number of IP addresses")
	events := flag.Int("events", 2000, "flag/unflag events to stream")
	flag.Parse()

	g := lona.IntrusionNetwork(float64(*ips)/150000, 777)
	fmt.Printf("intrusion network: %d IPs, %d contacts\n", g.NumNodes(), g.NumEdges())

	// Start with 5% of IPs flagged.
	flags := lona.BinaryScores(g.NumNodes(), 0.05, 778)

	begin := time.Now()
	view, err := lona.NewView(g, flags, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized 2-hop aggregate view in %.3fs\n\n", time.Since(begin).Seconds())

	viewQuery := lona.Query{K: 5, Aggregate: lona.Sum}
	ans, err := view.Run(context.Background(), viewQuery)
	if err != nil {
		log.Fatal(err)
	}
	top := ans.Results
	fmt.Println("initial top-5 coordination hubs:")
	for i, r := range top {
		fmt.Printf("  #%d IP %d — %.0f flagged attackers within 2 hops\n", i+1, r.Node, r.Value)
	}

	// Stream flag changes: alerts raise flags, analyst triage clears them.
	rng := rand.New(rand.NewSource(779))
	begin = time.Now()
	totalTouched := 0
	for ev := 0; ev < *events; ev++ {
		node := rng.Intn(g.NumNodes())
		var next float64
		if view.Score(node) == 0 {
			next = 1 // new alert
		} else {
			next = 0 // triaged and cleared
		}
		touched, err := view.UpdateScore(node, next)
		if err != nil {
			log.Fatal(err)
		}
		totalTouched += touched
	}
	streamDur := time.Since(begin)
	fmt.Printf("\nstreamed %d flag events in %.3fs (%.1f µs/event, %.0f aggregates repaired per event)\n",
		*events, streamDur.Seconds(),
		1e6*streamDur.Seconds()/float64(*events),
		float64(totalTouched)/float64(*events))

	ans, err = view.Run(context.Background(), viewQuery)
	if err != nil {
		log.Fatal(err)
	}
	top = ans.Results
	fmt.Println("\ntop-5 after the event stream (always-fresh, no recomputation):")
	for i, r := range top {
		fmt.Printf("  #%d IP %d — %.0f flagged attackers within 2 hops\n", i+1, r.Node, r.Value)
	}

	// The network itself is dynamic too: new hosts appear and contacts
	// form and disappear. Structural edits repair the same view in place —
	// only the h-hop surroundings of the touched endpoints are recomputed.
	begin = time.Now()
	newHost := view.Graph().NumNodes()
	hub := top[0].Node
	editRes, err := view.ApplyEdits(context.Background(), []lona.Edit{
		{Op: lona.EditAddNode},                     // a never-seen IP appears…
		{Op: lona.EditAddEdge, U: newHost, V: hub}, // …and contacts the top hub
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := view.UpdateScore(newHost, 1); err != nil { // it is flagged
		log.Fatal(err)
	}
	fmt.Printf("\nstructural edit (new IP %d contacting hub %d) repaired %d of %d nodes in %.3fs\n",
		newHost, hub, editRes.Repaired, view.Graph().NumNodes(), time.Since(begin).Seconds())
	ans, err = view.Run(context.Background(), viewQuery)
	if err != nil {
		log.Fatal(err)
	}
	top = ans.Results
	g = view.Graph()

	// Compare against answering the same query from scratch.
	begin = time.Now()
	engine, err := lona.NewEngine(g, currentScores(view, g.NumNodes()), 2)
	if err != nil {
		log.Fatal(err)
	}
	freshAns, err := engine.Run(context.Background(), lona.Query{
		Algorithm: lona.AlgoBackward, K: 5, Aggregate: lona.Sum, Options: lona.Options{Gamma: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fresh := freshAns.Results
	fmt.Printf("\nfull re-query for comparison: %.3fs — and it agrees:\n", time.Since(begin).Seconds())
	for i := range fresh {
		if fresh[i].Value != top[i].Value {
			log.Fatalf("view drifted from ground truth at rank %d", i+1)
		}
	}
	fmt.Println("  view matches a from-scratch query exactly.")
}

func currentScores(v *lona.View, n int) []float64 {
	scores := make([]float64, n)
	for u := 0; u < n; u++ {
		scores[u] = v.Score(u)
	}
	return scores
}
