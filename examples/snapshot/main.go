// Snapshot: the replica-spin-up story. A fleet serving "popularity in
// your social circle" does not want every new replica to regenerate the
// dataset and rebuild the N(v) neighborhood index from scratch — it wants
// to mmap a file and answer its first query immediately. The example:
//
//  1. builds a collaboration network + engine the slow way (timed),
//  2. bakes it into a columnar snapshot with lona.WriteSnapshot,
//  3. boots a second engine from the snapshot via mmap (timed),
//  4. proves the two engines answer byte-identically — values, order,
//     tie-breaks, and work counters,
//  5. prints the boot-time ratio, the headline the S5 benchmark tracks
//     at scale 2 in BENCH_snapshot.json.
//
// Run with:
//
//	go run ./examples/snapshot [-users 20000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	lona "repro"
)

const hops = 2

func main() {
	users := flag.Int("users", 20000, "number of users in the social network")
	flag.Parse()

	// --- 1. The slow path: generate, build, index. -------------------
	buildStart := time.Now()
	g := lona.CollaborationNetwork(float64(*users)/40000, 7001)
	scores := lona.MixtureScores(g, 0.01, 7002)
	built, err := lona.NewEngine(g, scores, hops)
	if err != nil {
		log.Fatal(err)
	}
	built.PrepareNeighborhoodIndex(0)
	buildTime := time.Since(buildStart)
	fmt.Printf("network: %d users, %d friendships\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("build from generator: %v\n", buildTime)

	// --- 2. Bake the snapshot. ---------------------------------------
	dir, err := os.MkdirTemp("", "lona-snapshot")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "social.snap")
	if err := lona.WriteSnapshot(path, g, scores, hops); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("snapshot: %s (%.1f MiB)\n", path, float64(info.Size())/(1<<20))

	// --- 3. The fast path: mmap + adopt the baked index. -------------
	bootStart := time.Now()
	r, err := lona.OpenSnapshot(path)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close() // the engine aliases the mapping: close only when done
	mapped, err := lona.NewEngineFromSnapshot(r)
	if err != nil {
		log.Fatal(err)
	}
	bootTime := time.Since(bootStart)
	fmt.Printf("boot from snapshot:   %v\n", bootTime)

	// --- 4. Same answers, bit for bit. -------------------------------
	ctx := context.Background()
	q := lona.Query{K: 10, Aggregate: lona.Sum}
	want, err := built.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	got, err := mapped.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	if len(got.Results) != len(want.Results) || got.Stats != want.Stats {
		log.Fatalf("snapshot engine diverged: stats %+v vs %+v", got.Stats, want.Stats)
	}
	for i := range want.Results {
		w, m := want.Results[i], got.Results[i]
		if w.Node != m.Node || math.Float64bits(w.Value) != math.Float64bits(m.Value) {
			log.Fatalf("result %d diverged: %+v vs %+v", i, m, w)
		}
	}
	fmt.Printf("\ntop-10 by %d-hop SUM (identical on both engines):\n", hops)
	for i, res := range got.Results {
		fmt.Printf("  %2d. user %-6d %.4f\n", i+1, res.Node, res.Value)
	}

	// --- 5. The headline. --------------------------------------------
	fmt.Printf("\nboot speedup: %.0fx (%v -> %v); evaluated %d candidates on each\n",
		buildTime.Seconds()/bootTime.Seconds(), buildTime, bootTime, got.Stats.Evaluated)
}
