package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	lona "repro"
)

func TestParseAggregate(t *testing.T) {
	cases := []struct {
		name    string
		want    lona.Aggregate
		wantErr bool
	}{
		{name: "sum", want: lona.Sum},
		{name: "avg", want: lona.Avg},
		{name: "wsum", want: lona.WeightedSum},
		{name: "count", want: lona.Count},
		{name: "max", want: lona.Max},
		{name: "SUM", want: lona.Sum}, // names are case-insensitive
		{name: "", wantErr: true},
		{name: "median", wantErr: true},
		{name: "sum ", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseAggregate(tc.name)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseAggregate(%q) accepted, got %v", tc.name, got)
			} else if !strings.Contains(err.Error(), "unknown aggregate") {
				t.Errorf("parseAggregate(%q) error %q lacks context", tc.name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseAggregate(%q): %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseAggregate(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		name    string
		want    lona.Algorithm
		wantErr bool
	}{
		{name: "base", want: lona.AlgoBase},
		{name: "parallel", want: lona.AlgoBaseParallel},
		{name: "forward", want: lona.AlgoForward},
		{name: "forward-dist", want: lona.AlgoForwardDist},
		{name: "backward", want: lona.AlgoBackward},
		{name: "backward-naive", want: lona.AlgoBackwardNaive},
		{name: "Forward", want: lona.AlgoForward}, // names are case-insensitive
		{name: "auto", want: lona.AlgoAuto},       // the planner chooses
		{name: "", wantErr: true},
		{name: "dijkstra", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseAlgorithm(tc.name)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseAlgorithm(%q) accepted, got %v", tc.name, got)
			} else if !strings.Contains(err.Error(), "unknown algorithm") {
				t.Errorf("parseAlgorithm(%q) error %q lacks context", tc.name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseAlgorithm(%q): %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseAlgorithm(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRunGeneratedDataset drives the full CLI path on a tiny generated
// dataset — the arg-parsing layer glued to a real query.
func TestRunGeneratedDataset(t *testing.T) {
	ctx := context.Background()
	err := run(ctx, "", "", "intrusion", 0.02, 7, "binary", 0.2, 5, 2, "sum", "auto", 0.2, 0, 0, false)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if err := run(ctx, "", "", "nosuch", 1, 7, "binary", 0.2, 5, 2, "sum", "auto", 0.2, 0, 0, false); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run(ctx, "", "", "intrusion", 0.02, 7, "binary", 0.2, 5, 2, "median", "auto", 0.2, 0, 0, false); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
	if err := run(ctx, "", "", "", 1, 7, "binary", 0.2, 5, 2, "sum", "auto", 0.2, 0, 0, false); err == nil {
		t.Fatal("missing inputs accepted")
	}
}

// TestRunCancelled: a pre-cancelled context aborts the query and surfaces
// the context error through the CLI path.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, "", "", "intrusion", 0.02, 7, "binary", 0.2, 5, 2, "sum", "base", 0.2, 0, 0, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
