// Command lona answers a single top-k neighborhood aggregation query from
// the command line, either over files produced by lonagen or over a
// freshly generated dataset.
//
// Examples:
//
//	lona -graph collab.graph -scores collab.scores -k 10 -agg sum -algo forward
//	lona -dataset intrusion -scale 0.5 -r 0.2 -relevance binary -k 25 -algo backward
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	lona "repro"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "binary graph file (from lonagen)")
		scoresPath = flag.String("scores", "", "binary scores file (from lonagen)")
		dataset    = flag.String("dataset", "", "generate instead of load: collaboration | citation | intrusion")
		scale      = flag.Float64("scale", 1.0, "dataset scale when generating")
		seed       = flag.Int64("seed", 20100301, "seed when generating")
		relKind    = flag.String("relevance", "mixture", "relevance when generating: mixture | binary")
		r          = flag.Float64("r", 0.01, "blacking ratio when generating")
		k          = flag.Int("k", 10, "number of results")
		h          = flag.Int("hops", 2, "neighborhood radius h")
		aggName    = flag.String("agg", "sum", "aggregate: sum | avg | wsum | count | max")
		algoName   = flag.String("algo", "forward", "algorithm: auto | base | parallel | forward | forward-dist | backward | backward-naive")
		gamma      = flag.Float64("gamma", 0.2, "LONA-Backward distribution threshold γ")
		timeout    = flag.Duration("timeout", 0, "abandon the query after this long (0 = no deadline)")
		budget     = flag.Int("budget", 0, "max h-hop traversals before returning a best-effort answer (0 = unlimited)")
		traceQ     = flag.Bool("trace", false, "record and print the query's execution timeline")
	)
	flag.Parse()

	// Ctrl-C cancels the in-flight query cooperatively instead of killing
	// the process mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *graphPath, *scoresPath, *dataset, *scale, *seed, *relKind, *r, *k, *h, *aggName, *algoName, *gamma, *timeout, *budget, *traceQ); err != nil {
		fmt.Fprintln(os.Stderr, "lona:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, graphPath, scoresPath, dataset string, scale float64, seed int64,
	relKind string, r float64, k, h int, aggName, algoName string, gamma float64,
	timeout time.Duration, budget int, traceQ bool) error {

	g, scores, err := loadOrGenerate(graphPath, scoresPath, dataset, scale, seed, relKind, r)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d nodes, %d edges; h=%d\n", g.NumNodes(), g.NumEdges(), h)

	agg, err := parseAggregate(aggName)
	if err != nil {
		return err
	}
	algo, err := parseAlgorithm(algoName)
	if err != nil {
		return err
	}
	engine, err := lona.NewEngine(g, scores, h)
	if err != nil {
		return err
	}
	if algo == lona.AlgoForward {
		start := time.Now()
		engine.PrepareNeighborhoodIndex(0)
		engine.PrepareDifferentialIndex(0)
		fmt.Printf("indexes built in %.2fs (precomputed, reusable across queries)\n", time.Since(start).Seconds())
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var rec *lona.TraceRecorder
	if traceQ {
		rec = lona.NewTraceRecorder()
	}
	start := time.Now()
	ans, err := engine.Run(ctx, lona.Query{
		Algorithm: algo,
		K:         k,
		Aggregate: agg,
		Options:   lona.Options{Gamma: gamma, Order: lona.OrderDegreeDesc},
		Budget:    budget,
		Tracer:    rec,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	executed := algo
	if ans.Plan != nil {
		executed = ans.Plan.Algorithm
		fmt.Printf("planner chose %v — %s\n", executed, ans.Plan.Reason)
	}
	fmt.Printf("top-%d %s via %s in %.4fs (evaluated=%d pruned=%d distributed=%d)\n",
		k, agg, executed, elapsed.Seconds(), ans.Stats.Evaluated, ans.Stats.Pruned, ans.Stats.Distributed)
	if ans.Truncated {
		fmt.Printf("note: traversal budget %d exhausted — best-effort answer\n", budget)
	}
	fmt.Println("rank  node        F(node)")
	for i, res := range ans.Results {
		fmt.Printf("%4d  %-10d  %.6f\n", i+1, res.Node, res.Value)
	}
	if rec != nil {
		fmt.Println()
		rec.Snapshot().Format(os.Stdout)
	}
	return nil
}

func loadOrGenerate(graphPath, scoresPath, dataset string, scale float64, seed int64,
	relKind string, r float64) (*lona.Graph, []float64, error) {

	if dataset != "" {
		var g *lona.Graph
		switch dataset {
		case "collaboration":
			g = lona.CollaborationNetwork(scale, seed)
		case "citation":
			g = lona.CitationNetwork(scale, seed)
		case "intrusion":
			g = lona.IntrusionNetwork(scale, seed)
		default:
			return nil, nil, fmt.Errorf("unknown dataset %q", dataset)
		}
		var scores []float64
		switch relKind {
		case "mixture":
			scores = lona.MixtureScores(g, r, seed+1)
		case "binary":
			scores = lona.BinaryScores(g.NumNodes(), r, seed+1)
		default:
			return nil, nil, fmt.Errorf("unknown relevance %q", relKind)
		}
		return g, scores, nil
	}

	if graphPath == "" || scoresPath == "" {
		return nil, nil, fmt.Errorf("pass either -dataset, or both -graph and -scores")
	}
	gf, err := os.Open(graphPath)
	if err != nil {
		return nil, nil, err
	}
	defer gf.Close()
	var g *lona.Graph
	if strings.HasSuffix(graphPath, ".gml") {
		// GML interop: load public archives (e.g. cond-mat 2005) directly.
		g, _, err = lona.ReadGML(gf)
	} else {
		g, err = lona.ReadGraph(gf)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", graphPath, err)
	}
	sf, err := os.Open(scoresPath)
	if err != nil {
		return nil, nil, err
	}
	defer sf.Close()
	scores, err := lona.ReadScores(sf)
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", scoresPath, err)
	}
	return g, scores, nil
}

func parseAggregate(name string) (lona.Aggregate, error) {
	return lona.ParseAggregate(name)
}

func parseAlgorithm(name string) (lona.Algorithm, error) {
	algo, err := lona.ParseAlgorithm(name)
	if err != nil {
		return 0, fmt.Errorf("unknown algorithm %q (want auto, base, parallel, forward, forward-dist, backward, or backward-naive)", name)
	}
	return algo, nil
}
