package main

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	lona "repro"
)

// TestConfigValidation: the shard flag combinations that cannot work are
// rejected before any dataset is built.
func TestConfigValidation(t *testing.T) {
	bad := []config{
		{shards: 0},
		{shards: 2, shardWorker: true, shardIndex: 2},
		{shards: 2, shardWorker: true, shardIndex: -1},
		{shards: 2, shardWorker: true, shardPeers: "http://x"},
	}
	for i, cfg := range bad {
		if err := run(cfg); err == nil {
			t.Fatalf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

// TestPeerList: the -shard-peers splitter trims and drops empties.
func TestPeerList(t *testing.T) {
	c := config{shardPeers: " http://a:1 , ,http://b:2,"}
	got := c.peerList()
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("peerList = %v", got)
	}
	if got := (config{}).peerList(); got != nil {
		t.Fatalf("empty peers parsed as %v", got)
	}
}

// TestShardedDaemonPipeline stands up the full two-process topology in
// miniature: two shard-worker daemons (the handlers lonad -shard-worker
// mounts) behind serveUntilDone, plus a coordinator Server dialing them —
// and cross-checks a query against an unsharded server over the same
// deterministic dataset.
func TestShardedDaemonPipeline(t *testing.T) {
	const parts = 2
	g := lona.CollaborationNetwork(0.05, 42)
	scores := lona.MixtureScores(g, 0.01, 43)

	var peers []string
	for i := 0; i < parts; i++ {
		handler, err := lona.NewShardWorkerHandler(g, scores, 2, parts, i)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		logger := slog.New(slog.NewTextHandler(io.Discard, nil))
		go func() { done <- serveUntilDone(ctx, logger, handler, ln, time.Second) }()
		t.Cleanup(func() {
			cancel()
			<-done
		})
		peers = append(peers, "http://"+ln.Addr().String())
	}

	coord, err := lona.NewServer(g, scores, 2, lona.ServerOptions{SkipIndexes: true, ShardWorkers: peers})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := lona.NewServer(g, scores, 2, lona.ServerOptions{SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}

	req := lona.ServerQueryRequest{K: 25, Aggregate: "sum", Algorithm: "base"}
	want, err := plain.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("coordinator returned %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i] != want.Results[i] {
			t.Fatalf("result %d: %+v != %+v", i, got.Results[i], want.Results[i])
		}
	}
	if got.Shards != parts {
		t.Fatalf("answer reports %d shards, want %d", got.Shards, parts)
	}

	// The worker daemons answer their health endpoint directly too.
	resp, err := http.Get(peers[0] + "/v1/shard/health")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(blob), `"shard":0`) {
		t.Fatalf("worker health answered %d: %s", resp.StatusCode, blob)
	}
}
