package main

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	lona "repro"
	"repro/internal/promtext"
)

// startDaemon wires a Server behind serveUntilDone on a loopback port and
// returns the base URL, the shutdown trigger, and the exit channel.
func startDaemon(t *testing.T, srv *lona.Server, drain time.Duration) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	go func() { done <- serveUntilDone(ctx, logger, srv.Handler(), ln, drain) }()
	return "http://" + ln.Addr().String(), cancel, done
}

// TestGracefulShutdownIdle: a signal with no traffic in flight exits
// promptly and cleanly, and the port stops answering.
func TestGracefulShutdownIdle(t *testing.T) {
	g := lona.IntrusionNetwork(0.02, 7)
	scores := lona.BinaryScores(g.NumNodes(), 0.2, 8)
	srv, err := lona.NewServer(g, scores, 2, lona.ServerOptions{SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown, done := startDaemon(t, srv, 5*time.Second)

	resp, err := http.Get(base + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status %d", resp.StatusCode)
	}

	shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after shutdown signal")
	}
	if _, err := http.Get(base + "/v1/health"); err == nil {
		t.Fatal("port still answering after shutdown")
	}
}

// TestMetricsEndpointSmoke: the daemon's /metrics endpoint serves valid
// Prometheus exposition text that reflects served traffic. This is the
// promtool-free CI smoke: malformed exposition fails the build.
func TestMetricsEndpointSmoke(t *testing.T) {
	g := lona.IntrusionNetwork(0.02, 7)
	scores := lona.BinaryScores(g.NumNodes(), 0.2, 8)
	srv, err := lona.NewServer(g, scores, 2, lona.ServerOptions{SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown, done := startDaemon(t, srv, 5*time.Second)
	defer func() {
		shutdown()
		<-done
	}()

	// Serve a little traffic so histograms and counters are non-trivial.
	for i := 0; i < 3; i++ {
		resp, err := http.Post(base+"/v1/topk", "application/json",
			strings.NewReader(`{"k":5,"aggregate":"sum","algorithm":"base"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("topk status %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	if err := promtext.Validate(body); err != nil {
		t.Fatalf("malformed exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		"lona_cache_misses_total",
		"lona_query_duration_seconds_bucket{algorithm=",
		"lona_uptime_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestGracefulShutdownAbortsInFlight: a query still running past the drain
// deadline is cancelled via the context plumbing instead of pinning the
// daemon open.
func TestGracefulShutdownAbortsInFlight(t *testing.T) {
	// A heavy enough dataset that a 3-hop base scan far outlives the tiny
	// drain deadline below.
	g := lona.CollaborationNetwork(0.2, 7)
	scores := lona.MixtureScores(g, 0.01, 8)
	srv, err := lona.NewServer(g, scores, 3, lona.ServerOptions{SkipIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown, done := startDaemon(t, srv, 50*time.Millisecond)

	queryReturned := make(chan struct{})
	go func() {
		defer close(queryReturned)
		resp, err := http.Post(base+"/v1/topk", "application/json",
			strings.NewReader(`{"k":50,"aggregate":"sum","algorithm":"base"}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(30 * time.Millisecond) // let the query reach the engine
	shutdown()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit: the in-flight query was not cancelled")
	}
	select {
	case <-queryReturned:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight client never unblocked")
	}
	if got := srv.Stats().QueryCancels; got == 0 {
		t.Log("note: query finished before the drain deadline; no cancel recorded")
	}
}
