// Command lonad serves top-k neighborhood aggregation queries over HTTP as
// a long-lived daemon: a cached, concurrent front-end to the LONA engine
// with live relevance updates.
//
// Examples:
//
//	lonad -dataset collaboration -scale 0.5 -addr :8080
//	lonad -graph collab.graph -scores collab.scores -hops 2
//
// Endpoints (JSON):
//
//	POST /v1/topk   {"k":10,"aggregate":"sum","algorithm":"auto"}
//	POST /v1/scores {"updates":[{"node":17,"score":0.9}]}
//	GET  /v1/stats
//	GET  /v1/health
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	lona "repro"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		graphPath  = flag.String("graph", "", "binary graph file (from lonagen), or a .gml file")
		scoresPath = flag.String("scores", "", "binary scores file (from lonagen)")
		dataset    = flag.String("dataset", "", "generate instead of load: collaboration | citation | intrusion")
		scale      = flag.Float64("scale", 1.0, "dataset scale when generating")
		seed       = flag.Int64("seed", 20100301, "seed when generating")
		relKind    = flag.String("relevance", "mixture", "relevance when generating: mixture | binary")
		r          = flag.Float64("r", 0.01, "blacking ratio when generating")
		h          = flag.Int("hops", 2, "neighborhood radius h")
		cacheCap   = flag.Int("cache", 4096, "result cache capacity in entries (<=0 disables)")
		workers    = flag.Int("workers", 0, "index-build/parallel-scan goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*addr, *graphPath, *scoresPath, *dataset, *scale, *seed, *relKind, *r, *h, *cacheCap, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "lonad:", err)
		os.Exit(1)
	}
}

func run(addr, graphPath, scoresPath, dataset string, scale float64, seed int64,
	relKind string, r float64, h, cacheCap, workers int) error {

	g, scores, err := loadOrGenerate(graphPath, scoresPath, dataset, scale, seed, relKind, r)
	if err != nil {
		return err
	}
	log.Printf("network: %d nodes, %d edges; h=%d", g.NumNodes(), g.NumEdges(), h)

	start := time.Now()
	cache := cacheCap
	if cache <= 0 {
		cache = -1 // ServerOptions: negative disables, zero means default
	}
	srv, err := lona.NewServer(g, scores, h, lona.ServerOptions{
		CacheCapacity: cache,
		Workers:       workers,
	})
	if err != nil {
		return err
	}
	log.Printf("server ready in %.2fs (indexes prepared, view materialized)", time.Since(start).Seconds())
	log.Printf("serving on %s — POST /v1/topk, POST /v1/scores, GET /v1/stats, GET /v1/health", addr)
	return http.ListenAndServe(addr, srv.Handler())
}

// loadOrGenerate mirrors cmd/lona's input handling so the two binaries
// accept the same dataset flags.
func loadOrGenerate(graphPath, scoresPath, dataset string, scale float64, seed int64,
	relKind string, r float64) (*lona.Graph, []float64, error) {

	if dataset != "" {
		var g *lona.Graph
		switch dataset {
		case "collaboration":
			g = lona.CollaborationNetwork(scale, seed)
		case "citation":
			g = lona.CitationNetwork(scale, seed)
		case "intrusion":
			g = lona.IntrusionNetwork(scale, seed)
		default:
			return nil, nil, fmt.Errorf("unknown dataset %q", dataset)
		}
		var scores []float64
		switch relKind {
		case "mixture":
			scores = lona.MixtureScores(g, r, seed+1)
		case "binary":
			scores = lona.BinaryScores(g.NumNodes(), r, seed+1)
		default:
			return nil, nil, fmt.Errorf("unknown relevance %q", relKind)
		}
		return g, scores, nil
	}

	if graphPath == "" || scoresPath == "" {
		return nil, nil, fmt.Errorf("pass either -dataset, or both -graph and -scores")
	}
	gf, err := os.Open(graphPath)
	if err != nil {
		return nil, nil, err
	}
	defer gf.Close()
	var g *lona.Graph
	if strings.HasSuffix(graphPath, ".gml") {
		g, _, err = lona.ReadGML(gf)
	} else {
		g, err = lona.ReadGraph(gf)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", graphPath, err)
	}
	sf, err := os.Open(scoresPath)
	if err != nil {
		return nil, nil, err
	}
	defer sf.Close()
	scores, err := lona.ReadScores(sf)
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", scoresPath, err)
	}
	return g, scores, nil
}
