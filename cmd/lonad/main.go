// Command lonad serves top-k neighborhood aggregation queries over HTTP as
// a long-lived daemon: a cached, concurrent front-end to the LONA engine
// with live relevance updates, per-request deadlines, and graceful
// shutdown.
//
// Examples:
//
//	lonad -dataset collaboration -scale 0.5 -addr :8080
//	lonad -graph collab.graph -scores collab.scores -hops 2 -drain 5s
//
//	# boot from an mmap-ed columnar snapshot (lonagen -snapshot): graph,
//	# scores, and N(v) index map in with no rebuild, so cold start is O(ms)
//	lonad -snapshot collab.snap
//	lonad -snapshot collab.snap.shard0 -shard-worker -addr :9001
//
//	# one process, 4 partition-local engines:
//	lonad -dataset collaboration -shards 4
//
//	# one worker process per shard, plus a coordinator fanning out to them:
//	lonad -dataset collaboration -shards 2 -shard-worker -shard-index 0 -addr :9001
//	lonad -dataset collaboration -shards 2 -shard-worker -shard-index 1 -addr :9002
//	lonad -dataset collaboration -shard-peers http://localhost:9001,http://localhost:9002
//
// Endpoints (JSON):
//
//	POST /v1/topk    {"k":10,"aggregate":"sum","algorithm":"auto",
//	                  "timeout_ms":250,"budget":0,"candidates":[]}
//	POST /v1/scores  {"updates":[{"node":17,"score":0.9}]}
//	POST /v1/edges   {"edits":[{"op":"add-edge","u":17,"v":40},
//	                  {"op":"remove-edge","u":3,"v":9},{"op":"add-node"}]}
//	POST /v1/reshard {"shards":8}
//	POST /v1/snapshot {"path":"collab.snap"}   (anchors the journal when -journal is set)
//	POST /v1/catchup (probe shard workers; replay the journal suffix to stragglers)
//	GET  /v1/stats
//	GET  /v1/health
//	GET  /metrics    (Prometheus text exposition)
//
// With -journal DIR every applied mutation batch is durably appended to
// an append-only commit journal; a restarted daemon replays the suffix
// past its boot state (the anchored snapshot when one exists) and
// reconstructs the current generation bit-identically. /v1/topk accepts
// "as_of":G to answer from a retained past generation, and "window":W
// with "window_agg":"max"|"decay" for temporal aggregation across the
// last W generations; -journal-retain bounds the retained ring.
//
// Observability: the daemon logs one structured "wide event" per query
// and edit batch via log/slog (-log json for machine-readable lines);
// "trace":true on /v1/topk returns the query's stitched execution
// timeline; -slow-query-ms N escalates the wide event of any execution
// at or over N milliseconds to WARN; -otlp-endpoint URL exports query
// traces as OTLP/JSON spans to a collector (Jaeger, Tempo), sampled by
// -otlp-sample with slow queries always kept; -slo-latency-ms with
// -slo-target tracks a rolling-window latency SLO whose burn rate flips
// /v1/health 200 → 503; -pprof ADDR serves net/http/pprof on a side
// listener, away from the query API.
//
// In -shard-worker mode the daemon instead serves the shard protocol
// (/v1/shard/query, /v1/shard/query/stream, /v1/shard/bound,
// /v1/shard/scores, /v1/shard/edits, /v1/shard/replay,
// /v1/shard/health) for one partition
// of the dataset; dataset flags must
// match the coordinator's so every process derives the same partitioning
// — including across structural edit batches, which every process applies
// identically.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests for up to -drain, then cancels any queries still
// running (they abort cooperatively via context) and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers its handlers on DefaultServeMux for the -pprof side listener
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	lona "repro"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		graphPath  = flag.String("graph", "", "binary graph file (from lonagen), or a .gml file")
		scoresPath = flag.String("scores", "", "binary scores file (from lonagen)")
		snapPath   = flag.String("snapshot", "", "mmap-able columnar snapshot (from lonagen -snapshot); replaces -graph/-scores/-dataset")
		dataset    = flag.String("dataset", "", "generate instead of load: collaboration | citation | intrusion")
		scale      = flag.Float64("scale", 1.0, "dataset scale when generating")
		seed       = flag.Int64("seed", 20100301, "seed when generating")
		relKind    = flag.String("relevance", "mixture", "relevance when generating: mixture | binary")
		r          = flag.Float64("r", 0.01, "blacking ratio when generating")
		h          = flag.Int("hops", 2, "neighborhood radius h")
		cacheBytes = flag.Int64("cache-bytes", 16<<20, "result cache capacity in approximate bytes (<=0 disables)")
		workers    = flag.Int("workers", 0, "index-build/parallel-scan goroutines (0 = GOMAXPROCS)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight requests")

		shards      = flag.Int("shards", 1, "partition the network into this many shards (in-process engines, or parts for -shard-worker)")
		shardWorker = flag.Bool("shard-worker", false, "serve one shard of the -shards partitioning instead of the full query API")
		shardIndex  = flag.Int("shard-index", 0, "which shard this worker owns (with -shard-worker)")
		shardPeers  = flag.String("shard-peers", "", "comma-separated shard-worker base URLs, in shard-index order; queries fan out to them")
		stream      = flag.Bool("stream", true, "stream partial top-k batches from shards so TA cuts land mid-query (sharded serving only)")
		prime       = flag.Bool("prime", true, "seed each sharded query's launch lambda from per-shard score sketches so cold shards are cut with zero messages (sharded serving only)")

		journalDir    = flag.String("journal", "", "commit-journal directory: durably append every applied /v1/scores and /v1/edges batch and replay the suffix at boot; with an anchor from POST /v1/snapshot, boot resumes from that snapshot plus replay")
		journalRetain = flag.Int("journal-retain", 0, "generations kept resident for as_of and window time-travel queries (0 = default)")

		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty disables")
		slowQueryMS = flag.Int64("slow-query-ms", 0, "escalate the wide event of queries at or over this many milliseconds to WARN; 0 disables")

		logFormat    = flag.String("log", "text", "log line format: text | json (json emits machine-parseable wide events)")
		otlpEndpoint = flag.String("otlp-endpoint", "", "export query traces as OTLP/JSON to this collector base URL (POSTs to <url>/v1/traces); empty disables")
		otlpSample   = flag.Float64("otlp-sample", 1.0, "fraction of query traces exported in (0,1]; slow queries always export")
		sloLatencyMS = flag.Int64("slo-latency-ms", 0, "rolling-window latency objective in milliseconds; 0 disables SLO tracking")
		sloTarget    = flag.Float64("slo-target", 0.99, "fraction of window queries that must meet -slo-latency-ms")
	)
	flag.Parse()
	cfg := config{
		addr: *addr, graphPath: *graphPath, scoresPath: *scoresPath, snapshot: *snapPath,
		dataset: *dataset, scale: *scale, seed: *seed, relKind: *relKind, r: *r,
		h: *h, cacheBytes: *cacheBytes, workers: *workers, drain: *drain,
		shards: *shards, shardWorker: *shardWorker, shardIndex: *shardIndex,
		shardPeers: *shardPeers, stream: *stream, prime: *prime,
		journalDir: *journalDir, journalRetain: *journalRetain,
		pprofAddr: *pprofAddr, slowQuery: time.Duration(*slowQueryMS) * time.Millisecond,
		logFormat: *logFormat, otlpEndpoint: *otlpEndpoint, otlpSample: *otlpSample,
		sloLatency: time.Duration(*sloLatencyMS) * time.Millisecond, sloTarget: *sloTarget,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lonad:", err)
		os.Exit(1)
	}
}

// config carries the parsed flag set.
type config struct {
	addr                  string
	graphPath, scoresPath string
	snapshot              string
	dataset               string
	scale                 float64
	seed                  int64
	relKind               string
	r                     float64
	h                     int
	cacheBytes            int64
	workers               int
	drain                 time.Duration
	shards                int
	shardWorker           bool
	shardIndex            int
	shardPeers            string
	stream                bool
	prime                 bool
	journalDir            string
	journalRetain         int
	pprofAddr             string
	slowQuery             time.Duration
	logFormat             string
	otlpEndpoint          string
	otlpSample            float64
	sloLatency            time.Duration
	sloTarget             float64
}

// newLogger builds the daemon's structured logger: slog text lines for
// terminals (the default), JSON for log pipelines — where the server's
// per-query wide events become machine-parseable records.
func (c config) newLogger() (*slog.Logger, error) {
	switch c.logFormat {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("-log must be text or json, got %q", c.logFormat)
	}
}

// peerList splits -shard-peers into trimmed, non-empty URLs.
func (c config) peerList() []string {
	var peers []string
	for _, p := range strings.Split(c.shardPeers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

func run(cfg config) error {
	logger, err := cfg.newLogger()
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	peers := cfg.peerList()
	switch {
	case cfg.shardWorker && len(peers) > 0:
		return fmt.Errorf("-shard-worker and -shard-peers are mutually exclusive")
	case cfg.shardWorker && cfg.snapshot == "" && (cfg.shardIndex < 0 || cfg.shardIndex >= cfg.shards):
		return fmt.Errorf("-shard-index %d outside the %d-shard partitioning", cfg.shardIndex, cfg.shards)
	case cfg.shards < 1:
		return fmt.Errorf("-shards must be at least 1, got %d", cfg.shards)
	case cfg.snapshot != "" && (cfg.dataset != "" || cfg.graphPath != "" || cfg.scoresPath != ""):
		return fmt.Errorf("-snapshot replaces -dataset/-graph/-scores; pass one or the other")
	case cfg.otlpSample <= 0 || cfg.otlpSample > 1:
		return fmt.Errorf("-otlp-sample must be in (0,1], got %g", cfg.otlpSample)
	case cfg.sloLatency > 0 && (cfg.sloTarget <= 0 || cfg.sloTarget >= 1):
		return fmt.Errorf("-slo-target must be in (0,1), got %g", cfg.sloTarget)
	case cfg.shardWorker && cfg.journalDir != "":
		return fmt.Errorf("-journal applies to the coordinator (or single server); workers catch up from its journal via /v1/shard/replay")
	case cfg.journalRetain < 0:
		return fmt.Errorf("-journal-retain must be non-negative, got %d", cfg.journalRetain)
	}

	if cfg.snapshot == "" && cfg.journalDir != "" {
		// A journal anchored by a POST /v1/snapshot knows the fastest boot
		// source: resume from the anchored snapshot and replay only the
		// commits past its generation, rather than regenerating the dataset
		// and replaying the whole log.
		if a, ok, err := lona.ReadJournalAnchor(cfg.journalDir); err != nil {
			return err
		} else if ok {
			if cfg.dataset != "" || cfg.graphPath != "" {
				logger.Info("journal anchor overrides dataset flags", "snapshot", a.Snapshot)
			}
			cfg.snapshot = a.Snapshot
			cfg.dataset, cfg.graphPath, cfg.scoresPath = "", "", ""
			logger.Info("booting from journal anchor", "snapshot", a.Snapshot, "generation", a.Generation)
		}
	}

	var (
		g        *lona.Graph
		scores   []float64
		snap     *lona.SnapshotReader
		snapLoad time.Duration
	)
	if cfg.snapshot != "" {
		// The engine's slices alias the mapping, so the reader stays open
		// for the life of the process — never Close it here.
		t0 := time.Now()
		var err error
		snap, err = lona.OpenSnapshot(cfg.snapshot)
		if err != nil {
			return err
		}
		snapLoad = time.Since(t0)
		if snap.IsShard() && !cfg.shardWorker {
			return fmt.Errorf("%s is a shard snapshot (part %d of %d); serve it with -shard-worker",
				cfg.snapshot, snap.ShardIndex(), snap.Parts())
		}
		g, scores = snap.Graph(), snap.Scores()
		if cfg.h != snap.H() {
			logger.Warn("snapshot overrides -hops", "snapshot_h", snap.H(), "flag_h", cfg.h)
			cfg.h = snap.H()
		}
		logger.Info("snapshot mapped",
			"path", cfg.snapshot, "load_ms", snapLoad.Milliseconds(),
			"bytes", snap.Size(), "generation", snap.Generation())
	} else {
		var err error
		g, scores, err = loadOrGenerate(cfg.graphPath, cfg.scoresPath, cfg.dataset, cfg.scale, cfg.seed, cfg.relKind, cfg.r)
		if err != nil {
			return err
		}
	}
	logger.Info("network loaded", "nodes", g.NumNodes(), "edges", g.NumEdges(), "h", cfg.h)

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cfg.pprofAddr != "" {
		// A side listener so profiling never shares a port (or a mux) with
		// the query API. DefaultServeMux carries the pprof handlers via
		// the blank import above.
		go func() {
			logger.Info("pprof serving", "url", "http://"+cfg.pprofAddr+"/debug/pprof/")
			if err := http.ListenAndServe(cfg.pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	start := time.Now()
	var handler http.Handler
	var exp *lona.OTLPExporter
	switch {
	case cfg.shardWorker && snap != nil:
		// Worker mode from a shard snapshot: the partition closure, its
		// scores, and its N(v) index all map straight in. Snapshot-booted
		// workers serve queries and score updates but reject structural
		// edits, which need the full graph.
		handler, err = lona.NewShardWorkerHandlerFromSnapshot(snap)
		if err != nil {
			return err
		}
		logger.Info("shard worker ready",
			"shard", snap.ShardIndex(), "shards", snap.Parts(),
			"boot_ms", time.Since(start).Milliseconds(), "from", "snapshot")

	case cfg.shardWorker:
		// Worker mode: build just this process's shard of the shared
		// deterministic partitioning and serve the shard protocol.
		handler, err = lona.NewShardWorkerHandler(g, scores, cfg.h, cfg.shards, cfg.shardIndex)
		if err != nil {
			return err
		}
		logger.Info("shard worker ready",
			"shard", cfg.shardIndex, "shards", cfg.shards,
			"boot_ms", time.Since(start).Milliseconds(), "from", "build")

	default:
		cacheBytes := cfg.cacheBytes
		if cacheBytes <= 0 {
			cacheBytes = -1 // ServerOptions: negative disables, zero means default
		}
		opts := lona.ServerOptions{
			CacheBytes: cacheBytes, Workers: cfg.workers,
			DisableStreaming: !cfg.stream, DisablePriming: !cfg.prime,
			SlowQuery:         cfg.slowQuery,
			Logger:            logger,
			SLO:               lona.ServerSLO{Latency: cfg.sloLatency, Target: cfg.sloTarget},
			RetainGenerations: cfg.journalRetain,
		}
		if cfg.journalDir != "" {
			// The journal stays open for the life of the process; the server
			// appends every applied batch and replayed the suffix at New.
			jnl, err := lona.OpenJournal(cfg.journalDir)
			if err != nil {
				return err
			}
			opts.Journal = jnl
			logger.Info("journal open", "dir", jnl.Dir(),
				"depth", jnl.Depth(), "last_generation", jnl.LastGen())
		}
		if cfg.otlpEndpoint != "" {
			exp = lona.NewOTLPExporter(cfg.otlpEndpoint, lona.OTLPExporterOptions{
				SampleRatio: cfg.otlpSample, Logger: logger,
			})
			opts.TraceExporter = exp
			logger.Info("otlp export enabled", "endpoint", cfg.otlpEndpoint, "sample", cfg.otlpSample)
		}
		if snap != nil {
			// Adopt the snapshot's N(v) index so the server skips the eager
			// rebuild, and record boot provenance for /v1/stats and /metrics.
			// POST /v1/snapshot with no body re-persists to the boot path.
			opts.Index = snap.Index()
			opts.SnapshotPath = cfg.snapshot
			opts.SnapshotSource = &lona.ServerSnapshotSource{
				Path: snap.Path(), ModTime: snap.ModTime(), Bytes: snap.Size(),
				Generation: snap.Generation(), LoadDuration: snapLoad,
			}
		}
		if len(peers) > 0 {
			opts.ShardWorkers = peers
		} else if cfg.shards > 1 {
			opts.Shards = cfg.shards
		}
		srv, err := lona.NewServer(g, scores, cfg.h, opts)
		if err != nil {
			return err
		}
		switch {
		case len(peers) > 0:
			logger.Info("server ready", "boot_ms", time.Since(start).Milliseconds(),
				"mode", "coordinator", "shard_workers", len(peers))
		case cfg.shards > 1:
			logger.Info("server ready", "boot_ms", time.Since(start).Milliseconds(),
				"mode", "sharded", "shards", cfg.shards)
		default:
			logger.Info("server ready", "boot_ms", time.Since(start).Milliseconds(),
				"mode", "single")
		}
		handler = srv.Handler()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.shardWorker {
		logger.Info("serving", "addr", ln.Addr().String(), "api", "shard protocol")
	} else {
		logger.Info("serving", "addr", ln.Addr().String(),
			"api", "/v1/topk /v1/scores /v1/edges /v1/reshard /v1/catchup /v1/snapshot /v1/stats /v1/health /metrics")
	}
	err = serveUntilDone(sigCtx, logger, handler, ln, cfg.drain)
	if exp != nil {
		// Flush whatever the async exporter still holds queued; spans from
		// the last in-flight queries should reach the collector before exit.
		flushCtx, cancelFlush := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelFlush()
		if cerr := exp.Close(flushCtx); cerr != nil {
			logger.Warn("otlp exporter close", "error", cerr)
		}
	}
	return err
}

// serveUntilDone serves HTTP on ln until ctx is done (a termination
// signal), then shuts down gracefully: stop accepting, drain in-flight
// requests up to the drain deadline, and cancel whatever is still running
// — in-flight engine queries observe their request contexts and abort
// cooperatively — before force-closing.
func serveUntilDone(ctx context.Context, logger *slog.Logger, handler http.Handler, ln net.Listener, drain time.Duration) error {
	// Every request context derives from baseCtx; cancelling it aborts any
	// engine queries still running once the drain deadline has passed. The
	// shutdown mark lets handlers answer those with a retryable 503
	// instead of mistaking the cancellation for a client disconnect.
	var draining atomic.Bool
	baseCtx, cancelQueries := context.WithCancel(context.Background())
	baseCtx = lona.MarkServerShutdown(baseCtx, draining.Load)
	defer cancelQueries()
	httpSrv := &http.Server{
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutdown draining", "deadline", drain.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	// Only now do cancellations mean "the server aborted you" (503); a
	// client that disconnected during the drain window itself still
	// classified as a client abandonment (499).
	draining.Store(true)
	cancelQueries()
	if err != nil {
		logger.Warn("shutdown drain deadline exceeded, aborting in-flight queries")
		// The cancelled queries return within a poll stride; give their
		// handlers a moment to flush the 503s before force-closing.
		flushCtx, cancelFlush := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancelFlush()
		if err := httpSrv.Shutdown(flushCtx); err != nil {
			_ = httpSrv.Close()
		}
	}
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	logger.Info("shutdown done")
	return nil
}

// loadOrGenerate mirrors cmd/lona's input handling so the two binaries
// accept the same dataset flags.
func loadOrGenerate(graphPath, scoresPath, dataset string, scale float64, seed int64,
	relKind string, r float64) (*lona.Graph, []float64, error) {

	if dataset != "" {
		var g *lona.Graph
		switch dataset {
		case "collaboration":
			g = lona.CollaborationNetwork(scale, seed)
		case "citation":
			g = lona.CitationNetwork(scale, seed)
		case "intrusion":
			g = lona.IntrusionNetwork(scale, seed)
		default:
			return nil, nil, fmt.Errorf("unknown dataset %q", dataset)
		}
		var scores []float64
		switch relKind {
		case "mixture":
			scores = lona.MixtureScores(g, r, seed+1)
		case "binary":
			scores = lona.BinaryScores(g.NumNodes(), r, seed+1)
		default:
			return nil, nil, fmt.Errorf("unknown relevance %q", relKind)
		}
		return g, scores, nil
	}

	if graphPath == "" || scoresPath == "" {
		return nil, nil, fmt.Errorf("pass either -dataset, or both -graph and -scores")
	}
	gf, err := os.Open(graphPath)
	if err != nil {
		return nil, nil, err
	}
	defer gf.Close()
	var g *lona.Graph
	if strings.HasSuffix(graphPath, ".gml") {
		g, _, err = lona.ReadGML(gf)
	} else {
		g, err = lona.ReadGraph(gf)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", graphPath, err)
	}
	sf, err := os.Open(scoresPath)
	if err != nil {
		return nil, nil, err
	}
	defer sf.Close()
	scores, err := lona.ReadScores(sf)
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s: %w", scoresPath, err)
	}
	return g, scores, nil
}
