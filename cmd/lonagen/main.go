// Command lonagen generates the simulated evaluation datasets (and their
// relevance score vectors) and writes them in the binary formats the other
// tools consume.
//
// Usage:
//
//	lonagen -dataset collaboration -scale 1.0 -seed 7 \
//	        -out collab.graph -scores-out collab.scores -r 0.01 -relevance mixture
//
//	# columnar snapshot instead: graph + scores + N(v) index at -hops,
//	# mmap-able by lonad -snapshot; with -shards, also one snapshot per
//	# shard closure (collab.snap.shard0 … .shard3) for -shard-worker boots
//	lonagen -dataset collaboration -snapshot collab.snap -hops 2 -shards 4
//
// Datasets: collaboration | citation | intrusion (DESIGN.md §4 documents
// how each simulates the paper's real dataset). Relevance: mixture (the
// paper's evaluation function) | binary.
package main

import (
	"flag"
	"fmt"
	"os"

	lona "repro"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/relevance"
)

func main() {
	var (
		dataset   = flag.String("dataset", "collaboration", "dataset to simulate: collaboration | citation | intrusion")
		scale     = flag.Float64("scale", 1.0, "dataset scale relative to DESIGN.md defaults")
		seed      = flag.Int64("seed", 20100301, "generator seed")
		out       = flag.String("out", "", "output path for the binary graph (required unless -snapshot or -stats)")
		scoresOut = flag.String("scores-out", "", "output path for the binary scores (optional)")
		relKind   = flag.String("relevance", "mixture", "relevance function: mixture | binary")
		r         = flag.Float64("r", 0.01, "blacking ratio (fraction of nodes scored exactly 1)")
		statsOnly = flag.Bool("stats", false, "print dataset statistics instead of writing files")
		snapOut   = flag.String("snapshot", "", "output path for an mmap-able columnar snapshot (graph + scores + N(v) index at -hops)")
		hops      = flag.Int("hops", 2, "neighborhood radius h baked into -snapshot indexes")
		shards    = flag.Int("shards", 1, "with -snapshot: also write one shard snapshot per part (<snapshot>.shard<i>)")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *seed, *out, *scoresOut, *relKind, *r, *statsOnly, *snapOut, *hops, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "lonagen:", err)
		os.Exit(1)
	}
}

// writeSnapshots persists the whole-graph snapshot and, with parts > 1,
// the per-shard partition-closure snapshots lonad -shard-worker boots
// from.
func writeSnapshots(g *lona.Graph, scores []float64, h, parts int, path string) error {
	if err := lona.WriteSnapshot(path, g, scores, h); err != nil {
		return fmt.Errorf("writing snapshot: %w", err)
	}
	fmt.Printf("wrote snapshot to %s (h=%d)\n", path, h)
	if parts <= 1 {
		return nil
	}
	ss, _, err := cluster.BuildShards(g, scores, h, parts)
	if err != nil {
		return err
	}
	for i, s := range ss {
		shardPath := fmt.Sprintf("%s.shard%d", path, i)
		if err := cluster.WriteShardSnapshot(s, shardPath, 0); err != nil {
			return fmt.Errorf("writing shard snapshot %d: %w", i, err)
		}
		fmt.Printf("wrote shard snapshot %d/%d to %s (%d owned, %d boundary)\n",
			i, parts, shardPath, s.OwnedCount(), s.BoundaryNodes())
	}
	return nil
}

func run(dataset string, scale float64, seed int64, out, scoresOut, relKind string, r float64,
	statsOnly bool, snapOut string, hops, shards int) error {
	var g *lona.Graph
	switch dataset {
	case "collaboration":
		g = lona.CollaborationNetwork(scale, seed)
	case "citation":
		g = lona.CitationNetwork(scale, seed)
	case "intrusion":
		g = lona.IntrusionNetwork(scale, seed)
	default:
		return fmt.Errorf("unknown dataset %q (want collaboration, citation, or intrusion)", dataset)
	}
	fmt.Printf("generated %s: %d nodes, %d edges\n", dataset, g.NumNodes(), g.NumEdges())

	if statsOnly {
		s := graph.ComputeStats(g, 2000)
		fmt.Printf("degree: min=%d median=%d mean=%.2f p90=%d p99=%d max=%d\n",
			s.MinDegree, s.MedianDegree, s.MeanDegree, s.DegreeP90, s.DegreeP99, s.MaxDegree)
		fmt.Printf("components=%d largest=%d isolated=%d clustering≈%.3f\n",
			s.Components, s.LargestCC, s.Isolated, s.GlobalClustering)
		return nil
	}
	if out == "" && snapOut == "" {
		return fmt.Errorf("-out or -snapshot is required (or pass -stats)")
	}
	if hops < 0 {
		return fmt.Errorf("-hops must be non-negative, got %d", hops)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", shards)
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := lona.WriteGraph(f, g); err != nil {
			f.Close()
			return fmt.Errorf("writing graph: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote graph to %s\n", out)
	}

	if scoresOut == "" && snapOut == "" {
		return nil
	}
	var scores []float64
	switch relKind {
	case "mixture":
		scores = lona.MixtureScores(g, r, seed+1)
	case "binary":
		scores = lona.BinaryScores(g.NumNodes(), r, seed+1)
	default:
		return fmt.Errorf("unknown relevance %q (want mixture or binary)", relKind)
	}
	fmt.Printf("relevance %s: %d of %d nodes non-zero\n", relKind, relevance.NonZeroCount(scores), len(scores))

	if scoresOut != "" {
		sf, err := os.Create(scoresOut)
		if err != nil {
			return err
		}
		if err := lona.WriteScores(sf, scores); err != nil {
			sf.Close()
			return fmt.Errorf("writing scores: %w", err)
		}
		if err := sf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote scores to %s\n", scoresOut)
	}

	if snapOut != "" {
		return writeSnapshots(g, scores, hops, shards, snapOut)
	}
	return nil
}
