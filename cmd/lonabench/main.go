// Command lonabench regenerates the paper's evaluation: Figures 1–6
// (runtime vs top-k for SUM and AVG on the three networks), the ablation
// experiments A1–A7 defined in DESIGN.md, and the serving benchmarks
// S1 (lonad cold/cached/post-update latency → BENCH_serving.json),
// S2 (sharded execution vs single engine → BENCH_cluster.json),
// S3 (structural-mutation repair vs rebuild → BENCH_mutation.json),
// S4 (streaming within-shard TA cuts vs whole-shard cuts →
// BENCH_stream.json), and S5 (the scale-2 snapshot tier: mmap cold
// start vs build-from-generator, cold-serve topologies, steady-state
// queries at GOMAXPROCS ∈ {1,4} → BENCH_snapshot.json; run with
// -experiments S5 -scale 2 for the ≥100k-node artifact).
// Output is markdown (stdout or -out file) plus optional per-experiment
// CSV.
//
// A full run at -scale 1 takes tens of minutes (the differential index for
// the citation network dominates); -scale 0.1 gives a minutes-long pass
// that preserves every qualitative shape.
//
// Usage:
//
//	lonabench -experiments all -scale 0.1 -out EXPERIMENTS-run.md
//	lonabench -experiments F1,F4 -scale 1 -repeats 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		experiments  = flag.String("experiments", "all", "comma-separated experiment ids (F1..F6, A1..A7, S1..S5) or 'all'")
		scale        = flag.Float64("scale", 1.0, "dataset scale multiplier")
		seed         = flag.Int64("seed", 20100301, "session seed")
		repeats      = flag.Int("repeats", 1, "timed repetitions per query (min kept)")
		workers      = flag.Int("workers", 0, "worker goroutines for index builds (0 = GOMAXPROCS)")
		out          = flag.String("out", "", "write the markdown report to this file (default stdout)")
		csvDir       = flag.String("csv-dir", "", "also write one CSV per experiment into this directory")
		servingJSON  = flag.String("serving-json", "BENCH_serving.json", "write the S1 serving summary to this file (empty disables)")
		clusterJSON  = flag.String("cluster-json", "BENCH_cluster.json", "write the S2 sharded-execution summary to this file (empty disables)")
		mutationJSON = flag.String("mutation-json", "BENCH_mutation.json", "write the S3 structural-mutation summary to this file (empty disables)")
		streamJSON   = flag.String("stream-json", "BENCH_stream.json", "write the S4 streaming-cuts summary to this file (empty disables)")
		snapJSON     = flag.String("snapshot-json", "BENCH_snapshot.json", "write the S5 snapshot-tier summary to this file (empty disables)")
		quiet        = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()
	if err := run(*experiments, *scale, *seed, *repeats, *workers, *out, *csvDir, *servingJSON, *clusterJSON, *mutationJSON, *streamJSON, *snapJSON, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "lonabench:", err)
		os.Exit(1)
	}
}

// buildStamp resolves the git revision and Go toolchain version once, so
// every benchmark artifact can be traced back to the exact code and
// compiler that produced its numbers. The revision comes from the
// binary's embedded VCS info when present (go build in a git checkout),
// falling back to asking git directly (go run / go test builds don't
// embed it), and finally "unknown".
var buildStamp = sync.OnceValues(func() (sha, goVersion string) {
	goVersion = runtime.Version()
	sha = "unknown"
	if info, ok := debug.ReadBuildInfo(); ok {
		var modified bool
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				if s.Value != "" {
					sha = s.Value
				}
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
		if sha != "unknown" && modified {
			sha += "-dirty"
		}
	}
	if sha == "unknown" {
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			if rev := strings.TrimSpace(string(out)); rev != "" {
				sha = rev
			}
		}
	}
	return sha, goVersion
})

// writeSummary marshals a machine-readable benchmark summary to path,
// stamped with the producing git revision, Go version, GOMAXPROCS, and
// session scale alongside the summary's own fields (cpus et al.), so a
// scale-0.2 / 1-P artifact can never be mistaken for a scale-2 run.
func writeSummary(path string, summary any, scale float64, quiet bool) error {
	blob, err := json.Marshal(summary)
	if err != nil {
		return err
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		return fmt.Errorf("summary for %s is not a JSON object: %w", path, err)
	}
	m["git_sha"], m["go_version"] = buildStamp()
	m["gomaxprocs"] = runtime.GOMAXPROCS(0)
	m["scale"] = scale
	if blob, err = json.MarshalIndent(m, "", "  "); err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "wrote summary to %s\n", path)
	}
	return nil
}

func run(experiments string, scale float64, seed int64, repeats, workers int, out, csvDir, servingJSON, clusterJSON, mutationJSON, streamJSON, snapJSON string, quiet bool) error {
	ids := bench.ExperimentIDs()
	if experiments != "all" {
		ids = nil
		for _, id := range strings.Split(experiments, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	w := bench.NewWorkspace(bench.Config{Scale: scale, Seed: seed, Repeats: repeats, Workers: workers})
	if !quiet {
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	var report strings.Builder
	fmt.Fprintf(&report, "# LONA experiment run\n\nscale=%v seed=%d repeats=%d date=%s\n\n",
		scale, seed, repeats, time.Now().Format("2006-01-02"))

	for _, id := range ids {
		if !quiet {
			fmt.Fprintf(os.Stderr, "running %s…\n", id)
		}
		start := time.Now()
		var res *bench.Result
		var err error
		switch id {
		case "S1":
			// The serving benchmarks also yield machine-readable summaries
			// so the perf trajectory across PRs is tracked mechanically.
			var summary *bench.ServingSummary
			res, summary, err = w.RunServingDetailed()
			if err == nil && servingJSON != "" {
				if werr := writeSummary(servingJSON, summary, scale, quiet); werr != nil {
					return werr
				}
			}
		case "S2":
			var summary *bench.ClusterSummary
			res, summary, err = w.RunClusterDetailed()
			if err == nil && clusterJSON != "" {
				if werr := writeSummary(clusterJSON, summary, scale, quiet); werr != nil {
					return werr
				}
			}
		case "S3":
			var summary *bench.MutationSummary
			res, summary, err = w.RunMutationDetailed()
			if err == nil && mutationJSON != "" {
				if werr := writeSummary(mutationJSON, summary, scale, quiet); werr != nil {
					return werr
				}
			}
		case "S4":
			var summary *bench.StreamSummary
			res, summary, err = w.RunStreamDetailed()
			if err == nil && streamJSON != "" {
				if werr := writeSummary(streamJSON, summary, scale, quiet); werr != nil {
					return werr
				}
			}
		case "S5":
			var summary *bench.SnapshotSummary
			res, summary, err = w.RunSnapshotDetailed()
			if err == nil && snapJSON != "" {
				if werr := writeSummary(snapJSON, summary, scale, quiet); werr != nil {
					return werr
				}
			}
		default:
			res, err = w.Run(id)
		}
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "%s done in %.1fs\n", id, time.Since(start).Seconds())
		}
		report.WriteString(res.Markdown())
		report.WriteString("\n")

		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(csvDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
	}

	if out == "" {
		fmt.Print(report.String())
		return nil
	}
	if err := os.WriteFile(out, []byte(report.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote report to %s\n", out)
	return nil
}
