package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewRejectsNonPositiveK(t *testing.T) {
	for _, k := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) did not panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestBoundBeforeFull(t *testing.T) {
	l := New(3)
	if l.Bound() != 0 {
		t.Fatalf("empty Bound = %v, want 0", l.Bound())
	}
	l.Offer(1, 5)
	l.Offer(2, 7)
	if l.Full() {
		t.Fatal("list full with 2 of 3 items")
	}
	if l.Bound() != 0 {
		t.Fatalf("partial Bound = %v, want 0 (vacuous)", l.Bound())
	}
	l.Offer(3, 1)
	if !l.Full() {
		t.Fatal("list not full with 3 items")
	}
	if l.Bound() != 1 {
		t.Fatalf("Bound = %v, want 1", l.Bound())
	}
}

func TestOfferEvictsWeakest(t *testing.T) {
	l := New(2)
	l.Offer(10, 1)
	l.Offer(20, 2)
	if kept := l.Offer(30, 3); !kept {
		t.Fatal("stronger item rejected")
	}
	if kept := l.Offer(40, 0.5); kept {
		t.Fatal("weaker item kept")
	}
	items := l.Items()
	if len(items) != 2 || items[0].Node != 30 || items[1].Node != 20 {
		t.Fatalf("Items = %v, want [{30 3} {20 2}]", items)
	}
}

func TestTieBreakPrefersSmallerNode(t *testing.T) {
	l := New(2)
	l.Offer(5, 1)
	l.Offer(9, 1)
	l.Offer(2, 1) // same value, smaller id: must displace node 9
	items := l.Items()
	if items[0].Node != 2 || items[1].Node != 5 {
		t.Fatalf("tie-break Items = %v, want nodes [2 5]", items)
	}
	if kept := l.Offer(7, 1); kept {
		t.Fatal("equal value with larger id than every kept node was accepted")
	}
}

func TestItemsSortedDescending(t *testing.T) {
	l := New(5)
	values := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	for node, v := range values {
		l.Offer(node, v)
	}
	items := l.Items()
	for i := 1; i < len(items); i++ {
		if items[i].Value > items[i-1].Value {
			t.Fatalf("Items not sorted: %v", items)
		}
	}
	if items[0].Value != 9 {
		t.Fatalf("top value = %v, want 9", items[0].Value)
	}
}

func TestReset(t *testing.T) {
	l := New(2)
	l.Offer(1, 10)
	l.Reset()
	if l.Len() != 0 || l.Full() {
		t.Fatal("Reset did not clear")
	}
	if l.Bound() != 0 {
		t.Fatal("Bound after Reset is not vacuous")
	}
}

func TestWouldKeepMatchesOffer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := New(4)
	for i := 0; i < 500; i++ {
		node := rng.Intn(100)
		value := float64(rng.Intn(20))
		would := l.WouldKeep(node, value)
		did := l.Offer(node, value)
		if would != did {
			t.Fatalf("step %d: WouldKeep=%v but Offer=%v for (%d,%v)", i, would, did, node, value)
		}
	}
}

// referenceTopK computes the expected result by full sort under the
// (value desc, node asc) comparator.
func referenceTopK(items []Item, k int) []Item {
	sorted := append([]Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Value != sorted[j].Value {
			return sorted[i].Value > sorted[j].Value
		}
		return sorted[i].Node < sorted[j].Node
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

func equalItems(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAgainstReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		n := rng.Intn(50)
		l := New(k)
		all := make([]Item, 0, n)
		for node := 0; node < n; node++ {
			v := float64(rng.Intn(10)) / 2 // force ties
			all = append(all, Item{Node: node, Value: v})
			l.Offer(node, v)
		}
		want := referenceTopK(all, k)
		got := l.Items()
		if !equalItems(got, want) {
			t.Fatalf("trial %d (k=%d,n=%d): got %v want %v", trial, k, n, got, want)
		}
	}
}

func TestOrderIndependence(t *testing.T) {
	// The kept set must be a pure function of the offered multiset: offer
	// the same items in shuffled orders and demand identical results.
	rng := rand.New(rand.NewSource(3))
	base := make([]Item, 60)
	for i := range base {
		base[i] = Item{Node: i, Value: float64(rng.Intn(6))}
	}
	l := New(7)
	for _, it := range base {
		l.Offer(it.Node, it.Value)
	}
	want := l.Items()
	for shuffle := 0; shuffle < 20; shuffle++ {
		perm := rng.Perm(len(base))
		l2 := New(7)
		for _, idx := range perm {
			l2.Offer(base[idx].Node, base[idx].Value)
		}
		if got := l2.Items(); !equalItems(got, want) {
			t.Fatalf("shuffle %d: got %v want %v", shuffle, got, want)
		}
	}
}

func TestQuickHeapMatchesReference(t *testing.T) {
	property := func(raw []uint8, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		l := New(k)
		all := make([]Item, len(raw))
		for node, r := range raw {
			v := float64(r % 16)
			all[node] = Item{Node: node, Value: v}
			l.Offer(node, v)
		}
		return equalItems(l.Items(), referenceTopK(all, k))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
