// Package topk maintains the k highest-scoring (node, value) pairs seen so
// far — problem P3 of the paper. It is a bounded min-heap keyed by value;
// the heap root is the running top-k lower bound ("topklbound" in
// Algorithm 1), the threshold every pruning rule compares against.
package topk

import "sort"

// Item is a scored node. The JSON names are the serving API's wire format
// (internal/server).
type Item struct {
	Node  int     `json:"node"`
	Value float64 `json:"value"`
}

// List keeps the k items with the highest Value. Ties are broken toward the
// smaller node id so results are deterministic across algorithms.
// Construct with New.
type List struct {
	k    int
	heap []Item // min-heap on (Value, then reversed Node): root = weakest kept item
}

// New returns an empty List with capacity k. k must be positive.
func New(k int) *List {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &List{k: k, heap: make([]Item, 0, k)}
}

// K returns the configured capacity.
func (l *List) K() int { return l.k }

// Len returns the number of items currently held (<= k).
func (l *List) Len() int { return len(l.heap) }

// Full reports whether k items are held, i.e. whether Bound is meaningful
// as a pruning threshold.
func (l *List) Full() bool { return len(l.heap) == l.k }

// Bound returns the current top-k lower bound: the k-th highest value seen,
// or 0 if fewer than k items are held (aggregates are non-negative, so 0 is
// the vacuous bound Algorithm 1 starts from).
func (l *List) Bound() float64 {
	if !l.Full() {
		return 0
	}
	return l.heap[0].Value
}

// weaker reports whether a should be evicted before b: lower value first,
// and among equal values the larger node id first (so the surviving set is
// the smallest ids, matching sorted-order tie breaking).
func weaker(a, b Item) bool {
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	return a.Node > b.Node
}

// Offer considers (node, value) for inclusion and reports whether it was
// kept. A full list rejects values that do not beat the current bound.
func (l *List) Offer(node int, value float64) bool {
	it := Item{Node: node, Value: value}
	if len(l.heap) < l.k {
		l.heap = append(l.heap, it)
		l.up(len(l.heap) - 1)
		return true
	}
	if !weaker(l.heap[0], it) {
		return false
	}
	l.heap[0] = it
	l.down(0)
	return true
}

// WouldKeep reports whether Offer(node, value) would currently be kept,
// without mutating the list.
func (l *List) WouldKeep(node int, value float64) bool {
	if len(l.heap) < l.k {
		return true
	}
	return weaker(l.heap[0], Item{Node: node, Value: value})
}

// Items returns the kept items sorted by descending value (ascending node
// id among ties). The returned slice is freshly allocated.
func (l *List) Items() []Item {
	out := make([]Item, len(l.heap))
	copy(out, l.heap)
	sort.Slice(out, func(i, j int) bool { return weaker(out[j], out[i]) })
	return out
}

// Reset empties the list, keeping capacity.
func (l *List) Reset() { l.heap = l.heap[:0] }

func (l *List) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !weaker(l.heap[i], l.heap[parent]) {
			return
		}
		l.heap[i], l.heap[parent] = l.heap[parent], l.heap[i]
		i = parent
	}
}

func (l *List) down(i int) {
	n := len(l.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && weaker(l.heap[left], l.heap[smallest]) {
			smallest = left
		}
		if right < n && weaker(l.heap[right], l.heap[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		l.heap[i], l.heap[smallest] = l.heap[smallest], l.heap[i]
		i = smallest
	}
}
