package partition

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relevance"
)

func TestBFSGrowCoversAllNodes(t *testing.T) {
	g := gen.BarabasiAlbert(1000, 3, 1)
	for _, parts := range []int{1, 2, 4, 8} {
		p, err := BFSGrow(g, parts)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		total := 0
		for _, s := range p.Sizes() {
			total += s
		}
		if total != 1000 {
			t.Fatalf("parts=%d: %d nodes assigned, want 1000", parts, total)
		}
	}
}

func TestBFSGrowBalance(t *testing.T) {
	g := gen.ErdosRenyi(2000, 6000, 2)
	p, err := BFSGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(); b > 1.5 {
		t.Fatalf("imbalance %v too high for BFS growth", b)
	}
}

func TestBFSGrowValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 3)
	if _, err := BFSGrow(g, 0); err == nil {
		t.Fatal("0 parts accepted")
	}
	if _, err := BFSGrow(g, 11); err == nil {
		t.Fatal("more parts than nodes accepted")
	}
	p, err := BFSGrow(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.EdgeCut(g) != 0 {
		t.Fatal("single-part edge cut non-zero")
	}
}

func TestBFSGrowLocality(t *testing.T) {
	// A locality-preserving partitioner must cut far fewer edges than a
	// random (round-robin) assignment on a clustered graph.
	g := gen.WattsStrogatz(2000, 5, 0.05, 5)
	p, err := BFSGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	random := &Partitioning{P: 4, Assign: make([]int32, g.NumNodes())}
	for v := range random.Assign {
		random.Assign[v] = int32(v % 4)
	}
	// Rewired shortcuts scatter the BFS ball, so the improvement is
	// bounded; demand at least a 1.5× smaller cut than round-robin.
	if got, rand := p.EdgeCut(g), random.EdgeCut(g); got*3 > rand*2 {
		t.Fatalf("BFS cut %d not clearly better than random cut %d", got, rand)
	}
}

func TestExecutorMatchesSingleMachineBase(t *testing.T) {
	g := gen.Collaboration(0.02, 7) // ~800 nodes
	scores := relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.02}, 7)
	e, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := e.Base(20, core.Sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 4, 8} {
		p, err := BFSGrow(g, parts)
		if err != nil {
			t.Fatal(err)
		}
		x, err := NewExecutor(g, scores, 2, p)
		if err != nil {
			t.Fatal(err)
		}
		ans, stats, err := x.Run(context.Background(), core.Query{K: 20, Aggregate: core.Sum})
		got := ans.Results
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("parts=%d: %d results, want %d", parts, len(got), len(want))
		}
		for i := range want {
			if got[i].Node != want[i].Node || math.Abs(got[i].Value-want[i].Value) > 1e-9 {
				t.Fatalf("parts=%d row %d: got %+v want %+v", parts, i, got[i], want[i])
			}
		}
		if parts == 1 && stats.Messages != 0 {
			t.Fatalf("single part sent %d messages", stats.Messages)
		}
		if stats.TotalWork == 0 || stats.MaxPartWork == 0 {
			t.Fatalf("parts=%d: empty work stats %+v", parts, stats)
		}
	}
}

func TestMessagesGrowWithParts(t *testing.T) {
	g := gen.ErdosRenyi(1500, 4500, 11)
	scores := relevance.Binary(1500, 0.1, 11)
	var prev int64 = -1
	for _, parts := range []int{1, 2, 4} {
		p, err := BFSGrow(g, parts)
		if err != nil {
			t.Fatal(err)
		}
		x, err := NewExecutor(g, scores, 2, p)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := x.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Messages < prev {
			t.Fatalf("messages decreased when adding parts: %d after %d", stats.Messages, prev)
		}
		prev = stats.Messages
	}
	if prev == 0 {
		t.Fatal("4-way partition of an ER graph sent zero messages")
	}
}

func TestExecutorValidation(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 13)
	scores := relevance.Uniform(20, 0.5)
	p, err := BFSGrow(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewExecutor(g, scores[:10], 2, p); err == nil {
		t.Fatal("short scores accepted")
	}
	if _, err := NewExecutor(g, scores, -1, p); err == nil {
		t.Fatal("negative h accepted")
	}
	bad := &Partitioning{P: 2, Assign: make([]int32, 20)}
	bad.Assign[5] = 7
	if _, err := NewExecutor(g, scores, 2, bad); err == nil {
		t.Fatal("out-of-range assignment accepted")
	}
	x, err := NewExecutor(g, scores, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := x.Run(context.Background(), core.Query{K: 0, Aggregate: core.Sum}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestPartitioningProperty(t *testing.T) {
	property := func(seedRaw uint32, partsRaw uint8) bool {
		parts := int(partsRaw%7) + 1
		g := gen.ErdosRenyi(120, 300, int64(seedRaw))
		p, err := BFSGrow(g, parts)
		if err != nil {
			return false
		}
		if p.Validate(g) != nil {
			return false
		}
		// Every part must be non-trivially populated under BFS growth
		// with capacity ceil(n/parts) — allow empty only if disconnected
		// remainders collapsed, but total must always equal n.
		total := 0
		for _, s := range p.Sizes() {
			total += s
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
