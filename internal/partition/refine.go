package partition

import "repro/internal/graph"

// Refine improves a partitioning's edge cut by greedy boundary moves in
// the Kernighan–Lin spirit: a node whose neighbors mostly live in another
// part moves there, provided the destination stays within maxImbalance of
// the ideal part size. It runs passes until no improving move exists (or
// the pass limit is hit) and returns how many nodes moved.
//
// BFS growth (BFSGrow) gets locality right globally but leaves ragged
// borders where its capacity counter flipped mid-frontier; one or two
// refinement passes typically remove a large share of those cut edges —
// ablation A6's message counts come straight down with them.
func Refine(g *graph.Graph, p *Partitioning, maxImbalance float64, maxPasses int) (moved int) {
	if maxImbalance < 1 {
		maxImbalance = 1
	}
	if maxPasses <= 0 {
		maxPasses = 2
	}
	n := g.NumNodes()
	if n == 0 || p.P <= 1 {
		return 0
	}
	sizes := p.Sizes()
	ideal := float64(n) / float64(p.P)
	capLimit := int(ideal * maxImbalance)
	if capLimit < 1 {
		capLimit = 1
	}

	// Per-node neighbor-part tallies, reused across passes.
	tally := make([]int32, p.P)
	for pass := 0; pass < maxPasses; pass++ {
		movedThisPass := 0
		for u := 0; u < n; u++ {
			cur := int(p.Assign[u])
			nbrs := g.Neighbors(u)
			if len(nbrs) == 0 {
				continue
			}
			for i := range tally {
				tally[i] = 0
			}
			for _, v := range nbrs {
				tally[p.Assign[v]]++
			}
			best, bestScore := cur, tally[cur]
			for part, score := range tally {
				if part == cur || score <= bestScore {
					continue
				}
				if sizes[part]+1 > capLimit {
					continue // would overfill the destination
				}
				best, bestScore = part, score
			}
			if best != cur {
				p.Assign[u] = int32(best)
				sizes[cur]--
				sizes[best]++
				moved++
				movedThisPass++
			}
		}
		if movedThisPass == 0 {
			break
		}
	}
	return moved
}
