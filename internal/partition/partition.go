// Package partition implements the infrastructure the paper says it is
// "currently developing": partitioning a large network into subnetworks
// and distributing the aggregation workload across machines. Machines are
// simulated — each partition runs in its own goroutine with its own
// traverser, and every arc that crosses a partition boundary during
// neighborhood expansion is accounted as a network message — so the
// experiments report both wall-clock speedup and communication volume
// (benchmark A6).
package partition

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/topk"
)

// Partitioning assigns every node to one of P parts.
type Partitioning struct {
	P      int
	Assign []int32 // Assign[v] = part owning v
}

// PartOf returns the part owning v.
func (p *Partitioning) PartOf(v int) int { return int(p.Assign[v]) }

// Sizes returns the node count of each part.
func (p *Partitioning) Sizes() []int {
	sizes := make([]int, p.P)
	for _, part := range p.Assign {
		sizes[part]++
	}
	return sizes
}

// ExtendTo assigns parts to nodes added after the partitioning was
// computed: node v joins part v mod P. The rule is a pure function of the
// node id, so independent processes (a coordinator and its shard workers)
// extending the same partitioning over the same edit stream agree without
// any coordination — the property the deterministic-partitioning contract
// (BuildShard) requires. Round-robin also keeps growth balanced; a later
// Refine or reshard can move the new nodes somewhere smarter.
func (p *Partitioning) ExtendTo(n int) {
	for v := len(p.Assign); v < n; v++ {
		p.Assign = append(p.Assign, int32(v%p.P))
	}
}

// Validate checks every node is assigned to a legal part.
func (p *Partitioning) Validate(g *graph.Graph) error {
	if len(p.Assign) != g.NumNodes() {
		return fmt.Errorf("partition: %d assignments for %d nodes", len(p.Assign), g.NumNodes())
	}
	for v, part := range p.Assign {
		if part < 0 || int(part) >= p.P {
			return fmt.Errorf("partition: node %d assigned to part %d of %d", v, part, p.P)
		}
	}
	return nil
}

// EdgeCut returns the number of undirected edges whose endpoints live in
// different parts — the classic partition quality metric and a proxy for
// steady-state communication.
func (p *Partitioning) EdgeCut(g *graph.Graph) int {
	cut := 0
	for u := 0; u < g.NumNodes(); u++ {
		pu := p.Assign[u]
		for _, v := range g.Neighbors(u) {
			if int(v) > u && p.Assign[v] != pu {
				cut++
			}
		}
	}
	return cut
}

// BFSGrow partitions g into parts of near-equal node count by growing
// breadth-first regions from spaced seeds: a cheap locality-preserving
// heuristic (the METIS-style refinement a production system would add is
// out of scope; BFS growth already keeps h-hop neighborhoods mostly
// intra-part, which is what the aggregation workload needs).
func BFSGrow(g *graph.Graph, parts int) (*Partitioning, error) {
	n := g.NumNodes()
	if parts <= 0 {
		return nil, fmt.Errorf("partition: need at least 1 part, got %d", parts)
	}
	if parts > n && n > 0 {
		return nil, fmt.Errorf("partition: %d parts for %d nodes", parts, n)
	}
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	if n == 0 {
		return &Partitioning{P: parts, Assign: assign}, nil
	}
	capacity := (n + parts - 1) / parts

	var queue ds.IntQueue
	part := 0
	filled := 0
	for start := 0; start < n; start++ {
		if assign[start] != -1 {
			continue
		}
		queue.Reset()
		queue.Push(start)
		assign[start] = int32(part)
		filled++
		for !queue.Empty() {
			if filled >= capacity && part < parts-1 {
				// Current part is full: later discoveries go to the next.
				part++
				filled = 0
			}
			u := queue.Pop()
			for _, v32 := range g.Neighbors(u) {
				v := int(v32)
				if assign[v] != -1 {
					continue
				}
				assign[v] = int32(part)
				filled++
				queue.Push(v)
			}
		}
	}
	p := &Partitioning{P: parts, Assign: assign}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	return p, nil
}

// Stats summarizes a distributed execution.
type Stats struct {
	Parts       int
	EdgeCut     int   // structural cut of the partitioning
	Messages    int64 // boundary crossings during neighborhood expansion
	MaxPartWork int   // nodes visited by the busiest part (critical path)
	TotalWork   int   // nodes visited across all parts
}

// Executor runs Base-style top-k aggregation with the node set sharded by
// a Partitioning: each part evaluates the nodes it owns on its own
// goroutine (its own simulated machine), counting every expansion step
// that crosses a partition boundary as a message. Results merge into one
// top-k list identical to single-machine Base.
//
// The executor traverses the full shared graph and has exactly one
// strategy, a distributed naive scan — it exists to measure communication
// volume against partition quality (ablation A6). internal/cluster is the
// serving-grade counterpart: partition-local engines over ghost-node
// closures, every core algorithm, and real process separation.
type Executor struct {
	g      *graph.Graph
	scores []float64
	h      int
	p      *Partitioning
}

// NewExecutor validates and builds a distributed executor.
func NewExecutor(g *graph.Graph, scores []float64, h int, p *Partitioning) (*Executor, error) {
	if h < 0 {
		return nil, fmt.Errorf("partition: negative hop radius %d", h)
	}
	if len(scores) != g.NumNodes() {
		return nil, fmt.Errorf("partition: %d scores for %d nodes", len(scores), g.NumNodes())
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	return &Executor{g: g, scores: scores, h: h, p: p}, nil
}

// ctxPollEvery matches core's cancellation cadence: each part polls its
// context every 64 evaluations (each one h-hop traversal, the same unit
// core's meter ticks on), so cancellation lands within at most 64 BFS
// expansions per part.
const ctxPollEvery = 64

// SplitBudget divides a query's traversal budget evenly across parts,
// deterministically by part index: total/parts each, the remainder going
// to the lowest indexes, and — when any budget is set — a floor of one
// per part, because a literal zero means "unlimited" to core's meter.
// Returns all zeros (unlimited everywhere) when total <= 0. Shared by
// this executor and cluster's coordinator so the two distribution layers
// cannot drift.
func SplitBudget(total, parts int) []int {
	budgets := make([]int, parts)
	if total <= 0 {
		return budgets
	}
	base, extra := total/parts, total%parts
	for i := range budgets {
		budgets[i] = base
		if i < extra {
			budgets[i]++
		}
		if budgets[i] == 0 {
			budgets[i] = 1
		}
	}
	return budgets
}

// Run executes the distributed query — the same context-aware
// Run(ctx, Query) shape as Engine, Planner, View, and cluster.Coordinator.
// All aggregates are supported; the Algorithm field is ignored (the
// executor's one strategy is the distributed naive scan). Candidates
// restrict which owned nodes each part ranks, and Budget splits evenly
// across parts (each keeping a floor of one evaluation), with
// Answer.Truncated reporting any part that ran out.
//
// The merged Answer is byte-identical to single-machine Base: every part
// evaluates its owned nodes with the same full-graph BFS, so values,
// ordering, and tie-breaks cannot drift.
func (x *Executor) Run(ctx context.Context, q core.Query) (core.Answer, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.K <= 0 {
		return core.Answer{}, Stats{}, fmt.Errorf("partition: k must be positive, got %d", q.K)
	}
	if q.Budget < 0 {
		return core.Answer{}, Stats{}, fmt.Errorf("partition: negative budget %d", q.Budget)
	}
	switch q.Aggregate {
	case core.Sum, core.Avg, core.WeightedSum, core.Count, core.Max:
	default:
		return core.Answer{}, Stats{}, fmt.Errorf("partition: unknown aggregate %v", q.Aggregate)
	}
	n := x.g.NumNodes()
	var cand []bool
	if len(q.Candidates) > 0 {
		cand = make([]bool, n)
		for _, v := range q.Candidates {
			if v < 0 || v >= n {
				return core.Answer{}, Stats{}, fmt.Errorf("partition: candidate node %d out of range [0,%d)", v, n)
			}
			cand[v] = true
		}
	}

	// Owned node lists per part.
	owned := make([][]int32, x.p.P)
	for v := 0; v < n; v++ {
		part := x.p.PartOf(v)
		owned[part] = append(owned[part], int32(v))
	}

	budgets := SplitBudget(q.Budget, x.p.P)

	type partResult struct {
		items     []topk.Item
		stats     core.QueryStats
		messages  int64
		work      int
		truncated bool
	}
	results := make([]partResult, x.p.P)
	var wg sync.WaitGroup
	for part := 0; part < x.p.P; part++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			t := graph.NewTraverser(x.g)
			list := topk.New(q.K)
			r := partResult{}
			budget := budgets[part]
			for i, u32 := range owned[part] {
				u := int(u32)
				if cand != nil && !cand[u] {
					continue
				}
				if i%ctxPollEvery == 0 && ctx.Err() != nil {
					return // the merge re-reads ctx.Err and reports it
				}
				if q.Budget > 0 {
					if budget == 0 {
						r.truncated = true
						break
					}
					budget--
				}
				value, size := x.evaluate(t, u, part, q.Aggregate, &r.messages)
				r.stats.Evaluated++
				r.stats.Visited += size
				r.work += size
				list.Offer(u, value)
			}
			r.items = list.Items()
			results[part] = r
		}(part)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return core.Answer{}, Stats{}, err
	}

	merged := topk.New(q.K)
	ans := core.Answer{}
	stats := Stats{Parts: x.p.P, EdgeCut: x.p.EdgeCut(x.g)}
	for _, r := range results {
		for _, it := range r.items {
			merged.Offer(it.Node, it.Value)
		}
		ans.Stats.Evaluated += r.stats.Evaluated
		ans.Stats.Visited += r.stats.Visited
		ans.Truncated = ans.Truncated || r.truncated
		stats.Messages += r.messages
		stats.TotalWork += r.work
		if r.work > stats.MaxPartWork {
			stats.MaxPartWork = r.work
		}
	}
	ans.Results = merged.Items()
	return ans, stats, nil
}

// evaluate computes u's aggregate with one BFS on the shared graph,
// counting every visit to a node owned elsewhere as a boundary message
// (shipping the frontier across the partition boundary).
func (x *Executor) evaluate(t *graph.Traverser, u, part int, agg core.Aggregate, messages *int64) (value float64, size int) {
	var sum, max float64
	count := 0
	t.VisitWithin(u, x.h, func(v, dist int) {
		size++
		if x.p.PartOf(v) != part {
			*messages++
		}
		s := x.scores[v]
		switch agg {
		case core.Sum, core.Avg:
			sum += s
		case core.WeightedSum:
			if dist <= 1 {
				sum += s
			} else {
				sum += s / float64(dist)
			}
		case core.Count:
			if s > 0 {
				count++
			}
		case core.Max:
			if size == 1 || s > max {
				max = s
			}
		}
	})
	switch agg {
	case core.Sum, core.WeightedSum:
		return sum, size
	case core.Avg:
		return sum / float64(size), size
	case core.Count:
		return float64(count), size
	default: // core.Max
		return max, size
	}
}

// Balance returns the load imbalance of a partitioning: the largest part
// size divided by the ideal size. 1.0 is perfect balance.
func (p *Partitioning) Balance() float64 {
	sizes := p.Sizes()
	if len(sizes) == 0 || len(p.Assign) == 0 {
		return 1
	}
	sort.Ints(sizes)
	ideal := float64(len(p.Assign)) / float64(p.P)
	return float64(sizes[len(sizes)-1]) / ideal
}
