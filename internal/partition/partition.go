// Package partition implements the infrastructure the paper says it is
// "currently developing": partitioning a large network into subnetworks
// and distributing the aggregation workload across machines. Machines are
// simulated — each partition runs in its own goroutine with its own
// traverser, and every arc that crosses a partition boundary during
// neighborhood expansion is accounted as a network message — so the
// experiments report both wall-clock speedup and communication volume
// (benchmark A6).
package partition

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/graph"
	"repro/internal/topk"
)

// Partitioning assigns every node to one of P parts.
type Partitioning struct {
	P      int
	Assign []int32 // Assign[v] = part owning v
}

// PartOf returns the part owning v.
func (p *Partitioning) PartOf(v int) int { return int(p.Assign[v]) }

// Sizes returns the node count of each part.
func (p *Partitioning) Sizes() []int {
	sizes := make([]int, p.P)
	for _, part := range p.Assign {
		sizes[part]++
	}
	return sizes
}

// Validate checks every node is assigned to a legal part.
func (p *Partitioning) Validate(g *graph.Graph) error {
	if len(p.Assign) != g.NumNodes() {
		return fmt.Errorf("partition: %d assignments for %d nodes", len(p.Assign), g.NumNodes())
	}
	for v, part := range p.Assign {
		if part < 0 || int(part) >= p.P {
			return fmt.Errorf("partition: node %d assigned to part %d of %d", v, part, p.P)
		}
	}
	return nil
}

// EdgeCut returns the number of undirected edges whose endpoints live in
// different parts — the classic partition quality metric and a proxy for
// steady-state communication.
func (p *Partitioning) EdgeCut(g *graph.Graph) int {
	cut := 0
	for u := 0; u < g.NumNodes(); u++ {
		pu := p.Assign[u]
		for _, v := range g.Neighbors(u) {
			if int(v) > u && p.Assign[v] != pu {
				cut++
			}
		}
	}
	return cut
}

// BFSGrow partitions g into parts of near-equal node count by growing
// breadth-first regions from spaced seeds: a cheap locality-preserving
// heuristic (the METIS-style refinement a production system would add is
// out of scope; BFS growth already keeps h-hop neighborhoods mostly
// intra-part, which is what the aggregation workload needs).
func BFSGrow(g *graph.Graph, parts int) (*Partitioning, error) {
	n := g.NumNodes()
	if parts <= 0 {
		return nil, fmt.Errorf("partition: need at least 1 part, got %d", parts)
	}
	if parts > n && n > 0 {
		return nil, fmt.Errorf("partition: %d parts for %d nodes", parts, n)
	}
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	if n == 0 {
		return &Partitioning{P: parts, Assign: assign}, nil
	}
	capacity := (n + parts - 1) / parts

	var queue ds.IntQueue
	part := 0
	filled := 0
	for start := 0; start < n; start++ {
		if assign[start] != -1 {
			continue
		}
		queue.Reset()
		queue.Push(start)
		assign[start] = int32(part)
		filled++
		for !queue.Empty() {
			if filled >= capacity && part < parts-1 {
				// Current part is full: later discoveries go to the next.
				part++
				filled = 0
			}
			u := queue.Pop()
			for _, v32 := range g.Neighbors(u) {
				v := int(v32)
				if assign[v] != -1 {
					continue
				}
				assign[v] = int32(part)
				filled++
				queue.Push(v)
			}
		}
	}
	p := &Partitioning{P: parts, Assign: assign}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	return p, nil
}

// Stats summarizes a distributed execution.
type Stats struct {
	Parts       int
	EdgeCut     int   // structural cut of the partitioning
	Messages    int64 // boundary crossings during neighborhood expansion
	MaxPartWork int   // nodes visited by the busiest part (critical path)
	TotalWork   int   // nodes visited across all parts
}

// Executor runs Base-style top-k aggregation with the node set sharded by
// a Partitioning: each part evaluates the nodes it owns on its own
// goroutine (its own simulated machine), counting every expansion step
// that crosses a partition boundary as a message. Results merge into one
// top-k list identical to single-machine Base.
type Executor struct {
	g      *graph.Graph
	scores []float64
	h      int
	p      *Partitioning
}

// NewExecutor validates and builds a distributed executor.
func NewExecutor(g *graph.Graph, scores []float64, h int, p *Partitioning) (*Executor, error) {
	if h < 0 {
		return nil, fmt.Errorf("partition: negative hop radius %d", h)
	}
	if len(scores) != g.NumNodes() {
		return nil, fmt.Errorf("partition: %d scores for %d nodes", len(scores), g.NumNodes())
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	return &Executor{g: g, scores: scores, h: h, p: p}, nil
}

// TopKSum runs the distributed SUM query and returns the merged top-k
// along with execution statistics.
func (x *Executor) TopKSum(k int) ([]core.Result, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("partition: k must be positive, got %d", k)
	}
	n := x.g.NumNodes()

	// Owned node lists per part.
	owned := make([][]int32, x.p.P)
	for v := 0; v < n; v++ {
		part := x.p.PartOf(v)
		owned[part] = append(owned[part], int32(v))
	}

	type partResult struct {
		items    []topk.Item
		messages int64
		work     int
	}
	results := make([]partResult, x.p.P)
	var wg sync.WaitGroup
	for part := 0; part < x.p.P; part++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			t := graph.NewTraverser(x.g)
			list := topk.New(k)
			var messages int64
			work := 0
			for _, u := range owned[part] {
				sum := 0.0
				t.VisitWithin(int(u), x.h, func(v, dist int) {
					sum += x.scores[v]
					work++
					// A visit to a node owned elsewhere required shipping
					// the frontier across the boundary: one message.
					if x.p.PartOf(v) != part {
						messages++
					}
				})
				list.Offer(int(u), sum)
			}
			results[part] = partResult{items: list.Items(), messages: messages, work: work}
		}(part)
	}
	wg.Wait()

	merged := topk.New(k)
	stats := Stats{Parts: x.p.P, EdgeCut: x.p.EdgeCut(x.g)}
	for _, r := range results {
		for _, it := range r.items {
			merged.Offer(it.Node, it.Value)
		}
		stats.Messages += r.messages
		stats.TotalWork += r.work
		if r.work > stats.MaxPartWork {
			stats.MaxPartWork = r.work
		}
	}
	return merged.Items(), stats, nil
}

// Balance returns the load imbalance of a partitioning: the largest part
// size divided by the ideal size. 1.0 is perfect balance.
func (p *Partitioning) Balance() float64 {
	sizes := p.Sizes()
	if len(sizes) == 0 || len(p.Assign) == 0 {
		return 1
	}
	sort.Ints(sizes)
	ideal := float64(len(p.Assign)) / float64(p.P)
	return float64(sizes[len(sizes)-1]) / ideal
}
