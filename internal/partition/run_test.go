package partition

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relevance"
)

// TestRunMatchesEngineAllAggregates: the migrated context-aware executor
// matches single-machine Base byte-for-byte on every aggregate, not just
// SUM.
func TestRunMatchesEngineAllAggregates(t *testing.T) {
	g := gen.Collaboration(0.02, 7)
	scores := relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.02}, 7)
	e, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BFSGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewExecutor(g, scores, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []core.Aggregate{core.Sum, core.Avg, core.WeightedSum, core.Count, core.Max} {
		q := core.Query{K: 20, Aggregate: agg, Algorithm: core.AlgoBase}
		want, err := e.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := x.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("%v: distributed results diverge from Base", agg)
		}
		if stats.Parts != 4 || got.Stats.Evaluated != g.NumNodes() {
			t.Fatalf("%v: implausible stats %+v / %+v", agg, stats, got.Stats)
		}
	}
}

// TestRunCandidates: the restriction applies to ranking only, split
// across owning parts.
func TestRunCandidates(t *testing.T) {
	g := gen.ErdosRenyi(400, 1200, 17)
	scores := relevance.Binary(400, 0.2, 17)
	e, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BFSGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewExecutor(g, scores, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	cand := []int{3, 50, 399, 17, 200}
	q := core.Query{K: 3, Aggregate: core.Sum, Candidates: cand}
	want, err := e.Run(context.Background(), core.Query{K: 3, Aggregate: core.Sum, Algorithm: core.AlgoBase, Candidates: cand})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := x.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("candidate results diverge: %+v vs %+v", got.Results, want.Results)
	}
	if _, _, err := x.Run(context.Background(), core.Query{K: 3, Aggregate: core.Sum, Candidates: []int{400}}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
}

// TestRunBudgetTruncates: a small budget splits across parts and reports
// truncation; an ample one reproduces the exact answer.
func TestRunBudgetTruncates(t *testing.T) {
	g := gen.ErdosRenyi(600, 1800, 19)
	scores := relevance.Binary(600, 0.3, 19)
	p, err := BFSGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewExecutor(g, scores, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	tiny, _, err := x.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum, Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !tiny.Truncated {
		t.Fatal("budget 12 over 600 nodes did not truncate")
	}
	if tiny.Stats.Evaluated > 12 {
		t.Fatalf("budget 12 evaluated %d nodes", tiny.Stats.Evaluated)
	}
	// The even split must cover the *largest* part, not just the mean:
	// BFS growth leaves parts uneven, so double the node count.
	full, _, err := x.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum, Budget: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("budget covering every node truncated")
	}
	exact, _, err := x.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Results, exact.Results) {
		t.Fatal("ample budget diverged from unbudgeted run")
	}
	if _, _, err := x.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum, Budget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestRunCancellation: a cancelled context aborts all parts promptly and
// the executor stays reusable.
func TestRunCancellation(t *testing.T) {
	g := gen.Collaboration(0.05, 23)
	scores := relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.02}, 23)
	p, err := BFSGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewExecutor(g, scores, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := x.Run(pre, core.Query{K: 10, Aggregate: core.Sum}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}

	ctx, cancelMid := context.WithCancel(context.Background())
	timer := time.AfterFunc(2*time.Millisecond, cancelMid)
	_, _, err = x.Run(ctx, core.Query{K: 10, Aggregate: core.Sum})
	timer.Stop()
	cancelMid()
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-query err = %v, want context.Canceled or fast success", err)
	}

	ans, _, err := x.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum})
	if err != nil || len(ans.Results) != 10 {
		t.Fatalf("executor unusable after cancellation: %v (%d results)", err, len(ans.Results))
	}
}
