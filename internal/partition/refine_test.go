package partition

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relevance"
)

func TestRefineReducesCut(t *testing.T) {
	g := gen.WattsStrogatz(3000, 5, 0.05, 21)
	p, err := BFSGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := p.EdgeCut(g)
	moved := Refine(g, p, 1.3, 4)
	after := p.EdgeCut(g)
	if err := p.Validate(g); err != nil {
		t.Fatalf("refinement corrupted the partitioning: %v", err)
	}
	if moved == 0 {
		t.Fatal("refinement moved nothing on a ragged BFS partitioning")
	}
	if after >= before {
		t.Fatalf("cut did not improve: %d -> %d", before, after)
	}
	if b := p.Balance(); b > 1.35 {
		t.Fatalf("refinement broke balance: %v", b)
	}
}

func TestRefineRespectsCapacity(t *testing.T) {
	// A star wants everything in the hub's part; the cap must stop it.
	g := gen.BarabasiAlbert(500, 2, 23)
	p, err := BFSGrow(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	Refine(g, p, 1.2, 5)
	sizes := p.Sizes()
	limit := int(float64(500) / 5 * 1.2)
	for part, size := range sizes {
		if size > limit+1 { // +1: the move check races the cap by one node
			t.Fatalf("part %d grew to %d, cap %d", part, size, limit)
		}
	}
}

func TestRefineNoOpCases(t *testing.T) {
	g := gen.ErdosRenyi(50, 120, 25)
	single, err := BFSGrow(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if moved := Refine(g, single, 1.3, 3); moved != 0 {
		t.Fatalf("single-part refinement moved %d nodes", moved)
	}
	empty, err := BFSGrow(gen.ErdosRenyi(16, 0, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	Refine(gen.ErdosRenyi(16, 0, 1), empty, 1.3, 3) // must not panic
}

func TestRefinedPartitionStillAnswersCorrectly(t *testing.T) {
	g := gen.Collaboration(0.02, 27)
	scores := relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.02}, 27)
	e, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := e.Base(10, core.Sum)
	if err != nil {
		t.Fatal(err)
	}

	p, err := BFSGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	Refine(g, p, 1.3, 3)
	x, err := NewExecutor(g, scores, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	ans, stats, err := x.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum})
	got := ans.Results
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Node != want[i].Node || math.Abs(got[i].Value-want[i].Value) > 1e-9 {
			t.Fatalf("row %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if stats.EdgeCut <= 0 {
		t.Fatalf("refined 4-way partitioning reports cut %d", stats.EdgeCut)
	}
}

func TestRefineReducesMessages(t *testing.T) {
	g := gen.Collaboration(0.05, 29)
	scores := relevance.Binary(g.NumNodes(), 0.1, 29)

	raw, err := BFSGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := BFSGrow(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	Refine(g, refined, 1.3, 3)

	xRaw, err := NewExecutor(g, scores, 2, raw)
	if err != nil {
		t.Fatal(err)
	}
	xRef, err := NewExecutor(g, scores, 2, refined)
	if err != nil {
		t.Fatal(err)
	}
	_, sRaw, err := xRaw.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum})
	if err != nil {
		t.Fatal(err)
	}
	_, sRef, err := xRef.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum})
	if err != nil {
		t.Fatal(err)
	}
	if sRef.Messages >= sRaw.Messages {
		t.Fatalf("refinement did not reduce messages: %d -> %d", sRaw.Messages, sRef.Messages)
	}
}
