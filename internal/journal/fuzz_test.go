package journal

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// FuzzJournalRecord throws arbitrary bytes at the record decoder: it
// must never panic, and any record it accepts must survive a
// re-encode/re-decode round trip unchanged (the decoder and encoder
// agree on the format).
func FuzzJournalRecord(f *testing.F) {
	seeds := []Commit{
		{Gen: 1},
		{Gen: 2, Scores: []ScoreUpdate{{Node: 0, Score: 1.5}, {Node: 1 << 20, Score: -0.0}}},
		{Gen: 3, Edits: []graph.Edit{{Op: graph.EditAddNode}, {Op: graph.EditAddEdge, U: 4, V: 9}}},
		{Gen: 1<<64 - 1, Scores: []ScoreUpdate{{Node: 7, Score: math.Inf(1)}}},
	}
	for _, c := range seeds {
		rec, err := EncodeRecord(c)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
		// Also seed a CRC-corrupted variant so the mismatch branch is
		// in-corpus from the start.
		bad := append([]byte(nil), rec...)
		bad[4] ^= 0x01
		f.Add(bad)
	}
	f.Add([]byte{})
	f.Add([]byte("LONAJRNL"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeRecord(data)
		if err != nil {
			return
		}
		rec, err := EncodeRecord(c)
		if err != nil {
			t.Fatalf("decoded commit does not re-encode: %v (%+v)", err, c)
		}
		c2, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("round trip changed the commit:\n  first  %+v\n  second %+v", c, c2)
		}
	})
}
