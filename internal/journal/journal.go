// Package journal persists the server's mutation history as an
// append-only, CRC-checked commit journal, turning the in-memory
// generation machine into a durable, generation-addressed store.
//
// Every applied /v1/scores and /v1/edges batch becomes one commit
// record tagged with the generation it PRODUCED: replaying commits
// g+1..h on top of a snapshot taken at generation g reconstructs
// generation h bit-identically, because replay drives the exact same
// incremental ApplyEdits/Repair code path the live batch took.
//
// # On-disk layout
//
// A journal directory holds two files:
//
//	commits.lonaj   the append-only record log
//	ANCHOR          JSON {snapshot, generation}, written atomically
//	                (temp file + rename) whenever a snapshot is
//	                persisted, naming the newest snapshot the journal
//	                can replay forward from
//
// commits.lonaj starts with an 12-byte header (magic "LONAJRNL" +
// uint32 LE version) followed by length-prefixed records:
//
//	[length uint32 LE] [crc32c uint32 LE] [payload]
//
// where the CRC covers the payload and the payload is
//
//	[gen uint64 LE] [kind uint8] [body]
//
// kind 1 (scores): body = [count uint32 LE] count × ([node uint32 LE]
// [score float64 LE bits]). kind 2 (edits): body = the textual edit
// script from graph.FormatEditScript — the same deterministic encoding
// the cluster transport fingerprints, so a journal record is
// byte-reproducible from the in-memory batch.
//
// A torn tail (crash mid-append) is detected at Open and truncated;
// corruption BEFORE the last record is an error — the journal refuses
// to silently skip history it cannot verify.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/graph"
)

const (
	logName    = "commits.lonaj"
	anchorName = "ANCHOR"

	magic   = "LONAJRNL"
	version = 1

	headerSize = 12 // 8 magic + 4 version

	// KindScores and KindEdits tag the two commit payloads.
	KindScores = 1
	KindEdits  = 2

	// maxRecordSize bounds a single record so a corrupt length prefix
	// cannot drive an enormous allocation at Open.
	maxRecordSize = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ScoreUpdate mirrors server.ScoreUpdate without importing it (the
// server imports this package, not the other way around).
type ScoreUpdate struct {
	Node  int
	Score float64
}

// Commit is one applied mutation batch: exactly one of Scores or Edits
// is non-empty, and Gen is the generation the batch produced (the
// server's generation counter AFTER the bump).
type Commit struct {
	Gen    uint64
	Scores []ScoreUpdate
	Edits  []graph.Edit
}

// Kind reports the record kind this commit encodes as.
func (c *Commit) Kind() int {
	if len(c.Edits) > 0 {
		return KindEdits
	}
	return KindScores
}

// Anchor names a snapshot the journal can replay forward from:
// restoring Snapshot and applying every commit with Gen > Generation
// reconstructs the newest generation.
type Anchor struct {
	Snapshot   string `json:"snapshot"`
	Generation uint64 `json:"generation"`
}

// Journal is an open commit journal. All methods are safe for
// concurrent use; Append calls are serialized.
type Journal struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	size    int64
	commits []Commit
}

// Open opens (creating if needed) the journal in dir. The whole log is
// scanned and CRC-verified up front; a torn final record is truncated
// away, while corruption before the tail is an error.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, f: f}
	if err := j.load(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

func (j *Journal) load() error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if info.Size() == 0 {
		var hdr [headerSize]byte
		copy(hdr[:8], magic)
		binary.LittleEndian.PutUint32(hdr[8:], version)
		if _, err := j.f.Write(hdr[:]); err != nil {
			return fmt.Errorf("journal: write header: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync header: %w", err)
		}
		j.size = headerSize
		return nil
	}
	data, err := os.ReadFile(filepath.Join(j.dir, logName))
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if len(data) < headerSize || string(data[:8]) != magic {
		return fmt.Errorf("journal: %s is not a lona journal", logName)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != version {
		return fmt.Errorf("journal: version %d not supported (want %d)", v, version)
	}
	off := int64(headerSize)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < 8 {
			break // torn length/crc prefix
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		if length == 0 || int64(length) > maxRecordSize {
			return fmt.Errorf("journal: corrupt record length %d at offset %d", length, off)
		}
		if int64(len(rest)) < 8+int64(length) {
			break // torn payload
		}
		sum := binary.LittleEndian.Uint32(rest[4:8])
		payload := rest[8 : 8+length]
		if crc(payload) != sum {
			if off+8+int64(length) == int64(len(data)) {
				break // torn tail: final record half-written
			}
			return fmt.Errorf("journal: CRC mismatch at offset %d (mid-file corruption)", off)
		}
		c, err := decodePayload(payload)
		if err != nil {
			return fmt.Errorf("journal: offset %d: %w", off, err)
		}
		if n := len(j.commits); n > 0 && c.Gen <= j.commits[n-1].Gen {
			return fmt.Errorf("journal: generation %d at offset %d does not advance past %d",
				c.Gen, off, j.commits[n-1].Gen)
		}
		j.commits = append(j.commits, c)
		off += 8 + int64(length)
	}
	if off < int64(len(data)) {
		// Torn tail: drop the partial record so the next Append lands
		// on a clean boundary.
		if err := j.f.Truncate(off); err != nil {
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	j.size = off
	if _, err := j.f.Seek(j.size, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Close closes the underlying log file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Append durably writes one commit (record + fsync). Generations must
// strictly increase across appends.
func (j *Journal) Append(c Commit) error {
	rec, err := EncodeRecord(c)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if n := len(j.commits); n > 0 && c.Gen <= j.commits[n-1].Gen {
		return fmt.Errorf("journal: append generation %d does not advance past %d",
			c.Gen, j.commits[n-1].Gen)
	}
	if _, err := j.f.Write(rec); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.size += int64(len(rec))
	j.commits = append(j.commits, c)
	return nil
}

// Depth returns the number of commits currently in the log.
func (j *Journal) Depth() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.commits)
}

// LastGen returns the generation of the newest commit (0 if empty).
func (j *Journal) LastGen() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n := len(j.commits); n > 0 {
		return j.commits[n-1].Gen
	}
	return 0
}

// Commits returns a copy of every commit in generation order.
func (j *Journal) Commits() []Commit {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Commit, len(j.commits))
	copy(out, j.commits)
	return out
}

// Suffix returns a copy of every commit with Gen > afterGen, in order.
// This is the replay payload for a worker (or a booting server) whose
// state sits at afterGen.
func (j *Journal) Suffix(afterGen uint64) []Commit {
	j.mu.Lock()
	defer j.mu.Unlock()
	i := 0
	for i < len(j.commits) && j.commits[i].Gen <= afterGen {
		i++
	}
	out := make([]Commit, len(j.commits)-i)
	copy(out, j.commits[i:])
	return out
}

// WriteAnchor atomically records that snapshotPath holds generation
// gen (temp file + rename, so a crash can never leave a half-written
// anchor). The snapshot itself must already be durable.
func (j *Journal) WriteAnchor(snapshotPath string, gen uint64) error {
	a := Anchor{Snapshot: snapshotPath, Generation: gen}
	data, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(j.dir, anchorName+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: anchor: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("journal: anchor: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("journal: anchor: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: anchor: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(j.dir, anchorName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: anchor: %w", err)
	}
	return nil
}

// ReadAnchor returns the journal's anchor, or ok=false when none has
// been written yet.
func (j *Journal) ReadAnchor() (Anchor, bool, error) {
	return ReadAnchor(j.dir)
}

// ReadAnchor reads the anchor from a journal directory without opening
// the log (boot-time use, before the daemon decides what to load).
func ReadAnchor(dir string) (Anchor, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, anchorName))
	if errors.Is(err, os.ErrNotExist) {
		return Anchor{}, false, nil
	}
	if err != nil {
		return Anchor{}, false, fmt.Errorf("journal: anchor: %w", err)
	}
	var a Anchor
	if err := json.Unmarshal(data, &a); err != nil {
		return Anchor{}, false, fmt.Errorf("journal: anchor: %w", err)
	}
	return a, true, nil
}

// Compact drops commits with Gen <= the anchored generation by
// rewriting the log (temp file + rename). Commits past the anchor are
// never dropped — without them the anchored snapshot could not reach
// the newest generation. Compact is a no-op when no anchor exists.
func (j *Journal) Compact() (dropped int, err error) {
	a, ok, err := j.ReadAnchor()
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, errors.New("journal: closed")
	}
	keepFrom := 0
	for keepFrom < len(j.commits) && j.commits[keepFrom].Gen <= a.Generation {
		keepFrom++
	}
	if keepFrom == 0 {
		return 0, nil
	}
	tmp, err := os.CreateTemp(j.dir, logName+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("journal: compact: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(e error) (int, error) {
		tmp.Close()
		os.Remove(tmpName)
		return 0, fmt.Errorf("journal: compact: %w", e)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], version)
	if _, err := tmp.Write(hdr[:]); err != nil {
		return fail(err)
	}
	size := int64(headerSize)
	for _, c := range j.commits[keepFrom:] {
		rec, err := EncodeRecord(c)
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(rec); err != nil {
			return fail(err)
		}
		size += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("journal: compact: %w", err)
	}
	path := filepath.Join(j.dir, logName)
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("journal: compact: %w", err)
	}
	// Reopen the renamed file for appending; the old handle points at
	// the unlinked inode.
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, fmt.Errorf("journal: compact: reopen: %w", err)
	}
	if _, err := nf.Seek(size, io.SeekStart); err != nil {
		nf.Close()
		return 0, fmt.Errorf("journal: compact: %w", err)
	}
	j.f.Close()
	j.f = nf
	j.size = size
	dropped = keepFrom
	j.commits = append([]Commit(nil), j.commits[keepFrom:]...)
	return dropped, nil
}

// EncodeRecord renders one commit as a complete journal record
// (length + CRC + payload). Exported for the fuzz target.
func EncodeRecord(c Commit) ([]byte, error) {
	if len(c.Scores) > 0 && len(c.Edits) > 0 {
		return nil, errors.New("journal: commit carries both scores and edits")
	}
	var body []byte
	kind := byte(KindScores)
	if len(c.Edits) > 0 {
		kind = KindEdits
		body = []byte(graph.FormatEditScript(c.Edits))
	} else {
		body = make([]byte, 4+12*len(c.Scores))
		binary.LittleEndian.PutUint32(body, uint32(len(c.Scores)))
		off := 4
		for _, u := range c.Scores {
			if u.Node < 0 {
				return nil, fmt.Errorf("journal: negative node %d", u.Node)
			}
			binary.LittleEndian.PutUint32(body[off:], uint32(u.Node))
			binary.LittleEndian.PutUint64(body[off+4:], math.Float64bits(u.Score))
			off += 12
		}
	}
	payload := make([]byte, 9+len(body))
	binary.LittleEndian.PutUint64(payload, c.Gen)
	payload[8] = kind
	copy(payload[9:], body)
	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc(payload))
	copy(rec[8:], payload)
	return rec, nil
}

// DecodeRecord parses one complete record (as produced by
// EncodeRecord), verifying length and CRC. Exported for the fuzz
// target.
func DecodeRecord(rec []byte) (Commit, error) {
	if len(rec) < 8 {
		return Commit{}, errors.New("journal: record too short")
	}
	length := binary.LittleEndian.Uint32(rec[:4])
	if int64(length) > maxRecordSize {
		return Commit{}, fmt.Errorf("journal: record length %d too large", length)
	}
	if int(length) != len(rec)-8 {
		return Commit{}, fmt.Errorf("journal: record length %d does not match %d payload bytes",
			length, len(rec)-8)
	}
	payload := rec[8:]
	if crc(payload) != binary.LittleEndian.Uint32(rec[4:8]) {
		return Commit{}, errors.New("journal: CRC mismatch")
	}
	return decodePayload(payload)
}

func decodePayload(payload []byte) (Commit, error) {
	if len(payload) < 9 {
		return Commit{}, errors.New("journal: payload too short")
	}
	c := Commit{Gen: binary.LittleEndian.Uint64(payload)}
	body := payload[9:]
	switch payload[8] {
	case KindScores:
		if len(body) < 4 {
			return Commit{}, errors.New("journal: scores body too short")
		}
		n := binary.LittleEndian.Uint32(body)
		if int64(len(body)) != 4+12*int64(n) {
			return Commit{}, fmt.Errorf("journal: scores body %d bytes, want %d for %d updates",
				len(body), 4+12*int64(n), n)
		}
		c.Scores = make([]ScoreUpdate, n)
		off := 4
		for i := range c.Scores {
			c.Scores[i] = ScoreUpdate{
				Node:  int(binary.LittleEndian.Uint32(body[off:])),
				Score: math.Float64frombits(binary.LittleEndian.Uint64(body[off+4:])),
			}
			off += 12
		}
	case KindEdits:
		edits, err := graph.ParseEditScript(body)
		if err != nil {
			return Commit{}, fmt.Errorf("journal: edits body: %w", err)
		}
		if len(edits) == 0 {
			return Commit{}, errors.New("journal: empty edit script")
		}
		c.Edits = edits
	default:
		return Commit{}, fmt.Errorf("journal: unknown record kind %d", payload[8])
	}
	return c, nil
}
