package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

func testCommits() []Commit {
	return []Commit{
		{Gen: 1, Scores: []ScoreUpdate{{Node: 0, Score: 1.5}, {Node: 7, Score: -2.25}}},
		{Gen: 2, Edits: []graph.Edit{{Op: graph.EditAddNode}, {Op: graph.EditAddEdge, U: 1, V: 3}}},
		{Gen: 3, Scores: []ScoreUpdate{{Node: 3, Score: 0.125}}},
	}
}

func mustOpen(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func mustAppend(t *testing.T, j *Journal, commits ...Commit) {
	t.Helper()
	for _, c := range commits {
		if err := j.Append(c); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	want := testCommits()
	mustAppend(t, j, want...)
	if j.Depth() != len(want) || j.LastGen() != 3 {
		t.Fatalf("depth %d lastGen %d, want %d / 3", j.Depth(), j.LastGen(), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir)
	defer j2.Close()
	if got := j2.Commits(); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened commits = %+v, want %+v", got, want)
	}
	if got := j2.Suffix(1); !reflect.DeepEqual(got, want[1:]) {
		t.Fatalf("Suffix(1) = %+v, want %+v", got, want[1:])
	}
	if got := j2.Suffix(3); len(got) != 0 {
		t.Fatalf("Suffix(3) = %+v, want empty", got)
	}
	// The reopened handle keeps accepting appends on the same log.
	mustAppend(t, j2, Commit{Gen: 4, Scores: []ScoreUpdate{{Node: 1, Score: 9}}})
	if j2.Depth() != 4 || j2.LastGen() != 4 {
		t.Fatalf("after reopen+append: depth %d lastGen %d", j2.Depth(), j2.LastGen())
	}
}

func TestAppendGenerationMustAdvance(t *testing.T) {
	j := mustOpen(t, t.TempDir())
	defer j.Close()
	mustAppend(t, j, Commit{Gen: 5, Scores: []ScoreUpdate{{Node: 0, Score: 1}}})
	for _, gen := range []uint64{5, 4} {
		if err := j.Append(Commit{Gen: gen, Scores: []ScoreUpdate{{Node: 0, Score: 1}}}); err == nil {
			t.Fatalf("append at gen %d after gen 5 succeeded", gen)
		}
	}
	if j.Depth() != 1 {
		t.Fatalf("rejected appends changed depth: %d", j.Depth())
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	want := testCommits()
	mustAppend(t, j, want...)
	j.Close()

	// Chop into the middle of the final record, simulating a crash
	// mid-append.
	path := filepath.Join(dir, logName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir)
	if got := j2.Commits(); !reflect.DeepEqual(got, want[:2]) {
		t.Fatalf("after torn tail: commits = %+v, want %+v", got, want[:2])
	}
	// The truncated log accepts a fresh append on a clean boundary and
	// survives another reopen intact.
	replacement := Commit{Gen: 3, Edits: []graph.Edit{{Op: graph.EditAddEdge, U: 0, V: 2}}}
	mustAppend(t, j2, replacement)
	j2.Close()
	j3 := mustOpen(t, dir)
	defer j3.Close()
	if got := j3.Commits(); !reflect.DeepEqual(got, append(want[:2:2], replacement)) {
		t.Fatalf("after re-append: commits = %+v", got)
	}
}

func TestMidFileCorruptionRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	mustAppend(t, j, testCommits()...)
	j.Close()

	// Flip one payload byte inside the FIRST record: history before the
	// tail cannot be verified, so Open must fail rather than skip it.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+8] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("Open on mid-file corruption: err = %v, want CRC mismatch", err)
	}
}

func TestAnchorRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	defer j.Close()
	if _, ok, err := j.ReadAnchor(); err != nil || ok {
		t.Fatalf("fresh journal anchor: ok=%v err=%v, want absent", ok, err)
	}
	if err := j.WriteAnchor("/data/snap-7.lona", 7); err != nil {
		t.Fatal(err)
	}
	a, ok, err := ReadAnchor(dir) // package-level boot-time path
	if err != nil || !ok {
		t.Fatalf("ReadAnchor: ok=%v err=%v", ok, err)
	}
	if a.Snapshot != "/data/snap-7.lona" || a.Generation != 7 {
		t.Fatalf("anchor = %+v", a)
	}
	// Anchors overwrite atomically; the newest one wins.
	if err := j.WriteAnchor("/data/snap-9.lona", 9); err != nil {
		t.Fatal(err)
	}
	if a, _, _ = j.ReadAnchor(); a.Generation != 9 {
		t.Fatalf("overwritten anchor = %+v", a)
	}
}

func TestCompactDropsOnlyAnchoredPrefix(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	defer j.Close()
	want := testCommits()
	mustAppend(t, j, want...)

	// No anchor yet: Compact is a no-op.
	if dropped, err := j.Compact(); err != nil || dropped != 0 {
		t.Fatalf("anchorless Compact: dropped=%d err=%v", dropped, err)
	}

	if err := j.WriteAnchor("snap.lona", 2); err != nil {
		t.Fatal(err)
	}
	dropped, err := j.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	if got := j.Commits(); !reflect.DeepEqual(got, want[2:]) {
		t.Fatalf("post-compact commits = %+v, want %+v", got, want[2:])
	}
	// The swapped file handle still appends, and the compacted log
	// reopens cleanly.
	mustAppend(t, j, Commit{Gen: 4, Scores: []ScoreUpdate{{Node: 2, Score: 3}}})
	j2 := mustOpen(t, t.TempDir())
	j2.Close() // unrelated handle; ensure dir isolation did not leak
	j3 := mustOpen(t, dir)
	defer j3.Close()
	if j3.Depth() != 2 || j3.LastGen() != 4 {
		t.Fatalf("reopened compacted log: depth=%d lastGen=%d", j3.Depth(), j3.LastGen())
	}
}

func TestEncodeRejectsMixedCommit(t *testing.T) {
	_, err := EncodeRecord(Commit{
		Gen:    1,
		Scores: []ScoreUpdate{{Node: 0, Score: 1}},
		Edits:  []graph.Edit{{Op: graph.EditAddNode}},
	})
	if err == nil {
		t.Fatal("EncodeRecord accepted a commit with both scores and edits")
	}
	if _, err := EncodeRecord(Commit{Gen: 1, Scores: []ScoreUpdate{{Node: -1, Score: 1}}}); err == nil {
		t.Fatal("EncodeRecord accepted a negative node id")
	}
}
