package otlp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ExporterOptions tunes the async exporter. The zero value is usable.
type ExporterOptions struct {
	// SampleRatio in [0,1] is the fraction of ordinary traces exported;
	// 0 means export everything (the unset default). Slow traces bypass
	// sampling — they are exactly the ones worth keeping.
	SampleRatio float64
	// QueueSize bounds the in-flight batch queue (default 256). When the
	// queue is full, Export drops and counts instead of blocking the
	// query path.
	QueueSize int
	// Client overrides the HTTP client (default: 5s-timeout client).
	Client *http.Client
	// Logger receives export-failure notices (nil = silent).
	Logger *slog.Logger
}

// ExporterStats is the exporter's accounting, surfaced in /v1/stats.
type ExporterStats struct {
	// Exported counts batches delivered to the collector (2xx).
	Exported int64 `json:"exported"`
	// Dropped counts batches discarded because the queue was full.
	Dropped int64 `json:"dropped"`
	// Sampled counts batches skipped by the sampling ratio.
	Sampled int64 `json:"sampled_out"`
	// Failed counts batches the collector refused or the POST lost.
	Failed int64 `json:"failed"`
	// QueueLen is the current backlog.
	QueueLen int `json:"queue_len"`
}

// Exporter ships OTLP/JSON batches to a collector from a single
// background goroutine. Export never blocks the caller: a full queue
// drops the batch and counts it. Close flushes the backlog.
type Exporter struct {
	url    string
	client *http.Client
	log    *slog.Logger
	sample float64

	queue chan *Request
	done  chan struct{}

	closeOnce sync.Once
	wg        sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand

	exported atomic.Int64
	dropped  atomic.Int64
	sampled  atomic.Int64
	failed   atomic.Int64
}

// NewExporter starts an exporter POSTing to <endpoint>/v1/traces (the
// suffix is appended unless already present).
func NewExporter(endpoint string, opts ExporterOptions) *Exporter {
	url := strings.TrimSuffix(endpoint, "/")
	if !strings.HasSuffix(url, "/v1/traces") {
		url += "/v1/traces"
	}
	size := opts.QueueSize
	if size <= 0 {
		size = 256
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	e := &Exporter{
		url:    url,
		client: client,
		log:    opts.Logger,
		sample: opts.SampleRatio,
		queue:  make(chan *Request, size),
		done:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	e.wg.Add(1)
	go e.loop()
	return e
}

// Export enqueues one batch. Ordinary batches are subject to the
// sampling ratio; slow ones always ship. Returns false when the batch
// was sampled out or dropped.
func (e *Exporter) Export(req *Request, slow bool) bool {
	if e == nil || req == nil {
		return false
	}
	if !slow && e.sample > 0 && e.sample < 1 {
		e.rngMu.Lock()
		skip := e.rng.Float64() >= e.sample
		e.rngMu.Unlock()
		if skip {
			e.sampled.Add(1)
			return false
		}
	}
	select {
	case e.queue <- req:
		return true
	default:
		e.dropped.Add(1)
		return false
	}
}

// Stats returns a snapshot of the exporter's accounting. Nil-safe.
func (e *Exporter) Stats() ExporterStats {
	if e == nil {
		return ExporterStats{}
	}
	return ExporterStats{
		Exported: e.exported.Load(),
		Dropped:  e.dropped.Load(),
		Sampled:  e.sampled.Load(),
		Failed:   e.failed.Load(),
		QueueLen: len(e.queue),
	}
}

// Close stops intake, flushes the backlog, and waits for the sender
// goroutine (bounded by ctx). Safe to call twice; nil-safe.
func (e *Exporter) Close(ctx context.Context) error {
	if e == nil {
		return nil
	}
	e.closeOnce.Do(func() { close(e.done) })
	flushed := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Exporter) loop() {
	defer e.wg.Done()
	for {
		select {
		case req := <-e.queue:
			e.send(req)
		case <-e.done:
			// Drain what's already queued, then exit.
			for {
				select {
				case req := <-e.queue:
					e.send(req)
				default:
					return
				}
			}
		}
	}
}

func (e *Exporter) send(req *Request) {
	body, err := json.Marshal(req)
	if err != nil {
		e.fail(fmt.Errorf("marshal: %w", err))
		return
	}
	resp, err := e.client.Post(e.url, "application/json", bytes.NewReader(body))
	if err != nil {
		e.fail(err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		e.fail(fmt.Errorf("collector returned %s", resp.Status))
		return
	}
	e.exported.Add(1)
}

func (e *Exporter) fail(err error) {
	e.failed.Add(1)
	if e.log != nil {
		e.log.LogAttrs(context.Background(), slog.LevelWarn, "otlp_export_failed",
			slog.String("error", err.Error()), slog.String("endpoint", e.url))
	}
}
