// Package otlp converts the engine's per-query trace timelines into
// OTLP/JSON span batches and ships them to an OpenTelemetry collector.
//
// Like prom.go's Prometheus text rendering, the encoding is hand-rolled
// against the stable wire format (the proto3 JSON mapping of
// opentelemetry-proto's ExportTraceServiceRequest) rather than pulled in
// as an SDK dependency: the subset the engine needs — resourceSpans →
// scopeSpans → spans with events and attributes — is a page of structs,
// and the repo's no-new-dependencies rule holds.
//
// Shape notes pinned by TestRequestWireShape: trace ids are 32 lowercase
// hex chars, span ids 16; the proto3 JSON mapping renders fixed64
// timestamps as decimal strings, so {Start,End}TimeUnixNano and
// intValue are strings, not numbers.
package otlp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// Request is an OTLP/JSON ExportTraceServiceRequest — the body POSTed to
// <collector>/v1/traces.
type Request struct {
	ResourceSpans []ResourceSpans `json:"resourceSpans"`
}

// ResourceSpans groups spans produced by one resource (one process).
type ResourceSpans struct {
	Resource   Resource     `json:"resource"`
	ScopeSpans []ScopeSpans `json:"scopeSpans"`
}

// Resource identifies the emitting process.
type Resource struct {
	Attributes []KeyValue `json:"attributes,omitempty"`
}

// ScopeSpans groups spans emitted by one instrumentation scope.
type ScopeSpans struct {
	Scope Scope  `json:"scope"`
	Spans []Span `json:"spans"`
}

// Scope names the instrumentation library.
type Scope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// Span kinds (proto enum values).
const (
	SpanKindInternal = 1
	SpanKindServer   = 2
)

// Status codes (proto enum values).
const (
	StatusCodeOK    = 1
	StatusCodeError = 2
)

// Span is one OTLP span.
type Span struct {
	TraceID           string      `json:"traceId"`
	SpanID            string      `json:"spanId"`
	ParentSpanID      string      `json:"parentSpanId,omitempty"`
	Name              string      `json:"name"`
	Kind              int         `json:"kind"`
	StartTimeUnixNano string      `json:"startTimeUnixNano"`
	EndTimeUnixNano   string      `json:"endTimeUnixNano"`
	Attributes        []KeyValue  `json:"attributes,omitempty"`
	Events            []SpanEvent `json:"events,omitempty"`
	Status            *Status     `json:"status,omitempty"`
}

// SpanEvent is an instantaneous annotation on a span's timeline.
type SpanEvent struct {
	TimeUnixNano string     `json:"timeUnixNano"`
	Name         string     `json:"name"`
	Attributes   []KeyValue `json:"attributes,omitempty"`
}

// Status is a span's terminal status.
type Status struct {
	Code    int    `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

// KeyValue is one OTLP attribute.
type KeyValue struct {
	Key   string `json:"key"`
	Value Value  `json:"value"`
}

// Value is an OTLP AnyValue restricted to the types the engine emits.
// intValue is a string per the proto3 JSON mapping of int64.
type Value struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

// Str builds a string attribute.
func Str(key, v string) KeyValue {
	return KeyValue{Key: key, Value: Value{StringValue: &v}}
}

// Int builds an int attribute.
func Int(key string, v int64) KeyValue {
	s := strconv.FormatInt(v, 10)
	return KeyValue{Key: key, Value: Value{IntValue: &s}}
}

// Float builds a double attribute.
func Float(key string, v float64) KeyValue {
	return KeyValue{Key: key, Value: Value{DoubleValue: &v}}
}

// Bool builds a bool attribute.
func Bool(key string, v bool) KeyValue {
	return KeyValue{Key: key, Value: Value{BoolValue: &v}}
}

// Meta describes the query around a timeline: resource identity, the
// root span's name and attributes, and the terminal status.
type Meta struct {
	// Service becomes the resource's service.name (default "lona").
	Service string
	// RootName names the root span (default "lona.query").
	RootName string
	// Attrs are extra root-span attributes (algorithm, k, cache outcome).
	Attrs []KeyValue
	// Err marks the root span with an error status when non-empty.
	Err string
}

// TraceID normalizes a recorder id to the 32-hex W3C width OTLP
// requires: shorter legacy ids (the 16-hex X-Lona-Trace era) are
// left-padded with zeros, anything unusable is replaced with a fresh id.
func TraceID(id string) string {
	if len(id) == 32 && isHex(id) {
		return id
	}
	if len(id) > 0 && len(id) < 32 && isHex(id) {
		return strings.Repeat("0", 32-len(id)) + id
	}
	return trace.NewID()
}

func isHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// spanID derives a fresh 16-hex span id.
func spanID() string { return trace.NewID()[:16] }

// FromTrace converts one stitched query timeline into an OTLP request:
// a root span for the whole query, one child span per shard that
// recorded events, sub-spans for duration-bearing events (launch, exec),
// and span events for everything instantaneous. Returns nil on a nil or
// empty-id trace.
func FromTrace(tr *trace.Trace, meta Meta) *Request {
	if tr == nil {
		return nil
	}
	traceID := TraceID(tr.ID)
	base := tr.StartUnixNano
	if base <= 0 {
		// Anchor-less traces (hand-built in tests) still need valid
		// timestamps; 1 keeps start < end arithmetic honest without
		// claiming a real wall-clock moment.
		base = 1
	}
	at := func(us int64) string { return strconv.FormatInt(base+us*1000, 10) }

	// The root span covers the whole recorded timeline.
	var endUS int64
	for _, e := range tr.Events {
		if t := e.TUS + e.DurUS; t > endUS {
			endUS = t
		}
	}
	rootName := meta.RootName
	if rootName == "" {
		rootName = "lona.query"
	}
	root := Span{
		TraceID: traceID, SpanID: spanID(), Name: rootName,
		Kind:              SpanKindServer,
		StartTimeUnixNano: at(0), EndTimeUnixNano: at(endUS),
		Attributes: meta.Attrs,
	}
	if meta.Err != "" {
		root.Status = &Status{Code: StatusCodeError, Message: meta.Err}
	} else {
		root.Status = &Status{Code: StatusCodeOK}
	}

	// One child span per shard, covering that shard's event extent.
	type shardExtent struct{ first, last int64 }
	extents := map[int]*shardExtent{}
	var shardOrder []int
	for _, e := range tr.Events {
		if e.Shard < 0 {
			continue
		}
		ext, ok := extents[e.Shard]
		if !ok {
			ext = &shardExtent{first: e.TUS, last: e.TUS + e.DurUS}
			extents[e.Shard] = ext
			shardOrder = append(shardOrder, e.Shard)
			continue
		}
		if e.TUS < ext.first {
			ext.first = e.TUS
		}
		if t := e.TUS + e.DurUS; t > ext.last {
			ext.last = t
		}
	}
	shardSpans := map[int]*Span{}
	for _, shard := range shardOrder {
		ext := extents[shard]
		shardSpans[shard] = &Span{
			TraceID: traceID, SpanID: spanID(), ParentSpanID: root.SpanID,
			Name: fmt.Sprintf("lona.shard/%d", shard), Kind: SpanKindInternal,
			StartTimeUnixNano: at(ext.first), EndTimeUnixNano: at(ext.last),
			Attributes: []KeyValue{Int("lona.shard", int64(shard))},
		}
	}

	// Duration-bearing events become sub-spans; instantaneous events
	// become span events on their scope's span.
	var subSpans []Span
	for _, e := range tr.Events {
		parent := &root
		if e.Shard >= 0 {
			parent = shardSpans[e.Shard]
		}
		attrs := eventAttrs(e)
		if e.DurUS > 0 {
			subSpans = append(subSpans, Span{
				TraceID: traceID, SpanID: spanID(), ParentSpanID: parent.SpanID,
				Name: e.Kind, Kind: SpanKindInternal,
				StartTimeUnixNano: at(e.TUS), EndTimeUnixNano: at(e.TUS + e.DurUS),
				Attributes: attrs,
			})
			continue
		}
		parent.Events = append(parent.Events, SpanEvent{
			TimeUnixNano: at(e.TUS), Name: e.Kind, Attributes: attrs,
		})
	}
	spans := make([]Span, 0, 1+len(shardOrder)+len(subSpans))
	spans = append(spans, root)
	for _, shard := range shardOrder {
		spans = append(spans, *shardSpans[shard])
	}
	spans = append(spans, subSpans...)

	service := meta.Service
	if service == "" {
		service = "lona"
	}
	return &Request{ResourceSpans: []ResourceSpans{{
		Resource: Resource{Attributes: []KeyValue{Str("service.name", service)}},
		ScopeSpans: []ScopeSpans{{
			Scope: Scope{Name: "repro/internal/otlp"},
			Spans: spans,
		}},
	}}}
}

func eventAttrs(e trace.Event) []KeyValue {
	var attrs []KeyValue
	if e.N != 0 {
		attrs = append(attrs, Int("lona.n", int64(e.N)))
	}
	if e.Value != 0 {
		attrs = append(attrs, Float("lona.value", e.Value))
	}
	if e.Note != "" {
		attrs = append(attrs, Str("lona.note", e.Note))
	}
	return attrs
}
