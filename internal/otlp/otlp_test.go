package otlp

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// stitched builds a coordinator+worker timeline the way Server.execute
// does: local events, then worker events imported with a rebase offset.
func stitched() *trace.Trace {
	r := trace.New()
	r.Emit(trace.KindPlan, 0, 0, "backward: sharded")
	r.Emit(trace.KindProbe, 0, 0.9, "")
	r.ForShard(0).Span(trace.KindLaunch, time.Now(), 100, 0.9, "")
	r.Import([]trace.Event{
		{TUS: 10, DurUS: 200, Kind: trace.KindExec, Shard: 1, N: 40},
		{TUS: 230, Kind: trace.KindEmit, Shard: 1, N: 5},
	}, r.SinceUS())
	r.Emit(trace.KindLambda, 0, 0.75, "")
	return r.Snapshot()
}

func TestFromTraceAssemblesOneTrace(t *testing.T) {
	tr := stitched()
	req := FromTrace(tr, Meta{Attrs: []KeyValue{Str("lona.algo", "backward")}})
	if req == nil || len(req.ResourceSpans) != 1 {
		t.Fatalf("req = %+v", req)
	}
	spans := req.ResourceSpans[0].ScopeSpans[0].Spans

	// Every span shares the trace id, which is the recorder's id.
	for _, s := range spans {
		if s.TraceID != tr.ID {
			t.Fatalf("span %q trace id %q != %q", s.Name, s.TraceID, tr.ID)
		}
		if len(s.SpanID) != 16 {
			t.Fatalf("span %q id %q not 16 hex", s.Name, s.SpanID)
		}
	}

	// Root + two shard spans + two duration-bearing sub-spans (launch, exec).
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["lona.query"]
	if !ok || root.ParentSpanID != "" {
		t.Fatalf("missing root span or root has a parent: %+v", byName)
	}
	for _, name := range []string{"lona.shard/0", "lona.shard/1"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("missing %s in %v", name, byName)
		}
		if s.ParentSpanID != root.SpanID {
			t.Fatalf("%s parent = %q, want root %q", name, s.ParentSpanID, root.SpanID)
		}
	}
	if exec, ok := byName[trace.KindExec]; !ok || exec.ParentSpanID != byName["lona.shard/1"].SpanID {
		t.Fatalf("exec sub-span missing or mis-parented: %+v", byName[trace.KindExec])
	}
	// Instantaneous coordinator events landed on the root span.
	var names []string
	for _, ev := range root.Events {
		names = append(names, ev.Name)
	}
	want := map[string]bool{trace.KindPlan: false, trace.KindProbe: false, trace.KindLambda: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("root span missing event %q (have %v)", k, names)
		}
	}
}

// TestRequestWireShape pins the proto3 JSON mapping details a real
// collector depends on: camelCase keys, string-encoded nanos and ints.
func TestRequestWireShape(t *testing.T) {
	tr := stitched()
	body, err := json.Marshal(FromTrace(tr, Meta{Err: "deadline exceeded"}))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	rs := m["resourceSpans"].([]any)[0].(map[string]any)
	attr := rs["resource"].(map[string]any)["attributes"].([]any)[0].(map[string]any)
	if attr["key"] != "service.name" {
		t.Fatalf("resource attr: %v", attr)
	}
	if attr["value"].(map[string]any)["stringValue"] != "lona" {
		t.Fatalf("service.name value: %v", attr)
	}
	span := rs["scopeSpans"].([]any)[0].(map[string]any)["spans"].([]any)[0].(map[string]any)
	start, ok := span["startTimeUnixNano"].(string)
	if !ok {
		t.Fatalf("startTimeUnixNano must be a JSON string, got %T", span["startTimeUnixNano"])
	}
	if _, err := strconv.ParseInt(start, 10, 64); err != nil {
		t.Fatalf("startTimeUnixNano %q not an integer string", start)
	}
	if span["status"].(map[string]any)["code"].(float64) != StatusCodeError {
		t.Fatalf("error status not set: %v", span["status"])
	}
}

func TestTraceIDNormalization(t *testing.T) {
	if got := TraceID("0123456789abcdef0123456789abcdef"); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("full-width id mutated: %q", got)
	}
	if got := TraceID("deadbeef00000001"); got != "0000000000000000deadbeef00000001" {
		t.Fatalf("legacy 16-hex id not left-padded: %q", got)
	}
	for _, bad := range []string{"", "zzzz", "UPPERHEX00000000"} {
		got := TraceID(bad)
		if len(got) != 32 || !isHex(got) {
			t.Fatalf("TraceID(%q) = %q, want fresh 32-hex", bad, got)
		}
	}
}

// collector is a minimal OTLP/JSON collector stub: it records every
// span batch POSTed to /v1/traces.
type collector struct {
	mu     sync.Mutex
	traces map[string][]string // trace id -> span names
	posts  int
}

func newCollectorStub() (*collector, *httptest.Server) {
	c := &collector{traces: map[string][]string{}}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/traces" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.mu.Lock()
		c.posts++
		for _, rs := range req.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				for _, s := range ss.Spans {
					c.traces[s.TraceID] = append(c.traces[s.TraceID], s.Name)
				}
			}
		}
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	return c, srv
}

func TestExporterDeliversToCollector(t *testing.T) {
	c, srv := newCollectorStub()
	defer srv.Close()

	e := NewExporter(srv.URL, ExporterOptions{})
	tr := stitched()
	if !e.Export(FromTrace(tr, Meta{}), false) {
		t.Fatal("export rejected with an empty queue")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	names := c.traces[tr.ID]
	if len(names) < 3 {
		t.Fatalf("collector saw %d spans for trace %s, want >= 3 (%v)", len(names), tr.ID, names)
	}
	st := e.Stats()
	if st.Exported != 1 || st.Dropped != 0 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExporterSamplingAndSlowBypass(t *testing.T) {
	_, srv := newCollectorStub()
	defer srv.Close()
	e := NewExporter(srv.URL, ExporterOptions{SampleRatio: 0.0000001})
	defer e.Close(context.Background())

	// Ordinary traces: essentially all sampled out.
	sampledOut := 0
	for i := 0; i < 50; i++ {
		if !e.Export(FromTrace(stitched(), Meta{}), false) {
			sampledOut++
		}
	}
	if sampledOut < 45 {
		t.Fatalf("sampling barely dropped anything: %d/50", sampledOut)
	}
	// Slow traces bypass sampling entirely.
	for i := 0; i < 10; i++ {
		if !e.Export(FromTrace(stitched(), Meta{}), true) {
			t.Fatal("slow trace was sampled out or dropped")
		}
	}
	if st := e.Stats(); st.Sampled != int64(sampledOut) {
		t.Fatalf("sampled counter %d != %d", st.Sampled, sampledOut)
	}
}

func TestExporterDropsWhenQueueFull(t *testing.T) {
	// An endpoint that never answers, so the queue backs up.
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)

	e := NewExporter(srv.URL, ExporterOptions{QueueSize: 2})
	req := FromTrace(stitched(), Meta{})
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Dropped == 0 {
		e.Export(req, true)
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Close cannot flush a blocked collector; it must time out, not hang.
	if err := e.Close(ctx); err == nil {
		t.Fatal("Close returned nil while the collector was hung")
	}
}

func TestExporterCountsCollectorFailures(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no thanks", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	e := NewExporter(srv.URL, ExporterOptions{})
	e.Export(FromTrace(stitched(), Meta{}), true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e.Close(ctx)
	if st := e.Stats(); st.Failed != 1 || st.Exported != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilSafety(t *testing.T) {
	var e *Exporter
	if e.Export(nil, true) {
		t.Fatal("nil exporter accepted a batch")
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st != (ExporterStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if FromTrace(nil, Meta{}) != nil {
		t.Fatal("nil trace produced a request")
	}
}
