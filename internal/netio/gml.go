package netio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// ReadGML parses the subset of the GML format that public network
// archives use (Newman's cond-mat 2005 — the paper's first dataset — ships
// as GML):
//
//	graph [
//	  directed 0
//	  node [ id 7 label "..." ]
//	  edge [ source 7 target 12 ]
//	]
//
// Node ids may be arbitrary non-negative integers; they are densified to
// 0..n-1 in first-appearance order, and the returned ids slice maps dense
// id → original GML id. Unknown keys and nested blocks are skipped, so
// files with weights, labels, or layout hints load fine. Self-loops are
// dropped (the engine rejects them) rather than failing the file.
func ReadGML(r io.Reader) (g *graph.Graph, ids []int, err error) {
	tokens, err := tokenizeGML(r)
	if err != nil {
		return nil, nil, err
	}
	p := &gmlParser{tokens: tokens}
	// Skip header keys (Creator, Version, …) until the graph block.
	for {
		tok, ok := p.next()
		if !ok {
			return nil, nil, fmt.Errorf("netio: GML has no graph block")
		}
		if tok == "graph" {
			break
		}
		if err := p.skipValue(tok); err != nil {
			return nil, nil, err
		}
	}
	if err := p.expect("["); err != nil {
		return nil, nil, err
	}

	directed := false
	dense := map[int]int{}
	var original []int
	intern := func(gmlID int) int {
		if id, ok := dense[gmlID]; ok {
			return id
		}
		id := len(original)
		dense[gmlID] = id
		original = append(original, gmlID)
		return id
	}
	type edge struct{ u, v int }
	var edges []edge

	for {
		tok, ok := p.next()
		if !ok {
			return nil, nil, fmt.Errorf("netio: GML graph block not closed")
		}
		switch tok {
		case "]":
			b := graph.NewBuilder(len(original), directed)
			for _, e := range edges {
				if e.u == e.v {
					continue // tolerated: drop self-loops
				}
				b.AddEdge(e.u, e.v)
			}
			g := b.Build()
			return g, original, nil
		case "directed":
			val, err := p.intValue("directed")
			if err != nil {
				return nil, nil, err
			}
			directed = val != 0
		case "node":
			fields, err := p.block()
			if err != nil {
				return nil, nil, err
			}
			id, ok := fields["id"]
			if !ok {
				return nil, nil, fmt.Errorf("netio: GML node block without id")
			}
			intern(id)
		case "edge":
			fields, err := p.block()
			if err != nil {
				return nil, nil, err
			}
			src, okS := fields["source"]
			dst, okT := fields["target"]
			if !okS || !okT {
				return nil, nil, fmt.Errorf("netio: GML edge block missing source/target")
			}
			edges = append(edges, edge{intern(src), intern(dst)})
		default:
			// Unknown top-level key: skip its value (scalar or block).
			if err := p.skipValue(tok); err != nil {
				return nil, nil, err
			}
		}
	}
}

// tokenizeGML splits a GML stream into tokens: brackets, bare words,
// numbers, and quoted strings (returned with quotes stripped and a marker
// prefix so the parser can tell them from bare words).
func tokenizeGML(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	var tokens []string
	var current strings.Builder
	flush := func() {
		if current.Len() > 0 {
			tokens = append(tokens, current.String())
			current.Reset()
		}
	}
	inString := false
	for {
		ch, _, err := br.ReadRune()
		if err == io.EOF {
			if inString {
				return nil, fmt.Errorf("netio: GML string not terminated")
			}
			flush()
			return tokens, nil
		}
		if err != nil {
			return nil, fmt.Errorf("netio: reading GML: %w", err)
		}
		if inString {
			if ch == '"' {
				tokens = append(tokens, "\x00"+current.String()) // string marker
				current.Reset()
				inString = false
				continue
			}
			current.WriteRune(ch)
			continue
		}
		switch {
		case ch == '"':
			flush()
			inString = true
		case ch == '[' || ch == ']':
			flush()
			tokens = append(tokens, string(ch))
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			flush()
		case ch == '#': // comment to end of line (non-standard but common)
			flush()
			for {
				c, _, err := br.ReadRune()
				if err != nil || c == '\n' {
					break
				}
			}
		default:
			current.WriteRune(ch)
		}
	}
}

type gmlParser struct {
	tokens []string
	pos    int
}

func (p *gmlParser) next() (string, bool) {
	if p.pos >= len(p.tokens) {
		return "", false
	}
	tok := p.tokens[p.pos]
	p.pos++
	return tok, true
}

func (p *gmlParser) expect(want string) error {
	tok, ok := p.next()
	if !ok {
		return fmt.Errorf("netio: GML ended, expected %q", want)
	}
	if tok != want {
		return fmt.Errorf("netio: GML expected %q, got %q", want, tok)
	}
	return nil
}

func (p *gmlParser) intValue(key string) (int, error) {
	tok, ok := p.next()
	if !ok {
		return 0, fmt.Errorf("netio: GML key %q without value", key)
	}
	v, err := strconv.Atoi(strings.TrimPrefix(tok, "\x00"))
	if err != nil {
		return 0, fmt.Errorf("netio: GML key %q has non-integer value %q", key, tok)
	}
	return v, nil
}

// block parses "[ key value ... ]" collecting integer-valued fields;
// nested blocks and non-integer values are skipped.
func (p *gmlParser) block() (map[string]int, error) {
	if err := p.expect("["); err != nil {
		return nil, err
	}
	fields := map[string]int{}
	for {
		tok, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("netio: GML block not closed")
		}
		if tok == "]" {
			return fields, nil
		}
		key := tok
		if err := p.skipOrCapture(key, fields); err != nil {
			return nil, err
		}
	}
}

// skipOrCapture consumes key's value; integers are recorded into fields.
func (p *gmlParser) skipOrCapture(key string, fields map[string]int) error {
	tok, ok := p.next()
	if !ok {
		return fmt.Errorf("netio: GML key %q without value", key)
	}
	if tok == "[" {
		p.pos-- // rewind so skipValue sees the bracket
		return p.skipValue(key)
	}
	if v, err := strconv.Atoi(strings.TrimPrefix(tok, "\x00")); err == nil {
		fields[key] = v
	}
	return nil
}

// skipValue consumes the value following an unknown key: a scalar token or
// a balanced [...] block.
func (p *gmlParser) skipValue(key string) error {
	tok, ok := p.next()
	if !ok {
		return fmt.Errorf("netio: GML key %q without value", key)
	}
	if tok != "[" {
		return nil
	}
	depth := 1
	for depth > 0 {
		t, ok := p.next()
		if !ok {
			return fmt.Errorf("netio: GML block under %q not closed", key)
		}
		switch t {
		case "[":
			depth++
		case "]":
			depth--
		}
	}
	return nil
}

// WriteGML writes g in GML form with dense ids, interoperable with
// standard network tooling.
func WriteGML(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	directed := 0
	if g.Directed() {
		directed = 1
	}
	if _, err := fmt.Fprintf(bw, "graph [\n  directed %d\n", directed); err != nil {
		return err
	}
	for u := 0; u < g.NumNodes(); u++ {
		if _, err := fmt.Fprintf(bw, "  node [ id %d ]\n", u); err != nil {
			return err
		}
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.Directed() && int(v) < u {
				continue
			}
			if _, err := fmt.Fprintf(bw, "  edge [ source %d target %d ]\n", u, v); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "]"); err != nil {
		return err
	}
	return bw.Flush()
}
