package netio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// rebuildDirected copies an undirected graph's arcs into a directed one.
func rebuildDirected(src *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(src.NumNodes(), true)
	for u := 0; u < src.NumNodes(); u++ {
		for _, v := range src.Neighbors(u) {
			b.AddEdge(u, int(v))
		}
	}
	return b.Build()
}

const sampleGML = `
# a cond-mat-style file
Creator "test"
graph [
  directed 0
  node [ id 10 label "alice" ]
  node [ id 20 label "bob" ]
  node [
    id 30
    label "carol"
    graphics [ x 1.5 y 2.5 ]
  ]
  edge [ source 10 target 20 value 2 ]
  edge [ source 20 target 30 ]
  edge [ source 30 target 30 ]
]
`

func TestReadGMLSample(t *testing.T) {
	g, ids, err := ReadGML(strings.NewReader(sampleGML))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (self-loop dropped)", g.NumEdges())
	}
	if g.Directed() {
		t.Fatal("undirected flag lost")
	}
	want := []int{10, 20, 30}
	for i, w := range want {
		if ids[i] != w {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	// alice(0)-bob(1), bob(1)-carol(2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("edge structure wrong")
	}
}

func TestReadGMLDirected(t *testing.T) {
	input := `graph [ directed 1 node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 ] ]`
	g, _, err := ReadGML(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("directed flag lost")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("directed arc wrong")
	}
}

func TestReadGMLImplicitNodes(t *testing.T) {
	// Edges referencing never-declared nodes must still intern them.
	input := `graph [ edge [ source 5 target 9 ] ]`
	g, ids, err := ReadGML(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("nodes/edges = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if ids[0] != 5 || ids[1] != 9 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestReadGMLMalformed(t *testing.T) {
	cases := []struct{ name, input string }{
		{"empty", ""},
		{"no graph", "node [ id 1 ]"},
		{"unclosed graph", "graph [ node [ id 1 ]"},
		{"unclosed node", "graph [ node [ id 1 ]"},
		{"node without id", "graph [ node [ label \"x\" ] ]"},
		{"edge without target", "graph [ edge [ source 1 ] ]"},
		{"unterminated string", "graph [ node [ id 1 label \"x ] ]"},
		{"directed without value", "graph [ directed"},
	}
	for _, c := range cases {
		if _, _, err := ReadGML(strings.NewReader(c.input)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestGMLRoundTrip(t *testing.T) {
	g := gen.ErdosRenyi(40, 90, 8)
	var buf bytes.Buffer
	if err := WriteGML(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, ids, err := ReadGML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Fatal("GML round trip changed the graph")
	}
	for i, id := range ids {
		if i != id {
			t.Fatalf("dense writer produced non-identity ids: %v", ids[:5])
		}
	}
}

func TestGMLRoundTripDirected(t *testing.T) {
	base := gen.ErdosRenyi(10, 20, 9) // undirected base; rebuild as directed
	db := rebuildDirected(base)
	var buf bytes.Buffer
	if err := WriteGML(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadGML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(db, back) {
		t.Fatal("directed GML round trip changed the graph")
	}
}
