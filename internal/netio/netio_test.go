package netio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func graphsEqual(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumArcs() != b.NumArcs() || a.Directed() != b.Directed() {
		return false
	}
	for u := 0; u < a.NumNodes(); u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestEdgeListRoundTripUndirected(t *testing.T) {
	g := gen.ErdosRenyi(50, 120, 1)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, back) {
		t.Fatal("edge-list round trip changed the graph")
	}
}

func TestEdgeListRoundTripDirected(t *testing.T) {
	b := graph.NewBuilder(5, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(4, 3)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Directed() {
		t.Fatal("directedness lost")
	}
	if !graphsEqual(g, back) {
		t.Fatal("directed edge-list round trip changed the graph")
	}
}

func TestEdgeListIgnoresCommentsAndBlanks(t *testing.T) {
	input := "# lona-edgelist nodes=3 directed=0\n\n# a comment\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
}

func TestEdgeListRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"bad header", "nodes=3\n0 1\n"},
		{"bad node count", "# lona-edgelist nodes=x directed=0\n"},
		{"bad directed flag", "# lona-edgelist nodes=3 directed=2\n"},
		{"unknown field", "# lona-edgelist nodes=3 directed=0 color=red\n"},
		{"three fields", "# lona-edgelist nodes=3 directed=0\n0 1 2\n"},
		{"non-numeric", "# lona-edgelist nodes=3 directed=0\na b\n"},
		{"out of range", "# lona-edgelist nodes=3 directed=0\n0 9\n"},
		{"self loop", "# lona-edgelist nodes=3 directed=0\n1 1\n"},
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c.input)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestBinaryGraphRoundTrip(t *testing.T) {
	for _, directed := range []bool{false, true} {
		b := graph.NewBuilder(30, directed)
		g0 := gen.ErdosRenyi(30, 60, 2)
		for u := 0; u < 30; u++ {
			for _, v := range g0.Neighbors(u) {
				if directed || int(v) > u {
					b.AddEdge(u, int(v))
				}
			}
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteBinaryGraph(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinaryGraph(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, back) {
			t.Fatalf("binary round trip changed the graph (directed=%v)", directed)
		}
	}
}

func TestBinaryGraphRoundTripProperty(t *testing.T) {
	property := func(seedRaw uint32) bool {
		g := gen.ErdosRenyi(40, 100, int64(seedRaw))
		var buf bytes.Buffer
		if err := WriteBinaryGraph(&buf, g); err != nil {
			return false
		}
		back, err := ReadBinaryGraph(&buf)
		if err != nil {
			return false
		}
		return graphsEqual(g, back)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryGraphRejectsCorruption(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 3)
	var buf bytes.Buffer
	if err := WriteBinaryGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at every interesting boundary must error, not panic.
	for _, cut := range []int{0, 4, 8, 20, len(good) / 2, len(good) - 1} {
		if _, err := ReadBinaryGraph(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Corrupt magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ReadBinaryGraph(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Corrupt version (high word of the first header u64).
	bad = append([]byte(nil), good...)
	bad[8+7] = 0xFF
	if _, err := ReadBinaryGraph(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestScoresRoundTrip(t *testing.T) {
	scores := []float64{0, 0.25, 0.5, 1, 0.0001}
	var buf bytes.Buffer
	if err := WriteScores(&buf, scores); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScores(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(scores) {
		t.Fatalf("length %d, want %d", len(back), len(scores))
	}
	for i := range scores {
		if back[i] != scores[i] {
			t.Fatalf("score[%d] = %v, want %v", i, back[i], scores[i])
		}
	}
}

func TestScoresEmptyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteScores(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScores(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty round trip produced %d scores", len(back))
	}
}

func TestScoresRejectInvalid(t *testing.T) {
	// Out-of-range values written raw must be rejected on read.
	var buf bytes.Buffer
	if err := WriteScores(&buf, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Overwrite the single float64 payload (last 8 bytes) with 2.0 bits.
	for i := 0; i < 8; i++ {
		raw[len(raw)-8+i] = 0
	}
	raw[len(raw)-1] = 0x40 // float64(2.0) little-endian: 00..00 40
	if _, err := ReadScores(bytes.NewReader(raw)); err == nil {
		t.Fatal("score 2.0 accepted")
	}
	if _, err := ReadScores(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadScores(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}
