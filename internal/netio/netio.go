// Package netio persists graphs and relevance-score vectors. Two graph
// formats are supported:
//
//   - a human-readable text edge list ("u v" per line, with a header
//     comment carrying the node count and directedness), interoperable
//     with the usual network-dataset archives;
//   - a compact little-endian binary CSR format for the multi-million-node
//     simulated datasets, so `lonabench` does not re-generate per run.
//
// Score vectors have matching text and binary forms. All readers validate
// structure and fail with descriptive errors rather than building corrupt
// in-memory graphs.
package netio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteEdgeList writes g as a text edge list. Undirected edges appear once
// (u < v); directed arcs appear as stored.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	directed := 0
	if g.Directed() {
		directed = 1
	}
	if _, err := fmt.Fprintf(bw, "# lona-edgelist nodes=%d directed=%d\n", g.NumNodes(), directed); err != nil {
		return err
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.Directed() && int(v) < u {
				continue // emit each undirected edge once
			}
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text format written by WriteEdgeList. Lines
// starting with '#' other than the header are ignored, so hand-annotated
// files load fine.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("netio: empty edge list (missing header): %w", sc.Err())
	}
	header := sc.Text()
	nodes, directed, err := parseHeader(header)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(nodes, directed)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("netio: line %d: want 'u v', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("netio: line %d: bad source %q: %v", line, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("netio: line %d: bad target %q: %v", line, fields[1], err)
		}
		if err := b.TryAddEdge(u, v); err != nil {
			return nil, fmt.Errorf("netio: line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netio: reading edge list: %w", err)
	}
	return b.Build(), nil
}

func parseHeader(header string) (nodes int, directed bool, err error) {
	if !strings.HasPrefix(header, "# lona-edgelist") {
		return 0, false, fmt.Errorf("netio: bad header %q (want '# lona-edgelist nodes=N directed=0|1')", header)
	}
	for _, field := range strings.Fields(header)[2:] {
		key, value, ok := strings.Cut(field, "=")
		if !ok {
			return 0, false, fmt.Errorf("netio: malformed header field %q", field)
		}
		switch key {
		case "nodes":
			nodes, err = strconv.Atoi(value)
			if err != nil || nodes < 0 {
				return 0, false, fmt.Errorf("netio: bad node count %q", value)
			}
		case "directed":
			switch value {
			case "0":
				directed = false
			case "1":
				directed = true
			default:
				return 0, false, fmt.Errorf("netio: bad directed flag %q", value)
			}
		default:
			return 0, false, fmt.Errorf("netio: unknown header field %q", key)
		}
	}
	return nodes, directed, nil
}

// Binary graph format:
//
//	magic "LONAGRPH" | version u32 | flags u32 (bit0 = directed)
//	| nodes u64 | arcs u64 | offsets [(nodes+1) × u64] | adj [arcs × u32]
const (
	graphMagic    = "LONAGRPH"
	graphVersion  = 1
	flagDirected  = 1 << 0
	scoresMagic   = "LONASCRS"
	scoresVersion = 1
)

// WriteBinaryGraph writes g in the binary CSR format.
func WriteBinaryGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(graphMagic); err != nil {
		return err
	}
	flags := uint32(0)
	if g.Directed() {
		flags |= flagDirected
	}
	n := g.NumNodes()
	header := []uint64{uint64(graphVersion)<<32 | uint64(flags), uint64(n), uint64(g.NumArcs())}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	var off uint64
	for u := 0; u <= n; u++ {
		if u < n {
			if err := binary.Write(bw, binary.LittleEndian, off); err != nil {
				return err
			}
			off += uint64(g.Degree(u))
			continue
		}
		if err := binary.Write(bw, binary.LittleEndian, off); err != nil {
			return err
		}
	}
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		if err := binary.Write(bw, binary.LittleEndian, nbrs); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinaryGraph parses the binary CSR format, validating magic, version,
// offsets monotonicity, and arc-target ranges.
func ReadBinaryGraph(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(graphMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("netio: reading graph magic: %w", err)
	}
	if string(magic) != graphMagic {
		return nil, fmt.Errorf("netio: bad magic %q, want %q", magic, graphMagic)
	}
	var verFlags, nodes64, arcs64 uint64
	for _, p := range []*uint64{&verFlags, &nodes64, &arcs64} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("netio: reading graph header: %w", err)
		}
	}
	version := uint32(verFlags >> 32)
	flags := uint32(verFlags)
	if version != graphVersion {
		return nil, fmt.Errorf("netio: unsupported graph format version %d", version)
	}
	if nodes64 > math.MaxInt32 {
		return nil, fmt.Errorf("netio: node count %d exceeds int32 id space", nodes64)
	}
	n := int(nodes64)
	arcs := int(arcs64)
	directed := flags&flagDirected != 0

	offsets := make([]uint64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, fmt.Errorf("netio: reading offsets: %w", err)
	}
	if offsets[0] != 0 || offsets[n] != uint64(arcs) {
		return nil, fmt.Errorf("netio: offsets endpoints [%d,%d] inconsistent with %d arcs", offsets[0], offsets[n], arcs)
	}
	adj := make([]int32, arcs)
	if err := binary.Read(br, binary.LittleEndian, adj); err != nil {
		return nil, fmt.Errorf("netio: reading adjacency: %w", err)
	}

	b := graph.NewBuilder(n, directed)
	for u := 0; u < n; u++ {
		if offsets[u] > offsets[u+1] {
			return nil, fmt.Errorf("netio: offsets not monotone at node %d", u)
		}
		for p := offsets[u]; p < offsets[u+1]; p++ {
			v := int(adj[p])
			if !directed && v < u {
				continue // each undirected edge is present twice in CSR
			}
			if err := b.TryAddEdge(u, v); err != nil {
				return nil, fmt.Errorf("netio: arc %d: %v", p, err)
			}
		}
	}
	g := b.Build()
	if g.NumArcs() != arcs {
		return nil, fmt.Errorf("netio: rebuilt graph has %d arcs, file declared %d", g.NumArcs(), arcs)
	}
	return g, nil
}

// WriteScores writes a relevance vector in binary form:
//
//	magic "LONASCRS" | version u32 | count u64 | values [count × f64]
func WriteScores(w io.Writer, scores []float64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(scoresMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(scoresVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(scores))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, scores); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadScores parses the binary score format and validates every value is a
// legal relevance in [0,1].
func ReadScores(r io.Reader) ([]float64, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(scoresMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("netio: reading scores magic: %w", err)
	}
	if string(magic) != scoresMagic {
		return nil, fmt.Errorf("netio: bad scores magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("netio: reading scores version: %w", err)
	}
	if version != scoresVersion {
		return nil, fmt.Errorf("netio: unsupported scores version %d", version)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("netio: reading scores count: %w", err)
	}
	if count > 1<<33 {
		return nil, fmt.Errorf("netio: score count %d implausibly large", count)
	}
	scores := make([]float64, count)
	if err := binary.Read(br, binary.LittleEndian, scores); err != nil {
		return nil, fmt.Errorf("netio: reading score values: %w", err)
	}
	for v, s := range scores {
		if math.IsNaN(s) || s < 0 || s > 1 {
			return nil, fmt.Errorf("netio: node %d score %v outside [0,1]", v, s)
		}
	}
	return scores, nil
}
