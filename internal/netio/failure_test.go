package netio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/gen"
)

// errReader fails after delivering a prefix, simulating a truncated pipe
// or failing disk mid-read.
type errReader struct {
	data  []byte
	pos   int
	errAt int
}

var errInjected = errors.New("injected I/O failure")

func (r *errReader) Read(p []byte) (int, error) {
	if r.pos >= r.errAt {
		return 0, errInjected
	}
	n := copy(p, r.data[r.pos:min(len(r.data), r.errAt)])
	r.pos += n
	if n == 0 {
		return 0, errInjected
	}
	return n, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestReadBinaryGraphPropagatesIOErrors(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 1)
	var buf bytes.Buffer
	if err := WriteBinaryGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, errAt := range []int{0, 4, 12, 40, len(data) / 2} {
		_, err := ReadBinaryGraph(&errReader{data: data, errAt: errAt})
		if err == nil {
			t.Fatalf("errAt=%d: no error surfaced", errAt)
		}
	}
}

func TestReadEdgeListPropagatesIOErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, gen.ErdosRenyi(20, 40, 2)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadEdgeList(&errReader{data: data, errAt: len(data) / 2}); err == nil {
		t.Fatal("mid-stream failure not surfaced")
	}
}

func TestReadScoresPropagatesIOErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteScores(&buf, []float64{0.1, 0.2, 0.3}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, errAt := range []int{0, 6, 14, 20} {
		if _, err := ReadScores(&errReader{data: data, errAt: errAt}); err == nil {
			t.Fatalf("errAt=%d: no error surfaced", errAt)
		}
	}
}

func TestReadGMLPropagatesIOErrors(t *testing.T) {
	input := `graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 ] ]`
	if _, _, err := ReadGML(&errReader{data: []byte(input), errAt: len(input) / 2}); err == nil {
		t.Fatal("mid-stream failure not surfaced")
	}
}

// failWriter rejects writes after a budget, simulating a full disk.
type failWriter struct {
	budget int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errInjected
	}
	n := len(p)
	if n > w.budget {
		n = w.budget
	}
	w.budget -= n
	if n < len(p) {
		return n, errInjected
	}
	return n, nil
}

func TestWritersPropagateIOErrors(t *testing.T) {
	g := gen.ErdosRenyi(50, 150, 3)
	if err := WriteBinaryGraph(&failWriter{budget: 16}, g); err == nil {
		t.Fatal("binary graph writer swallowed failure")
	}
	if err := WriteEdgeList(&failWriter{budget: 16}, g); err == nil {
		t.Fatal("edge list writer swallowed failure")
	}
	if err := WriteGML(&failWriter{budget: 16}, g); err == nil {
		t.Fatal("GML writer swallowed failure")
	}
	scores := make([]float64, 4096)
	if err := WriteScores(&failWriter{budget: 16}, scores); err == nil {
		t.Fatal("scores writer swallowed failure")
	}
}

func TestReadGMLWhitespaceAndCommentsRobust(t *testing.T) {
	input := "Creator \"x\"\n# comment line\ngraph\t[\nnode\n[\nid\n3\n]\nnode [ id 4 ]\nedge [ source 3 target 4 ]\n]\n"
	g, ids, err := ReadGML(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("nodes/edges = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if ids[0] != 3 || ids[1] != 4 {
		t.Fatalf("ids = %v", ids)
	}
}

var _ io.Reader = (*errReader)(nil)
