// Package attr implements the paper's node-attribute model: "Most of
// social and biological networks often have a node attribute set, denoted
// as Λ = {a1, a2, …, at}. Each node has a value for these attributes".
// Relevance functions (problem P1) are then derived from attributes — a
// boolean predicate ("is interested in online RPG games"), a normalized
// numeric attribute, a categorical match, or a learned classifier score
// ("how likely a user is a database expert") — and handed to the core
// engine as a relevance vector.
package attr

import (
	"fmt"
	"math"
)

// Kind is an attribute's type.
type Kind uint8

const (
	// Bool attributes hold flags (e.g. "plays RPGs").
	Bool Kind = iota
	// Numeric attributes hold real values (e.g. "posts per week").
	Numeric
	// Categorical attributes hold one label per node out of a small set
	// (e.g. "country").
	Categorical
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Bool:
		return "bool"
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attribute is one column of Λ: a named, typed value per node.
type Attribute struct {
	Name   string
	Kind   Kind
	Bools  []bool    // Kind == Bool
	Nums   []float64 // Kind == Numeric
	Cats   []int32   // Kind == Categorical: index into Labels
	Labels []string  // Kind == Categorical: distinct label set
}

func (a *Attribute) len() int {
	switch a.Kind {
	case Bool:
		return len(a.Bools)
	case Numeric:
		return len(a.Nums)
	default:
		return len(a.Cats)
	}
}

// Table is a node-attribute set Λ over a fixed node count.
type Table struct {
	n     int
	attrs []*Attribute
	index map[string]*Attribute
}

// NewTable returns an empty attribute table for n nodes.
func NewTable(n int) *Table {
	if n < 0 {
		panic("attr: negative node count")
	}
	return &Table{n: n, index: make(map[string]*Attribute)}
}

// NumNodes returns the node count.
func (t *Table) NumNodes() int { return t.n }

// Names lists attributes in insertion order.
func (t *Table) Names() []string {
	names := make([]string, len(t.attrs))
	for i, a := range t.attrs {
		names[i] = a.Name
	}
	return names
}

// Attribute returns the named attribute.
func (t *Table) Attribute(name string) (*Attribute, error) {
	a, ok := t.index[name]
	if !ok {
		return nil, fmt.Errorf("attr: no attribute %q", name)
	}
	return a, nil
}

func (t *Table) add(a *Attribute) error {
	if _, dup := t.index[a.Name]; dup {
		return fmt.Errorf("attr: duplicate attribute %q", a.Name)
	}
	if a.len() != t.n {
		return fmt.Errorf("attr: attribute %q has %d values for %d nodes", a.Name, a.len(), t.n)
	}
	t.attrs = append(t.attrs, a)
	t.index[a.Name] = a
	return nil
}

// AddBool adds a boolean attribute.
func (t *Table) AddBool(name string, values []bool) error {
	return t.add(&Attribute{Name: name, Kind: Bool, Bools: values})
}

// AddNumeric adds a numeric attribute; values must be finite.
func (t *Table) AddNumeric(name string, values []float64) error {
	for v, x := range values {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("attr: attribute %q node %d is not finite: %v", name, v, x)
		}
	}
	return t.add(&Attribute{Name: name, Kind: Numeric, Nums: values})
}

// AddCategorical adds a categorical attribute: cats[v] indexes labels.
func (t *Table) AddCategorical(name string, cats []int32, labels []string) error {
	for v, c := range cats {
		if c < 0 || int(c) >= len(labels) {
			return fmt.Errorf("attr: attribute %q node %d has label index %d of %d", name, v, c, len(labels))
		}
	}
	return t.add(&Attribute{Name: name, Kind: Categorical, Cats: cats, Labels: labels})
}

// RelevanceBool derives the 0/1 relevance f(v) = [attribute is true] —
// the paper's "if a user recommends a movie or not".
func (t *Table) RelevanceBool(name string) ([]float64, error) {
	a, err := t.Attribute(name)
	if err != nil {
		return nil, err
	}
	if a.Kind != Bool {
		return nil, fmt.Errorf("attr: %q is %v, want bool", name, a.Kind)
	}
	scores := make([]float64, t.n)
	for v, b := range a.Bools {
		if b {
			scores[v] = 1
		}
	}
	return scores, nil
}

// RelevanceNumeric derives f(v) by min-max normalizing a numeric
// attribute into [0,1]; a constant attribute maps to all zeros.
func (t *Table) RelevanceNumeric(name string) ([]float64, error) {
	a, err := t.Attribute(name)
	if err != nil {
		return nil, err
	}
	if a.Kind != Numeric {
		return nil, fmt.Errorf("attr: %q is %v, want numeric", name, a.Kind)
	}
	scores := make([]float64, t.n)
	if t.n == 0 {
		return scores, nil
	}
	lo, hi := a.Nums[0], a.Nums[0]
	for _, x := range a.Nums {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		return scores, nil
	}
	for v, x := range a.Nums {
		scores[v] = (x - lo) / (hi - lo)
	}
	return scores, nil
}

// RelevanceCategory derives f(v) = [attribute == label].
func (t *Table) RelevanceCategory(name, label string) ([]float64, error) {
	a, err := t.Attribute(name)
	if err != nil {
		return nil, err
	}
	if a.Kind != Categorical {
		return nil, fmt.Errorf("attr: %q is %v, want categorical", name, a.Kind)
	}
	target := int32(-1)
	for i, l := range a.Labels {
		if l == label {
			target = int32(i)
			break
		}
	}
	if target == -1 {
		return nil, fmt.Errorf("attr: attribute %q has no label %q (labels: %v)", name, label, a.Labels)
	}
	scores := make([]float64, t.n)
	for v, c := range a.Cats {
		if c == target {
			scores[v] = 1
		}
	}
	return scores, nil
}

// LogisticModel is a linear classifier over attributes squashed through a
// sigmoid — the paper's P1 "classification function, e.g., how likely a
// user is a database expert". Bool features contribute their weight when
// true; numeric features contribute weight × min-max-normalized value;
// categorical features are not supported (one-hot them as bools).
type LogisticModel struct {
	Bias    float64
	Weights map[string]float64
}

// Relevance evaluates the model on every node, yielding scores in (0,1).
func (m LogisticModel) Relevance(t *Table) ([]float64, error) {
	type term struct {
		weight float64
		bools  []bool
		nums   []float64 // pre-normalized
	}
	terms := make([]term, 0, len(m.Weights))
	for name, weight := range m.Weights {
		a, err := t.Attribute(name)
		if err != nil {
			return nil, err
		}
		switch a.Kind {
		case Bool:
			terms = append(terms, term{weight: weight, bools: a.Bools})
		case Numeric:
			normalized, err := t.RelevanceNumeric(name)
			if err != nil {
				return nil, err
			}
			terms = append(terms, term{weight: weight, nums: normalized})
		default:
			return nil, fmt.Errorf("attr: logistic model cannot use %v attribute %q (one-hot it)", a.Kind, name)
		}
	}
	scores := make([]float64, t.n)
	for v := range scores {
		z := m.Bias
		for _, tm := range terms {
			switch {
			case tm.bools != nil:
				if tm.bools[v] {
					z += tm.weight
				}
			default:
				z += tm.weight * tm.nums[v]
			}
		}
		scores[v] = 1 / (1 + math.Exp(-z))
	}
	return scores, nil
}
