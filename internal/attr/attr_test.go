package attr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableBasics(t *testing.T) {
	tab := NewTable(3)
	if tab.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", tab.NumNodes())
	}
	if err := tab.AddBool("rpg", []bool{true, false, true}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddNumeric("posts", []float64{1, 5, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddCategorical("country", []int32{0, 1, 0}, []string{"us", "jp"}); err != nil {
		t.Fatal(err)
	}
	names := tab.Names()
	if len(names) != 3 || names[0] != "rpg" || names[2] != "country" {
		t.Fatalf("Names = %v", names)
	}
	if _, err := tab.Attribute("missing"); err == nil {
		t.Fatal("missing attribute found")
	}
}

func TestTableRejectsBadInput(t *testing.T) {
	tab := NewTable(2)
	if err := tab.AddBool("x", []bool{true}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := tab.AddBool("x", []bool{true, false}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddBool("x", []bool{false, false}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := tab.AddNumeric("n", []float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := tab.AddNumeric("n", []float64{1, math.Inf(1)}); err == nil {
		t.Fatal("Inf accepted")
	}
	if err := tab.AddCategorical("c", []int32{0, 5}, []string{"a"}); err == nil {
		t.Fatal("out-of-range label index accepted")
	}
}

func TestRelevanceBool(t *testing.T) {
	tab := NewTable(4)
	if err := tab.AddBool("fan", []bool{true, false, false, true}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddNumeric("age", []float64{20, 30, 40, 50}); err != nil {
		t.Fatal(err)
	}
	scores, err := tab.RelevanceBool("fan")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, 0, 1}
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("scores = %v, want %v", scores, want)
		}
	}
	if _, err := tab.RelevanceBool("age"); err == nil {
		t.Fatal("numeric attribute served as bool")
	}
}

func TestRelevanceNumericNormalization(t *testing.T) {
	tab := NewTable(3)
	if err := tab.AddNumeric("score", []float64{10, 20, 15}); err != nil {
		t.Fatal(err)
	}
	scores, err := tab.RelevanceNumeric("score")
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != 0 || scores[1] != 1 || scores[2] != 0.5 {
		t.Fatalf("normalized = %v, want [0 1 0.5]", scores)
	}
	// Constant attribute: all zeros, not NaN.
	if err := tab.AddNumeric("flat", []float64{7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	flat, err := tab.RelevanceNumeric("flat")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range flat {
		if s != 0 {
			t.Fatalf("flat attribute normalized to %v", flat)
		}
	}
}

func TestRelevanceCategory(t *testing.T) {
	tab := NewTable(4)
	if err := tab.AddCategorical("country", []int32{0, 1, 1, 2}, []string{"us", "jp", "de"}); err != nil {
		t.Fatal(err)
	}
	scores, err := tab.RelevanceCategory("country", "jp")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 1, 0}
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("scores = %v, want %v", scores, want)
		}
	}
	if _, err := tab.RelevanceCategory("country", "fr"); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestLogisticModel(t *testing.T) {
	tab := NewTable(3)
	if err := tab.AddBool("expert_flag", []bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddNumeric("answers", []float64{0, 50, 100}); err != nil {
		t.Fatal(err)
	}
	model := LogisticModel{
		Bias:    -2,
		Weights: map[string]float64{"expert_flag": 3, "answers": 4},
	}
	scores, err := model.Relevance(tab)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0: z = -2 + 3 = 1 → σ(1) ≈ 0.731
	// Node 1: z = -2 + 4·0.5 = 0 → 0.5
	// Node 2: z = -2 + 4·1 = 2 → σ(2) ≈ 0.881
	wantApprox := []float64{0.731, 0.5, 0.881}
	for i, w := range wantApprox {
		if math.Abs(scores[i]-w) > 0.001 {
			t.Fatalf("scores = %v, want ≈ %v", scores, wantApprox)
		}
	}
}

func TestLogisticModelRejectsCategorical(t *testing.T) {
	tab := NewTable(2)
	if err := tab.AddCategorical("c", []int32{0, 0}, []string{"x"}); err != nil {
		t.Fatal(err)
	}
	model := LogisticModel{Weights: map[string]float64{"c": 1}}
	if _, err := model.Relevance(tab); err == nil {
		t.Fatal("categorical feature accepted")
	}
	model = LogisticModel{Weights: map[string]float64{"missing": 1}}
	if _, err := model.Relevance(tab); err == nil {
		t.Fatal("missing feature accepted")
	}
}

// Property: logistic scores are always valid relevance values in (0,1).
func TestLogisticAlwaysValidProperty(t *testing.T) {
	property := func(flags []bool, weight, bias float64) bool {
		if len(flags) == 0 {
			return true
		}
		if math.IsNaN(weight) || math.IsInf(weight, 0) || math.IsNaN(bias) || math.IsInf(bias, 0) {
			return true // quick can generate non-finite floats; skip them
		}
		tab := NewTable(len(flags))
		if err := tab.AddBool("f", flags); err != nil {
			return false
		}
		scores, err := LogisticModel{Bias: bias, Weights: map[string]float64{"f": weight}}.Relevance(tab)
		if err != nil {
			return false
		}
		for _, s := range scores {
			if math.IsNaN(s) || s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Bool.String() != "bool" || Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Fatal("Kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must print")
	}
}
