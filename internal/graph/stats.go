package graph

import (
	"math"
	"sort"

	"repro/internal/ds"
)

// Stats summarizes a graph's structure. The generators' tests use it to
// check that simulated datasets actually have the shape the paper's real
// datasets have (heavy-tailed degrees, high/low clustering, etc.).
type Stats struct {
	Nodes            int
	Edges            int
	MinDegree        int
	MaxDegree        int
	MeanDegree       float64
	MedianDegree     int
	DegreeP90        int
	DegreeP99        int
	Isolated         int     // nodes with degree 0
	Components       int     // connected components (undirected sense)
	LargestCC        int     // size of the largest component
	GlobalClustering float64 // transitivity estimated on a node sample
}

// ComputeStats returns summary statistics. clusteringSample bounds how many
// nodes the clustering estimate touches (0 disables it; it is the only
// super-linear part).
func ComputeStats(g *Graph, clusteringSample int) Stats {
	n := g.NumNodes()
	s := Stats{Nodes: n, Edges: g.NumEdges(), MinDegree: math.MaxInt}
	if n == 0 {
		s.MinDegree = 0
		return s
	}
	degrees := make([]int, n)
	sum := 0
	for u := 0; u < n; u++ {
		d := g.Degree(u)
		degrees[u] = d
		sum += d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.MeanDegree = float64(sum) / float64(n)
	sorted := append([]int(nil), degrees...)
	sort.Ints(sorted)
	s.MedianDegree = sorted[n/2]
	s.DegreeP90 = sorted[(n*90)/100]
	s.DegreeP99 = sorted[(n*99)/100]
	s.Components, s.LargestCC = componentCount(g)
	if clusteringSample > 0 {
		s.GlobalClustering = clusteringEstimate(g, clusteringSample)
	}
	return s
}

// componentCount returns the number of weakly connected components and the
// size of the largest one. Directed arcs are treated as undirected for
// this purpose only when the graph is undirected; for directed graphs the
// count is over out-reachability unions, which suffices for the sanity
// checks this is used in.
func componentCount(g *Graph) (count, largest int) {
	n := g.NumNodes()
	seen := ds.NewBitset(n)
	var queue ds.IntQueue
	for start := 0; start < n; start++ {
		if seen.Test(start) {
			continue
		}
		count++
		size := 0
		queue.Reset()
		queue.Push(start)
		seen.Set(start)
		for !queue.Empty() {
			u := queue.Pop()
			size++
			for _, v := range g.Neighbors(u) {
				if !seen.Test(int(v)) {
					seen.Set(int(v))
					queue.Push(int(v))
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	return count, largest
}

// clusteringEstimate returns the fraction of connected triples that close
// into triangles, computed over the first sample nodes (deterministic, so
// tests are stable).
func clusteringEstimate(g *Graph, sample int) float64 {
	n := g.NumNodes()
	if sample > n {
		sample = n
	}
	var triangles, triples int64
	for u := 0; u < sample; u++ {
		nbrs := g.Neighbors(u)
		d := len(nbrs)
		if d < 2 {
			continue
		}
		triples += int64(d) * int64(d-1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(int(nbrs[i]), int(nbrs[j])) {
					triangles++
				}
			}
		}
	}
	if triples == 0 {
		return 0
	}
	return float64(triangles) / float64(triples)
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func DegreeHistogram(g *Graph) []int {
	counts := make([]int, g.MaxDegree()+1)
	for u := 0; u < g.NumNodes(); u++ {
		counts[g.Degree(u)]++
	}
	return counts
}
