package graph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Structural mutations. A Graph is immutable, so edits are persistent:
// ApplyEdits derives a successor Graph in one O(n + m + |edits|) pass,
// leaving the receiver untouched. Readers holding the old graph (in-flight
// queries, older generations) keep a consistent topology; the serving
// layers swap the successor in under their existing generation discipline.
//
// The successor's CSR arrays are built with exactly the Builder's
// normalization (adjacency sorted ascending, duplicates collapsed,
// self-loops rejected), so an incrementally edited graph is byte-identical
// to one rebuilt from scratch over the same edge set — the invariant the
// mutate-vs-rebuild equivalence harness (mutate_test.go, FuzzEditScript)
// enforces, and what keeps float summation order (and therefore every
// aggregate bit) stable across the two construction paths.

// EditOp identifies one structural mutation kind.
type EditOp uint8

const (
	// EditAddEdge inserts the edge U–V (the arc U→V for directed graphs).
	// Inserting an edge that already exists is a no-op.
	EditAddEdge EditOp = iota
	// EditRemoveEdge deletes the edge U–V (the arc U→V for directed
	// graphs). Deleting an absent edge is a no-op.
	EditRemoveEdge
	// EditAddNode appends one isolated node; U and V are ignored. The new
	// node's id is the node count at the point the edit applies, so later
	// edits in the same batch may wire it up.
	EditAddNode
)

// String names the op as used on the wire (/v1/edges) and in edit scripts.
func (op EditOp) String() string {
	switch op {
	case EditAddEdge:
		return "add-edge"
	case EditRemoveEdge:
		return "remove-edge"
	case EditAddNode:
		return "add-node"
	default:
		return fmt.Sprintf("EditOp(%d)", uint8(op))
	}
}

// ParseEditOp maps a wire name back to its EditOp.
func ParseEditOp(name string) (EditOp, error) {
	switch name {
	case "add-edge":
		return EditAddEdge, nil
	case "remove-edge":
		return EditRemoveEdge, nil
	case "add-node":
		return EditAddNode, nil
	default:
		return 0, fmt.Errorf("graph: unknown edit op %q (want add-edge, remove-edge, or add-node)", name)
	}
}

// Edit is one structural mutation of a batch.
type Edit struct {
	Op   EditOp
	U, V int
}

// EditDelta reports what a batch actually changed — the input to
// incremental repair (AffectedNodes, NeighborhoodIndex.Repair) and to the
// serving layers' mutation counters.
type EditDelta struct {
	NodesAdded   int
	EdgesAdded   int // logical edges inserted (duplicate inserts are no-ops)
	EdgesRemoved int // logical edges deleted (absent deletes are no-ops)
	// Touched lists every node whose adjacency list was written, plus
	// every added node, sorted ascending. Repair only needs to look at
	// h-hop surroundings of these endpoints.
	Touched []int
}

// Changed reports whether the batch had any structural effect.
func (d *EditDelta) Changed() bool {
	return d.NodesAdded > 0 || d.EdgesAdded > 0 || d.EdgesRemoved > 0
}

// ApplyEdits applies the batch in order and returns the successor graph
// plus the delta. The batch is atomic: any invalid edit (out-of-range
// endpoint, self-loop) fails the whole call and the receiver — which is
// never mutated — remains the only graph. Edits apply sequentially, so an
// EditAddNode makes its id addressable to later edits in the same batch.
func (g *Graph) ApplyEdits(edits []Edit) (*Graph, *EditDelta, error) {
	oldN := g.NumNodes()
	n := oldN
	// Lazily materialized adjacency sets for nodes the batch writes; all
	// other nodes share the old CSR rows untouched.
	patched := make(map[int]map[int]struct{})
	adjOf := func(u int) map[int]struct{} {
		if set, ok := patched[u]; ok {
			return set
		}
		set := make(map[int]struct{})
		if u < oldN {
			for _, v := range g.Neighbors(u) {
				set[int(v)] = struct{}{}
			}
		}
		patched[u] = set
		return set
	}
	has := func(u, v int) bool {
		if set, ok := patched[u]; ok {
			_, exists := set[v]
			return exists
		}
		// u untouched: its row is the old CSR row, which cannot name a
		// node minted by this batch.
		return u < oldN && v < oldN && g.HasEdge(u, v)
	}

	delta := &EditDelta{}
	touched := make(map[int]struct{})
	for i, e := range edits {
		switch e.Op {
		case EditAddNode:
			patched[n] = make(map[int]struct{})
			touched[n] = struct{}{}
			n++
			delta.NodesAdded++
		case EditAddEdge, EditRemoveEdge:
			u, v := e.U, e.V
			if u < 0 || u >= n || v < 0 || v >= n {
				return nil, nil, fmt.Errorf("graph: edit %d: edge (%d,%d) out of range [0,%d)", i, u, v, n)
			}
			if u == v {
				return nil, nil, fmt.Errorf("graph: edit %d: self-loop on node %d", i, u)
			}
			if e.Op == EditAddEdge {
				if has(u, v) {
					continue
				}
				adjOf(u)[v] = struct{}{}
				if !g.directed {
					adjOf(v)[u] = struct{}{}
				}
				delta.EdgesAdded++
			} else {
				if !has(u, v) {
					continue
				}
				delete(adjOf(u), v)
				if !g.directed {
					delete(adjOf(v), u)
				}
				delta.EdgesRemoved++
			}
			touched[u] = struct{}{}
			touched[v] = struct{}{}
		default:
			return nil, nil, fmt.Errorf("graph: edit %d: unknown op %v", i, e.Op)
		}
	}
	delta.Touched = make([]int, 0, len(touched))
	for u := range touched {
		delta.Touched = append(delta.Touched, u)
	}
	sort.Ints(delta.Touched)

	// Assemble the successor CSR: untouched rows copy straight across,
	// patched rows are re-sorted — the same (sorted, deduplicated) shape
	// Builder.Build produces, so both construction paths agree bytewise.
	offsets := make([]int64, n+1)
	for u := 0; u < n; u++ {
		if set, ok := patched[u]; ok {
			offsets[u+1] = offsets[u] + int64(len(set))
		} else {
			offsets[u+1] = offsets[u] + int64(g.Degree(u))
		}
	}
	adj := make([]int32, offsets[n])
	var buf []int
	for u := 0; u < n; u++ {
		dst := adj[offsets[u]:offsets[u+1]]
		set, ok := patched[u]
		if !ok {
			copy(dst, g.Neighbors(u))
			continue
		}
		buf = buf[:0]
		for v := range set {
			buf = append(buf, v)
		}
		sort.Ints(buf)
		for i, v := range buf {
			dst[i] = int32(v)
		}
	}
	return &Graph{directed: g.directed, offsets: offsets, adj: adj}, delta, nil
}

// AddEdge returns the graph with edge (u, v) inserted.
func (g *Graph) AddEdge(u, v int) (*Graph, error) {
	next, _, err := g.ApplyEdits([]Edit{{Op: EditAddEdge, U: u, V: v}})
	return next, err
}

// RemoveEdge returns the graph with edge (u, v) deleted.
func (g *Graph) RemoveEdge(u, v int) (*Graph, error) {
	next, _, err := g.ApplyEdits([]Edit{{Op: EditRemoveEdge, U: u, V: v}})
	return next, err
}

// AddNode returns the graph with one isolated node appended, plus its id.
func (g *Graph) AddNode() (*Graph, int) {
	next, _, err := g.ApplyEdits([]Edit{{Op: EditAddNode}})
	if err != nil {
		// EditAddNode validates nothing; failure is impossible.
		panic(fmt.Sprintf("graph: AddNode: %v", err))
	}
	return next, g.NumNodes()
}

// AffectedNodes returns every node whose h-hop neighborhood S_h may have
// changed across an edit batch, sorted ascending: the union of the h-hop
// closures of the touched endpoints in the old and new graphs. A node
// outside both closures keeps exactly its old S_h — no inserted or
// removed edge lies on any path of length <= h from it — so index repair
// and view repair may skip it.
//
// Directed graphs would need the h-hop *in*-closure of the endpoints,
// which the out-arc CSR cannot traverse; they return every node of newG
// (the full-recompute sentinel), keeping the repair contract uniform at
// the cost of incrementality.
func AffectedNodes(oldG, newG *Graph, delta *EditDelta, h int) []int {
	if newG.Directed() {
		all := make([]int, newG.NumNodes())
		for i := range all {
			all[i] = i
		}
		return all
	}
	oldTouched := make([]int, 0, len(delta.Touched))
	for _, u := range delta.Touched {
		if u < oldG.NumNodes() {
			oldTouched = append(oldTouched, u)
		}
	}
	before, err := HopClosure(oldG, oldTouched, h)
	if err != nil {
		panic(fmt.Sprintf("graph: AffectedNodes: %v", err)) // touched ids come from ApplyEdits
	}
	after, err := HopClosure(newG, delta.Touched, h)
	if err != nil {
		panic(fmt.Sprintf("graph: AffectedNodes: %v", err))
	}
	return mergeSorted(before, after)
}

// mergeSorted unions two ascending int slices.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// ParseEditScript decodes the compact textual edit-script format shared
// by the fuzz harness and tooling: one edit per line,
//
//   - u v    insert edge u–v
//   - u v    remove edge u–v
//     n        add a node
//
// Blank lines and lines starting with '#' are skipped. Endpoint range is
// validated by ApplyEdits, not here — the decoder only rejects malformed
// syntax.
func ParseEditScript(data []byte) ([]Edit, error) {
	var edits []Edit
	for ln, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "n":
			if len(fields) != 1 {
				return nil, fmt.Errorf("graph: edit script line %d: %q takes no operands", ln+1, "n")
			}
			edits = append(edits, Edit{Op: EditAddNode})
		case "+", "-":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: edit script line %d: want %q u v", ln+1, fields[0])
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: edit script line %d: %v", ln+1, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: edit script line %d: %v", ln+1, err)
			}
			op := EditAddEdge
			if fields[0] == "-" {
				op = EditRemoveEdge
			}
			edits = append(edits, Edit{Op: op, U: u, V: v})
		default:
			return nil, fmt.Errorf("graph: edit script line %d: unknown op %q", ln+1, fields[0])
		}
	}
	return edits, nil
}

// FormatEditScript renders edits in the ParseEditScript format — the
// round-trip half the fuzz seed corpus relies on.
func FormatEditScript(edits []Edit) string {
	var b strings.Builder
	for _, e := range edits {
		switch e.Op {
		case EditAddNode:
			b.WriteString("n\n")
		case EditAddEdge:
			fmt.Fprintf(&b, "+ %d %d\n", e.U, e.V)
		case EditRemoveEdge:
			fmt.Fprintf(&b, "- %d %d\n", e.U, e.V)
		}
	}
	return b.String()
}
