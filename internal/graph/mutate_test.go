package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// edgeSetOracle is the reference model of a mutable graph: a plain edge
// set plus a node count, mutated naively and rebuilt from scratch through
// Builder — the oracle every incremental path must match bytewise.
type edgeSetOracle struct {
	n        int
	directed bool
	edges    map[[2]int]bool
}

func newOracle(g *Graph) *edgeSetOracle {
	o := &edgeSetOracle{n: g.NumNodes(), directed: g.Directed(), edges: make(map[[2]int]bool)}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			o.edges[o.key(u, int(v))] = true
		}
	}
	return o
}

// key canonicalizes an undirected edge to (min, max).
func (o *edgeSetOracle) key(u, v int) [2]int {
	if !o.directed && u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// apply mutates the oracle; invalid edits must have been filtered by the
// caller (the oracle models only legal scripts).
func (o *edgeSetOracle) apply(e Edit) {
	switch e.Op {
	case EditAddNode:
		o.n++
	case EditAddEdge:
		o.edges[o.key(e.U, e.V)] = true
	case EditRemoveEdge:
		delete(o.edges, o.key(e.U, e.V))
	}
}

// rebuild constructs the oracle's graph from scratch.
func (o *edgeSetOracle) rebuild() *Graph {
	b := NewBuilder(o.n, o.directed)
	for e, ok := range o.edges {
		if ok {
			b.AddEdge(e[0], e[1])
		}
	}
	return b.Build()
}

// assertSameGraph fails unless got and want are structurally identical:
// same direction, node count, and per-node adjacency (CSR rows included,
// so arc positions — which parallel per-arc indexes rely on — agree too).
func assertSameGraph(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if got.Directed() != want.Directed() || got.NumNodes() != want.NumNodes() || got.NumArcs() != want.NumArcs() {
		t.Fatalf("%s: shape (directed=%v n=%d arcs=%d), want (directed=%v n=%d arcs=%d)",
			label, got.Directed(), got.NumNodes(), got.NumArcs(),
			want.Directed(), want.NumNodes(), want.NumArcs())
	}
	for u := 0; u < want.NumNodes(); u++ {
		if !reflect.DeepEqual(got.Neighbors(u), want.Neighbors(u)) {
			t.Fatalf("%s: node %d adjacency %v, want %v", label, u, got.Neighbors(u), want.Neighbors(u))
		}
	}
}

// mutateTestGraphs builds the four topologies the mutation harness runs
// over: a ring (long diameters, removals disconnect), a near-clique
// (dense, duplicate-heavy), a two-community graph (edits cross the cut),
// and a directed chain with shortcuts (exercises the directed repair
// fallback).
func mutateTestGraphs() map[string]*Graph {
	ring := NewBuilder(60, false)
	for u := 0; u < 60; u++ {
		ring.AddEdge(u, (u+1)%60)
	}
	dense := NewBuilder(24, false)
	for u := 0; u < 24; u++ {
		for v := u + 1; v < 24; v += 1 + u%3 {
			dense.AddEdge(u, v)
		}
	}
	comm := NewBuilder(50, false)
	for u := 0; u < 24; u++ {
		comm.AddEdge(u, (u+1)%25)
		comm.AddEdge(25+u, 25+(u+1)%25)
	}
	comm.AddEdge(0, 25)
	comm.AddEdge(12, 37)
	directed := NewBuilder(40, true)
	for u := 0; u < 39; u++ {
		directed.AddEdge(u, u+1)
		if u%5 == 0 && u+7 < 40 {
			directed.AddEdge(u, u+7)
		}
	}
	return map[string]*Graph{
		"ring":      ring.Build(),
		"dense":     dense.Build(),
		"community": comm.Build(),
		"directed":  directed.Build(),
	}
}

// randomEditScript draws a legal edit batch against the oracle's current
// state, mutating the oracle as it goes so every edit is valid at its
// position in the script (including edges on nodes added mid-batch).
func randomEditScript(rng *rand.Rand, o *edgeSetOracle, batch int) []Edit {
	edits := make([]Edit, 0, batch)
	for len(edits) < batch {
		var e Edit
		switch rng.Intn(10) {
		case 0:
			e = Edit{Op: EditAddNode}
		case 1, 2, 3:
			// Remove a uniformly drawn existing edge, when one exists.
			if len(o.edges) == 0 {
				continue
			}
			i := rng.Intn(len(o.edges))
			for k := range o.edges {
				if i == 0 {
					e = Edit{Op: EditRemoveEdge, U: k[0], V: k[1]}
					break
				}
				i--
			}
		default:
			u, v := rng.Intn(o.n), rng.Intn(o.n)
			if u == v {
				continue
			}
			e = Edit{Op: EditAddEdge, U: u, V: v}
		}
		o.apply(e)
		edits = append(edits, e)
	}
	return edits
}

// TestApplyEditsMatchesRebuild is the graph half of the equivalence
// property: random edit scripts applied incrementally yield CSR state and
// a repaired neighborhood index byte-identical to a from-scratch rebuild,
// across four graph shapes and several hop radii.
func TestApplyEditsMatchesRebuild(t *testing.T) {
	for name, start := range mutateTestGraphs() {
		for _, h := range []int{1, 2, 3} {
			rng := rand.New(rand.NewSource(int64(1000*h) + int64(len(name))))
			g := start
			ix := BuildNeighborhoodIndex(g, h, 0)
			oracle := newOracle(start)
			for round := 0; round < 8; round++ {
				script := randomEditScript(rng, oracle, 1+rng.Intn(12))
				next, delta, err := g.ApplyEdits(script)
				if err != nil {
					t.Fatalf("%s h=%d round %d: %v", name, h, round, err)
				}
				affected := AffectedNodes(g, next, delta, h)
				ix = ix.Repair(next, affected, 0)

				rebuilt := oracle.rebuild()
				label := name + "/h=" + string(rune('0'+h))
				assertSameGraph(t, label, next, rebuilt)
				wantIx := BuildNeighborhoodIndex(rebuilt, h, 0)
				if !reflect.DeepEqual(ix.Size, wantIx.Size) {
					for v := range wantIx.Size {
						if ix.Size[v] != wantIx.Size[v] {
							t.Fatalf("%s round %d: N(%d) = %d after repair, rebuild says %d (script %v)",
								label, round, v, ix.Size[v], wantIx.Size[v], script)
						}
					}
				}
				g = next
			}
		}
	}
}

// TestApplyEditsAtomicity: an invalid edit anywhere in the batch must
// fail the whole call and leave no partial successor.
func TestApplyEditsAtomicity(t *testing.T) {
	g := FromEdges(4, false, [][2]int{{0, 1}, {1, 2}})
	bad := [][]Edit{
		{{Op: EditAddEdge, U: 0, V: 3}, {Op: EditAddEdge, U: 2, V: 9}}, // out of range
		{{Op: EditAddEdge, U: 0, V: 3}, {Op: EditAddEdge, U: 1, V: 1}}, // self-loop
		{{Op: EditRemoveEdge, U: -1, V: 2}},                            // negative id
		{{Op: EditOp(99)}},                                             // unknown op
	}
	for i, script := range bad {
		next, delta, err := g.ApplyEdits(script)
		if err == nil {
			t.Fatalf("script %d: expected error, got delta %+v", i, delta)
		}
		if next != nil || delta != nil {
			t.Fatalf("script %d: non-nil result alongside error", i)
		}
	}
	// The receiver is untouched regardless.
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Fatalf("receiver mutated: n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

// TestApplyEditsNoOps: duplicate inserts and absent deletes are no-ops
// that leave the delta honest.
func TestApplyEditsNoOps(t *testing.T) {
	g := FromEdges(3, false, [][2]int{{0, 1}})
	next, delta, err := g.ApplyEdits([]Edit{
		{Op: EditAddEdge, U: 0, V: 1},    // duplicate
		{Op: EditAddEdge, U: 1, V: 0},    // duplicate, reversed
		{Op: EditRemoveEdge, U: 1, V: 2}, // absent
	})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Changed() {
		t.Fatalf("no-op batch reported changes: %+v", delta)
	}
	assertSameGraph(t, "noop", next, g)
}

// TestApplyEditsSequentialSemantics: edges may target nodes added earlier
// in the same batch, and an add/remove pair cancels out.
func TestApplyEditsSequentialSemantics(t *testing.T) {
	g := FromEdges(2, false, [][2]int{{0, 1}})
	next, delta, err := g.ApplyEdits([]Edit{
		{Op: EditAddNode},
		{Op: EditAddEdge, U: 0, V: 2},
		{Op: EditAddEdge, U: 1, V: 2},
		{Op: EditRemoveEdge, U: 0, V: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if next.NumNodes() != 3 || !next.HasEdge(1, 2) || next.HasEdge(0, 2) {
		t.Fatalf("unexpected shape: n=%d", next.NumNodes())
	}
	if delta.NodesAdded != 1 || delta.EdgesAdded != 2 || delta.EdgesRemoved != 1 {
		t.Fatalf("delta %+v", delta)
	}
	// Referencing the new node before its EditAddNode fails the batch.
	if _, _, err := g.ApplyEdits([]Edit{{Op: EditAddEdge, U: 0, V: 2}, {Op: EditAddNode}}); err == nil {
		t.Fatal("edge to not-yet-added node accepted")
	}
}

// TestAffectedNodesIsSound: nodes outside AffectedNodes keep exactly
// their old neighborhood size — the locality claim Repair relies on.
func TestAffectedNodesIsSound(t *testing.T) {
	for name, g := range mutateTestGraphs() {
		if g.Directed() {
			continue // directed returns the full-recompute sentinel
		}
		const h = 2
		before := BuildNeighborhoodIndex(g, h, 0)
		rng := rand.New(rand.NewSource(7))
		oracle := newOracle(g)
		script := randomEditScript(rng, oracle, 6)
		next, delta, err := g.ApplyEdits(script)
		if err != nil {
			t.Fatal(err)
		}
		after := BuildNeighborhoodIndex(next, h, 0)
		affected := AffectedNodes(g, next, delta, h)
		inAffected := make(map[int]bool, len(affected))
		for _, v := range affected {
			inAffected[v] = true
		}
		for v := 0; v < g.NumNodes(); v++ {
			if !inAffected[v] && before.Size[v] != after.Size[v] {
				t.Fatalf("%s: node %d changed N %d -> %d but is not in the affected set (script %v)",
					name, v, before.Size[v], after.Size[v], script)
			}
		}
	}
}

// TestEditScriptRoundTrip: Format and Parse are inverses for legal
// scripts, and the parser rejects malformed lines.
func TestEditScriptRoundTrip(t *testing.T) {
	script := []Edit{
		{Op: EditAddNode},
		{Op: EditAddEdge, U: 3, V: 9},
		{Op: EditRemoveEdge, U: 9, V: 3},
	}
	parsed, err := ParseEditScript([]byte(FormatEditScript(script)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, script) {
		t.Fatalf("round trip %v, want %v", parsed, script)
	}
	for _, bad := range []string{"x 1 2", "+ 1", "- 1 2 3", "+ a b", "n 4"} {
		if _, err := ParseEditScript([]byte(bad)); err == nil {
			t.Fatalf("parsed %q without error", bad)
		}
	}
	// Comments and blank lines are skipped.
	if edits, err := ParseEditScript([]byte("# comment\n\n+ 0 1\n")); err != nil || len(edits) != 1 {
		t.Fatalf("edits=%v err=%v", edits, err)
	}
}

// TestGraphEditConvenience covers the single-edit wrappers.
func TestGraphEditConvenience(t *testing.T) {
	g := FromEdges(2, false, nil)
	g2, err := g.AddEdge(0, 1)
	if err != nil || !g2.HasEdge(0, 1) || g.HasEdge(0, 1) {
		t.Fatalf("AddEdge: err=%v", err)
	}
	g3, id := g2.AddNode()
	if id != 2 || g3.NumNodes() != 3 || g2.NumNodes() != 2 {
		t.Fatalf("AddNode: id=%d", id)
	}
	g4, err := g3.RemoveEdge(1, 0)
	if err != nil || g4.HasEdge(0, 1) {
		t.Fatalf("RemoveEdge: err=%v", err)
	}
}
