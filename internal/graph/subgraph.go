package graph

import (
	"fmt"
	"sort"

	"repro/internal/ds"
)

// InducedSubgraph returns the subgraph over the given nodes (dense ids
// 0..len(nodes)-1 in the order given) together with the mapping from new
// id to original id. Duplicate node ids are rejected. Edges with exactly
// one endpoint inside the set are dropped, as induced subgraphs require.
//
// Experiment pipelines use this to restrict analysis to a region of a
// large network (e.g. one partition, or the largest component) without
// re-generating data.
func InducedSubgraph(g *Graph, nodes []int) (*Graph, []int, error) {
	remap := make(map[int]int, len(nodes))
	original := make([]int, len(nodes))
	for newID, old := range nodes {
		if old < 0 || old >= g.NumNodes() {
			return nil, nil, fmt.Errorf("graph: subgraph node %d out of range [0,%d)", old, g.NumNodes())
		}
		if _, dup := remap[old]; dup {
			return nil, nil, fmt.Errorf("graph: subgraph node %d listed twice", old)
		}
		remap[old] = newID
		original[newID] = old
	}
	b := NewBuilder(len(nodes), g.Directed())
	for newU, oldU := range original {
		for _, v := range g.Neighbors(oldU) {
			newV, inside := remap[int(v)]
			if !inside {
				continue
			}
			if !g.Directed() && newV < newU {
				continue // the reverse arc adds this edge once
			}
			if newU == newV {
				continue
			}
			b.AddEdge(newU, newV)
		}
	}
	return b.Build(), original, nil
}

// HopClosure returns every node within h hops of at least one source
// (sources included), sorted ascending — one multi-source BFS. This is
// the "ghost-node closure" a partition-local engine needs: an engine
// over InducedSubgraph(g, HopClosure(g, owned, h)) sees the complete
// h-hop neighborhood of every owned node, so its aggregates (and, because
// the closure list is sorted and id remapping is therefore monotone, even
// its floating-point summation order) match the full graph exactly.
// Directed graphs follow out-arcs, matching S_h's definition.
func HopClosure(g *Graph, sources []int, h int) ([]int, error) {
	n := g.NumNodes()
	if h < 0 {
		return nil, fmt.Errorf("graph: negative hop radius %d", h)
	}
	seen := ds.NewBitset(n)
	var queue ds.IntQueue
	closure := make([]int, 0, len(sources))
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("graph: closure source %d out of range [0,%d)", s, n)
		}
		if seen.Test(s) {
			continue // duplicate sources are tolerated
		}
		seen.Set(s)
		queue.Push(s)
		closure = append(closure, s)
	}
	levelEnd := queue.Len()
	for dist := 1; dist <= h && levelEnd > 0; dist++ {
		for i := 0; i < levelEnd; i++ {
			u := queue.Pop()
			for _, v32 := range g.Neighbors(u) {
				v := int(v32)
				if seen.Test(v) {
					continue
				}
				seen.Set(v)
				queue.Push(v)
				closure = append(closure, v)
			}
		}
		levelEnd = queue.Len()
	}
	sort.Ints(closure)
	return closure, nil
}

// LargestComponent returns the node set of the largest connected component
// (weak connectivity for directed graphs), sorted ascending. Analyses that
// assume connectivity (random-walk relevance, distribution experiments)
// extract it first.
func LargestComponent(g *Graph) []int {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	seen := ds.NewBitset(n)
	var queue ds.IntQueue
	var best []int
	scratch := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if seen.Test(start) {
			continue
		}
		scratch = scratch[:0]
		queue.Reset()
		queue.Push(start)
		seen.Set(start)
		for !queue.Empty() {
			u := queue.Pop()
			scratch = append(scratch, u)
			for _, v := range g.Neighbors(u) {
				if !seen.Test(int(v)) {
					seen.Set(int(v))
					queue.Push(int(v))
				}
			}
		}
		if len(scratch) > len(best) {
			best = append(best[:0], scratch...)
		}
	}
	sort.Ints(best)
	return best
}

// RelabelByDegree returns a copy of g whose node ids are assigned in
// descending degree order (ties by original id), plus the old-id slice
// indexed by new id. High-degree nodes land in a contiguous id prefix,
// which improves cache locality for traversal-heavy workloads and gives
// LONA-Forward's degree-descending queue a trivial identity order.
func RelabelByDegree(g *Graph) (*Graph, []int) {
	n := g.NumNodes()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})
	relabeled, original, err := InducedSubgraph(g, order)
	if err != nil {
		// order is a permutation of all valid ids; failure is impossible.
		panic(fmt.Sprintf("graph: RelabelByDegree: %v", err))
	}
	return relabeled, original
}
