package graph

import "fmt"

// FromArrays constructs a Graph directly over caller-owned CSR arrays,
// without copying. It is the zero-copy entry point used by the snapshot
// loader: the offsets/adj slices may be views into an mmap-ed file, and
// the returned Graph aliases them for its lifetime. Callers must not
// modify the slices afterwards and must keep the backing storage mapped
// for as long as the Graph is in use.
//
// The arrays are validated to uphold every invariant a Builder-produced
// graph guarantees: offsets is monotone with offsets[0] == 0 and
// offsets[n] == len(adj); every adjacency list is strictly ascending
// (sorted, deduplicated) with targets in [0, n) and no self-loops. For an
// undirected graph the arc count must be even (two arcs per edge); arc
// symmetry itself is the writer's contract — snapshot files carry CRCs,
// so a Writer-produced file that passes validation is symmetric iff the
// graph it was written from was.
func FromArrays(directed bool, offsets []int64, adj []int32) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: offsets must have length >= 1 (n+1)")
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: offsets[0] = %d, want 0", offsets[0])
	}
	n := len(offsets) - 1
	if got := offsets[n]; got != int64(len(adj)) {
		return nil, fmt.Errorf("graph: offsets[%d] = %d, want len(adj) = %d", n, got, len(adj))
	}
	if !directed && len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: undirected graph with odd arc count %d", len(adj))
	}
	for u := 0; u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		if lo > hi {
			return nil, fmt.Errorf("graph: offsets not monotone at node %d (%d > %d)", u, lo, hi)
		}
		prev := int32(-1)
		for _, v := range adj[lo:hi] {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: arc target %d out of range [0,%d) at node %d", v, n, u)
			}
			if int(v) == u {
				return nil, fmt.Errorf("graph: self-loop on node %d", u)
			}
			if v <= prev {
				return nil, fmt.Errorf("graph: adjacency of node %d not strictly ascending (%d after %d)", u, v, prev)
			}
			prev = v
		}
	}
	return &Graph{directed: directed, offsets: offsets, adj: adj}, nil
}

// Arrays exposes the graph's CSR arrays for serialization. The returned
// slices are the graph's own storage: callers must treat them as
// read-only.
func (g *Graph) Arrays() (offsets []int64, adj []int32) { return g.offsets, g.adj }

// IndexFromSizes constructs a NeighborhoodIndex over a caller-owned Size
// array without copying — the snapshot-loader counterpart of
// BuildNeighborhoodIndex. The slice may alias an mmap-ed file; callers
// must not modify it. Sizes are validated against the node count n: every
// N(v) includes v itself and cannot exceed n, so each entry must lie in
// [1, n] (for h = 0 every entry is exactly 1).
func IndexFromSizes(h int, sizes []int32, n int) (*NeighborhoodIndex, error) {
	if h < 0 {
		return nil, fmt.Errorf("graph: negative hop radius %d", h)
	}
	if len(sizes) != n {
		return nil, fmt.Errorf("graph: index has %d sizes, graph has %d nodes", len(sizes), n)
	}
	for v, s := range sizes {
		if s < 1 || int(s) > n {
			return nil, fmt.Errorf("graph: index size N(%d) = %d out of range [1,%d]", v, s, n)
		}
	}
	return &NeighborhoodIndex{H: h, Size: sizes}, nil
}
