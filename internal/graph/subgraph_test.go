package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInducedSubgraphBasic(t *testing.T) {
	// 0-1-2-3 path plus 0-2 chord; take {0, 2, 3}.
	g := FromEdges(4, false, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}})
	sub, original, err := InducedSubgraph(g, []int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("nodes = %d", sub.NumNodes())
	}
	// Kept edges: (0,2) and (2,3) → new ids (0,1) and (1,2).
	if sub.NumEdges() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatalf("edge structure wrong: %d edges", sub.NumEdges())
	}
	want := []int{0, 2, 3}
	for i, w := range want {
		if original[i] != w {
			t.Fatalf("original = %v, want %v", original, want)
		}
	}
}

func TestInducedSubgraphRejectsBadInput(t *testing.T) {
	g := pathGraph(5)
	if _, _, err := InducedSubgraph(g, []int{0, 9}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, _, err := InducedSubgraph(g, []int{1, 1}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	empty, _, err := InducedSubgraph(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumNodes() != 0 {
		t.Fatal("empty selection produced nodes")
	}
}

func TestInducedSubgraphDirected(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build()
	sub, _, err := InducedSubgraph(g, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Directed() {
		t.Fatal("directedness lost")
	}
	if !sub.HasEdge(0, 1) || sub.HasEdge(1, 0) {
		t.Fatal("directed arcs wrong")
	}
}

func TestLargestComponent(t *testing.T) {
	// Components {0,1,2}, {3,4}, {5}.
	g := FromEdges(6, false, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	nodes := LargestComponent(g)
	want := []int{0, 1, 2}
	if len(nodes) != 3 {
		t.Fatalf("largest component = %v", nodes)
	}
	for i, w := range want {
		if nodes[i] != w {
			t.Fatalf("largest component = %v, want %v", nodes, want)
		}
	}
	if LargestComponent(NewBuilder(0, false).Build()) != nil {
		t.Fatal("empty graph has a component")
	}
}

func TestRelabelByDegreePreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	b := NewBuilder(60, false)
	for i := 0; i < 180; i++ {
		u, v := rng.Intn(60), rng.Intn(60)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	relabeled, original := RelabelByDegree(g)
	if relabeled.NumNodes() != g.NumNodes() || relabeled.NumEdges() != g.NumEdges() {
		t.Fatal("relabeling changed size")
	}
	// Degrees must be non-increasing in the new id order...
	for u := 1; u < relabeled.NumNodes(); u++ {
		if relabeled.Degree(u) > relabeled.Degree(u-1) {
			t.Fatalf("degrees not sorted at %d: %d > %d", u, relabeled.Degree(u), relabeled.Degree(u-1))
		}
	}
	// ...and every edge must map back to an original edge.
	for u := 0; u < relabeled.NumNodes(); u++ {
		for _, v := range relabeled.Neighbors(u) {
			if !g.HasEdge(original[u], original[int(v)]) {
				t.Fatalf("edge (%d,%d) has no preimage", u, v)
			}
		}
	}
}

// Property: an induced subgraph over a random node subset keeps exactly
// the edges with both endpoints selected.
func TestInducedSubgraphProperty(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(20)
		g := randomGraph(n, 3*n, seed)
		keep := make([]int, 0, n)
		inSet := make(map[int]bool)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				keep = append(keep, v)
				inSet[v] = true
			}
		}
		sub, original, err := InducedSubgraph(g, keep)
		if err != nil {
			return false
		}
		// Count edges of g inside the set.
		want := 0
		for u := 0; u < n; u++ {
			if !inSet[u] {
				continue
			}
			for _, v := range g.Neighbors(u) {
				if int(v) > u && inSet[int(v)] {
					want++
				}
			}
		}
		if sub.NumEdges() != want {
			return false
		}
		for i, old := range original {
			if keep[i] != old {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
