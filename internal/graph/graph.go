// Package graph is the in-memory network substrate used by every LONA
// algorithm: a compressed-sparse-row (CSR) adjacency structure, reusable
// h-hop breadth-first traversers, and the two precomputed indexes the paper
// relies on — the h-hop neighborhood-size index N(v) and the per-edge
// differential index delta(v−u) = |S(v)\S(u)| (Section III).
//
// The paper assumes memory-resident networks ("having them on disk would
// not be practical in terms of graph traversal"); this package makes the
// same assumption and optimizes for cache-friendly traversal: node ids are
// dense ints in [0, NumNodes()), adjacency is a single int32 slice, and all
// per-traversal state lives in reusable scratch buffers.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable graph in CSR form. Construct with a Builder.
//
// For an undirected graph every edge is stored as two arcs, one per
// direction; Neighbors(u) therefore always lists every node adjacent to u.
// For a directed graph Neighbors(u) lists out-neighbors only.
type Graph struct {
	directed bool
	offsets  []int64 // len NumNodes()+1; arc range of node u is [offsets[u], offsets[u+1])
	adj      []int32 // arc targets, sorted ascending within each node
}

// NumNodes returns the number of nodes. Node ids are 0..NumNodes()-1.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumArcs returns the number of stored arcs (directed edges). An undirected
// graph with m edges has 2m arcs.
func (g *Graph) NumArcs() int { return len(g.adj) }

// NumEdges returns the number of logical edges: arcs for a directed graph,
// arcs/2 for an undirected one (self-loops are rejected at build time).
func (g *Graph) NumEdges() int {
	if g.directed {
		return len(g.adj)
	}
	return len(g.adj) / 2
}

// Directed reports whether the graph stores one-way arcs.
func (g *Graph) Directed() bool { return g.directed }

// Degree returns the number of arcs leaving u.
func (g *Graph) Degree(u int) int { return int(g.offsets[u+1] - g.offsets[u]) }

// Neighbors returns the adjacency list of u as a shared, read-only slice
// sorted by node id. Callers must not modify it.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[g.offsets[u]:g.offsets[u+1]] }

// ArcRange returns the [lo, hi) positions of u's arcs inside the global arc
// array. Arc positions index parallel per-arc data such as the differential
// index.
func (g *Graph) ArcRange(u int) (lo, hi int64) { return g.offsets[u], g.offsets[u+1] }

// HasEdge reports whether an arc u -> v exists, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= int32(v) })
	return i < len(nbrs) && nbrs[i] == int32(v)
}

// MaxDegree returns the largest degree in the graph, or 0 for an empty one.
func (g *Graph) MaxDegree() int {
	best := 0
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.Degree(u); d > best {
			best = d
		}
	}
	return best
}

// Builder accumulates edges and produces an immutable Graph. It tolerates
// duplicate edges (collapsed at Build time) and rejects self-loops, which
// would make N(v) and the differential index ambiguous.
type Builder struct {
	n        int
	directed bool
	src, dst []int32
}

// NewBuilder returns a Builder for a graph with n nodes. Set directed to
// store one-way arcs; otherwise AddEdge(u, v) creates both u->v and v->u.
func NewBuilder(n int, directed bool) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, directed: directed}
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records an edge between u and v. It panics on out-of-range ids
// or self-loops — both indicate generator or loader bugs, not user input,
// so failing loudly is the right behaviour.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d", u))
	}
	b.src = append(b.src, int32(u))
	b.dst = append(b.dst, int32(v))
}

// TryAddEdge is AddEdge that reports invalid input instead of panicking.
// Loaders reading untrusted files should use this form.
func (b *Builder) TryAddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	b.src = append(b.src, int32(u))
	b.dst = append(b.dst, int32(v))
	return nil
}

// NumPendingEdges returns how many AddEdge calls have been recorded
// (before deduplication).
func (b *Builder) NumPendingEdges() int { return len(b.src) }

// Build produces the CSR graph. Duplicate edges are collapsed. The builder
// remains usable (further AddEdge calls affect only later Builds).
func (b *Builder) Build() *Graph {
	// Materialize arcs: one per direction for undirected graphs.
	arcs := len(b.src)
	if !b.directed {
		arcs *= 2
	}
	asrc := make([]int32, 0, arcs)
	adst := make([]int32, 0, arcs)
	for i := range b.src {
		asrc = append(asrc, b.src[i])
		adst = append(adst, b.dst[i])
		if !b.directed {
			asrc = append(asrc, b.dst[i])
			adst = append(adst, b.src[i])
		}
	}

	// Counting sort by source into CSR, then sort and dedupe each list.
	offsets := make([]int64, b.n+1)
	for _, s := range asrc {
		offsets[s+1]++
	}
	for i := 0; i < b.n; i++ {
		offsets[i+1] += offsets[i]
	}
	adj := make([]int32, len(asrc))
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for i, s := range asrc {
		adj[cursor[s]] = adst[i]
		cursor[s]++
	}

	compact := adj[:0]
	newOffsets := make([]int64, b.n+1)
	for u := 0; u < b.n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		list := adj[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		prev := int32(-1)
		for _, v := range list {
			if v != prev {
				compact = append(compact, v)
				prev = v
			}
		}
		newOffsets[u+1] = int64(len(compact))
	}
	finalAdj := make([]int32, len(compact))
	copy(finalAdj, compact)
	return &Graph{directed: b.directed, offsets: newOffsets, adj: finalAdj}
}

// FromEdges is a convenience constructor building a graph in one call.
func FromEdges(n int, directed bool, edges [][2]int) *Graph {
	b := NewBuilder(n, directed)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
