package graph

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/ds"
)

// NeighborhoodIndex stores N(v) = |S_h(v)| for every node: the number of
// nodes within h hops of v, including v itself. Both pruning bounds
// (Equations 1–3) and every AVG query consult it. Building it costs one
// full forward pass, amortized across the query workload exactly as the
// paper's precomputed indexes are.
type NeighborhoodIndex struct {
	H    int
	Size []int32 // Size[v] = N(v)
}

// N returns N(v).
func (ix *NeighborhoodIndex) N(v int) int { return int(ix.Size[v]) }

// BuildNeighborhoodIndex computes N(v) for all v with the given number of
// workers (<=0 means GOMAXPROCS).
func BuildNeighborhoodIndex(g *Graph, h, workers int) *NeighborhoodIndex {
	if h < 0 {
		panic("graph: negative hop radius")
	}
	n := g.NumNodes()
	ix := &NeighborhoodIndex{H: h, Size: make([]int32, n)}
	parallelNodes(n, workers, func(lo, hi int) {
		t := NewTraverser(g)
		for u := lo; u < hi; u++ {
			ix.Size[u] = int32(t.CountWithin(u, h))
		}
	})
	return ix
}

// Repair returns a successor index valid for newG after a structural
// edit batch, recomputing only the affected nodes (see AffectedNodes)
// instead of all of them — the incremental half of the mutate-vs-rebuild
// equivalence contract: the repaired index is identical to
// BuildNeighborhoodIndex(newG, ix.H, ...), because N(v) is an exact count
// and unaffected nodes keep exactly their old h-hop neighborhoods. The
// receiver is not modified; callers swap the result in under their own
// write discipline. workers <= 0 means GOMAXPROCS.
func (ix *NeighborhoodIndex) Repair(newG *Graph, affected []int, workers int) *NeighborhoodIndex {
	size := make([]int32, newG.NumNodes())
	copy(size, ix.Size)
	parallelNodes(len(affected), workers, func(lo, hi int) {
		t := NewTraverser(newG)
		for i := lo; i < hi; i++ {
			size[affected[i]] = int32(t.CountWithin(affected[i], ix.H))
		}
	})
	return &NeighborhoodIndex{H: ix.H, Size: size}
}

// DifferentialIndex stores, for every arc (u -> v) at global arc position
// p, Delta[p] = |S_h(v) \ S_h(u)|: how many of v's h-hop neighbors are not
// h-hop neighbors of u. Section III uses it to bound a neighbor's aggregate
// from an exactly-evaluated node:
//
//	F_sum(v) <= F_sum(u) + delta(v−u)            (because 0 <= f <= 1)
//
// The index is symmetric-cost to build (each arc requires walking S_h(v)
// against a marked S_h(u)) and is the precomputed structure the paper
// trades for forward-query speed.
type DifferentialIndex struct {
	H     int
	Delta []int32 // parallel to Graph.adj; Delta[p] = |S(adj[p]) \ S(arcSource(p))|
}

// DeltaArc returns delta(v−u) for the arc at global position p, where u is
// the arc's source and v its target.
func (dx *DifferentialIndex) DeltaArc(p int64) int { return int(dx.Delta[p]) }

// BuildDifferentialIndex computes the per-arc differential index for hop
// radius h using the given number of workers (<=0 means GOMAXPROCS).
//
// Per node u it marks S_h(u) once and then, for each neighbor v, walks
// S_h(v) counting unmarked nodes — O(Σ_(u,v)∈E |S_h(v)|) total, an offline
// cost the paper accepts ("needs to be pre-computed and stored").
func BuildDifferentialIndex(g *Graph, h, workers int) *DifferentialIndex {
	if h < 0 {
		panic("graph: negative hop radius")
	}
	dx := &DifferentialIndex{H: h, Delta: make([]int32, g.NumArcs())}
	parallelNodes(g.NumNodes(), workers, func(lo, hi int) {
		outer := NewTraverser(g) // marks S_h(u)
		inner := NewTraverser(g) // walks S_h(v)
		for u := lo; u < hi; u++ {
			outer.seen.Reset()
			outer.markWithin(u, h)
			arcLo, arcHi := g.ArcRange(u)
			for p := arcLo; p < arcHi; p++ {
				v := int(g.adj[p])
				dx.Delta[p] = int32(inner.CountUnmarkedWithin(v, h, outer.seen))
			}
		}
	})
	return dx
}

// markWithin marks S_h(src) in t.seen without invoking a visitor. The
// caller must have Reset t.seen; marks survive until the next Reset.
func (t *Traverser) markWithin(src, h int) {
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			return
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range t.g.Neighbors(u) {
				if !t.seen.Mark(int(v)) {
					t.queue = append(t.queue, v)
				}
			}
		}
		levelStart = levelEnd
	}
}

// DeltaBruteForce computes |S_h(v) \ S_h(u)| directly with fresh state.
// It exists for index-verification tests and small-graph tooling.
func DeltaBruteForce(g *Graph, u, v, h int) int {
	su := ds.NewBitset(g.NumNodes())
	t := NewTraverser(g)
	t.VisitWithin(u, h, func(w, _ int) { su.Set(w) })
	missing := 0
	t.VisitWithin(v, h, func(w, _ int) {
		if !su.Test(w) {
			missing++
		}
	})
	return missing
}

// parallelNodes splits [0, n) into contiguous chunks and runs body(lo, hi)
// on each chunk from its own goroutine.
func parallelNodes(n, workers int, body func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// CheckIndexCompatibility validates that an index built for one hop radius
// is not silently used for another — a class of bug that produces wrong
// (not slow) answers.
func CheckIndexCompatibility(h int, nix *NeighborhoodIndex, dix *DifferentialIndex) error {
	if nix != nil && nix.H != h {
		return fmt.Errorf("graph: neighborhood index built for h=%d, query uses h=%d", nix.H, h)
	}
	if dix != nil && dix.H != h {
		return fmt.Errorf("graph: differential index built for h=%d, query uses h=%d", dix.H, h)
	}
	return nil
}
