package graph

import (
	"reflect"
	"testing"
)

// fuzzBaseGraph is the fixed starting topology the fuzzer mutates: a
// 24-node ring with chords, small enough that the rebuild oracle is cheap
// but cyclic enough that removals change h-hop neighborhoods non-locally.
func fuzzBaseGraph() *Graph {
	b := NewBuilder(24, false)
	for u := 0; u < 24; u++ {
		b.AddEdge(u, (u+1)%24)
		if u%3 == 0 {
			b.AddEdge(u, (u+7)%24)
		}
	}
	return b.Build()
}

// FuzzEditScript feeds arbitrary bytes through the edit-script decoder
// and, when they decode into a legal script, applies it incrementally —
// ApplyEdits plus neighborhood-index Repair — and cross-checks the result
// against the from-scratch rebuild oracle. It hunts two failure classes:
// crashes anywhere in the decode/apply/repair path, and silent divergence
// between the incremental and rebuilt states.
func FuzzEditScript(f *testing.F) {
	f.Add([]byte("+ 0 5\n- 0 1\nn\n+ 24 3\n"))
	f.Add([]byte("n\nn\n+ 24 25\n+ 25 0\n- 24 25\n"))
	f.Add([]byte("# comment\n\n- 3 4\n- 4 3\n+ 3 4\n"))
	f.Add([]byte("+ 0 23\n+ 0 23\nn\n"))
	f.Add([]byte(FormatEditScript([]Edit{{Op: EditAddNode}, {Op: EditAddEdge, U: 1, V: 24}})))

	f.Fuzz(func(t *testing.T, data []byte) {
		edits, err := ParseEditScript(data)
		if err != nil || len(edits) == 0 {
			return // malformed scripts just need to not crash
		}
		if len(edits) > 128 {
			edits = edits[:128] // bound the work per input
		}
		const h = 2
		base := fuzzBaseGraph()
		next, delta, err := base.ApplyEdits(edits)
		if err != nil {
			return // out-of-range or self-loop edits are expected rejections
		}
		if delta.NodesAdded > len(edits) {
			t.Fatalf("delta claims %d added nodes from %d edits", delta.NodesAdded, len(edits))
		}

		// Divergence check 1: the successor graph matches a from-scratch
		// rebuild over the mutated edge set.
		oracle := newOracle(base)
		for _, e := range edits {
			// ApplyEdits accepted the script, so replaying it on the naive
			// model is legal (no-ops included).
			oracle.apply(e)
		}
		rebuilt := oracle.rebuild()
		if next.NumNodes() != rebuilt.NumNodes() || next.NumArcs() != rebuilt.NumArcs() {
			t.Fatalf("shape diverged: incremental (n=%d arcs=%d) vs rebuild (n=%d arcs=%d)",
				next.NumNodes(), next.NumArcs(), rebuilt.NumNodes(), rebuilt.NumArcs())
		}
		for u := 0; u < rebuilt.NumNodes(); u++ {
			if !reflect.DeepEqual(next.Neighbors(u), rebuilt.Neighbors(u)) {
				t.Fatalf("node %d adjacency diverged: %v vs %v", u, next.Neighbors(u), rebuilt.Neighbors(u))
			}
		}

		// Divergence check 2: incremental index repair matches a full
		// index rebuild.
		repaired := BuildNeighborhoodIndex(base, h, 1).Repair(next, AffectedNodes(base, next, delta, h), 1)
		want := BuildNeighborhoodIndex(rebuilt, h, 1)
		if !reflect.DeepEqual(repaired.Size, want.Size) {
			t.Fatalf("index diverged after %v: %v vs %v", edits, repaired.Size, want.Size)
		}
	})
}
