package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, false)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func TestNeighborhoodIndexMatchesTraversal(t *testing.T) {
	g := randomGraph(80, 200, 1)
	for h := 0; h <= 3; h++ {
		ix := BuildNeighborhoodIndex(g, h, 1)
		if ix.H != h {
			t.Fatalf("index H = %d, want %d", ix.H, h)
		}
		tr := NewTraverser(g)
		for u := 0; u < g.NumNodes(); u++ {
			if want := tr.CountWithin(u, h); ix.N(u) != want {
				t.Fatalf("h=%d: N(%d) = %d, want %d", h, u, ix.N(u), want)
			}
		}
	}
}

func TestNeighborhoodIndexParallelMatchesSerial(t *testing.T) {
	g := randomGraph(300, 900, 2)
	serial := BuildNeighborhoodIndex(g, 2, 1)
	parallel := BuildNeighborhoodIndex(g, 2, 8)
	for u := 0; u < g.NumNodes(); u++ {
		if serial.N(u) != parallel.N(u) {
			t.Fatalf("N(%d): serial %d != parallel %d", u, serial.N(u), parallel.N(u))
		}
	}
}

func TestNeighborhoodIndexZeroHops(t *testing.T) {
	g := randomGraph(20, 40, 3)
	ix := BuildNeighborhoodIndex(g, 0, 1)
	for u := 0; u < g.NumNodes(); u++ {
		if ix.N(u) != 1 {
			t.Fatalf("h=0: N(%d) = %d, want 1", u, ix.N(u))
		}
	}
}

func TestDifferentialIndexMatchesBruteForce(t *testing.T) {
	for _, h := range []int{1, 2, 3} {
		g := randomGraph(60, 150, int64(10+h))
		dx := BuildDifferentialIndex(g, h, 1)
		for u := 0; u < g.NumNodes(); u++ {
			lo, hi := g.ArcRange(u)
			nbrs := g.Neighbors(u)
			for i, p := 0, lo; p < hi; i, p = i+1, p+1 {
				v := int(nbrs[i])
				want := DeltaBruteForce(g, u, v, h)
				if got := dx.DeltaArc(p); got != want {
					t.Fatalf("h=%d: delta(%d−%d) = %d, want %d", h, v, u, got, want)
				}
			}
		}
	}
}

func TestDifferentialIndexParallelMatchesSerial(t *testing.T) {
	g := randomGraph(150, 500, 4)
	serial := BuildDifferentialIndex(g, 2, 1)
	parallel := BuildDifferentialIndex(g, 2, 8)
	if len(serial.Delta) != len(parallel.Delta) {
		t.Fatal("index sizes differ")
	}
	for p := range serial.Delta {
		if serial.Delta[p] != parallel.Delta[p] {
			t.Fatalf("Delta[%d]: serial %d != parallel %d", p, serial.Delta[p], parallel.Delta[p])
		}
	}
}

// The identity delta(v−u) = N(v) − |S(u) ∩ S(v)| must hold by definition.
func TestDifferentialIdentityProperty(t *testing.T) {
	property := func(seed int64) bool {
		g := randomGraph(40, 100, seed)
		h := 2
		nix := BuildNeighborhoodIndex(g, h, 1)
		dx := BuildDifferentialIndex(g, h, 1)
		tr := NewTraverser(g)
		for u := 0; u < g.NumNodes(); u++ {
			su := map[int]bool{}
			tr.VisitWithin(u, h, func(w, _ int) { su[w] = true })
			lo, hi := g.ArcRange(u)
			nbrs := g.Neighbors(u)
			for i, p := 0, lo; p < hi; i, p = i+1, p+1 {
				v := int(nbrs[i])
				inter := 0
				tr.VisitWithin(v, h, func(w, _ int) {
					if su[w] {
						inter++
					}
				})
				if dx.DeltaArc(p) != nix.N(v)-inter {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaSymmetricEndpointsDiffer(t *testing.T) {
	// On a star, the hub's neighborhood strictly contains each leaf's,
	// so delta(leaf−hub) = 0 while delta(hub−leaf) > 0 for n > 2.
	b := NewBuilder(5, false)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	dx := BuildDifferentialIndex(g, 1, 1)

	lo, _ := g.ArcRange(0) // hub's first arc targets leaf 1: delta(1−0)
	if got := dx.DeltaArc(lo); got != 0 {
		t.Fatalf("delta(leaf−hub) = %d, want 0", got)
	}
	lo1, _ := g.ArcRange(1) // leaf 1's only arc targets hub: delta(0−1)
	if got := dx.DeltaArc(lo1); got != 3 {
		t.Fatalf("delta(hub−leaf) = %d, want 3 (leaves 2,3,4)", got)
	}
}

func TestCheckIndexCompatibility(t *testing.T) {
	g := randomGraph(10, 20, 6)
	nix := BuildNeighborhoodIndex(g, 2, 1)
	dix := BuildDifferentialIndex(g, 2, 1)
	if err := CheckIndexCompatibility(2, nix, dix); err != nil {
		t.Fatalf("matching h rejected: %v", err)
	}
	if err := CheckIndexCompatibility(1, nix, nil); err == nil {
		t.Fatal("mismatched neighborhood index accepted")
	}
	if err := CheckIndexCompatibility(3, nil, dix); err == nil {
		t.Fatal("mismatched differential index accepted")
	}
	if err := CheckIndexCompatibility(5, nil, nil); err != nil {
		t.Fatalf("nil indexes rejected: %v", err)
	}
}

func TestBuildIndexPanicsOnNegativeH(t *testing.T) {
	g := randomGraph(5, 5, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("negative h did not panic")
		}
	}()
	BuildNeighborhoodIndex(g, -1, 1)
}

func TestStatsOnKnownGraph(t *testing.T) {
	// Triangle plus an isolated node.
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Build()
	s := ComputeStats(g, 4)
	if s.Nodes != 4 || s.Edges != 3 {
		t.Fatalf("nodes/edges = %d/%d, want 4/3", s.Nodes, s.Edges)
	}
	if s.Isolated != 1 {
		t.Fatalf("Isolated = %d, want 1", s.Isolated)
	}
	if s.Components != 2 || s.LargestCC != 3 {
		t.Fatalf("components/largest = %d/%d, want 2/3", s.Components, s.LargestCC)
	}
	if s.GlobalClustering != 1.0 {
		t.Fatalf("clustering = %v, want 1.0 (triangle)", s.GlobalClustering)
	}
	if s.MaxDegree != 2 || s.MinDegree != 0 {
		t.Fatalf("degree range = [%d,%d], want [0,2]", s.MinDegree, s.MaxDegree)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := starGraph(5) // hub degree 4, leaves degree 1
	hist := DegreeHistogram(g)
	if len(hist) != 5 {
		t.Fatalf("histogram length %d, want 5", len(hist))
	}
	if hist[1] != 4 || hist[4] != 1 {
		t.Fatalf("histogram = %v, want 4 nodes of degree 1 and 1 of degree 4", hist)
	}
}
