package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// pathGraph returns 0-1-2-...-n-1.
func pathGraph(n int) *Graph {
	b := NewBuilder(n, false)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// starGraph returns node 0 connected to 1..n-1.
func starGraph(n int) *Graph {
	b := NewBuilder(n, false)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := FromEdges(4, false, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}})
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.NumArcs() != 8 {
		t.Fatalf("NumArcs = %d, want 8", g.NumArcs())
	}
	if g.Directed() {
		t.Fatal("undirected graph reports directed")
	}
	wantNbrs := map[int][]int32{
		0: {1, 2},
		1: {0, 2},
		2: {0, 1, 3},
		3: {2},
	}
	for u, want := range wantNbrs {
		got := g.Neighbors(u)
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", u, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v", u, got, want)
			}
		}
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // same undirected edge
	b.AddEdge(0, 1) // duplicate
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("duplicate edges inflated degrees")
	}
}

func TestBuilderDirected(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if !g.Directed() {
		t.Fatal("directed graph reports undirected")
	}
	if g.NumEdges() != 2 || g.NumArcs() != 2 {
		t.Fatalf("edges/arcs = %d/%d, want 2/2", g.NumEdges(), g.NumArcs())
	}
	if g.Degree(1) != 1 {
		t.Fatalf("out-degree(1) = %d, want 1", g.Degree(1))
	}
	if g.Degree(2) != 0 {
		t.Fatalf("out-degree(2) = %d, want 0", g.Degree(2))
	}
}

func TestBuilderPanicsOnSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	b := NewBuilder(2, false)
	b.AddEdge(1, 1)
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	b := NewBuilder(2, false)
	b.AddEdge(0, 5)
}

func TestTryAddEdgeErrors(t *testing.T) {
	b := NewBuilder(3, false)
	if err := b.TryAddEdge(0, 0); err == nil {
		t.Fatal("TryAddEdge accepted self-loop")
	}
	if err := b.TryAddEdge(-1, 1); err == nil {
		t.Fatal("TryAddEdge accepted negative id")
	}
	if err := b.TryAddEdge(0, 3); err == nil {
		t.Fatal("TryAddEdge accepted id >= n")
	}
	if err := b.TryAddEdge(0, 2); err != nil {
		t.Fatalf("TryAddEdge rejected valid edge: %v", err)
	}
	if b.NumPendingEdges() != 1 {
		t.Fatalf("NumPendingEdges = %d, want 1", b.NumPendingEdges())
	}
}

func TestHasEdge(t *testing.T) {
	g := FromEdges(5, false, [][2]int{{0, 1}, {1, 3}, {3, 4}})
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 3, true}, {0, 3, false},
		{4, 3, true}, {2, 0, false}, {2, 4, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Fatalf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0, false).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph has nodes or edges")
	}
	if g.MaxDegree() != 0 {
		t.Fatal("empty graph has positive max degree")
	}
}

func TestIsolatedNodes(t *testing.T) {
	g := FromEdges(5, false, [][2]int{{0, 1}}) // 2,3,4 isolated
	for _, u := range []int{2, 3, 4} {
		if g.Degree(u) != 0 {
			t.Fatalf("Degree(%d) = %d, want 0", u, g.Degree(u))
		}
		if len(g.Neighbors(u)) != 0 {
			t.Fatalf("Neighbors(%d) not empty", u)
		}
	}
}

func TestTraverserPathDistances(t *testing.T) {
	g := pathGraph(6) // 0-1-2-3-4-5
	tr := NewTraverser(g)
	dists := map[int]int{}
	tr.VisitWithin(2, 2, func(v, d int) { dists[v] = d })
	want := map[int]int{2: 0, 1: 1, 3: 1, 0: 2, 4: 2}
	if len(dists) != len(want) {
		t.Fatalf("visited %v, want %v", dists, want)
	}
	for v, d := range want {
		if dists[v] != d {
			t.Fatalf("dist[%d] = %d, want %d", v, dists[v], d)
		}
	}
}

func TestTraverserZeroHops(t *testing.T) {
	g := starGraph(4)
	tr := NewTraverser(g)
	if n := tr.CountWithin(0, 0); n != 1 {
		t.Fatalf("CountWithin(0,0) = %d, want 1 (self only)", n)
	}
	tr.VisitWithin(1, 0, func(v, d int) {
		if v != 1 || d != 0 {
			t.Fatalf("zero-hop visit (%d,%d)", v, d)
		}
	})
}

func TestTraverserNegativeHopsVisitsNothing(t *testing.T) {
	g := starGraph(3)
	tr := NewTraverser(g)
	called := false
	tr.VisitWithin(0, -1, func(int, int) { called = true })
	if called {
		t.Fatal("negative h visited nodes")
	}
}

func TestTraverserVisitsEachNodeOnce(t *testing.T) {
	// Dense graph with many redundant paths: each node must appear once.
	b := NewBuilder(8, false)
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	tr := NewTraverser(g)
	seen := map[int]int{}
	tr.VisitWithin(0, 3, func(v, _ int) { seen[v]++ })
	if len(seen) != 8 {
		t.Fatalf("visited %d nodes, want 8", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("node %d visited %d times", v, c)
		}
	}
}

func TestTraverserReusableAcrossCalls(t *testing.T) {
	g := pathGraph(10)
	tr := NewTraverser(g)
	for src := 0; src < 10; src++ {
		want := 1 // self
		if src > 0 {
			want++
		}
		if src < 9 {
			want++
		}
		if got := tr.CountWithin(src, 1); got != want {
			t.Fatalf("CountWithin(%d,1) = %d, want %d", src, got, want)
		}
	}
}

func TestCountMatchesBruteForceBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(40)
		b := NewBuilder(n, false)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		tr := NewTraverser(g)
		for h := 0; h <= 3; h++ {
			for src := 0; src < n; src++ {
				want := len(bruteForceWithin(g, src, h))
				if got := tr.CountWithin(src, h); got != want {
					t.Fatalf("trial %d: CountWithin(%d,%d) = %d, want %d", trial, src, h, got, want)
				}
			}
		}
	}
}

// bruteForceWithin computes S_h(src) with a simple O(h·V·E) relaxation.
func bruteForceWithin(g *Graph, src, h int) map[int]int {
	dist := map[int]int{src: 0}
	for round := 0; round < h; round++ {
		next := map[int]int{}
		for u, d := range dist {
			next[u] = d
		}
		for u, d := range dist {
			for _, v := range g.Neighbors(u) {
				if _, ok := next[int(v)]; !ok || next[int(v)] > d+1 {
					if cur, ok := next[int(v)]; !ok || cur > d+1 {
						next[int(v)] = d + 1
					}
				}
			}
		}
		dist = next
	}
	return dist
}

func TestCollectWithinOrderAndReuse(t *testing.T) {
	g := pathGraph(5)
	tr := NewTraverser(g)
	buf := tr.CollectWithin(0, 2, nil)
	want := []int32{0, 1, 2}
	if len(buf) != len(want) {
		t.Fatalf("CollectWithin = %v, want %v", buf, want)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("CollectWithin = %v, want %v (BFS order)", buf, want)
		}
	}
	buf = tr.CollectWithin(4, 1, buf[:0])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	if len(buf) != 2 || buf[0] != 3 || buf[1] != 4 {
		t.Fatalf("reused CollectWithin = %v, want [3 4]", buf)
	}
}

func TestSumWithin(t *testing.T) {
	g := starGraph(5)
	scores := []float64{0.5, 1, 0, 0.25, 0.25}
	tr := NewTraverser(g)
	sum, size := tr.SumWithin(0, 1, scores)
	if size != 5 {
		t.Fatalf("size = %d, want 5", size)
	}
	if sum != 2.0 {
		t.Fatalf("sum = %v, want 2.0", sum)
	}
	// Leaf at h=1 sees only itself and the hub.
	sum, size = tr.SumWithin(3, 1, scores)
	if size != 2 || sum != 0.75 {
		t.Fatalf("leaf sum/size = %v/%d, want 0.75/2", sum, size)
	}
}

func TestWeightedSumWithin(t *testing.T) {
	g := pathGraph(4) // 0-1-2-3
	scores := []float64{1, 1, 1, 1}
	tr := NewTraverser(g)
	sum, size := tr.WeightedSumWithin(0, 3, scores)
	if size != 4 {
		t.Fatalf("size = %d, want 4", size)
	}
	want := 1.0 + 1.0 + 0.5 + 1.0/3.0 // self + d1 + d2 + d3
	if diff := sum - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("weighted sum = %v, want %v", sum, want)
	}
}

func TestMaxAndCountWithin(t *testing.T) {
	g := pathGraph(5)
	scores := []float64{0, 0.3, 0, 0.9, 0}
	tr := NewTraverser(g)
	max, size := tr.MaxWithin(0, 2, scores)
	if size != 3 || max != 0.3 {
		t.Fatalf("max/size = %v/%d, want 0.3/3", max, size)
	}
	count, size := tr.CountPositiveWithin(2, 1, scores)
	if size != 3 || count != 2 {
		t.Fatalf("count/size = %d/%d, want 2/3", count, size)
	}
}

func TestEccentricity(t *testing.T) {
	g := pathGraph(7)
	tr := NewTraverser(g)
	if ecc := tr.Eccentricity(0, 10); ecc != 6 {
		t.Fatalf("Eccentricity(0) = %d, want 6", ecc)
	}
	if ecc := tr.Eccentricity(3, 10); ecc != 3 {
		t.Fatalf("Eccentricity(3) = %d, want 3", ecc)
	}
	if ecc := tr.Eccentricity(0, 2); ecc != 2 {
		t.Fatalf("capped Eccentricity = %d, want 2", ecc)
	}
}
