package graph

import (
	"math/bits"

	"repro/internal/ds"
)

// Traverser runs h-hop breadth-first expansions over one graph while
// reusing all scratch state (visited marks, frontier queue). A Traverser is
// not safe for concurrent use; create one per goroutine — they are cheap
// relative to the graph and amortize to zero allocation per traversal.
//
// The aggregation methods (SumWithin et al.) are deliberately flat: each
// carries its own copy of the level-by-level BFS loop with the aggregation
// fused in, rather than calling VisitWithin with a closure. The indirect
// call per visited node is the single hottest instruction in every
// forward scan, and the flat forms visit nodes — and accumulate floats —
// in exactly the order VisitWithin does, so the two families are
// interchangeable to the byte.
type Traverser struct {
	g     *Graph
	seen  *ds.Epoch
	queue []int32 // frontier storage: nodes in BFS order, level-delimited by counts
}

// NewTraverser returns a Traverser over g.
func NewTraverser(g *Graph) *Traverser {
	return &Traverser{g: g, seen: ds.NewEpoch(g.NumNodes())}
}

// Graph returns the graph this traverser walks.
func (t *Traverser) Graph() *Graph { return t.g }

// VisitWithin calls visit(v, dist) exactly once for every node v whose
// BFS distance from src is at most h, including src itself at distance 0.
// Visits occur in non-decreasing distance order. h < 0 visits nothing.
func (t *Traverser) VisitWithin(src, h int, visit func(v, dist int)) {
	if h < 0 {
		return
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	visit(src, 0)

	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			return // frontier exhausted before reaching h hops
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range t.g.Neighbors(u) {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				visit(int(v), dist)
			}
		}
		levelStart = levelEnd
	}
}

// CountWithin returns N(src) = |S_h(src)|, the number of nodes within h
// hops of src including src itself.
func (t *Traverser) CountWithin(src, h int) int {
	if h < 0 {
		return 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if !t.seen.Mark(int(v)) {
					t.queue = append(t.queue, v)
				}
			}
		}
		levelStart = levelEnd
	}
	return len(t.queue)
}

// CollectWithin appends S_h(src), in BFS order, to buf and returns it.
// Pass buf[:0] to reuse a previous buffer.
func (t *Traverser) CollectWithin(src, h int, buf []int32) []int32 {
	t.VisitWithin(src, h, func(v, _ int) { buf = append(buf, int32(v)) })
	return buf
}

// SumCountWithinOrdered returns Σ score[v] over S_h(src) accumulated in
// ascending node-id order, the count of strictly positive-or-negative
// (non-zero) scores among them, and |S_h(src)| — the fused form of
// CollectWithin + sort + ascending accumulation that incremental view
// repair needs for byte-identical float sums, without the sort. The BFS
// marks members in bs (which must cover the graph's id range and be
// empty); the drain then scans only the word span the neighborhood
// actually touched, in ascending order, zeroing words as it goes — bs
// comes back empty, ready for the caller's next node.
func (t *Traverser) SumCountWithinOrdered(src, h int, score []float64, bs *ds.Bitset) (sum float64, cnt, size int32) {
	if h < 0 {
		return 0, 0, 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	words := bs.Words()
	lo, hi := src>>6, src>>6
	words[src>>6] |= 1 << uint(src&63)
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				w := int(v) >> 6
				words[w] |= 1 << uint(v&63)
				if w < lo {
					lo = w
				} else if w > hi {
					hi = w
				}
			}
		}
		levelStart = levelEnd
	}
	// Ascending drain: words low to high, bits low to high within each —
	// exactly the summation order a sorted id list produces. Skipping
	// zero scores keeps the adds identical to the sorted-loop's (which
	// also skipped them), so the float bits cannot differ.
	for w := lo; w <= hi; w++ {
		word := words[w]
		if word == 0 {
			continue
		}
		words[w] = 0
		base := w << 6
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			if s := score[base+b]; s != 0 {
				sum += s
				cnt++
			}
		}
	}
	return sum, cnt, int32(len(t.queue))
}

// SumWithin returns the sum of score[v] over v in S_h(src) together with
// N(src). This is the exact forward evaluation F_sum(src) from
// Definition 2, fused with the neighborhood count so one BFS serves both
// SUM and AVG.
func (t *Traverser) SumWithin(src, h int, score []float64) (sum float64, size int) {
	if h < 0 {
		return 0, 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	sum = score[src]
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				sum += score[v]
			}
		}
		levelStart = levelEnd
	}
	return sum, len(t.queue)
}

// WeightedSumWithin returns Σ score[v] / dist(src, v) over S_h(src)\{src}
// plus score[src] itself, following footnote 1 of the paper with
// w(u, v) = 1/shortest-distance. The source's own score has weight 1.
func (t *Traverser) WeightedSumWithin(src, h int, score []float64) (sum float64, size int) {
	if h < 0 {
		return 0, 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	sum = score[src]
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		fdist := float64(dist)
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				sum += score[v] / fdist
			}
		}
		levelStart = levelEnd
	}
	return sum, len(t.queue)
}

// WeightedPlainSumWithin computes, in one BFS, both the weighted sum the
// WSUM aggregate reports (weight 1 at distance <= 1, 1/dist beyond) and
// the plain sum the pruning bounds compare against.
func (t *Traverser) WeightedPlainSumWithin(src, h int, score []float64) (wsum, sum float64, size int) {
	if h < 0 {
		return 0, 0, 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	sum = score[src]
	wsum = score[src]
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		fdist := float64(dist)
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				sum += score[v]
				if dist <= 1 {
					wsum += score[v]
				} else {
					wsum += score[v] / fdist
				}
			}
		}
		levelStart = levelEnd
	}
	return wsum, sum, len(t.queue)
}

// MaxWithin returns the maximum score over S_h(src) and N(src).
// The maximum of an empty neighborhood cannot occur (src is always
// included), so the result is well-defined.
func (t *Traverser) MaxWithin(src, h int, score []float64) (max float64, size int) {
	if h < 0 {
		return 0, 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	max = score[src]
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				if score[v] > max {
					max = score[v]
				}
			}
		}
		levelStart = levelEnd
	}
	return max, len(t.queue)
}

// CountPositiveWithin returns the number of nodes in S_h(src) with a
// strictly positive score (the COUNT aggregate over relevant nodes) and
// N(src).
func (t *Traverser) CountPositiveWithin(src, h int, score []float64) (count, size int) {
	if h < 0 {
		return 0, 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	if score[src] > 0 {
		count++
	}
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				if score[v] > 0 {
					count++
				}
			}
		}
		levelStart = levelEnd
	}
	return count, len(t.queue)
}

// AddWithin adds mass to acc[v] for every v in S_h(src) and returns
// |S_h(src)| — one backward-distribution step for the SUM family (and,
// with mass 1, for COUNT).
func (t *Traverser) AddWithin(src, h int, mass float64, acc []float64) (size int) {
	if h < 0 {
		return 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	acc[src] += mass
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				acc[v] += mass
			}
		}
		levelStart = levelEnd
	}
	return len(t.queue)
}

// AddWeightedWithin distributes mass/dist to acc over S_h(src) (weight 1
// at distance <= 1) and returns |S_h(src)| — the WSUM backward step.
// Undirected BFS distances are symmetric, so accumulating mass/dist at
// each neighbor reconstructs Σ f(v)/dist(u,v) exactly.
func (t *Traverser) AddWeightedWithin(src, h int, mass float64, acc []float64) (size int) {
	if h < 0 {
		return 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	acc[src] += mass
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		fdist := float64(dist)
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				if dist <= 1 {
					acc[v] += mass
				} else {
					acc[v] += mass / fdist
				}
			}
		}
		levelStart = levelEnd
	}
	return len(t.queue)
}

// MaxAddWithin raises acc[v] to mass where smaller, over S_h(src), and
// returns |S_h(src)| — the MAX backward step.
func (t *Traverser) MaxAddWithin(src, h int, mass float64, acc []float64) (size int) {
	if h < 0 {
		return 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	if mass > acc[src] {
		acc[src] = mass
	}
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				if mass > acc[v] {
					acc[v] = mass
				}
			}
		}
		levelStart = levelEnd
	}
	return len(t.queue)
}

// AddScanWithin adds mass to acc[v] and increments scans[v] for every v
// in S_h(src), returning |S_h(src)| — the partial-distribution step of
// LONA-Backward, which needs both the accumulated mass P(v) and the scan
// count l(v) for Equation 3.
func (t *Traverser) AddScanWithin(src, h int, mass float64, acc []float64, scans []int32) (size int) {
	if h < 0 {
		return 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	acc[src] += mass
	scans[src]++
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				acc[v] += mass
				scans[v]++
			}
		}
		levelStart = levelEnd
	}
	return len(t.queue)
}

// CountUnmarkedWithin returns how many nodes of S_h(src) are not marked
// in marks — the inner step of the differential-index build, flattened
// for the same reason as the aggregation methods (it runs once per arc
// of the whole graph).
func (t *Traverser) CountUnmarkedWithin(src, h int, marks *ds.Epoch) (missing int) {
	if h < 0 {
		return 0
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	if !marks.Marked(src) {
		missing++
	}
	adj, offsets := t.g.adj, t.g.offsets
	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			break
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range adj[offsets[u]:offsets[u+1]] {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				if !marks.Marked(int(v)) {
					missing++
				}
			}
		}
		levelStart = levelEnd
	}
	return missing
}

// Eccentricity returns the largest BFS distance reachable from src within
// limit hops (capped at limit). Useful for dataset statistics.
func (t *Traverser) Eccentricity(src, limit int) int {
	far := 0
	t.VisitWithin(src, limit, func(_, dist int) {
		if dist > far {
			far = dist
		}
	})
	return far
}
