package graph

import (
	"repro/internal/ds"
)

// Traverser runs h-hop breadth-first expansions over one graph while
// reusing all scratch state (visited marks, frontier queue). A Traverser is
// not safe for concurrent use; create one per goroutine — they are cheap
// relative to the graph and amortize to zero allocation per traversal.
type Traverser struct {
	g     *Graph
	seen  *ds.Epoch
	queue []int32 // frontier storage: nodes in BFS order, level-delimited by counts
}

// NewTraverser returns a Traverser over g.
func NewTraverser(g *Graph) *Traverser {
	return &Traverser{g: g, seen: ds.NewEpoch(g.NumNodes())}
}

// Graph returns the graph this traverser walks.
func (t *Traverser) Graph() *Graph { return t.g }

// VisitWithin calls visit(v, dist) exactly once for every node v whose
// BFS distance from src is at most h, including src itself at distance 0.
// Visits occur in non-decreasing distance order. h < 0 visits nothing.
func (t *Traverser) VisitWithin(src, h int, visit func(v, dist int)) {
	if h < 0 {
		return
	}
	t.seen.Reset()
	t.queue = t.queue[:0]
	t.seen.Mark(src)
	t.queue = append(t.queue, int32(src))
	visit(src, 0)

	levelStart := 0
	for dist := 1; dist <= h; dist++ {
		levelEnd := len(t.queue)
		if levelStart == levelEnd {
			return // frontier exhausted before reaching h hops
		}
		for i := levelStart; i < levelEnd; i++ {
			u := int(t.queue[i])
			for _, v := range t.g.Neighbors(u) {
				if t.seen.Mark(int(v)) {
					continue
				}
				t.queue = append(t.queue, v)
				visit(int(v), dist)
			}
		}
		levelStart = levelEnd
	}
}

// CountWithin returns N(src) = |S_h(src)|, the number of nodes within h
// hops of src including src itself.
func (t *Traverser) CountWithin(src, h int) int {
	count := 0
	t.VisitWithin(src, h, func(int, int) { count++ })
	return count
}

// CollectWithin appends S_h(src), in BFS order, to buf and returns it.
// Pass buf[:0] to reuse a previous buffer.
func (t *Traverser) CollectWithin(src, h int, buf []int32) []int32 {
	t.VisitWithin(src, h, func(v, _ int) { buf = append(buf, int32(v)) })
	return buf
}

// SumWithin returns the sum of score[v] over v in S_h(src) together with
// N(src). This is the exact forward evaluation F_sum(src) from
// Definition 2, fused with the neighborhood count so one BFS serves both
// SUM and AVG.
func (t *Traverser) SumWithin(src, h int, score []float64) (sum float64, size int) {
	t.VisitWithin(src, h, func(v, _ int) {
		sum += score[v]
		size++
	})
	return sum, size
}

// WeightedSumWithin returns Σ score[v] / dist(src, v) over S_h(src)\{src}
// plus score[src] itself, following footnote 1 of the paper with
// w(u, v) = 1/shortest-distance. The source's own score has weight 1.
func (t *Traverser) WeightedSumWithin(src, h int, score []float64) (sum float64, size int) {
	t.VisitWithin(src, h, func(v, dist int) {
		size++
		if dist == 0 {
			sum += score[v]
			return
		}
		sum += score[v] / float64(dist)
	})
	return sum, size
}

// MaxWithin returns the maximum score over S_h(src) and N(src).
// The maximum of an empty neighborhood cannot occur (src is always
// included), so the result is well-defined.
func (t *Traverser) MaxWithin(src, h int, score []float64) (max float64, size int) {
	first := true
	t.VisitWithin(src, h, func(v, _ int) {
		size++
		if first || score[v] > max {
			max = score[v]
			first = false
		}
	})
	return max, size
}

// CountPositiveWithin returns the number of nodes in S_h(src) with a
// strictly positive score (the COUNT aggregate over relevant nodes) and
// N(src).
func (t *Traverser) CountPositiveWithin(src, h int, score []float64) (count, size int) {
	t.VisitWithin(src, h, func(v, _ int) {
		size++
		if score[v] > 0 {
			count++
		}
	})
	return count, size
}

// Eccentricity returns the largest BFS distance reachable from src within
// limit hops (capped at limit). Useful for dataset statistics.
func (t *Traverser) Eccentricity(src, limit int) int {
	far := 0
	t.VisitWithin(src, limit, func(_, dist int) {
		if dist > far {
			far = dist
		}
	})
	return far
}
