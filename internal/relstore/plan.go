package relstore

import (
	"fmt"

	"repro/internal/graph"
)

// EdgeTable materializes an undirected graph as the relational edge table
// a SQL engine would store: columns (src, dst), one row per arc (both
// directions), exactly the "gigantic edge table" the paper's introduction
// talks about.
func EdgeTable(g *graph.Graph) *Table {
	arcs := g.NumArcs()
	src := make([]int64, 0, arcs)
	dst := make([]int64, 0, arcs)
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			src = append(src, int64(u))
			dst = append(dst, int64(v))
		}
	}
	t, err := NewIntTable([]string{"src", "dst"}, src, dst)
	if err != nil {
		panic(fmt.Sprintf("relstore: EdgeTable construction cannot fail: %v", err))
	}
	return t
}

// ScoreTable materializes a relevance vector as columns (node, score).
func ScoreTable(scores []float64) *Table {
	node := make([]int64, len(scores))
	vals := make([]float64, len(scores))
	for v, s := range scores {
		node[v] = int64(v)
		vals[v] = s
	}
	return &Table{Columns: []Column{
		{Name: "node", Kind: Int64, Ints: node},
		{Name: "score", Kind: Float64, Floats: vals},
	}}
}

// NeighborhoodTopK answers the paper's 2-hop top-k SUM/AVG query through a
// relational plan, exactly as a top-k-unaware RDBMS would execute it:
//
//	reach1 := edges                                   -- distance 1
//	reach2 := π(src, dst2)(edges ⋈_{dst=src} edges)    -- distance ≤ 2 (self-join)
//	self   := (u, u) for every node                    -- distance 0
//	reach  := DISTINCT(self ∪ reach1 ∪ reach2)
//	sums   := SELECT src, SUM(score) FROM reach JOIN scores GROUP BY src
//	answer := ORDER BY sum DESC LIMIT k   (÷ count for AVG)
//
// Only h ∈ {1, 2} is supported; beyond that the self-join chain grows the
// way the introduction warns about. The result matches core's Base on the
// same inputs (tested), making the runtime gap attributable purely to the
// execution model.
func NeighborhoodTopK(g *graph.Graph, scores []float64, h, k int, average bool) (*Table, error) {
	if g.Directed() {
		return nil, fmt.Errorf("relstore: relational plan implemented for undirected graphs")
	}
	if h != 1 && h != 2 {
		return nil, fmt.Errorf("relstore: relational plan supports h=1 or h=2, got %d", h)
	}
	if len(scores) != g.NumNodes() {
		return nil, fmt.Errorf("relstore: %d scores for %d nodes", len(scores), g.NumNodes())
	}
	if k <= 0 {
		return nil, fmt.Errorf("relstore: k must be positive, got %d", k)
	}

	edges := EdgeTable(g)

	// Distance 0: every node reaches itself.
	n := g.NumNodes()
	selfSrc := make([]int64, n)
	selfDst := make([]int64, n)
	for u := 0; u < n; u++ {
		selfSrc[u] = int64(u)
		selfDst[u] = int64(u)
	}
	self, err := NewIntTable([]string{"src", "dst"}, selfSrc, selfDst)
	if err != nil {
		return nil, err
	}

	parts := []*Table{self, edges}
	if h == 2 {
		// The self-join the introduction warns about: |E| ⋈ |E| on dst=src.
		joined, err := HashJoin(edges, edges, "dst", "src")
		if err != nil {
			return nil, err
		}
		// joined columns: src, dst, right_dst (the 2-hop endpoint).
		twoHop, err := Project(joined, "src", "right_dst")
		if err != nil {
			return nil, err
		}
		twoHop.Columns[1].Name = "dst"
		parts = append(parts, twoHop)
	}
	reachAll, err := UnionAll(parts...)
	if err != nil {
		return nil, err
	}
	reach, err := Distinct(reachAll, "src", "dst")
	if err != nil {
		return nil, err
	}

	withScores, err := HashJoin(reach, ScoreTable(scores), "dst", "node")
	if err != nil {
		return nil, err
	}
	sums, err := GroupBySum(withScores, "src", "score")
	if err != nil {
		return nil, err
	}

	if average {
		counts, err := GroupByCount(reach, "src")
		if err != nil {
			return nil, err
		}
		sums, err = divide(sums, counts, "src", "sum", "count")
		if err != nil {
			return nil, err
		}
	}
	return OrderByLimit(sums, "src", "sum", k)
}

// divide joins two (key, value) tables on key and replaces numerator's
// value with numerator/denominator — the AVG finishing step.
func divide(numerator, denominator *Table, key, numCol, denCol string) (*Table, error) {
	joined, err := HashJoin(numerator, denominator, key, key)
	if err != nil {
		return nil, err
	}
	nc, err := joined.floatCol(numCol)
	if err != nil {
		return nil, err
	}
	dc, err := joined.floatCol(denCol)
	if err != nil {
		return nil, err
	}
	kc, err := joined.intCol(key)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(nc.Floats))
	for i := range out {
		if dc.Floats[i] == 0 {
			return nil, fmt.Errorf("relstore: zero neighborhood size for key %d", kc.Ints[i])
		}
		out[i] = nc.Floats[i] / dc.Floats[i]
	}
	return &Table{Columns: []Column{
		{Name: key, Kind: Int64, Ints: kc.Ints},
		{Name: numCol, Kind: Float64, Floats: out},
	}}, nil
}
