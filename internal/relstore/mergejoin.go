package relstore

import "sort"

// MergeJoin performs the same inner equi-join as HashJoin but by sorting
// both sides on their key and merging — the plan a relational optimizer
// picks when inputs are large relative to memory or already sorted. Output
// schema and row multiset match HashJoin exactly (row order may differ);
// the tests enforce the equivalence, and the A5 experiment's conclusion is
// robust to the join implementation either way.
func MergeJoin(left, right *Table, leftKey, rightKey string) (*Table, error) {
	lk, err := left.intCol(leftKey)
	if err != nil {
		return nil, err
	}
	rk, err := right.intCol(rightKey)
	if err != nil {
		return nil, err
	}

	lorder := sortedRowOrder(lk.Ints)
	rorder := sortedRowOrder(rk.Ints)

	var leftRows, rightRows []int32
	li, ri := 0, 0
	for li < len(lorder) && ri < len(rorder) {
		lval := lk.Ints[lorder[li]]
		rval := rk.Ints[rorder[ri]]
		switch {
		case lval < rval:
			li++
		case lval > rval:
			ri++
		default:
			// Emit the cross product of the two equal-key runs.
			lEnd := li
			for lEnd < len(lorder) && lk.Ints[lorder[lEnd]] == lval {
				lEnd++
			}
			rEnd := ri
			for rEnd < len(rorder) && rk.Ints[rorder[rEnd]] == rval {
				rEnd++
			}
			for i := li; i < lEnd; i++ {
				for j := ri; j < rEnd; j++ {
					leftRows = append(leftRows, lorder[i])
					rightRows = append(rightRows, rorder[j])
				}
			}
			li, ri = lEnd, rEnd
		}
	}

	out := &Table{}
	usedNames := map[string]bool{}
	for i := range left.Columns {
		c := gatherColumn(&left.Columns[i], leftRows)
		usedNames[c.Name] = true
		out.Columns = append(out.Columns, c)
	}
	for i := range right.Columns {
		src := &right.Columns[i]
		if src.Name == rightKey {
			continue
		}
		c := gatherColumn(src, rightRows)
		if usedNames[c.Name] {
			c.Name = "right_" + c.Name
		}
		out.Columns = append(out.Columns, c)
	}
	return out, nil
}

// sortedRowOrder returns row indices ordered by key value (stable, so
// equal keys keep their original relative order).
func sortedRowOrder(keys []int64) []int32 {
	order := make([]int32, len(keys))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	return order
}
