package relstore

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// joinSignature reduces a join result over (src, dst/right_dst)-style int
// tables to a sorted multiset for order-insensitive comparison.
func joinSignature(t *Table) ([]string, error) {
	rows := t.NumRows()
	sig := make([]string, rows)
	for r := 0; r < rows; r++ {
		line := ""
		for i := range t.Columns {
			c := &t.Columns[i]
			if c.Kind == Int64 {
				line += "|" + itoa(c.Ints[r])
			} else {
				line += "|f"
			}
		}
		sig[r] = line
	}
	sort.Strings(sig)
	return sig, nil
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		nl, nr := rng.Intn(50), rng.Intn(50)
		lk := make([]int64, nl)
		lv := make([]int64, nl)
		rk := make([]int64, nr)
		rv := make([]int64, nr)
		for i := range lk {
			lk[i] = int64(rng.Intn(10)) // few keys: many duplicate runs
			lv[i] = int64(i)
		}
		for i := range rk {
			rk[i] = int64(rng.Intn(10))
			rv[i] = int64(100 + i)
		}
		left, err := NewIntTable([]string{"k", "lv"}, lk, lv)
		if err != nil {
			t.Fatal(err)
		}
		right, err := NewIntTable([]string{"k", "rv"}, rk, rv)
		if err != nil {
			t.Fatal(err)
		}
		hashed, err := HashJoin(left, right, "k", "k")
		if err != nil {
			t.Fatal(err)
		}
		merged, err := MergeJoin(left, right, "k", "k")
		if err != nil {
			t.Fatal(err)
		}
		hs, err := joinSignature(hashed)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := joinSignature(merged)
		if err != nil {
			t.Fatal(err)
		}
		if len(hs) != len(ms) {
			t.Fatalf("trial %d: hash %d rows, merge %d rows", trial, len(hs), len(ms))
		}
		for i := range hs {
			if hs[i] != ms[i] {
				t.Fatalf("trial %d row %d: %q vs %q", trial, i, hs[i], ms[i])
			}
		}
	}
}

func TestMergeJoinEmptySides(t *testing.T) {
	empty, err := NewIntTable([]string{"k"}, []int64{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewIntTable([]string{"k", "v"}, []int64{1, 2}, []int64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := MergeJoin(empty, full, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatalf("empty join produced %d rows", out.NumRows())
	}
	if _, err := MergeJoin(full, full, "missing", "k"); err == nil {
		t.Fatal("missing key column accepted")
	}
}

func TestMergeJoinPropertyEquivalence(t *testing.T) {
	property := func(lkRaw, rkRaw []uint8) bool {
		lk := make([]int64, len(lkRaw))
		for i, v := range lkRaw {
			lk[i] = int64(v % 16)
		}
		rk := make([]int64, len(rkRaw))
		for i, v := range rkRaw {
			rk[i] = int64(v % 16)
		}
		left, err := NewIntTable([]string{"k"}, lk)
		if err != nil {
			return false
		}
		right, err := NewIntTable([]string{"k"}, rk)
		if err != nil {
			return false
		}
		hashed, err := HashJoin(left, right, "k", "k")
		if err != nil {
			return false
		}
		merged, err := MergeJoin(left, right, "k", "k")
		if err != nil {
			return false
		}
		return hashed.NumRows() == merged.NumRows()
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
