// Package relstore is a deliberately small column-oriented relational
// engine: typed columns, hash joins, distinct, group-by aggregation, and
// order-by-limit. It exists to make the paper's motivating claim testable —
// that answering 2-hop neighborhood aggregation through a relational query
// plan ("it has to self-join two gigantic edge tables") is far slower than
// graph-native processing. Benchmark A5 runs the relational plan in
// NeighborhoodTopK against LONA on the same data.
package relstore

import (
	"fmt"
	"sort"
)

// Kind is a column type.
type Kind uint8

const (
	// Int64 columns hold node ids and counts.
	Int64 Kind = iota
	// Float64 columns hold scores and aggregates.
	Float64
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Column is a named, typed column. Exactly one of Ints/Floats is used,
// selected by Kind.
type Column struct {
	Name   string
	Kind   Kind
	Ints   []int64
	Floats []float64
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	if c.Kind == Int64 {
		return len(c.Ints)
	}
	return len(c.Floats)
}

// Table is a set of equal-length columns.
type Table struct {
	Columns []Column
}

// NumRows returns the table's row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// Validate checks the column lengths agree and names are unique.
func (t *Table) Validate() error {
	seen := map[string]bool{}
	rows := -1
	for i := range t.Columns {
		c := &t.Columns[i]
		if seen[c.Name] {
			return fmt.Errorf("relstore: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		if rows == -1 {
			rows = c.Len()
		} else if c.Len() != rows {
			return fmt.Errorf("relstore: column %q has %d rows, want %d", c.Name, c.Len(), rows)
		}
	}
	return nil
}

// Col returns a pointer to the named column.
func (t *Table) Col(name string) (*Column, error) {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i], nil
		}
	}
	return nil, fmt.Errorf("relstore: no column %q", name)
}

func (t *Table) intCol(name string) (*Column, error) {
	c, err := t.Col(name)
	if err != nil {
		return nil, err
	}
	if c.Kind != Int64 {
		return nil, fmt.Errorf("relstore: column %q is %v, want int64", name, c.Kind)
	}
	return c, nil
}

func (t *Table) floatCol(name string) (*Column, error) {
	c, err := t.Col(name)
	if err != nil {
		return nil, err
	}
	if c.Kind != Float64 {
		return nil, fmt.Errorf("relstore: column %q is %v, want float64", name, c.Kind)
	}
	return c, nil
}

// NewIntTable builds a table of int64 columns from parallel slices.
func NewIntTable(names []string, cols ...[]int64) (*Table, error) {
	if len(names) != len(cols) {
		return nil, fmt.Errorf("relstore: %d names for %d columns", len(names), len(cols))
	}
	t := &Table{}
	for i, name := range names {
		t.Columns = append(t.Columns, Column{Name: name, Kind: Int64, Ints: cols[i]})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// HashJoin performs an inner equi-join of left and right on
// left.leftKey = right.rightKey (both int64). The output contains every
// left column followed by every right column except rightKey; name
// collisions get a "right_" prefix, mirroring what a SQL planner's alias
// would do.
func HashJoin(left, right *Table, leftKey, rightKey string) (*Table, error) {
	lk, err := left.intCol(leftKey)
	if err != nil {
		return nil, err
	}
	rk, err := right.intCol(rightKey)
	if err != nil {
		return nil, err
	}
	// Build phase over the smaller side would be the real optimizer move;
	// for clarity we always build on the right, as the textbook plan does.
	build := make(map[int64][]int32, right.NumRows())
	for row := 0; row < right.NumRows(); row++ {
		key := rk.Ints[row]
		build[key] = append(build[key], int32(row))
	}

	var leftRows, rightRows []int32
	for row := 0; row < left.NumRows(); row++ {
		for _, m := range build[lk.Ints[row]] {
			leftRows = append(leftRows, int32(row))
			rightRows = append(rightRows, m)
		}
	}

	out := &Table{}
	usedNames := map[string]bool{}
	for i := range left.Columns {
		c := gatherColumn(&left.Columns[i], leftRows)
		usedNames[c.Name] = true
		out.Columns = append(out.Columns, c)
	}
	for i := range right.Columns {
		src := &right.Columns[i]
		if src.Name == rightKey {
			continue // equal to leftKey by the join predicate
		}
		c := gatherColumn(src, rightRows)
		if usedNames[c.Name] {
			c.Name = "right_" + c.Name
		}
		out.Columns = append(out.Columns, c)
	}
	return out, nil
}

func gatherColumn(src *Column, rows []int32) Column {
	out := Column{Name: src.Name, Kind: src.Kind}
	if src.Kind == Int64 {
		out.Ints = make([]int64, len(rows))
		for i, r := range rows {
			out.Ints[i] = src.Ints[r]
		}
		return out
	}
	out.Floats = make([]float64, len(rows))
	for i, r := range rows {
		out.Floats[i] = src.Floats[r]
	}
	return out
}

// Project returns a table with only the named columns, in order.
func Project(t *Table, names ...string) (*Table, error) {
	out := &Table{}
	for _, name := range names {
		c, err := t.Col(name)
		if err != nil {
			return nil, err
		}
		out.Columns = append(out.Columns, *c)
	}
	return out, out.Validate()
}

// Distinct removes duplicate rows over the two named int64 columns
// (the shape every neighborhood-reachability deduplication needs).
func Distinct(t *Table, a, b string) (*Table, error) {
	ca, err := t.intCol(a)
	if err != nil {
		return nil, err
	}
	cb, err := t.intCol(b)
	if err != nil {
		return nil, err
	}
	type pair struct{ x, y int64 }
	seen := make(map[pair]struct{}, t.NumRows())
	outA := make([]int64, 0, t.NumRows())
	outB := make([]int64, 0, t.NumRows())
	for row := 0; row < t.NumRows(); row++ {
		p := pair{ca.Ints[row], cb.Ints[row]}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		outA = append(outA, p.x)
		outB = append(outB, p.y)
	}
	return NewIntTable([]string{a, b}, outA, outB)
}

// UnionAll concatenates tables with identical schemas.
func UnionAll(tables ...*Table) (*Table, error) {
	if len(tables) == 0 {
		return &Table{}, nil
	}
	first := tables[0]
	out := &Table{Columns: make([]Column, len(first.Columns))}
	for i := range first.Columns {
		out.Columns[i] = Column{Name: first.Columns[i].Name, Kind: first.Columns[i].Kind}
	}
	for _, t := range tables {
		if len(t.Columns) != len(out.Columns) {
			return nil, fmt.Errorf("relstore: UnionAll schema mismatch: %d vs %d columns", len(t.Columns), len(out.Columns))
		}
		for i := range t.Columns {
			src := &t.Columns[i]
			dst := &out.Columns[i]
			if src.Name != dst.Name || src.Kind != dst.Kind {
				return nil, fmt.Errorf("relstore: UnionAll column %d mismatch: %s/%v vs %s/%v",
					i, src.Name, src.Kind, dst.Name, dst.Kind)
			}
			if src.Kind == Int64 {
				dst.Ints = append(dst.Ints, src.Ints...)
			} else {
				dst.Floats = append(dst.Floats, src.Floats...)
			}
		}
	}
	return out, out.Validate()
}

// GroupBySum groups by the int64 key column and sums the float64 value
// column, producing columns (key, "sum").
func GroupBySum(t *Table, key, value string) (*Table, error) {
	ck, err := t.intCol(key)
	if err != nil {
		return nil, err
	}
	cv, err := t.floatCol(value)
	if err != nil {
		return nil, err
	}
	sums := make(map[int64]float64, t.NumRows())
	for row := 0; row < t.NumRows(); row++ {
		sums[ck.Ints[row]] += cv.Floats[row]
	}
	keys := make([]int64, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	outK := make([]int64, len(keys))
	outV := make([]float64, len(keys))
	for i, k := range keys {
		outK[i] = k
		outV[i] = sums[k]
	}
	return &Table{Columns: []Column{
		{Name: key, Kind: Int64, Ints: outK},
		{Name: "sum", Kind: Float64, Floats: outV},
	}}, nil
}

// GroupByCount groups by the int64 key column and counts rows, producing
// columns (key, "count") with count as float64 for aggregate uniformity.
func GroupByCount(t *Table, key string) (*Table, error) {
	ck, err := t.intCol(key)
	if err != nil {
		return nil, err
	}
	counts := make(map[int64]float64, t.NumRows())
	for row := 0; row < t.NumRows(); row++ {
		counts[ck.Ints[row]]++
	}
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	outK := make([]int64, len(keys))
	outV := make([]float64, len(keys))
	for i, k := range keys {
		outK[i] = k
		outV[i] = counts[k]
	}
	return &Table{Columns: []Column{
		{Name: key, Kind: Int64, Ints: outK},
		{Name: "count", Kind: Float64, Floats: outV},
	}}, nil
}

// OrderByLimit sorts by the float64 column descending (ties: ascending
// int64 key, matching LONA's deterministic tie-break) and keeps k rows.
func OrderByLimit(t *Table, key, value string, k int) (*Table, error) {
	if k < 0 {
		return nil, fmt.Errorf("relstore: negative limit %d", k)
	}
	ck, err := t.intCol(key)
	if err != nil {
		return nil, err
	}
	cv, err := t.floatCol(value)
	if err != nil {
		return nil, err
	}
	order := make([]int32, t.NumRows())
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if cv.Floats[a] != cv.Floats[b] {
			return cv.Floats[a] > cv.Floats[b]
		}
		return ck.Ints[a] < ck.Ints[b]
	})
	if k < len(order) {
		order = order[:k]
	}
	outK := make([]int64, len(order))
	outV := make([]float64, len(order))
	for i, r := range order {
		outK[i] = ck.Ints[r]
		outV[i] = cv.Floats[r]
	}
	return &Table{Columns: []Column{
		{Name: key, Kind: Int64, Ints: outK},
		{Name: value, Kind: Float64, Floats: outV},
	}}, nil
}
