package relstore

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relevance"
)

func TestTableValidate(t *testing.T) {
	good := &Table{Columns: []Column{
		{Name: "a", Kind: Int64, Ints: []int64{1, 2}},
		{Name: "b", Kind: Float64, Floats: []float64{0.5, 0.7}},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	dup := &Table{Columns: []Column{
		{Name: "a", Kind: Int64, Ints: []int64{1}},
		{Name: "a", Kind: Int64, Ints: []int64{2}},
	}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate column accepted")
	}
	ragged := &Table{Columns: []Column{
		{Name: "a", Kind: Int64, Ints: []int64{1, 2}},
		{Name: "b", Kind: Int64, Ints: []int64{1}},
	}}
	if err := ragged.Validate(); err == nil {
		t.Fatal("ragged table accepted")
	}
}

func TestColTypeChecks(t *testing.T) {
	tab, err := NewIntTable([]string{"x"}, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Col("missing"); err == nil {
		t.Fatal("missing column found")
	}
	if _, err := tab.floatCol("x"); err == nil {
		t.Fatal("int column served as float")
	}
	if _, err := tab.intCol("x"); err != nil {
		t.Fatalf("int column rejected: %v", err)
	}
}

func TestHashJoinBasic(t *testing.T) {
	left, _ := NewIntTable([]string{"src", "dst"}, []int64{0, 0, 1}, []int64{1, 2, 2})
	right, _ := NewIntTable([]string{"src", "dst"}, []int64{1, 2, 2}, []int64{9, 8, 7})
	out, err := HashJoin(left, right, "dst", "src")
	if err != nil {
		t.Fatal(err)
	}
	// Matches: (0,1)x(1,9); (0,2)x(2,8),(2,7); (1,2)x(2,8),(2,7) = 5 rows.
	if out.NumRows() != 5 {
		t.Fatalf("join rows = %d, want 5", out.NumRows())
	}
	// Collided column name gets prefixed.
	if _, err := out.Col("right_dst"); err != nil {
		t.Fatalf("right_dst missing: %v", err)
	}
}

func TestHashJoinNoMatches(t *testing.T) {
	left, _ := NewIntTable([]string{"k", "v"}, []int64{1}, []int64{2})
	right, _ := NewIntTable([]string{"k", "w"}, []int64{5}, []int64{6})
	out, err := HashJoin(left, right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatalf("join of disjoint keys produced %d rows", out.NumRows())
	}
}

func TestDistinct(t *testing.T) {
	tab, _ := NewIntTable([]string{"a", "b"},
		[]int64{1, 1, 2, 1, 2}, []int64{5, 5, 6, 7, 6})
	out, err := Distinct(tab, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("distinct rows = %d, want 3", out.NumRows())
	}
}

func TestUnionAllSchemaChecks(t *testing.T) {
	a, _ := NewIntTable([]string{"x", "y"}, []int64{1}, []int64{2})
	b, _ := NewIntTable([]string{"x", "y"}, []int64{3, 4}, []int64{5, 6})
	out, err := UnionAll(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("union rows = %d, want 3", out.NumRows())
	}
	mismatched, _ := NewIntTable([]string{"x", "z"}, []int64{1}, []int64{2})
	if _, err := UnionAll(a, mismatched); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestGroupBySumAndCount(t *testing.T) {
	tab := &Table{Columns: []Column{
		{Name: "k", Kind: Int64, Ints: []int64{2, 1, 2, 1, 2}},
		{Name: "v", Kind: Float64, Floats: []float64{1, 2, 3, 4, 5}},
	}}
	sums, err := GroupBySum(tab, "k", "v")
	if err != nil {
		t.Fatal(err)
	}
	// Keys sorted ascending: 1 -> 6, 2 -> 9.
	kc, _ := sums.intCol("k")
	vc, _ := sums.floatCol("sum")
	if kc.Ints[0] != 1 || vc.Floats[0] != 6 || kc.Ints[1] != 2 || vc.Floats[1] != 9 {
		t.Fatalf("GroupBySum = %v / %v", kc.Ints, vc.Floats)
	}
	counts, err := GroupByCount(tab, "k")
	if err != nil {
		t.Fatal(err)
	}
	cc, _ := counts.floatCol("count")
	if cc.Floats[0] != 2 || cc.Floats[1] != 3 {
		t.Fatalf("GroupByCount = %v", cc.Floats)
	}
}

func TestOrderByLimit(t *testing.T) {
	tab := &Table{Columns: []Column{
		{Name: "k", Kind: Int64, Ints: []int64{10, 20, 30, 40}},
		{Name: "v", Kind: Float64, Floats: []float64{1, 3, 3, 2}},
	}}
	out, err := OrderByLimit(tab, "k", "v", 3)
	if err != nil {
		t.Fatal(err)
	}
	kc, _ := out.intCol("k")
	// Ties at 3 break toward the smaller key: 20 before 30.
	want := []int64{20, 30, 40}
	for i, w := range want {
		if kc.Ints[i] != w {
			t.Fatalf("OrderByLimit keys = %v, want %v", kc.Ints, want)
		}
	}
	if _, err := OrderByLimit(tab, "k", "v", -1); err == nil {
		t.Fatal("negative limit accepted")
	}
	all, _ := OrderByLimit(tab, "k", "v", 100)
	if all.NumRows() != 4 {
		t.Fatalf("limit beyond size returned %d rows", all.NumRows())
	}
}

func TestEdgeAndScoreTables(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 1)
	edges := EdgeTable(g)
	if edges.NumRows() != g.NumArcs() {
		t.Fatalf("edge table rows = %d, want %d arcs", edges.NumRows(), g.NumArcs())
	}
	scores := relevance.Uniform(20, 0.5)
	st := ScoreTable(scores)
	if st.NumRows() != 20 {
		t.Fatalf("score table rows = %d", st.NumRows())
	}
}

// TestRelationalPlanMatchesGraphEngine is the point of this package: the
// SQL-style plan must produce exactly the same top-k answer as LONA's Base
// so the A5 benchmark compares execution models, not semantics.
func TestRelationalPlanMatchesGraphEngine(t *testing.T) {
	for _, average := range []bool{false, true} {
		for _, h := range []int{1, 2} {
			for trial := 0; trial < 5; trial++ {
				seed := int64(trial + 1)
				g := gen.ErdosRenyi(60, 180, seed)
				scores := relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.05}, seed)
				e, err := core.NewEngine(g, scores, h)
				if err != nil {
					t.Fatal(err)
				}
				agg := core.Sum
				if average {
					agg = core.Avg
				}
				want, _, err := e.Base(10, agg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := NeighborhoodTopK(g, scores, h, 10, average)
				if err != nil {
					t.Fatal(err)
				}
				kc, _ := got.intCol("src")
				vc, _ := got.floatCol("sum")
				if len(kc.Ints) != len(want) {
					t.Fatalf("h=%d avg=%v: %d rows, want %d", h, average, len(kc.Ints), len(want))
				}
				for i := range want {
					if int(kc.Ints[i]) != want[i].Node {
						t.Fatalf("h=%d avg=%v row %d: node %d, want %d", h, average, i, kc.Ints[i], want[i].Node)
					}
					if math.Abs(vc.Floats[i]-want[i].Value) > 1e-9 {
						t.Fatalf("h=%d avg=%v row %d: value %v, want %v", h, average, i, vc.Floats[i], want[i].Value)
					}
				}
			}
		}
	}
}

func TestNeighborhoodTopKValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 3)
	scores := relevance.Uniform(10, 0.5)
	if _, err := NeighborhoodTopK(g, scores, 3, 5, false); err == nil {
		t.Fatal("h=3 accepted")
	}
	if _, err := NeighborhoodTopK(g, scores, 2, 0, false); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NeighborhoodTopK(g, scores[:5], 2, 5, false); err == nil {
		t.Fatal("short score vector accepted")
	}
}

func TestKindString(t *testing.T) {
	if Int64.String() != "int64" || Float64.String() != "float64" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must still print")
	}
}
