package relevance

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestExponentialRange(t *testing.T) {
	scores := Exponential(5000, 0.01, 0.05, 1)
	ones := 0
	for v, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("node %d score %v outside [0,1]", v, s)
		}
		if s == 1 {
			ones++
		}
	}
	// Blacking ratio 1%: expect ~50 ones, generously banded.
	if ones < 20 || ones > 110 {
		t.Fatalf("blacked count %d far from 1%% of 5000", ones)
	}
}

func TestExponentialBlackingExtremes(t *testing.T) {
	all := Exponential(100, 1, 0.05, 2)
	for v, s := range all {
		if s != 1 {
			t.Fatalf("r=1: node %d score %v, want 1", v, s)
		}
	}
	none := Exponential(100, 0, 0.05, 2)
	for v, s := range none {
		if s == 1 {
			t.Fatalf("r=0: node %d blacked", v)
		}
	}
}

func TestExponentialValidation(t *testing.T) {
	for _, c := range []struct{ r, mean float64 }{{-0.1, 0.05}, {1.1, 0.05}, {0.5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Exponential(r=%v, mean=%v) did not panic", c.r, c.mean)
				}
			}()
			Exponential(10, c.r, c.mean, 1)
		}()
	}
}

func TestBinaryExactCount(t *testing.T) {
	scores := Binary(1000, 0.2, 3)
	count := 0
	for _, s := range scores {
		switch s {
		case 0:
			// fine
		case 1:
			count++
		default:
			t.Fatalf("binary score %v", s)
		}
	}
	if count != 200 {
		t.Fatalf("blacked %d of 1000, want exactly 200", count)
	}
}

func TestBinaryDeterministic(t *testing.T) {
	a := Binary(500, 0.1, 9)
	b := Binary(500, 0.1, 9)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("same-seed Binary differs at node %d", v)
		}
	}
}

func TestRandomWalkConcentratesNearSeeds(t *testing.T) {
	// Path graph with a single seeded endpoint: after smoothing, scores
	// must decay monotonically away from the seed.
	b := graph.NewBuilder(10, false)
	for i := 0; i+1 < 10; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	seeds := make([]float64, 10)
	seeds[0] = 1
	scores := RandomWalk(g, seeds, 0.5, 3)
	// The endpoint seed leaks half its mass per iteration while receiving
	// only half of node 1's share, so the maximum lands on node 1
	// (hand-computed: pre-rescale masses .3125, .46875, .1875, .03125).
	if scores[1] != 1 {
		t.Fatalf("max not at node 1: %v", scores[:5])
	}
	if !(scores[1] > scores[2] && scores[2] > scores[3] && scores[3] > 0) {
		t.Fatalf("scores not decaying with distance: %v", scores[:5])
	}
	// Three iterations move mass at most three hops: nodes 4.. stay zero.
	for i := 4; i < 10; i++ {
		if scores[i] != 0 {
			t.Fatalf("node %d reached in 3 iterations: %v", i, scores)
		}
	}
}

func TestRandomWalkZeroIterationsIsIdentity(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 4)
	seeds := Binary(20, 0.3, 4)
	scores := RandomWalk(g, seeds, 0.5, 0)
	for v := range seeds {
		if scores[v] != seeds[v] {
			t.Fatalf("0-iteration walk changed node %d: %v -> %v", v, seeds[v], scores[v])
		}
	}
}

func TestRandomWalkIsolatedNodesKeepMass(t *testing.T) {
	g := graph.NewBuilder(3, false).Build() // all isolated
	seeds := []float64{0.5, 0, 1}
	scores := RandomWalk(g, seeds, 0.7, 5)
	// Rescaled by max (1): relative order preserved exactly.
	if scores[0] != 0.5 || scores[1] != 0 || scores[2] != 1 {
		t.Fatalf("isolated-node walk = %v, want [0.5 0 1]", scores)
	}
}

func TestRandomWalkValidation(t *testing.T) {
	g := gen.ErdosRenyi(5, 5, 1)
	seeds := make([]float64, 5)
	for _, alpha := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha=%v did not panic", alpha)
				}
			}()
			RandomWalk(g, seeds, alpha, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative iterations did not panic")
			}
		}()
		RandomWalk(g, seeds, 0.5, -1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mismatched seed length did not panic")
			}
		}()
		RandomWalk(g, make([]float64, 3), 0.5, 1)
	}()
}

func TestMixtureValidAndPreservesBlacking(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 3, 5)
	scores := Mixture(g, MixtureParams{BlackingRatio: 0.05}, 6)
	if err := Validate(g, scores); err != nil {
		t.Fatalf("Mixture produced invalid scores: %v", err)
	}
	ones := 0
	for _, s := range scores {
		if s == 1 {
			ones++
		}
	}
	if ones < 50 || ones > 160 {
		t.Fatalf("blacked %d of 2000, want ~100", ones)
	}
	// Non-blacked nodes must be strictly below 1 so the ratio is exact.
	below := 0
	for _, s := range scores {
		if s > 0 && s < 1 {
			below++
		}
	}
	if below == 0 {
		t.Fatal("mixture produced no fractional scores")
	}
}

func TestMixtureDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(300, 900, 7)
	a := Mixture(g, MixtureParams{BlackingRatio: 0.01}, 8)
	b := Mixture(g, MixtureParams{BlackingRatio: 0.01}, 8)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("same-seed Mixture differs at node %d", v)
		}
	}
}

func TestUniform(t *testing.T) {
	scores := Uniform(10, 0.5)
	for _, s := range scores {
		if s != 0.5 {
			t.Fatalf("Uniform produced %v", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(1.5) did not panic")
		}
	}()
	Uniform(3, 1.5)
}

func TestValidateCatchesBadVectors(t *testing.T) {
	g := gen.ErdosRenyi(4, 4, 2)
	if err := Validate(g, make([]float64, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := make([]float64, 4)
	bad[1] = math.NaN()
	if err := Validate(g, bad); err == nil {
		t.Fatal("NaN accepted")
	}
	bad[1] = 2
	if err := Validate(g, bad); err == nil {
		t.Fatal("out-of-range accepted")
	}
	bad[1] = 0.5
	if err := Validate(g, bad); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
}

func TestNonZeroCount(t *testing.T) {
	if got := NonZeroCount([]float64{0, 0.1, 0, 1, 0}); got != 2 {
		t.Fatalf("NonZeroCount = %d, want 2", got)
	}
	if got := NonZeroCount(nil); got != 0 {
		t.Fatalf("NonZeroCount(nil) = %d, want 0", got)
	}
}

// Property: any mixture over any graph stays a valid relevance function.
func TestMixtureAlwaysValidProperty(t *testing.T) {
	property := func(seedRaw uint32, rRaw uint8) bool {
		seed := int64(seedRaw)
		r := float64(rRaw%100) / 100
		g := gen.ErdosRenyi(60, 150, seed)
		scores := Mixture(g, MixtureParams{BlackingRatio: r}, seed+1)
		return Validate(g, scores) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
