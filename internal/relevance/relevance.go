// Package relevance produces the per-node relevance scores f : V -> [0,1]
// that parameterize every aggregation query (problem P1 in the paper).
//
// Section V of the paper designs a mixture function "to mimic the setting
// of relevance functions in real-life applications": a random assignment
// component f_r whose value is exponentially distributed with a blacking
// ratio r controlling the fraction of nodes pinned to 1, plus a random
// walk smoothing component f_w that spreads relevance along edges. This
// package implements both components, the mixture, and the plain binary
// function used by backward processing's zero-skipping argument.
package relevance

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Validate reports whether scores is a legal relevance vector for g:
// one entry per node, every value in [0,1], no NaNs.
func Validate(g *graph.Graph, scores []float64) error {
	if len(scores) != g.NumNodes() {
		return fmt.Errorf("relevance: %d scores for %d nodes", len(scores), g.NumNodes())
	}
	for v, s := range scores {
		if math.IsNaN(s) || s < 0 || s > 1 {
			return fmt.Errorf("relevance: node %d has score %v outside [0,1]", v, s)
		}
	}
	return nil
}

// Exponential returns the random assignment function f_r: with probability
// blackingRatio a node is assigned exactly 1 ("blacked"); otherwise its
// score is drawn from an exponential distribution with the given mean,
// truncated to [0,1). Matches the paper's description of f_r.
func Exponential(n int, blackingRatio, mean float64, seed int64) []float64 {
	if blackingRatio < 0 || blackingRatio > 1 {
		panic(fmt.Sprintf("relevance: blacking ratio %v outside [0,1]", blackingRatio))
	}
	if mean <= 0 {
		panic("relevance: exponential mean must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	for v := range scores {
		if rng.Float64() < blackingRatio {
			scores[v] = 1
			continue
		}
		x := rng.ExpFloat64() * mean
		if x >= 1 {
			x = math.Nextafter(1, 0) // truncate: only blacked nodes score exactly 1
		}
		scores[v] = x
	}
	return scores
}

// Binary returns a 0/1 relevance function where a blackingRatio fraction of
// nodes (chosen uniformly) score 1 and everyone else scores 0. This is the
// sparse setting in which BackwardNaive can skip zero nodes entirely.
func Binary(n int, blackingRatio float64, seed int64) []float64 {
	if blackingRatio < 0 || blackingRatio > 1 {
		panic(fmt.Sprintf("relevance: blacking ratio %v outside [0,1]", blackingRatio))
	}
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	target := int(math.Round(blackingRatio * float64(n)))
	perm := rng.Perm(n)
	for i := 0; i < target; i++ {
		scores[perm[i]] = 1
	}
	return scores
}

// RandomWalk returns the smoothing component f_w: starting from seed
// scores, it runs the given number of push iterations in which each node
// keeps (1-alpha) of its mass and spreads alpha evenly to its neighbors,
// then rescales into [0,1]. The result concentrates relevance around
// seeded regions of the graph — the "social circle" effect the paper's
// queries measure.
func RandomWalk(g *graph.Graph, seedScores []float64, alpha float64, iterations int) []float64 {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("relevance: walk alpha %v outside [0,1]", alpha))
	}
	if iterations < 0 {
		panic("relevance: negative walk iterations")
	}
	n := g.NumNodes()
	if len(seedScores) != n {
		panic(fmt.Sprintf("relevance: %d seeds for %d nodes", len(seedScores), n))
	}
	cur := append([]float64(nil), seedScores...)
	next := make([]float64, n)
	for it := 0; it < iterations; it++ {
		for v := range next {
			next[v] = 0
		}
		for u := 0; u < n; u++ {
			mass := cur[u]
			if mass == 0 {
				continue
			}
			deg := g.Degree(u)
			if deg == 0 {
				next[u] += mass
				continue
			}
			next[u] += (1 - alpha) * mass
			share := alpha * mass / float64(deg)
			for _, v := range g.Neighbors(u) {
				next[v] += share
			}
		}
		cur, next = next, cur
	}
	// Rescale to [0,1]; total mass is conserved so max > 0 unless all zero.
	max := 0.0
	for _, s := range cur {
		if s > max {
			max = s
		}
	}
	if max > 0 {
		for v := range cur {
			cur[v] /= max
		}
	}
	return cur
}

// MixtureParams configures Mixture. Zero values are replaced by the
// defaults used throughout the evaluation (documented per field).
type MixtureParams struct {
	BlackingRatio float64 // fraction of nodes assigned exactly 1 (paper's r); no default — 0 means none
	ExpMean       float64 // mean of the exponential component; default 0.05
	WalkAlpha     float64 // neighbor-spread fraction per iteration; default 0.5
	WalkIters     int     // smoothing iterations; default 2
	WalkWeight    float64 // final blend: f = (1-w)·f_r + w·f_w; default 0.3
}

func (p *MixtureParams) applyDefaults() {
	if p.ExpMean == 0 {
		p.ExpMean = 0.05
	}
	if p.WalkAlpha == 0 {
		p.WalkAlpha = 0.5
	}
	if p.WalkIters == 0 {
		p.WalkIters = 2
	}
	if p.WalkWeight == 0 {
		p.WalkWeight = 0.3
	}
}

// Mixture builds the paper's evaluation relevance function: the blend of
// the exponential random assignment f_r and the random walk smoothing f_w.
// Blacked nodes stay pinned at exactly 1 so the blacking ratio is
// preserved through the blend.
func Mixture(g *graph.Graph, params MixtureParams, seed int64) []float64 {
	params.applyDefaults()
	n := g.NumNodes()
	fr := Exponential(n, params.BlackingRatio, params.ExpMean, seed)
	fw := RandomWalk(g, fr, params.WalkAlpha, params.WalkIters)
	scores := make([]float64, n)
	w := params.WalkWeight
	for v := range scores {
		if fr[v] == 1 {
			scores[v] = 1
			continue
		}
		s := (1-w)*fr[v] + w*fw[v]
		if s >= 1 {
			s = math.Nextafter(1, 0)
		}
		scores[v] = s
	}
	return scores
}

// Uniform returns a constant relevance vector; useful in tests where every
// node should contribute equally (SUM then counts neighborhood size).
func Uniform(n int, value float64) []float64 {
	if value < 0 || value > 1 {
		panic(fmt.Sprintf("relevance: uniform value %v outside [0,1]", value))
	}
	scores := make([]float64, n)
	for v := range scores {
		scores[v] = value
	}
	return scores
}

// NonZeroCount returns how many nodes have a strictly positive score —
// the quantity that determines BackwardNaive's cost.
func NonZeroCount(scores []float64) int {
	count := 0
	for _, s := range scores {
		if s > 0 {
			count++
		}
	}
	return count
}
