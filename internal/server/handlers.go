package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the server's HTTP API as a standard http.Handler, ready
// for http.Server or httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/topk", s.handleTopK)
	mux.HandleFunc("/v1/scores", s.handleScores)
	mux.HandleFunc("/v1/edges", s.handleEdges)
	mux.HandleFunc("/v1/reshard", s.handleReshard)
	mux.HandleFunc("/v1/catchup", s.handleCatchUp)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// errorBody is every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body) // the connection is the only failure mode here
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decodeBody strictly decodes one JSON object into dst.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	return true
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req QueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// r.Context() is cancelled when the client disconnects (and when the
	// daemon's drain deadline passes during shutdown); Run tightens it
	// with the request's timeout_ms.
	ans, err := s.Run(r.Context(), req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, ans)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled) && shuttingDown(r.Context()):
		// The server abandoned the query at its drain deadline; the client
		// may well still be connected and deserves a retryable status.
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled):
		// The client is gone; nothing useful can be written. Surface a
		// status anyway for intermediaries that are still listening.
		writeError(w, statusClientClosedRequest, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// statusClientClosedRequest is nginx's de-facto standard 499 for requests
// abandoned by the client; net/http has no named constant for it.
const statusClientClosedRequest = 499

// shutdownKey marks contexts whose cancellation means "the server is
// draining", not "the client went away".
type shutdownKey struct{}

// MarkShutdown returns a context whose descendants report server-initiated
// cancellation through the probe. A daemon passes the result as its
// http.Server BaseContext and flips the probe to true before cancelling
// in-flight requests at its drain deadline, so those queries fail 503
// (retryable) rather than 499 (client abandoned).
func MarkShutdown(ctx context.Context, drained func() bool) context.Context {
	return context.WithValue(ctx, shutdownKey{}, drained)
}

// shuttingDown reports whether ctx descends from MarkShutdown with the
// probe now true.
func shuttingDown(ctx context.Context) bool {
	probe, _ := ctx.Value(shutdownKey{}).(func() bool)
	return probe != nil && probe()
}

// scoresRequest is the /v1/scores body.
type scoresRequest struct {
	Updates []ScoreUpdate `json:"updates"`
}

func (s *Server) handleScores(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req scoresRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.ApplyUpdates(req.Updates)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// edgesRequest is the /v1/edges body, mirroring /v1/scores: a batch of
// structural edits applied atomically.
type edgesRequest struct {
	Edits []EditRequest `json:"edits"`
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req edgesRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.ApplyEdits(req.Edits)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// reshardRequest is the /v1/reshard body.
type reshardRequest struct {
	Shards int `json:"shards"`
}

// reshardResponse reports the topology after a reshard.
type reshardResponse struct {
	Shards             int    `json:"shards"`
	TopologyGeneration uint64 `json:"topology_generation"`
}

// handleReshard re-partitions an in-process sharded server live: ops can
// tune the shard count against observed per-shard latency without a
// restart. The bumped topology generation retires every cached answer.
func (s *Server) handleReshard(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req reshardRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.Reshard(req.Shards); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, reshardResponse{
		Shards:             s.Shards(),
		TopologyGeneration: s.TopologyGeneration(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// healthBody is the /v1/health response. Status is "ok", or "degraded"
// when a configured SLO's error budget is burning faster than it refills
// — the 200→503 signal load balancers shift traffic on.
type healthBody struct {
	OK         bool      `json:"ok"`
	Status     string    `json:"status"`
	Nodes      int       `json:"nodes"`
	Edges      int       `json:"edges"`
	H          int       `json:"h"`
	Directed   bool      `json:"directed"`
	View       bool      `json:"view"`             // materialized view present (undirected graphs)
	Shards     int       `json:"shards,omitempty"` // >1 when queries fan out across shards
	Generation uint64    `json:"generation"`
	SLO        *SLOStats `json:"slo,omitempty"` // present when an SLO is configured
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	g := s.engine.Graph()
	body := healthBody{
		OK: true, Status: "ok", Nodes: g.NumNodes(), Edges: g.NumEdges(), H: s.engine.H(),
		Directed: g.Directed(), View: s.view != nil, Generation: s.gen,
	}
	if s.cl != nil {
		body.Shards = s.cl.shards
	}
	s.mu.RUnlock()
	status := http.StatusOK
	if slo := s.sloStats(); slo != nil {
		body.SLO = slo
		if slo.Burning {
			// The process is alive (OK stays true) but violating its
			// latency objective right now; 503 tells load balancers to
			// prefer a healthier replica until the window recovers.
			body.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, body)
}
