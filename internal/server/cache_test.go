package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestCacheLRUEvictionByBytes(t *testing.T) {
	ans := func(id int) *Answer { return &Answer{ElapsedUS: int64(id)} }
	key := func(id int) string { return fmt.Sprintf("k%d", id) }
	per := entrySize(key(0), ans(0)) // all entries in this test are this size
	// One shard so the LRU order is global; capacity for exactly 4 entries.
	c := newShardedCache(4*per, 1)

	for i := 0; i < 4; i++ {
		c.put(key(i), ans(i))
	}
	if c.len() != 4 {
		t.Fatalf("len = %d, want 4", c.len())
	}
	if got := c.bytes(); got != 4*per {
		t.Fatalf("bytes = %d, want %d", got, 4*per)
	}
	// Touch k0 so k1 is now the oldest, then overflow.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put(key(4), ans(4))
	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 should have been evicted as least-recently-used")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	// Refreshing an existing key must not grow the cache.
	c.put(key(4), ans(40))
	if c.len() != 4 {
		t.Fatalf("len = %d after refresh, want 4", c.len())
	}
	if v, _ := c.get("k4"); v.ElapsedUS != 40 {
		t.Fatalf("refresh did not replace the value (got %d)", v.ElapsedUS)
	}
	if got := c.bytes(); got > 4*per {
		t.Fatalf("bytes = %d after refresh, want <= %d", got, 4*per)
	}
}

// TestCacheBigResultEvictsMore: byte accounting means one large answer
// costs as many evictions as its size, where entry-count accounting would
// have charged it one slot.
func TestCacheBigResultEvictsMore(t *testing.T) {
	small := &Answer{}
	per := entrySize("k00", small)
	c := newShardedCache(8*per, 1)
	for i := 0; i < 8; i++ {
		c.put(fmt.Sprintf("k%02d", i), small)
	}
	if c.len() != 8 {
		t.Fatalf("len = %d, want 8", c.len())
	}
	// A result list worth roughly 4 small entries of bytes.
	big := &Answer{Results: make([]core.Result, int(4*per)/16)}
	c.put("big", big)
	if _, ok := c.get("big"); !ok {
		t.Fatal("big entry not admitted")
	}
	if got := c.len(); got >= 8 {
		t.Fatalf("len = %d after big insert, want several evictions", got)
	}
	if got, max := c.bytes(), c.capacityBytes(); got > max {
		t.Fatalf("bytes %d exceed capacity %d", got, max)
	}
}

// TestCacheOversizedEntryAdmitted: an entry larger than the whole shard
// budget still caches (alone) instead of thrashing.
func TestCacheOversizedEntryAdmitted(t *testing.T) {
	c := newShardedCache(64, 1) // tiny budget
	huge := &Answer{Results: make([]core.Result, 1000)}
	c.put("huge", huge)
	if _, ok := c.get("huge"); !ok {
		t.Fatal("oversized entry dropped; should be admitted alone")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	// The next put evicts it: the shard never holds two over-budget
	// entries.
	c.put("next", &Answer{})
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry survived a subsequent insert over budget")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newShardedCache(256*entrySize("k00", &Answer{}), 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if v, ok := c.get(key); ok {
					_ = v.ElapsedUS
				}
				c.put(key, &Answer{ElapsedUS: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	if c.len() == 0 || c.len() > 100 {
		t.Fatalf("unexpected cache size %d", c.len())
	}
	if c.bytes() <= 0 || c.bytes() > c.capacityBytes() {
		t.Fatalf("bytes %d outside (0, %d]", c.bytes(), c.capacityBytes())
	}
}

func TestCacheDegenerateSizes(t *testing.T) {
	// A byte budget smaller than one entry still yields a working cache.
	c := newShardedCache(1, 16)
	c.put("a", &Answer{})
	if _, ok := c.get("a"); !ok {
		t.Fatal("tiny cache dropped its only entry")
	}
	c = newShardedCache(0, 0)
	c.put("a", &Answer{})
	if _, ok := c.get("a"); !ok {
		t.Fatal("zero-config cache unusable")
	}
}

// TestSingleflightWaiterHonorsOwnContext: a caller collapsed onto a
// long-running flight still observes its own deadline instead of being
// held hostage by the unbounded leader.
func TestSingleflightWaiterHonorsOwnContext(t *testing.T) {
	var g flightGroup
	gate := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = g.do(context.Background(), "key", func() (*Answer, error) {
			close(started)
			<-gate
			return &Answer{}, nil
		})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err, shared := g.do(ctx, "key", func() (*Answer, error) {
		t.Error("waiter executed instead of joining the flight")
		return nil, nil
	})
	if !shared {
		t.Fatal("waiter did not join the in-flight call")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("waiter blocked %v past its deadline", waited)
	}
	close(gate)
	<-leaderDone
}

func TestSingleflightCollapses(t *testing.T) {
	var g flightGroup
	var executions atomic.Int64
	gate := make(chan struct{})    // holds the leader inside fn
	started := make(chan struct{}) // closed once the leader is inside fn

	// Leader: enters fn and blocks on the gate.
	leaderDone := make(chan *Answer, 1)
	go func() {
		val, _, _ := g.do(context.Background(), "key", func() (*Answer, error) {
			close(started)
			<-gate
			executions.Add(1)
			return &Answer{ElapsedUS: 99}, nil
		})
		leaderDone <- val
	}()
	<-started

	// Waiters pile up behind the in-flight call; the leader cannot finish
	// until the gate opens, so every waiter that reaches do() joins it.
	const waiters = 7
	var wg sync.WaitGroup
	var shared atomic.Int64
	vals := make(chan *Answer, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, err, wasShared := g.do(context.Background(), "key", func() (*Answer, error) {
				executions.Add(1)
				return &Answer{}, nil
			})
			if err != nil {
				t.Error(err)
			}
			if wasShared {
				shared.Add(1)
			}
			vals <- val
		}()
	}
	// Give the waiters time to block, then release the leader. A waiter
	// that somehow had not reached do() yet re-executes fn, which the
	// shared/executions accounting below tolerates as long as collapsing
	// happened at all.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	leaderVal := <-leaderDone
	wg.Wait()
	close(vals)

	if leaderVal == nil || leaderVal.ElapsedUS != 99 {
		t.Fatalf("leader got %+v", leaderVal)
	}
	if shared.Load() == 0 {
		t.Fatal("no caller was collapsed onto the in-flight execution")
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("fn executed %d times for one key, want 1", got)
	}
	for val := range vals {
		if val != leaderVal {
			t.Fatal("a collapsed caller received a different answer than the leader")
		}
	}
}
