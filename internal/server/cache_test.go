package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newShardedCache(4, 1) // one shard so the LRU order is global
	ans := func(id int) *Answer { return &Answer{ElapsedUS: int64(id)} }
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), ans(i))
	}
	if c.len() != 4 {
		t.Fatalf("len = %d, want 4", c.len())
	}
	// Touch k0 so k1 is now the oldest, then overflow.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k4", ans(4))
	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 should have been evicted as least-recently-used")
	}
	for _, key := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := c.get(key); !ok {
			t.Fatalf("%s missing after eviction", key)
		}
	}
	// Refreshing an existing key must not grow the cache.
	c.put("k4", ans(40))
	if c.len() != 4 {
		t.Fatalf("len = %d after refresh, want 4", c.len())
	}
	if v, _ := c.get("k4"); v.ElapsedUS != 40 {
		t.Fatalf("refresh did not replace the value (got %d)", v.ElapsedUS)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newShardedCache(256, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%100)
				if v, ok := c.get(key); ok {
					_ = v.ElapsedUS
				}
				c.put(key, &Answer{ElapsedUS: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	if c.len() == 0 || c.len() > 100 {
		t.Fatalf("unexpected cache size %d", c.len())
	}
}

func TestCacheDegenerateSizes(t *testing.T) {
	// Capacity smaller than the shard count still yields a working cache.
	c := newShardedCache(1, 16)
	c.put("a", &Answer{})
	if _, ok := c.get("a"); !ok {
		t.Fatal("tiny cache dropped its only entry")
	}
	c = newShardedCache(0, 0)
	c.put("a", &Answer{})
	if _, ok := c.get("a"); !ok {
		t.Fatal("zero-config cache unusable")
	}
}

func TestSingleflightCollapses(t *testing.T) {
	var g flightGroup
	var executions atomic.Int64
	gate := make(chan struct{})    // holds the leader inside fn
	started := make(chan struct{}) // closed once the leader is inside fn

	// Leader: enters fn and blocks on the gate.
	leaderDone := make(chan *Answer, 1)
	go func() {
		val, _, _ := g.do("key", func() (*Answer, error) {
			close(started)
			<-gate
			executions.Add(1)
			return &Answer{ElapsedUS: 99}, nil
		})
		leaderDone <- val
	}()
	<-started

	// Waiters pile up behind the in-flight call; the leader cannot finish
	// until the gate opens, so every waiter that reaches do() joins it.
	const waiters = 7
	var wg sync.WaitGroup
	var shared atomic.Int64
	vals := make(chan *Answer, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, err, wasShared := g.do("key", func() (*Answer, error) {
				executions.Add(1)
				return &Answer{}, nil
			})
			if err != nil {
				t.Error(err)
			}
			if wasShared {
				shared.Add(1)
			}
			vals <- val
		}()
	}
	// Give the waiters time to block, then release the leader. A waiter
	// that somehow had not reached do() yet re-executes fn, which the
	// shared/executions accounting below tolerates as long as collapsing
	// happened at all.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	leaderVal := <-leaderDone
	wg.Wait()
	close(vals)

	if leaderVal == nil || leaderVal.ElapsedUS != 99 {
		t.Fatalf("leader got %+v", leaderVal)
	}
	if shared.Load() == 0 {
		t.Fatal("no caller was collapsed onto the in-flight execution")
	}
	if got := executions.Load(); got != 1 {
		t.Fatalf("fn executed %d times for one key, want 1", got)
	}
	for val := range vals {
		if val != leaderVal {
			t.Fatal("a collapsed caller received a different answer than the leader")
		}
	}
}
