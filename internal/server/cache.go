package server

import (
	"container/list"
	"hash/maphash"
	"sync"
)

// shardedCache is a fixed-capacity LRU result cache split into shards so
// concurrent lookups from many serving goroutines do not serialize on one
// mutex. Keys embed the server's generation counter, so a score update —
// which bumps the generation — implicitly invalidates every cached answer:
// stale-generation entries are never looked up again and age out of the
// LRU naturally. No scan-and-evict pass is ever needed.
type shardedCache struct {
	seed   maphash.Seed
	shards []cacheShard
}

// cacheShard is one independently locked LRU segment.
type cacheShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List               // front = most recently used
	m   map[string]*list.Element // key -> element whose Value is *cacheEntry
}

type cacheEntry struct {
	key string
	val *Answer
}

// newShardedCache builds a cache with the given total capacity spread over
// shards (both forced to sane minimums).
func newShardedCache(capacity, shards int) *shardedCache {
	if shards < 1 {
		shards = 1
	}
	if capacity < shards {
		capacity = shards
	}
	c := &shardedCache{
		seed:   maphash.MakeSeed(),
		shards: make([]cacheShard, shards),
	}
	per := (capacity + shards - 1) / shards
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: per, ll: list.New(), m: make(map[string]*list.Element)}
	}
	return c
}

func (c *shardedCache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// get returns the cached answer for key, promoting it to most-recent.
func (c *shardedCache) get(key string) (*Answer, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts (or refreshes) key, evicting the shard's least-recently-used
// entry when the shard is full.
func (c *shardedCache) put(key string, val *Answer) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.m, oldest.Value.(*cacheEntry).key)
		}
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
}

// len returns the number of live entries across all shards.
func (c *shardedCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
