package server

import (
	"container/list"
	"hash/maphash"
	"sync"
)

// shardedCache is a byte-capacity LRU result cache split into shards so
// concurrent lookups from many serving goroutines do not serialize on one
// mutex. Capacity is accounted in approximate bytes of cached answers
// (entrySize), not entry count, so one giant k=100000 result cannot crowd
// out thousands of small answers' worth of budget unnoticed — the number
// /v1/stats reports as cache_bytes is the same number eviction enforces.
//
// Keys embed the server's generation counter, so a score update — which
// bumps the generation — implicitly invalidates every cached answer:
// stale-generation entries are never looked up again and age out of the
// LRU naturally. No scan-and-evict pass is ever needed.
type shardedCache struct {
	seed   maphash.Seed
	shards []cacheShard
}

// cacheShard is one independently locked LRU segment.
type cacheShard struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	ll       *list.List               // front = most recently used
	m        map[string]*list.Element // key -> element whose Value is *cacheEntry
}

type cacheEntry struct {
	key  string
	val  *Answer
	size int64
}

// entrySize approximates the resident cost of one cache entry: the key,
// the answer struct with its string fields, the result slice (16 bytes per
// (node, value) pair), and fixed map/list bookkeeping overhead.
func entrySize(key string, val *Answer) int64 {
	const overhead = 160 // list.Element + map bucket share + struct headers
	size := int64(overhead + len(key) + len(val.Algorithm) + len(val.Reason))
	size += int64(len(val.Results)) * 16
	return size
}

// newShardedCache builds a cache with the given total byte capacity spread
// over shards (both forced to sane minimums).
func newShardedCache(capacityBytes int64, shards int) *shardedCache {
	if shards < 1 {
		shards = 1
	}
	if capacityBytes < 1 {
		capacityBytes = 1
	}
	c := &shardedCache{
		seed:   maphash.MakeSeed(),
		shards: make([]cacheShard, shards),
	}
	per := (capacityBytes + int64(shards) - 1) / int64(shards)
	for i := range c.shards {
		c.shards[i] = cacheShard{capBytes: per, ll: list.New(), m: make(map[string]*list.Element)}
	}
	return c
}

func (c *shardedCache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// get returns the cached answer for key, promoting it to most-recent.
func (c *shardedCache) get(key string) (*Answer, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts (or refreshes) key, evicting least-recently-used entries
// until the shard fits its byte budget again. An entry larger than the
// whole shard budget is still admitted alone (the shard briefly holds just
// it), so pathological requests degrade capacity, not correctness.
func (c *shardedCache) put(key string, val *Answer) {
	s := c.shard(key)
	size := entrySize(key, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		entry := el.Value.(*cacheEntry)
		s.bytes += size - entry.size
		entry.val, entry.size = val, size
		s.ll.MoveToFront(el)
		s.evictOverflowLocked()
		return
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, val: val, size: size})
	s.bytes += size
	s.evictOverflowLocked()
}

// evictOverflowLocked drops LRU entries until the shard is within budget,
// always keeping at least the most recent entry.
func (s *cacheShard) evictOverflowLocked() {
	for s.bytes > s.capBytes && s.ll.Len() > 1 {
		oldest := s.ll.Back()
		if oldest == nil {
			return
		}
		entry := oldest.Value.(*cacheEntry)
		s.ll.Remove(oldest)
		delete(s.m, entry.key)
		s.bytes -= entry.size
	}
}

// len returns the number of live entries across all shards.
func (c *shardedCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// bytes returns the approximate resident bytes across all shards.
func (c *shardedCache) bytes() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}

// capacityBytes returns the configured total byte capacity (after
// per-shard rounding).
func (c *shardedCache) capacityBytes() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].capBytes
	}
	return total
}
