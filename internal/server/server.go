// Package server is lonad's serving subsystem: a long-lived, concurrent
// top-k query service over one (graph, relevance, h) triple. It wraps a
// core.Engine / core.View pair behind an HTTP/JSON API:
//
//	POST /v1/topk   — answer a top-k query; algorithm "auto" delegates to
//	                  the cost-based planner per request. Requests may set
//	                  timeout_ms (server-side deadline), budget (max h-hop
//	                  traversals), and candidates (restrict ranked nodes),
//	                  and are aborted when the client disconnects.
//	POST /v1/scores — apply a batch of relevance updates atomically
//	POST /v1/edges  — apply a batch of structural edits (edge inserts and
//	                  removals, node additions) atomically, with
//	                  incremental repair of the materialized view and the
//	                  neighborhood index
//	GET  /v1/stats  — cache hit rate and byte usage, per-algorithm latency
//	                  histograms, summed engine work counters,
//	                  timeout/cancellation counters
//	GET  /v1/health — liveness plus dataset shape
//
// # Serving architecture
//
// The server is a generation machine. Reads are lock-free after a brief
// RLock to snapshot (generation, engine): each generation's Engine is
// immutable (core guarantees concurrent queries are safe once indexes are
// built), so queries run without holding any lock. A score batch takes the
// write lock, repairs the materialized View incrementally (O(|S_h(v)|) per
// update), rebuilds the Engine from a snapshot of the new scores via
// Engine.WithScores — sharing the topology-only indexes, so rebuilds cost
// O(n) validation, not index construction — and bumps the generation.
//
// Every query runs under its request's context: the HTTP handler passes
// r.Context() (cancelled on client disconnect) down through Server.Run
// into core's cooperative cancellation, optionally tightened by the
// request's timeout_ms. An abandoned query stops within a few BFS
// expansions and frees its goroutine.
//
// Results are cached in a sharded, byte-accounted LRU keyed by
// (k, aggregate, algorithm, options, candidates, budget, generation,
// shard-topology generation): repeats at an unchanged generation are
// O(1), and any update invalidates implicitly because the new generation
// changes every key — no scan-and-evict. Re-sharding bumps the topology
// generation the same way, so a re-partitioned server can never serve a
// merged answer computed under the previous topology. Concurrent
// identical cold queries collapse to one execution via singleflight; if
// the one executing caller is cancelled, a surviving waiter re-executes
// instead of inheriting the cancellation.
//
// # Sharded serving
//
// With Options.Shards > 1 (lonad -shards) the server builds an
// internal/cluster Coordinator over in-process partition shards and
// routes every engine query through it; with Options.ShardWorkers set
// (lonad -shard-peers) the shards live behind worker lonad processes and
// the fan-out crosses HTTP. The "view" algorithm always serves from the
// whole-graph materialized view — it is a single O(n) scan with nothing
// to distribute. POST /v1/reshard re-partitions a -shards server live,
// and /v1/stats grows a cluster section with per-shard latency and
// cross-shard message counters.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/journal"
	"repro/internal/otlp"
	"repro/internal/trace"
	"repro/internal/wideevent"
)

// Options tunes a Server; the zero value is a sensible default.
type Options struct {
	// CacheBytes is the result cache's total capacity in approximate
	// bytes of cached answers (default 16 MiB; <0 disables caching).
	CacheBytes int64
	// CacheShards is the number of independently locked cache segments
	// (default 16).
	CacheShards int
	// Workers bounds index-build and parallel-scan goroutines
	// (<=0 = GOMAXPROCS).
	Workers int
	// SkipIndexes skips eager index construction; the first query to need
	// an index builds it lazily instead (core serializes racing builds).
	// Until the differential index exists the planner avoids Forward.
	// Intended for tests and tiny datasets.
	SkipIndexes bool
	// Shards > 1 executes queries through an in-process
	// cluster.Coordinator over this many partition-local engines; 0 or 1
	// serves from the single whole-graph engine. Mutually exclusive with
	// ShardWorkers.
	Shards int
	// ShardWorkers lists the base URLs of lonad shard-worker processes
	// (cmd/lonad -shard-worker), one per shard in shard-index order;
	// queries fan out to them over HTTP. The coordinator process still
	// loads the full graph for the materialized view and update
	// validation.
	ShardWorkers []string
	// DisableStreaming turns off partial-result streaming on the sharded
	// query path (lonad -stream=false): shards then answer whole, and TA
	// cuts land only between shards instead of inside them. Streaming is
	// on by default for both -shards and -shard-peers serving.
	DisableStreaming bool
	// DisablePriming turns off sketch-based λ-priming on the sharded
	// query path (lonad -prime=false): every query then launches with a
	// cold λ, the pre-PR-9 behavior. Answers are byte-identical either
	// way; the switch exists for apples-to-apples benchmarking and as an
	// escape hatch.
	DisablePriming bool
	// SlowQuery, when positive, traces every execution and escalates the
	// wide event of any query (or edit batch) at or over this duration to
	// WARN (lonad -slow-query-ms). Zero disables both the escalation and
	// the always-on tracing it requires; requests asking "trace": true
	// are traced either way.
	SlowQuery time.Duration
	// Logger receives the canonical wide events — one per query, one per
	// edit batch, plus shard-anomaly warnings — keyed by the
	// internal/wideevent schema. Nil discards them: a library embedder
	// that configured no logger stays silent.
	Logger *slog.Logger
	// SLO is the latency objective judged against the rolling window;
	// the burn rate is exported in /metrics, /v1/stats, and degrades
	// /v1/health to 503 while the error budget burns faster than it
	// refills. The zero value disables SLO tracking.
	SLO SLO
	// TraceExporter ships each execution's stitched timeline as OTLP
	// spans (lonad -otlp-endpoint). Non-nil turns on always-on tracing
	// the same way SlowQuery does; nil disables export.
	TraceExporter *otlp.Exporter
	// Index is a prebuilt N(v) index to adopt — typically mapped from the
	// snapshot the server is booting from — instead of paying the eager
	// construction pass. Must match (graph, h); nil builds as usual.
	Index *graph.NeighborhoodIndex
	// SnapshotSource describes the snapshot file the boot state came
	// from, for /v1/stats and /metrics; nil when built from scratch.
	SnapshotSource *SnapshotSource
	// SnapshotPath is where POST /v1/snapshot persists when the request
	// names no path (lonad -snapshot). Empty means requests must name one.
	SnapshotPath string
	// Journal, when non-nil, makes the server a versioned graph lake:
	// every applied score/edit batch is appended as a durable commit
	// (lonad -journal), New replays any journal suffix past the boot
	// state's generation through the exact incremental apply paths, and
	// POST /v1/snapshot anchors the journal to the written snapshot.
	Journal *journal.Journal
	// RetainGenerations bounds the in-memory ring of recent generations
	// kept for as_of time travel and windowed temporal queries (default
	// 8; 1 retains only the live generation, disabling time travel).
	RetainGenerations int
}

// defaultCacheBytes is the result cache capacity when Options.CacheBytes
// is zero.
const defaultCacheBytes = 16 << 20

// shardUpdateTimeout bounds the score-update fan-out to shard workers,
// which runs under the server's write lock.
const shardUpdateTimeout = 30 * time.Second

// Server answers top-k queries and applies score updates; construct with
// New and expose via Handler. All exported methods are safe for concurrent
// use.
type Server struct {
	opts Options
	// g is the current-generation graph. Each generation's graph value is
	// immutable (structural edits derive a successor and swap the
	// pointer under mu), so a query that snapshotted an engine keeps a
	// consistent topology for its whole run.
	g *graph.Graph

	// mu guards the generation state below, RWMutex-style: queries take a
	// brief RLock to snapshot (gen, topo, engine, view, cluster); update
	// batches and reshards take the write lock for the duration of the
	// view repair + engine or shard rebuild.
	mu     sync.RWMutex
	gen    uint64
	topo   uint64       // shard-topology generation; bumped by Reshard
	engine *core.Engine // immutable per generation; safe lock-free after snapshot
	view   *core.View   // materialized aggregates; nil for directed graphs
	cl     *clusterState

	// ring holds the most recent generations (newest last, always
	// including the live one), guarded by mu. Each entry pins the
	// immutable (graph, engine) pair of one generation so as_of queries
	// and temporal windows can execute against retired generations
	// without re-deriving them.
	ring []genEntry

	cache   *shardedCache // nil when caching is disabled
	flight  flightGroup
	metrics *metrics
	// log is the resolved wide-event logger: Options.Logger, or a
	// discard logger so emit sites never nil-check.
	log *slog.Logger
}

// genEntry is one retained generation: everything needed to answer a
// query exactly as it would have been answered live at that generation.
type genEntry struct {
	gen    uint64
	topo   uint64
	g      *graph.Graph
	engine *core.Engine
}

// retainDefault is the generation-ring depth when
// Options.RetainGenerations is zero.
const retainDefault = 8

// clusterOptions maps the server's streaming and priming switches onto
// the coordinator's.
func (o Options) clusterOptions() cluster.Options {
	return cluster.Options{
		DisableStreaming: o.DisableStreaming,
		DisablePriming:   o.DisablePriming,
	}
}

// clusterState is one shard topology's serving state: the coordinator
// plus the per-shard latency histograms /v1/stats reports. Replaced
// wholesale by Reshard (under the write lock), so histograms never mix
// topologies.
type clusterState struct {
	coord  *cluster.Coordinator
	shards int
	remote bool // shards live behind HTTP workers
	hists  []*latencyHist
	// windows are the rolling-window companions of hists, feeding the
	// per-shard lona_shard_window_* gauges.
	windows []*windowHist
}

// newClusterState wraps a coordinator for serving.
func newClusterState(coord *cluster.Coordinator, remote bool) *clusterState {
	cs := &clusterState{coord: coord, shards: coord.Shards(), remote: remote}
	cs.hists = make([]*latencyHist, cs.shards)
	cs.windows = make([]*windowHist, cs.shards)
	for i := range cs.hists {
		cs.hists[i] = &latencyHist{}
		cs.windows[i] = &windowHist{}
	}
	return cs
}

// snapshot is one query's consistent view of the generation state.
type snapshot struct {
	gen    uint64
	topo   uint64
	engine *core.Engine
	view   *core.View
	cl     *clusterState
	qv     cluster.QueryView // pinned shard set, when sharded
}

// snapshot captures the current generation under a brief RLock.
func (s *Server) snapshot() snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := snapshot{gen: s.gen, topo: s.topo, engine: s.engine, view: s.view, cl: s.cl}
	if s.cl != nil {
		snap.qv = s.cl.coord.Snapshot()
	}
	return snap
}

// Answer is one computed (or cached) query response body — the /v1/topk
// wire format, and what Server.Run returns for in-process callers.
type Answer struct {
	Generation uint64          `json:"generation"`
	Algorithm  string          `json:"algorithm"` // algorithm actually executed
	Planned    bool            `json:"planned"`   // true when "auto" chose it
	Reason     string          `json:"reason,omitempty"`
	Cached     bool            `json:"cached"`
	Truncated  bool            `json:"truncated,omitempty"` // budget stopped the query early
	Shards     int             `json:"shards,omitempty"`    // >1 when a coordinator merged the answer
	Results    []core.Result   `json:"results"`
	Stats      core.QueryStats `json:"stats"`
	ElapsedUS  int64           `json:"elapsed_us"` // execution time when computed
	// Trace is the assembled execution timeline, present only when the
	// request asked "trace": true. Never cached: a trace describes one
	// concrete execution.
	Trace *TraceOut `json:"trace,omitempty"`

	// perShard carries the coordinator's per-shard breakdown from
	// dispatch to the TraceOut assembly; never serialized itself.
	perShard []cluster.ShardReport
	// breakdown, traceID, and slow carry one execution's story from
	// execute to the wide event Run emits; never serialized. Cache hits
	// clear them — they describe the run that populated the cache.
	breakdown *cluster.Breakdown
	traceID   string
	slow      bool
}

// TraceOut is the /v1/topk trace payload: one stitched timeline (local
// spans plus every shard worker's events rebased onto the coordinator's
// clock) and, when the query fanned out, the per-shard breakdown the
// coordinator accounted.
type TraceOut struct {
	ID       string                `json:"id"`
	Events   []trace.Event         `json:"events"`
	PerShard []cluster.ShardReport `json:"per_shard,omitempty"`
}

// New validates the inputs and builds a ready-to-serve Server. For
// undirected graphs a materialized View is kept alongside the Engine
// (enabling incremental update repair and the "view" algorithm); directed
// graphs serve engine-only and apply updates as plain score writes.
func New(g *graph.Graph, scores []float64, h int, opts Options) (*Server, error) {
	if opts.CacheBytes == 0 {
		opts.CacheBytes = defaultCacheBytes
	}
	if opts.CacheShards <= 0 {
		opts.CacheShards = 16
	}
	if opts.RetainGenerations <= 0 {
		opts.RetainGenerations = retainDefault
	}
	if opts.Shards > 1 && len(opts.ShardWorkers) > 0 {
		return nil, errors.New("server: Shards and ShardWorkers are mutually exclusive")
	}
	engine, err := core.NewEngine(g, scores, h)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, g: g, engine: engine, metrics: newMetrics()}
	s.log = opts.Logger
	if s.log == nil {
		s.log = wideevent.Discard()
	}
	if src := opts.SnapshotSource; src != nil {
		// Resume the score generation where the boot snapshot left it, so a
		// restarted coordinator stays generation-aligned with shard workers
		// provisioned from the same snapshot lineage (cluster.Worker seeds
		// its counter from the shard snapshot the same way).
		s.gen = src.Generation
	}
	if opts.CacheBytes > 0 {
		s.cache = newShardedCache(opts.CacheBytes, opts.CacheShards)
	}
	if !g.Directed() {
		if s.view, err = core.NewView(g, scores, h); err != nil {
			return nil, err
		}
	}
	if opts.Index != nil {
		// A snapshot-mapped index makes the eager neighborhood build a
		// no-op below; the differential index is not in the snapshot and
		// still builds (or is skipped) by the usual rules.
		if err := engine.AdoptNeighborhoodIndex(opts.Index); err != nil {
			return nil, err
		}
	}
	if !opts.SkipIndexes {
		// Prepared eagerly so the first queries don't stall behind index
		// construction; WithScores rebuilds share these, so it is one
		// build per server lifetime, not per generation.
		engine.PrepareNeighborhoodIndex(opts.Workers)
		engine.PrepareDifferentialIndex(opts.Workers)
	}
	// The boot generation enters the retention ring first; any replayed
	// commits below retain their own generations through the apply
	// helpers, exactly like live batches.
	s.retainGeneration()
	if j := opts.Journal; j != nil {
		// Replay the journal suffix past the boot state's generation
		// through the exact incremental apply paths a live batch takes —
		// snapshot@g + replay(g..h) reconstructs generation h
		// bit-identically. This runs before the cluster is constructed,
		// so replay never fans out (workers catch up by their own replay)
		// and never re-appends.
		for _, c := range j.Suffix(s.gen) {
			if err := s.replayCommit(c); err != nil {
				return nil, fmt.Errorf("server: journal replay to generation %d: %w", c.Gen, err)
			}
		}
		// Replay may have advanced past the boot state; the cluster
		// below must shard the CURRENT generation, not the one the
		// caller handed in.
		g, scores = s.g, s.engine.Scores()
	}
	switch {
	case opts.Shards > 1:
		local, err := cluster.NewLocal(g, scores, h, opts.Shards)
		if err != nil {
			return nil, err
		}
		if !opts.SkipIndexes {
			local.PrepareIndexes(opts.Workers)
		}
		s.cl = newClusterState(cluster.NewCoordinator(local, opts.clusterOptions()), false)
	case len(opts.ShardWorkers) > 0:
		transport, err := cluster.NewHTTP(context.Background(), opts.ShardWorkers, nil)
		if err != nil {
			return nil, err
		}
		if transport.Nodes() != g.NumNodes() {
			return nil, fmt.Errorf("server: shard workers serve %d nodes, this server loaded %d — different datasets",
				transport.Nodes(), g.NumNodes())
		}
		if transport.H() != h {
			return nil, fmt.Errorf("server: shard workers serve h=%d, this server runs h=%d — answers would mix radii",
				transport.H(), h)
		}
		s.cl = newClusterState(cluster.NewCoordinator(transport, opts.clusterOptions()), true)
	}
	return s, nil
}

// Shards returns how many shards queries fan out across (1 = unsharded).
func (s *Server) Shards() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.cl == nil {
		return 1
	}
	return s.cl.shards
}

// TopologyGeneration returns the shard-topology generation (0 at
// startup, +1 per Reshard). It participates in every cache key, so
// answers merged under one topology can never serve another.
func (s *Server) TopologyGeneration() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.topo
}

// Reshard re-partitions a -shards style server to a new in-process shard
// count (1 tears sharding down) and bumps the topology generation,
// implicitly invalidating every cached answer. Queries already in flight
// finish against the topology they snapshotted. Servers whose shards
// live behind HTTP workers cannot reshard — their partitioning is fixed
// by the worker processes.
func (s *Server) Reshard(parts int) error {
	if parts < 1 {
		return fmt.Errorf("reshard: need at least 1 shard, got %d", parts)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cl != nil && s.cl.remote {
		return errors.New("reshard: shard topology is fixed by the worker processes (-shard-peers)")
	}
	if (s.cl == nil && parts == 1) || (s.cl != nil && s.cl.shards == parts) {
		return nil // already there; keep the cache warm
	}
	if parts == 1 {
		s.cl = nil
		s.topo++
		s.metrics.reshards.Add(1)
		return nil
	}
	local, err := cluster.NewLocal(s.g, s.engine.Scores(), s.engine.H(), parts)
	if err != nil {
		return err
	}
	if !s.opts.SkipIndexes {
		local.PrepareIndexes(s.opts.Workers)
	}
	s.cl = newClusterState(cluster.NewCoordinator(local, s.opts.clusterOptions()), false)
	s.topo++
	s.metrics.reshards.Add(1)
	return nil
}

// Generation returns the current score generation: the boot snapshot's
// stamped generation when the server was restored from one (0 when built
// from scratch), +1 per applied update or edit batch.
func (s *Server) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// Graph returns the current-generation graph (immutable; structural
// edits swap in a successor rather than mutating it).
func (s *Server) Graph() *graph.Graph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g
}

// Scores returns a copy of the current-generation relevance vector.
func (s *Server) Scores() []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]float64(nil), s.engine.Scores()...)
}

// numNodes returns the current-generation node count. Structural edits
// only ever grow it, so a candidate validated against one generation
// stays valid for every later one.
func (s *Server) numNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.NumNodes()
}

// QueryRequest is the decoded /v1/topk body. Aggregate and Algorithm are
// the lowercase names cmd/lona uses; Algorithm additionally accepts "auto"
// (the planner decides) and "view" (serve from the materialized view).
type QueryRequest struct {
	K         int     `json:"k"`
	Aggregate string  `json:"aggregate"`
	Algorithm string  `json:"algorithm,omitempty"` // default "auto"
	Gamma     float64 `json:"gamma,omitempty"`
	Order     string  `json:"order,omitempty"` // natural | degree-desc | score-desc
	Workers   int     `json:"workers,omitempty"`
	// TimeoutMS is a server-side deadline for this request in
	// milliseconds; 0 means no extra deadline beyond the caller's context.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Budget caps the query's h-hop traversals (core.Query.Budget); a
	// truncated answer sets "truncated": true.
	Budget int `json:"budget,omitempty"`
	// Candidates restricts which nodes may be ranked
	// (core.Query.Candidates). Empty means every node.
	Candidates []int `json:"candidates,omitempty"`
	// Trace asks for the execution timeline in the answer. Like
	// timeout_ms it never changes the results, so it is excluded from the
	// cache key; unlike timeout_ms a traced miss bypasses the
	// singleflight collapse and is never cached, because its trace
	// describes that one execution.
	Trace bool `json:"trace,omitempty"`
	// AsOf pins the query to a retained generation: the answer is
	// byte-identical to what a live query would have returned at that
	// generation (it IS the cached live answer when one is still
	// resident — the time-travel fast path). 0 (and the live generation)
	// mean "now"; generations outside the retention ring are rejected.
	AsOf uint64 `json:"as_of,omitempty"`
	// Window widens the query across the Window most recent retained
	// generations ending at AsOf (or the live generation): each node's
	// per-generation aggregates are combined by WindowAgg and the top-k
	// of the combined series is returned exactly. 0 and 1 mean a point
	// query.
	Window int `json:"window,omitempty"`
	// WindowAgg combines one node's values across the window: "max"
	// (peak over the window) or "decay" (exponentially decayed sum,
	// Σ decay^age · value, age 0 = the newest generation). Required when
	// Window > 1.
	WindowAgg string `json:"window_agg,omitempty"`
	// Decay is the per-generation decay factor in (0,1] for
	// WindowAgg "decay" (default 0.5).
	Decay float64 `json:"decay,omitempty"`
}

// algoView is the extra serving-only "algorithm": answer from the
// materialized view's O(n) scan, no traversal at all.
const algoView = "view"

// normalize validates the request and fills defaults.
func (r *QueryRequest) normalize(s *Server) (agg core.Aggregate, order core.QueueOrder, err error) {
	if r.K <= 0 {
		return 0, 0, fmt.Errorf("k must be positive, got %d", r.K)
	}
	// Canonicalize the strings that participate in the cache key.
	r.Aggregate = strings.ToLower(r.Aggregate)
	r.Algorithm = strings.ToLower(r.Algorithm)
	agg, err = ParseAggregate(r.Aggregate)
	if err != nil {
		return 0, 0, err
	}
	if r.Algorithm == "" {
		r.Algorithm = "auto"
	}
	switch r.Algorithm {
	case "auto":
	case algoView:
		if s.view == nil {
			return 0, 0, errors.New(`algorithm "view" requires an undirected graph`)
		}
	default:
		if _, err := ParseAlgorithm(r.Algorithm); err != nil {
			return 0, 0, err
		}
	}
	switch r.Order {
	case "", "natural":
		order = core.OrderNatural
	case "degree-desc":
		order = core.OrderDegreeDesc
	case "score-desc":
		order = core.OrderScoreDesc
	default:
		return 0, 0, fmt.Errorf("unknown order %q (want natural, degree-desc, or score-desc)", r.Order)
	}
	if r.Gamma < 0 || r.Gamma > 1 {
		return 0, 0, fmt.Errorf("gamma %v outside [0,1]", r.Gamma)
	}
	if r.TimeoutMS < 0 {
		return 0, 0, fmt.Errorf("timeout_ms %d is negative", r.TimeoutMS)
	}
	if r.Budget < 0 {
		return 0, 0, fmt.Errorf("budget %d is negative", r.Budget)
	}
	if err := r.canonicalizeCandidates(s.numNodes()); err != nil {
		return 0, 0, err
	}
	if err := r.normalizeTemporal(s); err != nil {
		return 0, 0, err
	}
	// Canonicalize option fields the chosen path ignores, so equivalent
	// requests share one cache key and one in-flight execution: gamma only
	// steers Backward, the queue order only steers Forward, and the
	// auto/view paths choose their own options. timeout_ms never affects
	// the answer and is excluded from the key entirely. Workers is zeroed
	// except for the explicit parallel scan — the only path that consumes
	// it (the planner never chooses it) — where a budget splits across
	// per-worker node ranges and so changes the answer; the clamp below
	// runs before the cache key is built so over-core worker counts
	// collapse onto one entry.
	switch r.Algorithm {
	case "auto", algoView:
		r.Gamma, r.Order = 0, ""
		r.Workers = 0
		if r.Algorithm == algoView {
			r.Budget = 0 // the view scan performs no traversals to budget
		}
	default:
		algo, _ := ParseAlgorithm(r.Algorithm)
		if algo != core.AlgoBackward {
			r.Gamma = 0
		}
		if algo != core.AlgoForward {
			r.Order = ""
		}
		if algo != core.AlgoBaseParallel {
			r.Workers = 0
		}
	}
	if r.Workers < 0 {
		r.Workers = 0
	}
	if max := runtime.GOMAXPROCS(0); r.Workers > max {
		r.Workers = max
	}
	return agg, order, nil
}

// canonicalizeCandidates validates the candidate ids and rewrites them
// sorted and deduplicated, so requests naming the same set in any order
// share one cache key and one in-flight execution.
func (r *QueryRequest) canonicalizeCandidates(n int) error {
	if len(r.Candidates) == 0 {
		r.Candidates = nil
		return nil
	}
	seen := make(map[int]struct{}, len(r.Candidates))
	out := make([]int, 0, len(r.Candidates))
	for _, v := range r.Candidates {
		if v < 0 || v >= n {
			return fmt.Errorf("candidate node %d out of range [0,%d)", v, n)
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Ints(out)
	r.Candidates = out
	return nil
}

// cacheKey identifies a query result within one (score, shard-topology)
// generation pair. Everything that can change the response body
// participates (timeout_ms does not — it changes only whether the query
// finishes, never its answer). The topology generation matters even
// though merged answers are byte-identical across topologies: stats,
// shard counts, and truncation behavior differ, and a re-shard mid-build
// must never replay a stale merged entry.
func (r *QueryRequest) cacheKey(gen, topo uint64) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(topo, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(r.K))
	b.WriteByte('|')
	b.WriteString(r.Aggregate)
	b.WriteByte('|')
	b.WriteString(r.Algorithm)
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(r.Gamma, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(r.Order)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(r.Workers))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(r.Budget))
	b.WriteByte('|')
	// The window triple, NOT as_of: a time-travel point query reuses the
	// key the live query wrote at that generation (gen above IS as_of),
	// which is exactly what makes retained cache entries the fast path.
	b.WriteString(strconv.Itoa(r.Window))
	b.WriteByte('|')
	b.WriteString(r.WindowAgg)
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(r.Decay, 'g', -1, 64))
	b.WriteByte('|')
	for i, v := range r.Candidates {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Run answers a query under ctx, consulting the cache first and collapsing
// concurrent identical cold queries. The request's timeout_ms, when set,
// tightens ctx with a deadline. A context error (the caller went away or
// the deadline passed) is returned as-is and recorded in the
// timeout/cancellation counters. Every call — hit, miss, collapsed, or
// failed — emits exactly one wide event through the configured logger.
func (s *Server) Run(ctx context.Context, req QueryRequest) (*Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	ans, outcome, err := s.runCached(ctx, &req)
	s.emitQueryEvent(ctx, req, ans, outcome, time.Since(start), err)
	return ans, err
}

// runCached is Run's cache/singleflight machinery; it additionally
// reports which cache outcome the caller experienced (for the wide
// event): "hit", "miss" (executed, cacheable), "collapsed" (rode another
// caller's execution), or "bypass" (executed outside the cache — traced
// request or caching disabled).
func (s *Server) runCached(ctx context.Context, req *QueryRequest) (*Answer, string, error) {
	agg, order, err := req.normalize(s)
	if err != nil {
		return nil, wideevent.CacheBypass, err
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	snap := s.snapshot()
	asOf := req.AsOf != 0 && req.AsOf != snap.gen
	if asOf {
		// Time travel: swap the execution snapshot for the retained
		// generation. The cache key below is built from the entry's
		// (gen, topo), so a still-resident live answer from that
		// generation serves this query byte-identically.
		entry, oldest, ok := s.retained(req.AsOf)
		if !ok {
			return nil, wideevent.CacheBypass,
				fmt.Errorf("as_of generation %d is not retained (oldest retained is %d, live is %d)",
					req.AsOf, oldest, snap.gen)
		}
		s.metrics.asOfQueries.Add(1)
		snap = snapshot{gen: entry.gen, topo: entry.topo, engine: entry.engine}
	}

	key := req.cacheKey(snap.gen, snap.topo)
	if s.cache != nil {
		if ans, ok := s.cache.get(key); ok {
			if asOf {
				s.metrics.asOfHits.Add(1)
			}
			s.metrics.hits.Add(1)
			s.metrics.hist("cache").observe(0)
			hit := *ans
			hit.Cached = true
			// The cached answer's execution-scoped fields describe the
			// run that populated the cache, not this hit.
			hit.traceID, hit.slow, hit.breakdown = "", false, nil
			if req.Trace {
				rec := trace.New()
				rec.Emit(trace.KindCacheHit, len(hit.Results), 0, "served from result cache")
				hit.Trace = &TraceOut{ID: rec.ID(), Events: rec.Snapshot().Events}
				hit.traceID = rec.ID()
			}
			return &hit, wideevent.CacheHit, nil
		}
	}

	if req.Trace {
		// A trace narrates one concrete execution, so a traced miss
		// neither joins the singleflight collapse (a shared answer's
		// trace would describe someone else's run) nor lands in the
		// cache (replaying a stale timeline as if it just happened).
		ans, err := s.execute(ctx, *req, agg, order, snap)
		if err != nil {
			s.metrics.noteQueryAborted(err)
			return nil, wideevent.CacheBypass, err
		}
		s.metrics.misses.Add(1)
		return ans, wideevent.CacheBypass, nil
	}

	run := func() (*Answer, error) {
		return s.execute(ctx, *req, agg, order, snap)
	}
	ans, err, shared := s.flight.do(ctx, key, run)
	// A shared context error means the caller that executed the flight was
	// cancelled — not necessarily us (our own expiry mid-wait yields
	// ctx.Err() != nil and falls through). Live callers retry through the
	// flight group, so all survivors of an abandoned flight collapse onto
	// one re-execution instead of stampeding the engine; after repeated
	// leader cancellations, fall back to executing directly.
	for retries := 0; shared && isContextErr(err) && ctx.Err() == nil && retries < 2; retries++ {
		ans, err, shared = s.flight.do(ctx, key, run)
	}
	if shared && isContextErr(err) && ctx.Err() == nil {
		ans, err = run()
		shared = false
	}
	if err != nil {
		s.metrics.noteQueryAborted(err)
		return nil, wideevent.CacheBypass, err
	}
	if shared {
		s.metrics.collapsed.Add(1)
		return ans, wideevent.CacheCollapsed, nil
	}
	s.metrics.misses.Add(1)
	if s.cache == nil {
		return ans, wideevent.CacheBypass, nil
	}
	s.cache.put(key, ans)
	return ans, wideevent.CacheMiss, nil
}

// emitQueryEvent renders one query's canonical wide event: the full
// dimensional story (trace id, algorithm, fan-out, cache outcome, bytes,
// duration, status) in a single slog record, escalated to WARN when the
// execution crossed the slow-query threshold and ERROR when it failed.
func (s *Server) emitQueryEvent(ctx context.Context, req QueryRequest, ans *Answer, outcome string,
	dur time.Duration, err error) {

	ev := wideevent.Query{
		Algo: req.Algorithm, Agg: req.Aggregate, K: req.K,
		Cache: outcome, Duration: dur, Status: wideevent.StatusOK,
	}
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		ev.Status, ev.Err = wideevent.StatusTimeout, err.Error()
	case errors.Is(err, context.Canceled):
		ev.Status, ev.Err = wideevent.StatusCanceled, err.Error()
	default:
		ev.Status, ev.Err = wideevent.StatusError, err.Error()
	}
	if ans != nil {
		ev.TraceID = ans.traceID
		ev.Algo = ans.Algorithm
		ev.Generation = ans.Generation
		ev.Results = len(ans.Results)
		ev.Evaluated = ans.Stats.Evaluated
		ev.Truncated = ans.Truncated
		ev.Bytes = entrySize("", ans)
		ev.Slow = ans.slow
		if bd := ans.breakdown; bd != nil {
			ev.Shards = bd.Shards
			ev.ShardsCut = bd.ShardsCut
			ev.LambdaRaises = bd.LambdaRaises
			ev.LambdaPrimed = bd.LambdaPrimed
			ev.PartialBatches = bd.PartialBatches
			ev.Messages = bd.Messages
			ev.BudgetRedist = bd.BudgetRedistributed
			ev.GrantRequests = bd.GrantRequests
		}
	}
	if ev.TraceID == "" {
		// Untraced paths (hits, plain misses with tracing off) still get
		// a non-empty id so the event is greppable and correlatable.
		ev.TraceID = trace.NewID()
	}
	ev.Log(ctx, s.log)
}

// isContextErr reports whether err is (or wraps) a context cancellation
// or deadline error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// execute runs the query against one snapshot's immutable engine, its
// pinned shard set, or the live view (under RLock so it cannot race an
// update batch).
func (s *Server) execute(ctx context.Context, req QueryRequest, agg core.Aggregate, order core.QueueOrder,
	snap snapshot) (*Answer, error) {

	ans := &Answer{Generation: snap.gen, Algorithm: req.Algorithm}
	start := time.Now()

	// One recorder per traced execution. SlowQuery > 0 and a configured
	// OTLP exporter both trace every execution so a slow one can explain
	// itself after the fact; plain requests with all knobs off keep
	// q.Tracer nil and pay nothing.
	var rec *trace.Recorder
	if req.Trace || s.opts.SlowQuery > 0 || s.opts.TraceExporter != nil {
		rec = trace.New()
		if req.Trace {
			rec.Emit(trace.KindCacheMiss, 0, 0, "executing")
		}
	}

	if req.Window > 1 {
		// Temporal window: combine per-generation aggregates across the
		// retained ring (see runWindow). Executes on the retained
		// engines directly — sharding never applies.
		if err := s.runWindow(ctx, req, agg, order, snap, ans); err != nil {
			return nil, err
		}
		s.finishExecute(ans, req, rec, start)
		return ans, nil
	}

	switch req.Algorithm {
	case algoView:
		// The view is mutated in place by update batches, so hold the read
		// lock for the scan (View's documented RWMutex discipline). The
		// generation is re-read because the scan observes the live view,
		// which may be newer than the snapshot taken for the cache key.
		// Sharding never applies here: the view is a whole-graph
		// structure answering with one O(n) scan.
		s.mu.RLock()
		ans.Generation = s.gen
		viewStart := time.Now()
		res, err := snap.view.Run(ctx, core.Query{K: req.K, Aggregate: agg, Candidates: req.Candidates})
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		rec.Span(trace.KindExec, viewStart, len(res.Results), 0, "materialized view scan")
		ans.Results = res.Results

	case "auto":
		// AlgoAuto delegates to the planner; the engine memoizes the
		// decision per instance, and each generation is a fresh
		// WithScores engine, so the plan's O(n) statistics scan runs once
		// per (generation, aggregate), not per cold query. When sharded,
		// each shard engine plans for its own score distribution.
		res, err := s.dispatch(ctx, snap, ans, core.Query{
			Algorithm:  core.AlgoAuto,
			K:          req.K,
			Aggregate:  agg,
			Candidates: req.Candidates,
			Budget:     req.Budget,
			Tracer:     rec,
		})
		if err != nil {
			return nil, err
		}
		ans.Results, ans.Stats, ans.Truncated = res.Results, res.Stats, res.Truncated
		ans.Planned = true
		if res.Plan != nil {
			ans.Algorithm = res.Plan.Algorithm.String()
			ans.Reason = res.Plan.Reason
		}

	default:
		algo, _ := ParseAlgorithm(req.Algorithm) // validated in normalize
		// Wire-supplied parallelism was already clamped to GOMAXPROCS by
		// normalize, before the cache key was built.
		opts := core.Options{Gamma: req.Gamma, Order: order, Workers: req.Workers}
		if opts.Workers <= 0 {
			opts.Workers = s.opts.Workers
		}
		res, err := s.dispatch(ctx, snap, ans, core.Query{
			Algorithm:  algo,
			K:          req.K,
			Aggregate:  agg,
			Options:    opts,
			Candidates: req.Candidates,
			Budget:     req.Budget,
			Tracer:     rec,
		})
		if err != nil {
			return nil, err
		}
		ans.Results, ans.Stats, ans.Truncated = res.Results, res.Stats, res.Truncated
		// Report core's canonical name so explicitly requested and
		// planner-chosen runs share one latency histogram per algorithm.
		ans.Algorithm = algo.String()
	}

	s.finishExecute(ans, req, rec, start)
	return ans, nil
}

// finishExecute settles one execution's timing, metrics, slow flag, and
// trace assembly/export — the common tail of every execute path.
func (s *Server) finishExecute(ans *Answer, req QueryRequest, rec *trace.Recorder, start time.Time) {
	elapsed := time.Since(start)
	ans.ElapsedUS = elapsed.Microseconds()
	if ans.Results == nil {
		ans.Results = []core.Result{}
	}
	s.metrics.recordQuery(ans.Algorithm, elapsed, ans.Stats)
	s.metrics.window.observe(elapsed, s.opts.SLO.enabled() && elapsed > s.opts.SLO.Latency)
	if s.opts.SlowQuery > 0 && elapsed >= s.opts.SlowQuery {
		s.metrics.slowQueries.Add(1)
		ans.slow = true
	}
	if rec != nil {
		ans.traceID = rec.ID()
		if req.Trace {
			ans.Trace = &TraceOut{ID: rec.ID(), Events: rec.Snapshot().Events, PerShard: ans.perShard}
		}
		if exp := s.opts.TraceExporter; exp != nil {
			exp.Export(otlp.FromTrace(rec.Snapshot(), otlp.Meta{
				RootName: "lona.query",
				Attrs: []otlp.KeyValue{
					otlp.Str("lona.algorithm", ans.Algorithm),
					otlp.Str("lona.aggregate", req.Aggregate),
					otlp.Int("lona.k", int64(req.K)),
					otlp.Int("lona.generation", int64(ans.Generation)),
				},
			}), ans.slow)
		}
	}
}

// dispatch runs an engine query on the snapshot: through the cluster
// coordinator's fan-out when the server is sharded (recording the
// distributed-execution counters), directly on the whole-graph engine
// otherwise. Either path returns the same byte-identical answer — that
// is the cluster package's core guarantee.
func (s *Server) dispatch(ctx context.Context, snap snapshot, ans *Answer, q core.Query) (core.Answer, error) {
	if snap.cl == nil {
		return snap.engine.Run(ctx, q)
	}
	res, bd, err := snap.cl.coord.RunOn(ctx, snap.qv, q)
	if err != nil {
		// A non-context failure mid-fan-out is where shard drift shows
		// up: probe the workers' health and name the divergence instead
		// of failing opaquely.
		if !isContextErr(err) {
			s.warnShardHealth(ctx, snap, q.Tracer.ID())
		}
		return core.Answer{}, err
	}
	ans.Shards = snap.cl.shards
	ans.perShard = bd.PerShard
	ans.breakdown = &bd
	s.metrics.clusterMessages.Add(bd.Messages)
	s.metrics.shardsCut.Add(int64(bd.ShardsCut))
	s.metrics.partialBatches.Add(bd.PartialBatches)
	s.metrics.budgetRedistributed.Add(int64(bd.BudgetRedistributed))
	s.metrics.lambdaRaises.Add(int64(bd.LambdaRaises))
	s.metrics.lambdaPerQuery.observeValue(int64(bd.LambdaRaises))
	if bd.LambdaPrimed > 0 {
		s.metrics.lambdaPrimed.Add(1)
	}
	s.metrics.grantRequests.Add(bd.GrantRequests)
	for _, r := range bd.PerShard {
		if !r.Launched {
			continue
		}
		s.metrics.shardQueries.Add(1)
		s.metrics.shardItems.observeValue(int64(r.Items))
		if r.Shard < len(snap.cl.hists) {
			d := time.Duration(r.ElapsedUS) * time.Microsecond
			snap.cl.hists[r.Shard].observe(d)
			snap.cl.windows[r.Shard].observe(d, false)
		}
	}
	return res, nil
}

// warnShardHealth probes the shard workers after a failed fan-out and
// emits a wide warn event for every shard that is unreachable or whose
// generation diverged from the coordinator's — the opaque "query failed
// mid-fan-out" turned into an actionable per-shard story. Transports
// without health reporting (in-process shards share the coordinator's
// state by construction) are skipped.
func (s *Server) warnShardHealth(ctx context.Context, snap snapshot, traceID string) {
	prober, ok := snap.cl.coord.Transport().(cluster.HealthProber)
	if !ok {
		return
	}
	if traceID == "" {
		traceID = trace.NewID()
	}
	pctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, r := range prober.ProbeHealth(pctx) {
		switch {
		case r.Err != nil:
			wideevent.ShardWarn{
				TraceID: traceID, Shard: r.Shard, WantGen: snap.gen,
				Detail: "health probe failed: " + r.Err.Error(),
			}.Log(ctx, s.log)
		case r.Generation != snap.gen:
			wideevent.ShardWarn{
				TraceID: traceID, Shard: r.Shard, WantGen: snap.gen, GotGen: r.Generation,
				Detail: "worker generation diverged from coordinator",
			}.Log(ctx, s.log)
		}
	}
}

// ScoreUpdate is one relevance mutation of an update batch.
type ScoreUpdate struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// UpdateResult reports what an applied batch did.
type UpdateResult struct {
	Generation uint64 `json:"generation"` // generation after the batch
	Applied    int    `json:"applied"`    // mutations applied
	Touched    int    `json:"touched"`    // aggregates repaired in the view (0 when engine-only)
	ElapsedUS  int64  `json:"elapsed_us"`
}

// ApplyUpdates applies a score batch atomically: the batch is validated up
// front, then applied under the write lock; the engine is rebuilt on a
// snapshot of the new scores and the generation is bumped, implicitly
// invalidating every cached result. Queries already in flight finish
// against the previous generation's engine.
func (s *Server) ApplyUpdates(updates []ScoreUpdate) (res *UpdateResult, err error) {
	start := time.Now()
	defer func() {
		var gen uint64
		if res != nil {
			gen = res.Generation
		}
		s.emitEditEvent(len(updates), 0, "scores", gen, time.Since(start), err)
	}()
	if len(updates) == 0 {
		return nil, errors.New("empty update batch")
	}
	n := s.numNodes() // node ids only grow, so pre-lock validation stays sound
	for i, u := range updates {
		if u.Node < 0 || u.Node >= n {
			return nil, fmt.Errorf("update %d: node %d out of range [0,%d)", i, u.Node, n)
		}
		if math.IsNaN(u.Score) || u.Score < 0 || u.Score > 1 {
			return nil, fmt.Errorf("update %d: score %v outside [0,1]", i, u.Score)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// Propagate to the shards first, while local state is still at the
	// old generation: if a remote worker rejects the batch the server
	// aborts cleanly un-mutated. The HTTP fan-out is not transactional —
	// a mid-batch worker crash leaves earlier workers updated and this
	// server at the old generation; re-sending the (idempotent) batch
	// converges. In-process shards swap atomically and cannot fail after
	// the upfront validation. The deadline matters: this runs under the
	// write lock, so a wedged worker must fail the batch, not wedge every
	// query snapshot behind it.
	if s.cl != nil {
		batch := make([]cluster.ScoreUpdate, len(updates))
		for i, u := range updates {
			batch[i] = cluster.ScoreUpdate{Node: u.Node, Score: u.Score}
		}
		fanCtx, cancel := context.WithTimeout(context.Background(), shardUpdateTimeout)
		err := s.cl.coord.Transport().ApplyScores(fanCtx, batch)
		cancel()
		if err != nil {
			// With a journal configured, a failed leg is often a worker
			// that restarted and fell behind: catch it up by replaying the
			// journal suffix it lacks, then re-send this batch once.
			// Re-applying score writes is value-idempotent, so workers
			// whose first leg did land converge to the same scores.
			err = s.catchUpAndRetry(fmt.Errorf("shard update fan-out: %w", err),
				func(ctx context.Context) error {
					return s.cl.coord.Transport().ApplyScores(ctx, batch)
				})
			if err != nil {
				return nil, err
			}
		}
	}

	res, err = s.applyScoresLocked(updates)
	if err != nil {
		return nil, err
	}
	// Journal after the apply succeeded, so the log never records a batch
	// the server rejected. An append failure is surfaced as a batch error
	// even though the in-memory state advanced: the caller must know its
	// mutation is not durable.
	if err := s.journalAppendLocked(journal.Commit{Gen: s.gen, Scores: journalScores(updates)}); err != nil {
		return nil, err
	}
	res.ElapsedUS = time.Since(start).Microseconds()
	return res, nil
}

// applyScoresLocked is the score-apply core shared by the live
// /v1/scores path and boot-time journal replay: view repair (or plain
// writes), engine rebuild, generation bump, retention. Caller holds the
// write lock (or exclusive access during New) and has validated the
// batch; shard fan-out and journaling stay with the caller.
func (s *Server) applyScoresLocked(updates []ScoreUpdate) (*UpdateResult, error) {
	res := &UpdateResult{Applied: len(updates)}
	var newScores []float64
	if s.view != nil {
		for _, u := range updates {
			touched, err := s.view.UpdateScore(u.Node, u.Score)
			if err != nil {
				// Unreachable after upfront validation; surface it anyway.
				return nil, err
			}
			res.Touched += touched
		}
		newScores = s.view.ScoresCopy()
	} else {
		newScores = append([]float64(nil), s.engine.Scores()...)
		for _, u := range updates {
			newScores[u.Node] = u.Score
		}
	}

	engine, err := s.engine.WithScores(newScores)
	if err != nil {
		return nil, err
	}
	s.engine = engine
	s.gen++
	res.Generation = s.gen
	s.metrics.updates.Add(1)
	s.metrics.mutations.Add(int64(len(updates)))
	s.retainGeneration()
	return res, nil
}

// journalScores converts a wire batch to journal form.
func journalScores(updates []ScoreUpdate) []journal.ScoreUpdate {
	out := make([]journal.ScoreUpdate, len(updates))
	for i, u := range updates {
		out[i] = journal.ScoreUpdate{Node: u.Node, Score: u.Score}
	}
	return out
}

// journalAppendLocked durably records one applied batch; a no-op
// without a configured journal. Caller holds the write lock.
func (s *Server) journalAppendLocked(c journal.Commit) error {
	j := s.opts.Journal
	if j == nil {
		return nil
	}
	if err := j.Append(c); err != nil {
		return fmt.Errorf("journal append: %w", err)
	}
	s.metrics.journalAppends.Add(1)
	return nil
}

// replayCommit applies one journal commit during New, following the
// journal's generation numbering. Exclusive access (pre-serving).
func (s *Server) replayCommit(c journal.Commit) error {
	if len(c.Edits) > 0 {
		if _, err := s.applyEditsLocked(context.Background(), c.Edits, nil, nil); err != nil {
			return err
		}
	} else {
		n := s.g.NumNodes()
		updates := make([]ScoreUpdate, len(c.Scores))
		for i, u := range c.Scores {
			if u.Node < 0 || u.Node >= n {
				return fmt.Errorf("score update for node %d outside [0,%d)", u.Node, n)
			}
			if math.IsNaN(u.Score) || u.Score < 0 || u.Score > 1 {
				return fmt.Errorf("score %v for node %d outside [0,1]", u.Score, u.Node)
			}
			updates[i] = ScoreUpdate{Node: u.Node, Score: u.Score}
		}
		if _, err := s.applyScoresLocked(updates); err != nil {
			return err
		}
	}
	if s.gen != c.Gen {
		// The apply helpers advance one generation per batch; journals
		// are appended the same way, so the numbering must line up.
		return fmt.Errorf("replay produced generation %d, journal says %d (snapshot from a different lineage?)", s.gen, c.Gen)
	}
	s.metrics.journalReplayed.Add(1)
	return nil
}

// retainGeneration pushes the current generation onto the retention
// ring and trims it to the configured depth. Caller holds the write
// lock (or exclusive access during New).
func (s *Server) retainGeneration() {
	s.ring = append(s.ring, genEntry{gen: s.gen, topo: s.topo, g: s.g, engine: s.engine})
	if over := len(s.ring) - s.opts.RetainGenerations; over > 0 {
		// Slide rather than re-slice so retired (graph, engine) pairs
		// drop their references and can be collected.
		copy(s.ring, s.ring[over:])
		for i := len(s.ring) - over; i < len(s.ring); i++ {
			s.ring[i] = genEntry{}
		}
		s.ring = s.ring[:len(s.ring)-over]
	}
}

// retained looks up a retained generation (including the live one).
// The second result names the oldest retained generation for error
// messages; ok=false when gen is outside the ring.
func (s *Server) retained(gen uint64) (entry genEntry, oldest uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.ring) == 0 {
		return genEntry{}, 0, false
	}
	oldest = s.ring[0].gen
	for i := range s.ring {
		if s.ring[i].gen == gen {
			return s.ring[i], oldest, true
		}
	}
	return genEntry{}, oldest, false
}

// EditRequest is one structural mutation of a /v1/edges batch. Op is a
// graph.EditOp wire name: "add-edge", "remove-edge", or "add-node" (U
// and V are ignored for add-node; the new node's id is the node count at
// the point the edit applies, so later edits in the batch can wire it).
type EditRequest struct {
	Op string `json:"op"`
	U  int    `json:"u,omitempty"`
	V  int    `json:"v,omitempty"`
}

// EditsResult reports what an applied edit batch did.
type EditsResult struct {
	Generation   uint64 `json:"generation"`    // generation after the batch
	NodesAdded   int    `json:"nodes_added"`   // nodes appended (relevance 0)
	EdgesAdded   int    `json:"edges_added"`   // inserts that were not duplicates
	EdgesRemoved int    `json:"edges_removed"` // removals that hit a real edge
	Repaired     int    `json:"repaired"`      // nodes whose index/view state was recomputed
	Rebuilt      bool   `json:"rebuilt"`       // the view took the from-scratch rebuild path
	Nodes        int    `json:"nodes"`         // post-batch graph shape
	Edges        int    `json:"edges"`
	ElapsedUS    int64  `json:"elapsed_us"`
}

// ApplyEdits applies a structural edit batch atomically: the batch is
// validated by deriving the successor graph up front (any invalid edit
// rejects the whole batch un-mutated), propagated to the shards, and then
// committed under the write lock — the materialized view repairs itself
// incrementally (only nodes whose h-hop neighborhood changed are
// recomputed), the engine is rebuilt over the successor graph adopting
// the incrementally repaired neighborhood index, and the generation bump
// retires every cached answer. Queries already in flight finish against
// the generation they snapshotted.
//
// The differential index, whose entries parallel arc positions that any
// edit shifts, is dropped rather than repaired: the planner avoids
// Forward until a later explicit Forward query rebuilds it lazily — the
// same contract as a server started with SkipIndexes.
func (s *Server) ApplyEdits(reqs []EditRequest) (res *EditsResult, err error) {
	start := time.Now()
	// rec is declared up here so the wide-event defer below (and the
	// OTLP export) can see whatever recorder the body ends up creating.
	var rec *trace.Recorder
	defer func() {
		mode := "repair"
		var gen uint64
		if res != nil {
			gen = res.Generation
			if res.Rebuilt {
				mode = "rebuild"
			}
		}
		ev := s.emitEditEvent(0, len(reqs), mode, gen, time.Since(start), err)
		if exp := s.opts.TraceExporter; exp != nil && rec != nil {
			exp.Export(otlp.FromTrace(rec.Snapshot(), otlp.Meta{
				RootName: "lona.edits",
				Attrs: []otlp.KeyValue{
					otlp.Str("lona.edit_mode", mode),
					otlp.Int("lona.edits", int64(len(reqs))),
				},
			}), ev.Slow)
		}
	}()
	if len(reqs) == 0 {
		return nil, errors.New("empty edit batch")
	}
	edits := make([]graph.Edit, len(reqs))
	for i, r := range reqs {
		op, err := graph.ParseEditOp(r.Op)
		if err != nil {
			return nil, fmt.Errorf("edit %d: %w", i, err)
		}
		edits[i] = graph.Edit{Op: op, U: r.U, V: r.V}
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// When shards must be notified, or there is no view to do it for us,
	// validate by deriving the successor up front — pure with respect to
	// server state, so any rejection leaves everything (including the
	// not-yet-notified shards) at the old generation. In the common
	// unsharded-undirected case this derivation is skipped: the view's
	// own ApplyEdits validates and derives exactly once.
	var newG *graph.Graph
	var delta *graph.EditDelta
	if s.cl != nil || s.view == nil {
		var err error
		if newG, delta, err = s.g.ApplyEdits(edits); err != nil {
			return nil, err
		}
	}

	// Propagate to the shards while local state is still old, mirroring
	// ApplyUpdates: in-process shard sets swap atomically; the HTTP
	// fan-out is not transactional, but re-sending the identical batch
	// converges — it keeps its sequence number, so workers that already
	// applied it answer idempotently.
	if s.cl != nil {
		fanCtx, cancel := context.WithTimeout(context.Background(), shardUpdateTimeout)
		err := s.cl.coord.Transport().ApplyEdits(fanCtx, edits)
		cancel()
		if err != nil {
			// Journal catch-up then one re-send, mirroring ApplyUpdates.
			// The batch keeps its sequence number across the retry, so
			// workers that already applied it answer idempotently.
			err = s.catchUpAndRetry(fmt.Errorf("shard edit fan-out: %w", err),
				func(ctx context.Context) error {
					return s.cl.coord.Transport().ApplyEdits(ctx, edits)
				})
			if err != nil {
				return nil, err
			}
		}
	}

	// With slow-query escalation or OTLP export on, carry a recorder
	// through the view's repair-vs-rebuild decision so a pathological
	// batch can explain itself in the exported trace.
	ectx := context.Background()
	if s.opts.SlowQuery > 0 || s.opts.TraceExporter != nil {
		rec = trace.New()
		ectx = trace.NewContext(ectx, rec)
	}
	res, err = s.applyEditsLocked(ectx, edits, newG, delta)
	if err != nil {
		return nil, err
	}
	// Journal after the apply succeeded (see ApplyUpdates): an append
	// failure surfaces as a batch error so the caller knows the mutation
	// is not durable.
	if err := s.journalAppendLocked(journal.Commit{Gen: s.gen, Edits: edits}); err != nil {
		return nil, err
	}
	res.ElapsedUS = time.Since(start).Microseconds()
	return res, nil
}

// applyEditsLocked is the edit-apply core shared by the live /v1/edges
// path and boot-time journal replay: view (or engine-only) repair,
// generation bump, retention. newG/delta may carry the caller's upfront
// successor derivation for the engine-only path (nil = derive here);
// the view path always derives its own, deterministically equal. Caller
// holds the write lock (or exclusive access during New); shard fan-out
// and journaling stay with the caller.
func (s *Server) applyEditsLocked(ectx context.Context, edits []graph.Edit,
	newG *graph.Graph, delta *graph.EditDelta) (*EditsResult, error) {

	res := &EditsResult{}
	h := s.engine.H()
	var engine *core.Engine
	if s.view != nil {
		// The view derives the successor itself (deterministically equal
		// to any pre-derivation above) and repairs its aggregates and
		// N(v) index incrementally; the server adopts the view's graph
		// instance and repaired index so view and engine share one
		// topology.
		viewRes, err := s.view.ApplyEdits(ectx, edits)
		if err != nil {
			return nil, err
		}
		res.NodesAdded = viewRes.NodesAdded
		res.EdgesAdded = viewRes.EdgesAdded
		res.EdgesRemoved = viewRes.EdgesRemoved
		res.Repaired = viewRes.Repaired
		res.Rebuilt = viewRes.Rebuilt
		newG = s.view.Graph()
		engine, err = core.NewEngine(newG, s.view.ScoresCopy(), h)
		if err != nil {
			return nil, err
		}
		if err := engine.AdoptNeighborhoodIndex(s.view.NeighborhoodIndex()); err != nil {
			return nil, err
		}
	} else {
		// Directed graphs serve engine-only; added nodes start unscored.
		if newG == nil {
			var err error
			if newG, delta, err = s.g.ApplyEdits(edits); err != nil {
				return nil, err
			}
		}
		res.NodesAdded = delta.NodesAdded
		res.EdgesAdded = delta.EdgesAdded
		res.EdgesRemoved = delta.EdgesRemoved
		scores := append([]float64(nil), s.engine.Scores()...)
		for len(scores) < newG.NumNodes() {
			scores = append(scores, 0)
		}
		var err error
		engine, err = core.NewEngine(newG, scores, h)
		if err != nil {
			return nil, err
		}
		if s.engine.HasNeighborhoodIndex() {
			affected := graph.AffectedNodes(s.g, newG, delta, h)
			nix := s.engine.PrepareNeighborhoodIndex(s.opts.Workers).Repair(newG, affected, s.opts.Workers)
			if err := engine.AdoptNeighborhoodIndex(nix); err != nil {
				return nil, err
			}
			res.Repaired = len(affected)
		}
	}

	s.g = newG
	s.engine = engine
	s.gen++
	res.Generation = s.gen
	res.Nodes, res.Edges = newG.NumNodes(), newG.NumEdges()
	s.metrics.editBatches.Add(1)
	s.metrics.edgesAdded.Add(int64(res.EdgesAdded))
	s.metrics.edgesRemoved.Add(int64(res.EdgesRemoved))
	s.metrics.nodesAdded.Add(int64(res.NodesAdded))
	s.metrics.editRepaired.Add(int64(res.Repaired))
	if res.Rebuilt {
		s.metrics.editRebuilds.Add(1)
	}
	s.retainGeneration()
	return res, nil
}

// emitEditEvent renders one edit/update batch's canonical wide event —
// the same escalation rules as queries: WARN past the slow threshold,
// ERROR on failure — and returns it so callers can reuse the settled
// slow flag. It also owns the slow-batch counter bump.
func (s *Server) emitEditEvent(updates, edits int, mode string, gen uint64,
	dur time.Duration, err error) wideevent.EditBatch {

	ev := wideevent.EditBatch{
		TraceID: trace.NewID(), Generation: gen, Edits: edits, Updates: updates,
		Mode: mode, Shards: s.Shards(), Duration: dur, Status: wideevent.StatusOK,
	}
	if err != nil {
		ev.Status, ev.Err = wideevent.StatusError, err.Error()
	}
	if s.opts.SlowQuery > 0 && dur >= s.opts.SlowQuery {
		ev.Slow = true
		s.metrics.slowQueries.Add(1)
	}
	ev.Log(context.Background(), s.log)
	return ev
}

// Stats snapshots the serving metrics.
func (s *Server) Stats() Stats {
	st := s.metrics.snapshot()
	s.mu.RLock()
	st.Generation = s.gen
	g := s.engine.Graph()
	st.Nodes, st.Edges, st.H = g.NumNodes(), int64(g.NumEdges()), s.engine.H()
	cl, topo := s.cl, s.topo
	s.mu.RUnlock()
	if s.cache != nil {
		st.Cache.Entries = s.cache.len()
		st.Cache.Bytes = s.cache.bytes()
		st.Cache.CapacityBytes = s.cache.capacityBytes()
	}
	if cl != nil {
		topology := cl.coord.Transport().Topology()
		cs := &ClusterStats{
			Shards:              cl.shards,
			Remote:              cl.remote,
			Streaming:           !s.opts.DisableStreaming,
			TopologyGen:         topo,
			Reshards:            s.metrics.reshards.Load(),
			EdgeCut:             topology.EdgeCut,
			BoundaryNodes:       topology.BoundaryNodes,
			ShardQueries:        s.metrics.shardQueries.Load(),
			ShardsCut:           s.metrics.shardsCut.Load(),
			Messages:            s.metrics.clusterMessages.Load(),
			PartialBatches:      s.metrics.partialBatches.Load(),
			BudgetRedistributed: s.metrics.budgetRedistributed.Load(),
			LambdaRaises:        s.metrics.lambdaRaises.Load(),
			LambdaPrimed:        s.metrics.lambdaPrimed.Load(),
			GrantRequests:       s.metrics.grantRequests.Load(),
		}
		for i, h := range cl.hists {
			sl := ShardLatency{Shard: i, Latency: h.summary()}
			if i < len(topology.OwnedSizes) {
				sl.Owned = topology.OwnedSizes[i]
			}
			cs.PerShard = append(cs.PerShard, sl)
		}
		st.Cluster = cs
	}
	st.Snapshot = s.snapshotStats()
	st.Journal = s.journalStats()
	st.LatencyWindow = s.metrics.window.snapshot().summary()
	st.SLO = s.sloStats()
	if exp := s.opts.TraceExporter; exp != nil {
		es := exp.Stats()
		st.OTLP = &es
	}
	return st
}

// journalStats assembles the versioned-lake section of /v1/stats.
func (s *Server) journalStats() *JournalStats {
	js := &JournalStats{
		Appends:        s.metrics.journalAppends.Load(),
		Replayed:       s.metrics.journalReplayed.Load(),
		AsOfQueries:    s.metrics.asOfQueries.Load(),
		AsOfHits:       s.metrics.asOfHits.Load(),
		Catchups:       s.metrics.catchups.Load(),
		CatchupCommits: s.metrics.catchupCommits.Load(),
	}
	if j := s.opts.Journal; j != nil {
		js.Enabled = true
		js.Depth = j.Depth()
		js.LastGen = j.LastGen()
	}
	s.mu.RLock()
	js.Retained = len(s.ring)
	if len(s.ring) > 0 {
		js.OldestRetained = s.ring[0].gen
	}
	s.mu.RUnlock()
	return js
}

// ParseAggregate maps the wire name of an aggregate to core's enum; the
// names match cmd/lona's flags.
func ParseAggregate(name string) (core.Aggregate, error) {
	return core.ParseAggregate(name)
}

// ParseAlgorithm maps the wire name of an engine algorithm (including
// "auto") to core's enum. The serving-level "view" mode is handled before
// this point.
func ParseAlgorithm(name string) (core.Algorithm, error) {
	algo, err := core.ParseAlgorithm(name)
	if err != nil {
		return 0, fmt.Errorf("unknown algorithm %q (want auto, view, base, parallel, forward, forward-dist, backward, or backward-naive)", name)
	}
	return algo, nil
}
