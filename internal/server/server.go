// Package server is lonad's serving subsystem: a long-lived, concurrent
// top-k query service over one (graph, relevance, h) triple. It wraps a
// core.Engine / core.View pair behind an HTTP/JSON API:
//
//	POST /v1/topk   — answer a top-k query; algorithm "auto" delegates to
//	                  the cost-based planner per request. Requests may set
//	                  timeout_ms (server-side deadline), budget (max h-hop
//	                  traversals), and candidates (restrict ranked nodes),
//	                  and are aborted when the client disconnects.
//	POST /v1/scores — apply a batch of relevance updates atomically
//	GET  /v1/stats  — cache hit rate and byte usage, per-algorithm latency
//	                  histograms, summed engine work counters,
//	                  timeout/cancellation counters
//	GET  /v1/health — liveness plus dataset shape
//
// # Serving architecture
//
// The server is a generation machine. Reads are lock-free after a brief
// RLock to snapshot (generation, engine): each generation's Engine is
// immutable (core guarantees concurrent queries are safe once indexes are
// built), so queries run without holding any lock. A score batch takes the
// write lock, repairs the materialized View incrementally (O(|S_h(v)|) per
// update), rebuilds the Engine from a snapshot of the new scores via
// Engine.WithScores — sharing the topology-only indexes, so rebuilds cost
// O(n) validation, not index construction — and bumps the generation.
//
// Every query runs under its request's context: the HTTP handler passes
// r.Context() (cancelled on client disconnect) down through Server.Run
// into core's cooperative cancellation, optionally tightened by the
// request's timeout_ms. An abandoned query stops within a few BFS
// expansions and frees its goroutine.
//
// Results are cached in a sharded, byte-accounted LRU keyed by
// (k, aggregate, algorithm, options, candidates, budget, generation):
// repeats at an unchanged generation are O(1), and any update invalidates
// implicitly because the new generation changes every key — no
// scan-and-evict. Concurrent identical cold queries collapse to one
// execution via singleflight; if the one executing caller is cancelled,
// a surviving waiter re-executes instead of inheriting the cancellation.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Options tunes a Server; the zero value is a sensible default.
type Options struct {
	// CacheBytes is the result cache's total capacity in approximate
	// bytes of cached answers (default 16 MiB; <0 disables caching).
	CacheBytes int64
	// CacheShards is the number of independently locked cache segments
	// (default 16).
	CacheShards int
	// Workers bounds index-build and parallel-scan goroutines
	// (<=0 = GOMAXPROCS).
	Workers int
	// SkipIndexes skips eager index construction; the first query to need
	// an index builds it lazily instead (core serializes racing builds).
	// Until the differential index exists the planner avoids Forward.
	// Intended for tests and tiny datasets.
	SkipIndexes bool
}

// defaultCacheBytes is the result cache capacity when Options.CacheBytes
// is zero.
const defaultCacheBytes = 16 << 20

// Server answers top-k queries and applies score updates; construct with
// New and expose via Handler. All exported methods are safe for concurrent
// use.
type Server struct {
	opts Options
	g    *graph.Graph // immutable; shared by every generation's engine

	// mu guards the generation state below, RWMutex-style: queries take a
	// brief RLock to snapshot (gen, engine, view); update batches take the
	// write lock for the duration of the view repair + engine rebuild.
	mu     sync.RWMutex
	gen    uint64
	engine *core.Engine // immutable per generation; safe lock-free after snapshot
	view   *core.View   // materialized aggregates; nil for directed graphs

	cache   *shardedCache // nil when caching is disabled
	flight  flightGroup
	metrics *metrics
}

// Answer is one computed (or cached) query response body — the /v1/topk
// wire format, and what Server.Run returns for in-process callers.
type Answer struct {
	Generation uint64          `json:"generation"`
	Algorithm  string          `json:"algorithm"` // algorithm actually executed
	Planned    bool            `json:"planned"`   // true when "auto" chose it
	Reason     string          `json:"reason,omitempty"`
	Cached     bool            `json:"cached"`
	Truncated  bool            `json:"truncated,omitempty"` // budget stopped the query early
	Results    []core.Result   `json:"results"`
	Stats      core.QueryStats `json:"stats"`
	ElapsedUS  int64           `json:"elapsed_us"` // execution time when computed
}

// New validates the inputs and builds a ready-to-serve Server. For
// undirected graphs a materialized View is kept alongside the Engine
// (enabling incremental update repair and the "view" algorithm); directed
// graphs serve engine-only and apply updates as plain score writes.
func New(g *graph.Graph, scores []float64, h int, opts Options) (*Server, error) {
	if opts.CacheBytes == 0 {
		opts.CacheBytes = defaultCacheBytes
	}
	if opts.CacheShards <= 0 {
		opts.CacheShards = 16
	}
	engine, err := core.NewEngine(g, scores, h)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, g: g, engine: engine, metrics: newMetrics()}
	if opts.CacheBytes > 0 {
		s.cache = newShardedCache(opts.CacheBytes, opts.CacheShards)
	}
	if !g.Directed() {
		if s.view, err = core.NewView(g, scores, h); err != nil {
			return nil, err
		}
	}
	if !opts.SkipIndexes {
		// Prepared eagerly so the first queries don't stall behind index
		// construction; WithScores rebuilds share these, so it is one
		// build per server lifetime, not per generation.
		engine.PrepareNeighborhoodIndex(opts.Workers)
		engine.PrepareDifferentialIndex(opts.Workers)
	}
	return s, nil
}

// Generation returns the current score generation (0 at startup, +1 per
// applied update batch).
func (s *Server) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// QueryRequest is the decoded /v1/topk body. Aggregate and Algorithm are
// the lowercase names cmd/lona uses; Algorithm additionally accepts "auto"
// (the planner decides) and "view" (serve from the materialized view).
type QueryRequest struct {
	K         int     `json:"k"`
	Aggregate string  `json:"aggregate"`
	Algorithm string  `json:"algorithm,omitempty"` // default "auto"
	Gamma     float64 `json:"gamma,omitempty"`
	Order     string  `json:"order,omitempty"` // natural | degree-desc | score-desc
	Workers   int     `json:"workers,omitempty"`
	// TimeoutMS is a server-side deadline for this request in
	// milliseconds; 0 means no extra deadline beyond the caller's context.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Budget caps the query's h-hop traversals (core.Query.Budget); a
	// truncated answer sets "truncated": true.
	Budget int `json:"budget,omitempty"`
	// Candidates restricts which nodes may be ranked
	// (core.Query.Candidates). Empty means every node.
	Candidates []int `json:"candidates,omitempty"`
}

// algoView is the extra serving-only "algorithm": answer from the
// materialized view's O(n) scan, no traversal at all.
const algoView = "view"

// normalize validates the request and fills defaults.
func (r *QueryRequest) normalize(s *Server) (agg core.Aggregate, order core.QueueOrder, err error) {
	if r.K <= 0 {
		return 0, 0, fmt.Errorf("k must be positive, got %d", r.K)
	}
	// Canonicalize the strings that participate in the cache key.
	r.Aggregate = strings.ToLower(r.Aggregate)
	r.Algorithm = strings.ToLower(r.Algorithm)
	agg, err = ParseAggregate(r.Aggregate)
	if err != nil {
		return 0, 0, err
	}
	if r.Algorithm == "" {
		r.Algorithm = "auto"
	}
	switch r.Algorithm {
	case "auto":
	case algoView:
		if s.view == nil {
			return 0, 0, errors.New(`algorithm "view" requires an undirected graph`)
		}
	default:
		if _, err := ParseAlgorithm(r.Algorithm); err != nil {
			return 0, 0, err
		}
	}
	switch r.Order {
	case "", "natural":
		order = core.OrderNatural
	case "degree-desc":
		order = core.OrderDegreeDesc
	case "score-desc":
		order = core.OrderScoreDesc
	default:
		return 0, 0, fmt.Errorf("unknown order %q (want natural, degree-desc, or score-desc)", r.Order)
	}
	if r.Gamma < 0 || r.Gamma > 1 {
		return 0, 0, fmt.Errorf("gamma %v outside [0,1]", r.Gamma)
	}
	if r.TimeoutMS < 0 {
		return 0, 0, fmt.Errorf("timeout_ms %d is negative", r.TimeoutMS)
	}
	if r.Budget < 0 {
		return 0, 0, fmt.Errorf("budget %d is negative", r.Budget)
	}
	if err := r.canonicalizeCandidates(s.g.NumNodes()); err != nil {
		return 0, 0, err
	}
	// Canonicalize option fields the chosen path ignores, so equivalent
	// requests share one cache key and one in-flight execution: gamma only
	// steers Backward, the queue order only steers Forward, and the
	// auto/view paths choose their own options. timeout_ms never affects
	// the answer and is excluded from the key entirely. Workers is zeroed
	// except for the explicit parallel scan — the only path that consumes
	// it (the planner never chooses it) — where a budget splits across
	// per-worker node ranges and so changes the answer; the clamp below
	// runs before the cache key is built so over-core worker counts
	// collapse onto one entry.
	switch r.Algorithm {
	case "auto", algoView:
		r.Gamma, r.Order = 0, ""
		r.Workers = 0
		if r.Algorithm == algoView {
			r.Budget = 0 // the view scan performs no traversals to budget
		}
	default:
		algo, _ := ParseAlgorithm(r.Algorithm)
		if algo != core.AlgoBackward {
			r.Gamma = 0
		}
		if algo != core.AlgoForward {
			r.Order = ""
		}
		if algo != core.AlgoBaseParallel {
			r.Workers = 0
		}
	}
	if r.Workers < 0 {
		r.Workers = 0
	}
	if max := runtime.GOMAXPROCS(0); r.Workers > max {
		r.Workers = max
	}
	return agg, order, nil
}

// canonicalizeCandidates validates the candidate ids and rewrites them
// sorted and deduplicated, so requests naming the same set in any order
// share one cache key and one in-flight execution.
func (r *QueryRequest) canonicalizeCandidates(n int) error {
	if len(r.Candidates) == 0 {
		r.Candidates = nil
		return nil
	}
	seen := make(map[int]struct{}, len(r.Candidates))
	out := make([]int, 0, len(r.Candidates))
	for _, v := range r.Candidates {
		if v < 0 || v >= n {
			return fmt.Errorf("candidate node %d out of range [0,%d)", v, n)
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Ints(out)
	r.Candidates = out
	return nil
}

// cacheKey identifies a query result within one generation. Everything
// that can change the response body participates (timeout_ms does not —
// it changes only whether the query finishes, never its answer).
func (r *QueryRequest) cacheKey(gen uint64) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(r.K))
	b.WriteByte('|')
	b.WriteString(r.Aggregate)
	b.WriteByte('|')
	b.WriteString(r.Algorithm)
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(r.Gamma, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(r.Order)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(r.Workers))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(r.Budget))
	b.WriteByte('|')
	for i, v := range r.Candidates {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Run answers a query under ctx, consulting the cache first and collapsing
// concurrent identical cold queries. The request's timeout_ms, when set,
// tightens ctx with a deadline. A context error (the caller went away or
// the deadline passed) is returned as-is and recorded in the
// timeout/cancellation counters.
func (s *Server) Run(ctx context.Context, req QueryRequest) (*Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	agg, order, err := req.normalize(s)
	if err != nil {
		return nil, err
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	s.mu.RLock()
	gen, engine, view := s.gen, s.engine, s.view
	s.mu.RUnlock()

	key := req.cacheKey(gen)
	if s.cache != nil {
		if ans, ok := s.cache.get(key); ok {
			s.metrics.hits.Add(1)
			s.metrics.hist("cache").observe(0)
			hit := *ans
			hit.Cached = true
			return &hit, nil
		}
	}

	run := func() (*Answer, error) {
		return s.execute(ctx, req, agg, order, gen, engine, view)
	}
	ans, err, shared := s.flight.do(ctx, key, run)
	// A shared context error means the caller that executed the flight was
	// cancelled — not necessarily us (our own expiry mid-wait yields
	// ctx.Err() != nil and falls through). Live callers retry through the
	// flight group, so all survivors of an abandoned flight collapse onto
	// one re-execution instead of stampeding the engine; after repeated
	// leader cancellations, fall back to executing directly.
	for retries := 0; shared && isContextErr(err) && ctx.Err() == nil && retries < 2; retries++ {
		ans, err, shared = s.flight.do(ctx, key, run)
	}
	if shared && isContextErr(err) && ctx.Err() == nil {
		ans, err = run()
		shared = false
	}
	if err != nil {
		s.metrics.noteQueryAborted(err)
		return nil, err
	}
	if shared {
		s.metrics.collapsed.Add(1)
	} else {
		s.metrics.misses.Add(1)
		if s.cache != nil {
			s.cache.put(key, ans)
		}
	}
	return ans, nil
}

// TopK answers a query with an uncancellable context.
//
// Deprecated: use Run — TopK cannot honor timeout_ms tighter than the
// query's runtime, client disconnects, or any caller-side deadline.
func (s *Server) TopK(req QueryRequest) (*Answer, error) {
	return s.Run(context.Background(), req)
}

// isContextErr reports whether err is (or wraps) a context cancellation
// or deadline error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// execute runs the query against one generation's immutable engine (or the
// live view, under RLock so it cannot race an update batch).
func (s *Server) execute(ctx context.Context, req QueryRequest, agg core.Aggregate, order core.QueueOrder,
	gen uint64, engine *core.Engine, view *core.View) (*Answer, error) {

	ans := &Answer{Generation: gen, Algorithm: req.Algorithm}
	start := time.Now()

	switch req.Algorithm {
	case algoView:
		// The view is mutated in place by update batches, so hold the read
		// lock for the scan (View's documented RWMutex discipline). The
		// generation is re-read because the scan observes the live view,
		// which may be newer than the snapshot taken for the cache key.
		s.mu.RLock()
		ans.Generation = s.gen
		res, err := view.Run(ctx, core.Query{K: req.K, Aggregate: agg, Candidates: req.Candidates})
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		ans.Results = res.Results

	case "auto":
		// AlgoAuto delegates to the planner; the engine memoizes the
		// decision per instance, and each generation is a fresh
		// WithScores engine, so the plan's O(n) statistics scan runs once
		// per (generation, aggregate), not per cold query.
		res, err := engine.Run(ctx, core.Query{
			Algorithm:  core.AlgoAuto,
			K:          req.K,
			Aggregate:  agg,
			Candidates: req.Candidates,
			Budget:     req.Budget,
		})
		if err != nil {
			return nil, err
		}
		ans.Results, ans.Stats, ans.Truncated = res.Results, res.Stats, res.Truncated
		ans.Algorithm = res.Plan.Algorithm.String()
		ans.Planned = true
		ans.Reason = res.Plan.Reason

	default:
		algo, _ := ParseAlgorithm(req.Algorithm) // validated in normalize
		// Wire-supplied parallelism was already clamped to GOMAXPROCS by
		// normalize, before the cache key was built.
		opts := core.Options{Gamma: req.Gamma, Order: order, Workers: req.Workers}
		if opts.Workers <= 0 {
			opts.Workers = s.opts.Workers
		}
		res, err := engine.Run(ctx, core.Query{
			Algorithm:  algo,
			K:          req.K,
			Aggregate:  agg,
			Options:    opts,
			Candidates: req.Candidates,
			Budget:     req.Budget,
		})
		if err != nil {
			return nil, err
		}
		ans.Results, ans.Stats, ans.Truncated = res.Results, res.Stats, res.Truncated
		// Report core's canonical name so explicitly requested and
		// planner-chosen runs share one latency histogram per algorithm.
		ans.Algorithm = algo.String()
	}

	elapsed := time.Since(start)
	ans.ElapsedUS = elapsed.Microseconds()
	if ans.Results == nil {
		ans.Results = []core.Result{}
	}
	s.metrics.recordQuery(ans.Algorithm, elapsed, ans.Stats)
	return ans, nil
}

// ScoreUpdate is one relevance mutation of an update batch.
type ScoreUpdate struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// UpdateResult reports what an applied batch did.
type UpdateResult struct {
	Generation uint64 `json:"generation"` // generation after the batch
	Applied    int    `json:"applied"`    // mutations applied
	Touched    int    `json:"touched"`    // aggregates repaired in the view (0 when engine-only)
	ElapsedUS  int64  `json:"elapsed_us"`
}

// ApplyUpdates applies a score batch atomically: the batch is validated up
// front, then applied under the write lock; the engine is rebuilt on a
// snapshot of the new scores and the generation is bumped, implicitly
// invalidating every cached result. Queries already in flight finish
// against the previous generation's engine.
func (s *Server) ApplyUpdates(updates []ScoreUpdate) (*UpdateResult, error) {
	if len(updates) == 0 {
		return nil, errors.New("empty update batch")
	}
	n := s.g.NumNodes() // the graph is immutable, so no lock for validation
	for i, u := range updates {
		if u.Node < 0 || u.Node >= n {
			return nil, fmt.Errorf("update %d: node %d out of range [0,%d)", i, u.Node, n)
		}
		if math.IsNaN(u.Score) || u.Score < 0 || u.Score > 1 {
			return nil, fmt.Errorf("update %d: score %v outside [0,1]", i, u.Score)
		}
	}

	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	res := &UpdateResult{Applied: len(updates)}
	var newScores []float64
	if s.view != nil {
		for _, u := range updates {
			touched, err := s.view.UpdateScore(u.Node, u.Score)
			if err != nil {
				// Unreachable after upfront validation; surface it anyway.
				return nil, err
			}
			res.Touched += touched
		}
		newScores = s.view.ScoresCopy()
	} else {
		newScores = append([]float64(nil), s.engine.Scores()...)
		for _, u := range updates {
			newScores[u.Node] = u.Score
		}
	}

	engine, err := s.engine.WithScores(newScores)
	if err != nil {
		return nil, err
	}
	s.engine = engine
	s.gen++
	res.Generation = s.gen
	res.ElapsedUS = time.Since(start).Microseconds()
	s.metrics.updates.Add(1)
	s.metrics.mutations.Add(int64(len(updates)))
	return res, nil
}

// Stats snapshots the serving metrics.
func (s *Server) Stats() Stats {
	st := s.metrics.snapshot()
	s.mu.RLock()
	st.Generation = s.gen
	g := s.engine.Graph()
	st.Nodes, st.Edges, st.H = g.NumNodes(), int64(g.NumEdges()), s.engine.H()
	s.mu.RUnlock()
	if s.cache != nil {
		st.Cache.Entries = s.cache.len()
		st.Cache.Bytes = s.cache.bytes()
		st.Cache.CapacityBytes = s.cache.capacityBytes()
	}
	return st
}

// ParseAggregate maps the wire name of an aggregate to core's enum; the
// names match cmd/lona's flags.
func ParseAggregate(name string) (core.Aggregate, error) {
	return core.ParseAggregate(name)
}

// ParseAlgorithm maps the wire name of an engine algorithm (including
// "auto") to core's enum. The serving-level "view" mode is handled before
// this point.
func ParseAlgorithm(name string) (core.Algorithm, error) {
	algo, err := core.ParseAlgorithm(name)
	if err != nil {
		return 0, fmt.Errorf("unknown algorithm %q (want auto, view, base, parallel, forward, forward-dist, backward, or backward-naive)", name)
	}
	return algo, nil
}
