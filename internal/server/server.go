// Package server is lonad's serving subsystem: a long-lived, concurrent
// top-k query service over one (graph, relevance, h) triple. It wraps a
// core.Engine / core.View pair behind an HTTP/JSON API:
//
//	POST /v1/topk   — answer a top-k query; algorithm "auto" delegates to
//	                  the cost-based planner per request
//	POST /v1/scores — apply a batch of relevance updates atomically
//	GET  /v1/stats  — cache hit rate, per-algorithm latency histograms,
//	                  summed engine work counters
//	GET  /v1/health — liveness plus dataset shape
//
// # Serving architecture
//
// The server is a generation machine. Reads are lock-free after a brief
// RLock to snapshot (generation, engine): each generation's Engine is
// immutable (core guarantees concurrent queries are safe once indexes are
// built), so queries run without holding any lock. A score batch takes the
// write lock, repairs the materialized View incrementally (O(|S_h(v)|) per
// update), rebuilds the Engine from a snapshot of the new scores via
// Engine.WithScores — sharing the topology-only indexes, so rebuilds cost
// O(n) validation, not index construction — and bumps the generation.
//
// Results are cached in a sharded LRU keyed by
// (k, aggregate, algorithm, options, generation): repeats at an unchanged
// generation are O(1), and any update invalidates implicitly because the
// new generation changes every key — no scan-and-evict. Concurrent
// identical cold queries collapse to one execution via singleflight.
package server

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Options tunes a Server; the zero value is a sensible default.
type Options struct {
	// CacheCapacity is the total result-cache capacity in entries
	// (default 4096; <0 disables caching).
	CacheCapacity int
	// CacheShards is the number of independently locked cache segments
	// (default 16).
	CacheShards int
	// Workers bounds index-build and parallel-scan goroutines
	// (<=0 = GOMAXPROCS).
	Workers int
	// SkipIndexes skips eager index construction; the first query to need
	// an index builds it lazily instead (core serializes racing builds).
	// Until the differential index exists the planner avoids Forward.
	// Intended for tests and tiny datasets.
	SkipIndexes bool
}

// Server answers top-k queries and applies score updates; construct with
// New and expose via Handler. All exported methods are safe for concurrent
// use.
type Server struct {
	opts Options
	g    *graph.Graph // immutable; shared by every generation's engine

	// mu guards the generation state below, RWMutex-style: queries take a
	// brief RLock to snapshot (gen, engine, view); update batches take the
	// write lock for the duration of the view repair + engine rebuild.
	mu     sync.RWMutex
	gen    uint64
	engine *core.Engine // immutable per generation; safe lock-free after snapshot
	view   *core.View   // materialized aggregates; nil for directed graphs

	cache   *shardedCache // nil when caching is disabled
	flight  flightGroup
	metrics *metrics

	// planMu guards the per-generation plan cache. The planner's decision
	// depends only on (scores, index presence, aggregate) — all fixed
	// within a generation — so its O(n) statistics scan runs once per
	// (generation, aggregate) instead of per cold query.
	planMu  sync.Mutex
	planGen uint64
	plans   map[core.Aggregate]core.Plan
}

// Answer is one computed (or cached) query response body — the /v1/topk
// wire format, and what Server.TopK returns for in-process callers.
type Answer struct {
	Generation uint64          `json:"generation"`
	Algorithm  string          `json:"algorithm"` // algorithm actually executed
	Planned    bool            `json:"planned"`   // true when "auto" chose it
	Reason     string          `json:"reason,omitempty"`
	Cached     bool            `json:"cached"`
	Results    []core.Result   `json:"results"`
	Stats      core.QueryStats `json:"stats"`
	ElapsedUS  int64           `json:"elapsed_us"` // execution time when computed
}

// New validates the inputs and builds a ready-to-serve Server. For
// undirected graphs a materialized View is kept alongside the Engine
// (enabling incremental update repair and the "view" algorithm); directed
// graphs serve engine-only and apply updates as plain score writes.
func New(g *graph.Graph, scores []float64, h int, opts Options) (*Server, error) {
	if opts.CacheCapacity == 0 {
		opts.CacheCapacity = 4096
	}
	if opts.CacheShards <= 0 {
		opts.CacheShards = 16
	}
	engine, err := core.NewEngine(g, scores, h)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, g: g, engine: engine, metrics: newMetrics()}
	if opts.CacheCapacity > 0 {
		s.cache = newShardedCache(opts.CacheCapacity, opts.CacheShards)
	}
	if !g.Directed() {
		if s.view, err = core.NewView(g, scores, h); err != nil {
			return nil, err
		}
	}
	if !opts.SkipIndexes {
		// Prepared eagerly so the first queries don't stall behind index
		// construction; WithScores rebuilds share these, so it is one
		// build per server lifetime, not per generation.
		engine.PrepareNeighborhoodIndex(opts.Workers)
		engine.PrepareDifferentialIndex(opts.Workers)
	}
	return s, nil
}

// Generation returns the current score generation (0 at startup, +1 per
// applied update batch).
func (s *Server) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// QueryRequest is the decoded /v1/topk body. Aggregate and Algorithm are
// the lowercase names cmd/lona uses; Algorithm additionally accepts "auto"
// (the planner decides) and "view" (serve from the materialized view).
type QueryRequest struct {
	K         int     `json:"k"`
	Aggregate string  `json:"aggregate"`
	Algorithm string  `json:"algorithm,omitempty"` // default "auto"
	Gamma     float64 `json:"gamma,omitempty"`
	Order     string  `json:"order,omitempty"` // natural | degree-desc | score-desc
	Workers   int     `json:"workers,omitempty"`
}

// algoView is the extra serving-only "algorithm": answer from the
// materialized view's O(n) scan, no traversal at all.
const algoView = "view"

// normalize validates the request and fills defaults.
func (r *QueryRequest) normalize(s *Server) (agg core.Aggregate, order core.QueueOrder, err error) {
	if r.K <= 0 {
		return 0, 0, fmt.Errorf("k must be positive, got %d", r.K)
	}
	// Canonicalize the strings that participate in the cache key.
	r.Aggregate = strings.ToLower(r.Aggregate)
	r.Algorithm = strings.ToLower(r.Algorithm)
	agg, err = ParseAggregate(r.Aggregate)
	if err != nil {
		return 0, 0, err
	}
	if r.Algorithm == "" {
		r.Algorithm = "auto"
	}
	switch r.Algorithm {
	case "auto":
	case algoView:
		if s.view == nil {
			return 0, 0, errors.New(`algorithm "view" requires an undirected graph`)
		}
	default:
		if _, err := ParseAlgorithm(r.Algorithm); err != nil {
			return 0, 0, err
		}
	}
	switch r.Order {
	case "", "natural":
		order = core.OrderNatural
	case "degree-desc":
		order = core.OrderDegreeDesc
	case "score-desc":
		order = core.OrderScoreDesc
	default:
		return 0, 0, fmt.Errorf("unknown order %q (want natural, degree-desc, or score-desc)", r.Order)
	}
	if r.Gamma < 0 || r.Gamma > 1 {
		return 0, 0, fmt.Errorf("gamma %v outside [0,1]", r.Gamma)
	}
	// Canonicalize option fields the chosen path ignores, so equivalent
	// requests share one cache key and one in-flight execution: gamma only
	// steers Backward, the queue order only steers Forward, and the
	// auto/view paths choose their own options.
	switch r.Algorithm {
	case "auto", algoView:
		r.Gamma, r.Order = 0, ""
	default:
		algo, _ := ParseAlgorithm(r.Algorithm)
		if algo != core.AlgoBackward {
			r.Gamma = 0
		}
		if algo != core.AlgoForward {
			r.Order = ""
		}
	}
	return agg, order, nil
}

// cacheKey identifies a query result within one generation. Everything
// that can change the response body participates.
func (r *QueryRequest) cacheKey(gen uint64) string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(r.K))
	b.WriteByte('|')
	b.WriteString(r.Aggregate)
	b.WriteByte('|')
	b.WriteString(r.Algorithm)
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(r.Gamma, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(r.Order)
	return b.String()
}

// TopK answers a query, consulting the cache first and collapsing
// concurrent identical cold queries.
func (s *Server) TopK(req QueryRequest) (*Answer, error) {
	agg, order, err := req.normalize(s)
	if err != nil {
		return nil, err
	}

	s.mu.RLock()
	gen, engine, view := s.gen, s.engine, s.view
	s.mu.RUnlock()

	key := req.cacheKey(gen)
	if s.cache != nil {
		if ans, ok := s.cache.get(key); ok {
			s.metrics.hits.Add(1)
			s.metrics.hist("cache").observe(0)
			hit := *ans
			hit.Cached = true
			return &hit, nil
		}
	}

	ans, err, shared := s.flight.do(key, func() (*Answer, error) {
		return s.execute(req, agg, order, gen, engine, view)
	})
	if err != nil {
		return nil, err
	}
	if shared {
		s.metrics.collapsed.Add(1)
	} else {
		s.metrics.misses.Add(1)
		if s.cache != nil {
			s.cache.put(key, ans)
		}
	}
	return ans, nil
}

// execute runs the query against one generation's immutable engine (or the
// live view, under RLock so it cannot race an update batch).
func (s *Server) execute(req QueryRequest, agg core.Aggregate, order core.QueueOrder,
	gen uint64, engine *core.Engine, view *core.View) (*Answer, error) {

	ans := &Answer{Generation: gen, Algorithm: req.Algorithm}
	start := time.Now()

	switch req.Algorithm {
	case algoView:
		// The view is mutated in place by update batches, so hold the read
		// lock for the scan (View's documented RWMutex discipline). The
		// generation is re-read because the scan observes the live view,
		// which may be newer than the snapshot taken for the cache key.
		s.mu.RLock()
		ans.Generation = s.gen
		results, err := view.TopK(req.K, agg)
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		ans.Results = results

	case "auto":
		plan := s.planFor(gen, engine, req.K, agg)
		results, stats, err := engine.TopK(plan.Algorithm, req.K, agg, &plan.Options)
		if err != nil {
			return nil, err
		}
		ans.Results, ans.Stats = results, stats
		ans.Algorithm = plan.Algorithm.String()
		ans.Planned = true
		ans.Reason = plan.Reason

	default:
		algo, _ := ParseAlgorithm(req.Algorithm) // validated in normalize
		opts := core.Options{Gamma: req.Gamma, Order: order, Workers: req.Workers}
		if opts.Workers <= 0 {
			opts.Workers = s.opts.Workers
		}
		// Clamp wire-supplied parallelism: beyond the core count it only
		// buys goroutine and per-worker-state overhead, and an uncapped
		// value would let one request allocate O(n) traversers.
		if max := runtime.GOMAXPROCS(0); opts.Workers > max {
			opts.Workers = max
		}
		results, stats, err := engine.TopK(algo, req.K, agg, &opts)
		if err != nil {
			return nil, err
		}
		ans.Results, ans.Stats = results, stats
		// Report core's canonical name so explicitly requested and
		// planner-chosen runs share one latency histogram per algorithm.
		ans.Algorithm = algo.String()
	}

	elapsed := time.Since(start)
	ans.ElapsedUS = elapsed.Microseconds()
	if ans.Results == nil {
		ans.Results = []core.Result{}
	}
	s.metrics.recordQuery(ans.Algorithm, elapsed, ans.Stats)
	return ans, nil
}

// planFor returns the planner's decision for (gen, agg), consulting the
// plan cache first. k does not participate: Planner.Choose's heuristics
// ignore it. Queries racing a generation bump simply recompute; only the
// newest generation's plans are kept.
func (s *Server) planFor(gen uint64, engine *core.Engine, k int, agg core.Aggregate) core.Plan {
	s.planMu.Lock()
	if s.planGen == gen {
		if plan, ok := s.plans[agg]; ok {
			s.planMu.Unlock()
			return plan
		}
	}
	s.planMu.Unlock()

	plan := core.NewPlanner(engine).Choose(k, agg)

	s.planMu.Lock()
	if s.planGen < gen || s.plans == nil {
		s.planGen = gen
		s.plans = make(map[core.Aggregate]core.Plan)
	}
	if s.planGen == gen {
		s.plans[agg] = plan
	}
	s.planMu.Unlock()
	return plan
}

// ScoreUpdate is one relevance mutation of an update batch.
type ScoreUpdate struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// UpdateResult reports what an applied batch did.
type UpdateResult struct {
	Generation uint64 `json:"generation"` // generation after the batch
	Applied    int    `json:"applied"`    // mutations applied
	Touched    int    `json:"touched"`    // aggregates repaired in the view (0 when engine-only)
	ElapsedUS  int64  `json:"elapsed_us"`
}

// ApplyUpdates applies a score batch atomically: the batch is validated up
// front, then applied under the write lock; the engine is rebuilt on a
// snapshot of the new scores and the generation is bumped, implicitly
// invalidating every cached result. Queries already in flight finish
// against the previous generation's engine.
func (s *Server) ApplyUpdates(updates []ScoreUpdate) (*UpdateResult, error) {
	if len(updates) == 0 {
		return nil, errors.New("empty update batch")
	}
	n := s.g.NumNodes() // the graph is immutable, so no lock for validation
	for i, u := range updates {
		if u.Node < 0 || u.Node >= n {
			return nil, fmt.Errorf("update %d: node %d out of range [0,%d)", i, u.Node, n)
		}
		if math.IsNaN(u.Score) || u.Score < 0 || u.Score > 1 {
			return nil, fmt.Errorf("update %d: score %v outside [0,1]", i, u.Score)
		}
	}

	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()

	res := &UpdateResult{Applied: len(updates)}
	var newScores []float64
	if s.view != nil {
		for _, u := range updates {
			touched, err := s.view.UpdateScore(u.Node, u.Score)
			if err != nil {
				// Unreachable after upfront validation; surface it anyway.
				return nil, err
			}
			res.Touched += touched
		}
		newScores = s.view.ScoresCopy()
	} else {
		newScores = append([]float64(nil), s.engine.Scores()...)
		for _, u := range updates {
			newScores[u.Node] = u.Score
		}
	}

	engine, err := s.engine.WithScores(newScores)
	if err != nil {
		return nil, err
	}
	s.engine = engine
	s.gen++
	res.Generation = s.gen
	res.ElapsedUS = time.Since(start).Microseconds()
	s.metrics.updates.Add(1)
	s.metrics.mutations.Add(int64(len(updates)))
	return res, nil
}

// Stats snapshots the serving metrics.
func (s *Server) Stats() Stats {
	st := s.metrics.snapshot()
	s.mu.RLock()
	st.Generation = s.gen
	g := s.engine.Graph()
	st.Nodes, st.Edges, st.H = g.NumNodes(), int64(g.NumEdges()), s.engine.H()
	s.mu.RUnlock()
	if s.cache != nil {
		st.Cache.Entries = s.cache.len()
	}
	return st
}

// ParseAggregate maps the wire name of an aggregate to core's enum; the
// names match cmd/lona's flags.
func ParseAggregate(name string) (core.Aggregate, error) {
	return core.ParseAggregate(name)
}

// ParseAlgorithm maps the wire name of an engine algorithm to core's enum.
// "auto" and "view" are serving-level modes handled before this point.
func ParseAlgorithm(name string) (core.Algorithm, error) {
	algo, err := core.ParseAlgorithm(name)
	if err != nil {
		return 0, fmt.Errorf("unknown algorithm %q (want auto, view, base, parallel, forward, forward-dist, backward, or backward-naive)", name)
	}
	return algo, nil
}
