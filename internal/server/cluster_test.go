package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// postJSON POSTs a JSON body and returns the response body, failing the
// test on a non-200 status.
func postJSON(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s answered %d: %s", url, resp.StatusCode, blob)
	}
	return string(blob)
}

// postJSONStatus POSTs a JSON body and returns just the status code.
func postJSONStatus(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// shardedPair builds an unsharded and a P-sharded server over the same
// dataset, both without eager indexes (tiny test graphs).
func shardedPair(t *testing.T, n, m int, seed int64, parts int) (*Server, *Server) {
	t.Helper()
	g := testGraph(n, m, seed)
	scores := testScores(n, seed)
	plain := mustServer(t, g, scores, 2, Options{SkipIndexes: true})
	sharded := mustServer(t, g, scores, 2, Options{SkipIndexes: true, Shards: parts})
	return plain, sharded
}

// TestShardedMatchesUnsharded: every algorithm the wire accepts returns
// the identical answer through the coordinator fan-out.
func TestShardedMatchesUnsharded(t *testing.T) {
	plain, sharded := shardedPair(t, 400, 1200, 7, 4)
	if got := sharded.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	for _, algo := range []string{"auto", "base", "parallel", "forward-dist", "backward", "backward-naive"} {
		for _, agg := range []string{"sum", "avg", "count"} {
			req := QueryRequest{K: 10, Aggregate: agg, Algorithm: algo}
			want, err := plain.Run(ctx, req)
			if err != nil {
				t.Fatalf("%s/%s plain: %v", algo, agg, err)
			}
			got, err := sharded.Run(ctx, req)
			if err != nil {
				t.Fatalf("%s/%s sharded: %v", algo, agg, err)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("%s/%s: sharded results diverge", algo, agg)
			}
			if got.Shards != 4 && !got.Cached {
				t.Fatalf("%s/%s: answer did not report its shard count: %+v", algo, agg, got)
			}
		}
	}
	// The view path stays whole-graph and unsharded.
	vans, err := sharded.Run(ctx, QueryRequest{K: 10, Aggregate: "sum", Algorithm: "view"})
	if err != nil {
		t.Fatal(err)
	}
	if vans.Shards != 0 {
		t.Fatalf("view answer claims sharded execution: %+v", vans)
	}
}

// TestShardedScoreUpdates: update batches reach the shard engines, and
// post-update answers match an unsharded server fed the same batch.
func TestShardedScoreUpdates(t *testing.T) {
	plain, sharded := shardedPair(t, 300, 900, 11, 4)
	updates := []ScoreUpdate{{Node: 5, Score: 1}, {Node: 200, Score: 0}, {Node: 77, Score: 0.25}}
	if _, err := plain.ApplyUpdates(updates); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.ApplyUpdates(updates); err != nil {
		t.Fatal(err)
	}
	req := QueryRequest{K: 10, Aggregate: "sum", Algorithm: "base"}
	want, err := plain.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cached || got.Generation != 1 {
		t.Fatalf("post-update answer not fresh: %+v", got)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatal("sharded post-update results diverge")
	}
}

// TestReshardInvalidatesCache is the cache-keying satellite: a cached
// answer from one topology must never serve after a reshard, even though
// the merged results are identical — and switching back must not revive
// entries from the earlier same-count topology either.
func TestReshardInvalidatesCache(t *testing.T) {
	g := testGraph(300, 900, 13)
	s := mustServer(t, g, testScores(300, 13), 2, Options{SkipIndexes: true, Shards: 2})
	req := QueryRequest{K: 8, Aggregate: "sum", Algorithm: "base"}

	first, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("repeat at unchanged topology missed the cache")
	}

	if err := s.Reshard(4); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 || s.TopologyGeneration() != 1 {
		t.Fatalf("reshard landed wrong: shards=%d topo=%d", s.Shards(), s.TopologyGeneration())
	}
	fresh, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("re-sharded server served a stale merged answer from the cache")
	}
	if fresh.Shards != 4 {
		t.Fatalf("post-reshard answer reports %d shards, want 4", fresh.Shards)
	}
	if !reflect.DeepEqual(fresh.Results, first.Results) {
		t.Fatal("reshard changed the answer")
	}

	// Tear down to unsharded, then again: every transition is a fresh
	// topology generation and a fresh execution.
	if err := s.Reshard(1); err != nil {
		t.Fatal(err)
	}
	down, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if down.Cached || down.Shards != 0 {
		t.Fatalf("unsharded answer after teardown wrong: %+v", down)
	}
	// A no-op reshard keeps the cache warm.
	if err := s.Reshard(1); err != nil {
		t.Fatal(err)
	}
	same, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !same.Cached {
		t.Fatal("no-op reshard dropped the cache")
	}
}

// TestReshardEndpoint drives /v1/reshard over HTTP and checks the stats
// section follows the topology.
func TestReshardEndpoint(t *testing.T) {
	g := testGraph(200, 600, 17)
	s := mustServer(t, g, testScores(200, 17), 2, Options{SkipIndexes: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := postJSON(t, srv.URL+"/v1/reshard", `{"shards":3}`)
	if !strings.Contains(body, `"shards":3`) || !strings.Contains(body, `"topology_generation":1`) {
		t.Fatalf("reshard response: %s", body)
	}
	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.Cluster == nil || stats.Cluster.Shards != 3 || len(stats.Cluster.PerShard) != 3 {
		t.Fatalf("cluster stats missing after reshard: %+v", stats.Cluster)
	}
	if stats.Cluster.ShardQueries == 0 || stats.Cluster.Messages == 0 {
		t.Fatalf("cluster counters flat after a query: %+v", stats.Cluster)
	}
	var perShardQueries int64
	for _, sh := range stats.Cluster.PerShard {
		perShardQueries += sh.Latency.Count
	}
	if perShardQueries != stats.Cluster.ShardQueries {
		t.Fatalf("per-shard latency counts %d != shard queries %d", perShardQueries, stats.Cluster.ShardQueries)
	}

	// Invalid reshards are rejected.
	if code := postJSONStatus(t, srv.URL+"/v1/reshard", `{"shards":0}`); code != 400 {
		t.Fatalf("shards=0 answered %d, want 400", code)
	}
}

// TestServerOverShardWorkers runs a full coordinator server over HTTP
// shard workers and cross-checks results, updates, and reshard refusal.
func TestServerOverShardWorkers(t *testing.T) {
	g := testGraph(300, 900, 19)
	scores := testScores(300, 19)
	const parts = 3

	shards, _, err := cluster.BuildShards(g, scores, 2, parts)
	if err != nil {
		t.Fatal(err)
	}
	workerURLs := make([]string, parts)
	for i, sh := range shards {
		w := httptest.NewServer(cluster.NewWorker(sh).Handler())
		defer w.Close()
		workerURLs[i] = w.URL
	}

	plain := mustServer(t, g, scores, 2, Options{SkipIndexes: true})
	coord := mustServer(t, g, scores, 2, Options{SkipIndexes: true, ShardWorkers: workerURLs})

	req := QueryRequest{K: 10, Aggregate: "sum", Algorithm: "base"}
	want, err := plain.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatal("worker-backed results diverge")
	}
	if got.Shards != parts {
		t.Fatalf("answer reports %d shards, want %d", got.Shards, parts)
	}

	// Updates fan out to the workers before the local generation bumps.
	updates := []ScoreUpdate{{Node: 3, Score: 0.9}, {Node: 250, Score: 0}}
	if _, err := plain.ApplyUpdates(updates); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.ApplyUpdates(updates); err != nil {
		t.Fatal(err)
	}
	want, err = plain.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err = coord.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatal("worker-backed post-update results diverge")
	}

	if err := coord.Reshard(5); err == nil {
		t.Fatal("worker-backed server accepted a reshard")
	}
	st := coord.Stats()
	if st.Cluster == nil || !st.Cluster.Remote {
		t.Fatalf("worker-backed stats not marked remote: %+v", st.Cluster)
	}

	// A worker list from a different dataset is refused at startup.
	other := testGraph(100, 300, 23)
	if _, err := New(other, testScores(100, 23), 2, Options{SkipIndexes: true, ShardWorkers: workerURLs}); err == nil {
		t.Fatal("mismatched worker dataset accepted")
	}
	// So is a hop-radius mismatch: same nodes, different h.
	if _, err := New(g, scores, 3, Options{SkipIndexes: true, ShardWorkers: workerURLs}); err == nil {
		t.Fatal("mismatched hop radius accepted")
	}
	// Shards and ShardWorkers are mutually exclusive.
	if _, err := New(g, scores, 2, Options{SkipIndexes: true, Shards: 2, ShardWorkers: workerURLs}); err == nil {
		t.Fatal("Shards+ShardWorkers accepted")
	}
}
