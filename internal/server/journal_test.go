package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/journal"
	snapfmt "repro/internal/snapshot"
)

// ringGraph builds a deterministic cycle with a few chords — the
// low-degree, high-diameter shape the random generators never produce.
func ringGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	for v := 0; v < n; v += 7 {
		b.AddEdge(v, (v+n/3)%n)
	}
	return b.Build()
}

// mustJournal opens a journal handle in dir, failing the test on error.
func mustJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// driveMutations applies the canonical 5-commit sequence (scores, edits,
// scores-on-the-new-node, edits, scores) used by the replay-equivalence
// and temporal tests.
func driveMutations(t *testing.T, s *Server, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	batch := func(nodes ...int) []ScoreUpdate {
		ups := make([]ScoreUpdate, len(nodes))
		for i, v := range nodes {
			ups[i] = ScoreUpdate{Node: v, Score: rng.Float64()}
		}
		return ups
	}
	n := s.Graph().NumNodes()
	if _, err := s.ApplyUpdates(batch(1, 5, n-1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyEdits(editBatch(s.Graph())); err != nil {
		t.Fatal(err)
	}
	// The node the edit batch just appended gets a score of its own.
	if _, err := s.ApplyUpdates(batch(n, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyEdits(editBatch(s.Graph())); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyUpdates(batch(0, n/2)); err != nil {
		t.Fatal(err)
	}
}

// TestJournalReplayEquivalence is the versioned-lake property: for every
// graph shape, snapshot@0 (the pristine boot inputs) + journal replay of
// the full commit history reconstructs the live server bit-identically —
// same generation, and byte-identical answers for every aggregate,
// because replay drives the exact incremental apply paths the live
// batches took.
func TestJournalReplayEquivalence(t *testing.T) {
	shapes := []struct {
		name string
		g    *graph.Graph
	}{
		{"sparse", testGraph(200, 300, 3)},
		{"dense", testGraph(120, 2000, 5)},
		{"scale-free", gen.BarabasiAlbert(250, 3, 9)},
		{"ring", ringGraph(180)},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			g := shape.g
			scores := testScores(g.NumNodes(), 11)
			dir := t.TempDir()

			live := mustServer(t, g, append([]float64(nil), scores...), 2,
				Options{SkipIndexes: true, Journal: mustJournal(t, dir)})
			driveMutations(t, live, 17)

			replayed := mustServer(t, g, append([]float64(nil), scores...), 2,
				Options{SkipIndexes: true, Journal: mustJournal(t, dir)})
			if got, want := replayed.Generation(), live.Generation(); got != want {
				t.Fatalf("replayed generation %d, live %d", got, want)
			}
			if js := replayed.Stats().Journal; js == nil || js.Replayed != 5 {
				t.Fatalf("replayed-commit counter wrong: %+v", js)
			} else if js.Retained != 6 || js.OldestRetained != 0 {
				// The boot generation plus every replayed one is
				// addressable: replay rebuilds the ring, not just the tip.
				t.Fatalf("retention ring after replay: %+v", js)
			}
			for _, agg := range []string{"sum", "avg", "count"} {
				for _, algo := range []string{"base", "backward", "view"} {
					req := QueryRequest{K: 12, Aggregate: agg, Algorithm: algo}
					want, err := live.Run(ctx, req)
					if err != nil {
						t.Fatalf("%s/%s live: %v", agg, algo, err)
					}
					got, err := replayed.Run(ctx, req)
					if err != nil {
						t.Fatalf("%s/%s replayed: %v", agg, algo, err)
					}
					identicalResults(t, agg+"/"+algo, got.Results, want.Results)
				}
			}
		})
	}
}

// TestJournalReplayEquivalenceSharded: a server BOOTED from a journal
// shards the replayed (current) generation, not the stale boot inputs —
// its fan-out answers match the unsharded live server.
func TestJournalReplayEquivalenceSharded(t *testing.T) {
	g := testGraph(300, 900, 7)
	scores := testScores(300, 7)
	dir := t.TempDir()

	live := mustServer(t, g, append([]float64(nil), scores...), 2,
		Options{SkipIndexes: true, Journal: mustJournal(t, dir)})
	driveMutations(t, live, 23)

	sharded := mustServer(t, g, append([]float64(nil), scores...), 2,
		Options{SkipIndexes: true, Shards: 3, Journal: mustJournal(t, dir)})
	if got, want := sharded.Generation(), live.Generation(); got != want {
		t.Fatalf("sharded replay landed at generation %d, live is %d", got, want)
	}
	for _, agg := range []string{"sum", "avg", "count"} {
		req := QueryRequest{K: 10, Aggregate: agg, Algorithm: "base"}
		want, err := live.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		identicalResults(t, agg, got.Results, want.Results)
		if got.Shards != 3 {
			t.Fatalf("%s: answer reports %d shards, want 3", agg, got.Shards)
		}
	}
}

// TestAsOfByteIdentity is acceptance criterion (b): an as_of query is
// byte-identical to the answer the live query returned at that
// generation — both on the cache fast path (the resident live answer)
// and on a fresh execution against the retained engine.
func TestAsOfByteIdentity(t *testing.T) {
	g := testGraph(200, 600, 13)
	s := mustServer(t, g, testScores(200, 13), 2, Options{SkipIndexes: true})
	req := QueryRequest{K: 10, Aggregate: "sum", Algorithm: "base"}

	recorded := make(map[uint64][]byte)
	record := func() {
		ans, err := s.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(ans.Results)
		if err != nil {
			t.Fatal(err)
		}
		recorded[ans.Generation] = blob
	}
	driveSteps := [][]ScoreUpdate{
		{{Node: 3, Score: 0.8}},
		{{Node: 50, Score: 0.1}, {Node: 3, Score: 0}},
		{{Node: 120, Score: 0.95}},
		{{Node: 7, Score: 0.6}},
	}
	record() // generation 0 (live baseline; not addressable via as_of)
	for _, ups := range driveSteps {
		if _, err := s.ApplyUpdates(ups); err != nil {
			t.Fatal(err)
		}
		record()
	}

	for gen := uint64(1); gen <= 4; gen++ {
		// Fast path: the cached live answer at that generation.
		tr := req
		tr.AsOf = gen
		ans, err := s.Run(ctx, tr)
		if err != nil {
			t.Fatalf("as_of %d: %v", gen, err)
		}
		if ans.Generation != gen {
			t.Fatalf("as_of %d answered generation %d", gen, ans.Generation)
		}
		if gen != 4 && !ans.Cached {
			t.Fatalf("as_of %d missed the resident live answer", gen)
		}
		blob, _ := json.Marshal(ans.Results)
		if !bytes.Equal(blob, recorded[gen]) {
			t.Fatalf("as_of %d diverged from the recorded live answer:\n%s\nvs\n%s", gen, blob, recorded[gen])
		}
		// Fresh execution on the retained engine: "backward" was never
		// cached at this generation, so this cannot ride the resident
		// answer — and the exact algorithms agree to the byte.
		tr.Algorithm = "backward"
		fresh, err := s.Run(ctx, tr)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Cached {
			t.Fatal("backward as_of query served from cache")
		}
		blob, _ = json.Marshal(fresh.Results)
		if !bytes.Equal(blob, recorded[gen]) {
			t.Fatalf("fresh as_of %d execution diverged from the recorded live answer", gen)
		}
	}

	js := s.Stats().Journal
	if js == nil || js.AsOfQueries == 0 || js.AsOfHits == 0 {
		t.Fatalf("as_of counters flat: %+v", js)
	}
	if js.Retained != 5 {
		t.Fatalf("retained %d generations, want 5", js.Retained)
	}
}

// TestAsOfOutsideRetention: generations evicted from the ring are
// rejected with an error naming the oldest still-retained one.
func TestAsOfOutsideRetention(t *testing.T) {
	g := testGraph(100, 300, 17)
	s := mustServer(t, g, testScores(100, 17), 2,
		Options{SkipIndexes: true, RetainGenerations: 3})
	for i := 0; i < 5; i++ {
		if _, err := s.ApplyUpdates([]ScoreUpdate{{Node: i, Score: 0.5}}); err != nil {
			t.Fatal(err)
		}
	}
	// Ring holds generations 3,4,5.
	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", AsOf: 1}); err == nil ||
		!strings.Contains(err.Error(), "oldest retained is 3") {
		t.Fatalf("evicted as_of: err = %v", err)
	}
	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", AsOf: 3}); err != nil {
		t.Fatalf("oldest retained generation rejected: %v", err)
	}
	// as_of naming the live generation is just a live query.
	ans, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", AsOf: 5})
	if err != nil || ans.Generation != 5 {
		t.Fatalf("as_of = live: ans %+v err %v", ans, err)
	}
}

// windowOracle recomputes a window query by brute force: every node's
// exact value at every generation in the window (via traced as_of point
// queries), combined in the test, ranked value-desc then node-asc.
func windowOracle(t *testing.T, s *Server, anchor uint64, window, k int, agg, windowAgg string, decay float64) []core.Result {
	t.Helper()
	n := s.Graph().NumNodes()
	combined := make(map[int]float64)
	for i := 0; i < window; i++ {
		gen := anchor - uint64(window-1-i)
		ans, err := s.Run(ctx, QueryRequest{K: n, Aggregate: agg, Algorithm: "base", AsOf: gen, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		// Match the server's repeated-multiply pow exactly (math.Pow
		// can differ in the last bit).
		weight := 1.0
		if windowAgg == "decay" {
			for a := 0; a < window-1-i; a++ {
				weight *= decay
			}
		}
		for _, r := range ans.Results {
			if windowAgg == "max" {
				if r.Value > combined[r.Node] {
					combined[r.Node] = r.Value
				}
			} else {
				combined[r.Node] += weight * r.Value
			}
		}
	}
	ranked := make([]core.Result, 0, len(combined))
	for v, val := range combined {
		ranked = append(ranked, core.Result{Node: v, Value: val})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].Value != ranked[b].Value {
			return ranked[a].Value > ranked[b].Value
		}
		return ranked[a].Node < ranked[b].Node
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

// TestWindowQueries: the temporal surface returns the exact top-k of the
// max / decay-combined per-generation series, for both window combiners
// and at both the live anchor and a retained as_of anchor.
func TestWindowQueries(t *testing.T) {
	g := testGraph(150, 450, 19)
	s := mustServer(t, g, testScores(150, 19), 2, Options{SkipIndexes: true})
	driveMutations(t, s, 29)

	anchors := []uint64{s.Generation(), s.Generation() - 1}
	for _, anchor := range anchors {
		for _, tc := range []struct {
			windowAgg string
			decay     float64
		}{{"max", 0}, {"decay", 0.5}, {"decay", 0.9}} {
			const window, k = 3, 8
			req := QueryRequest{K: k, Aggregate: "sum", Algorithm: "base",
				AsOf: anchor, Window: window, WindowAgg: tc.windowAgg, Decay: tc.decay}
			got, err := s.Run(ctx, req)
			if err != nil {
				t.Fatalf("anchor %d %s: %v", anchor, tc.windowAgg, err)
			}
			decay := tc.decay
			if tc.windowAgg == "decay" && decay == 0 {
				decay = 0.5
			}
			want := windowOracle(t, s, anchor, window, k, "sum", tc.windowAgg, decay)
			label := tc.windowAgg
			identicalResults(t, label, got.Results, want)

			// The window answer is cacheable: an identical repeat hits.
			again, err := s.Run(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if !again.Cached {
				t.Fatalf("anchor %d %s: repeat window query missed the cache", anchor, tc.windowAgg)
			}
		}
	}
}

// TestTemporalValidation: the malformed corners of the as_of/window
// request surface are rejected up front.
func TestTemporalValidation(t *testing.T) {
	g := testGraph(80, 240, 23)
	s := mustServer(t, g, testScores(80, 23), 2, Options{SkipIndexes: true})
	if _, err := s.ApplyUpdates([]ScoreUpdate{{Node: 1, Score: 0.5}}); err != nil {
		t.Fatal(err)
	}
	bad := []QueryRequest{
		{K: 5, Aggregate: "sum", Window: 2},                                      // no window_agg
		{K: 5, Aggregate: "sum", Window: 2, WindowAgg: "median"},                 // unknown combiner
		{K: 5, Aggregate: "sum", Window: 2, WindowAgg: "max", Decay: 0.5},        // decay with max
		{K: 5, Aggregate: "sum", Window: 2, WindowAgg: "decay", Decay: 1.5},      // decay out of range
		{K: 5, Aggregate: "sum", WindowAgg: "max"},                               // window_agg without window
		{K: 5, Aggregate: "sum", Decay: 0.5},                                     // decay without window
		{K: 5, Aggregate: "sum", Window: 2, WindowAgg: "max", Budget: 100},       // budget with window
		{K: 5, Aggregate: "sum", Window: -1},                                     // negative window
		{K: 5, Aggregate: "sum", Algorithm: "view", AsOf: 1},                     // view is live-only
		{K: 5, Aggregate: "sum", Algorithm: "view", Window: 2, WindowAgg: "max"}, // view is live-only
		{K: 5, Aggregate: "sum", Window: 5, WindowAgg: "max"},                    // reaches past generation 0
		{K: 5, Aggregate: "sum", AsOf: 99},                                       // not retained
	}
	for i, req := range bad {
		if _, err := s.Run(ctx, req); err == nil {
			t.Fatalf("bad request %d accepted: %+v", i, req)
		}
	}
}

// TestSnapshotAnchorRestart is satellite (2): POST /v1/snapshot anchors
// the journal to the written snapshot, and a restart that boots from the
// anchor (snapshot@g + journal suffix g+1..h) reconstructs the live
// server bit-identically — even after Compact drops the pre-anchor
// prefix.
func TestSnapshotAnchorRestart(t *testing.T) {
	g := testGraph(220, 660, 31)
	scores := testScores(220, 31)
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snap.lona")

	live := mustServer(t, g, append([]float64(nil), scores...), 2,
		Options{SkipIndexes: true, Journal: mustJournal(t, dir), SnapshotPath: snapPath})
	if _, err := live.ApplyUpdates([]ScoreUpdate{{Node: 4, Score: 0.7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := live.ApplyEdits(editBatch(live.Graph())); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(live.Handler())
	defer srv.Close()
	postJSON(t, srv.URL+"/v1/snapshot", `{}`)

	anchor, ok, err := journal.ReadAnchor(dir)
	if err != nil || !ok {
		t.Fatalf("anchor after /v1/snapshot: ok=%v err=%v", ok, err)
	}
	if anchor.Snapshot != snapPath || anchor.Generation != 2 {
		t.Fatalf("anchor = %+v, want {%s 2}", anchor, snapPath)
	}

	// More history on top of the anchored snapshot.
	if _, err := live.ApplyUpdates([]ScoreUpdate{{Node: 100, Score: 0.2}, {Node: 220, Score: 0.9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := live.ApplyEdits(editBatch(live.Graph())); err != nil {
		t.Fatal(err)
	}

	boot := func(label string) {
		t.Helper()
		reader, err := snapfmt.Open(anchor.Snapshot)
		if err != nil {
			t.Fatal(err)
		}
		defer reader.Close()
		restarted := mustServer(t, reader.Graph(), reader.Scores(), reader.H(), Options{
			SkipIndexes:    true,
			Index:          reader.Index(),
			SnapshotSource: &SnapshotSource{Path: reader.Path(), Generation: reader.Generation()},
			Journal:        mustJournal(t, dir),
		})
		if got, want := restarted.Generation(), live.Generation(); got != want {
			t.Fatalf("%s: restarted at generation %d, live is %d", label, got, want)
		}
		// The ring spans the anchored boot generation through the tip, so
		// time travel works across a restart too.
		if js := restarted.Stats().Journal; js.Retained != 3 || js.OldestRetained != 2 {
			t.Fatalf("%s: retention ring after anchored boot: %+v", label, js)
		}
		asOf, err := restarted.Run(ctx, QueryRequest{K: 10, Aggregate: "sum", Algorithm: "base", AsOf: 3})
		if err != nil || asOf.Generation != 3 {
			t.Fatalf("%s: as_of across restart: ans %+v err %v", label, asOf, err)
		}
		for _, agg := range []string{"sum", "avg", "count"} {
			req := QueryRequest{K: 10, Aggregate: agg, Algorithm: "base"}
			want, err := live.Run(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := restarted.Run(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			identicalResults(t, label+"/"+agg, got.Results, want.Results)
		}
	}
	boot("anchored")

	// Compaction drops exactly the pre-anchor prefix; the anchored boot
	// still reconstructs the live state from what remains.
	cj := mustJournal(t, dir)
	dropped, err := cj.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("Compact dropped %d commits, want 2", dropped)
	}
	cj.Close()
	boot("compacted")
}
