package server

import (
	"context"
	"errors"
	"sync"
)

// flightGroup collapses concurrent duplicate work: while one goroutine
// computes the answer for a key, later callers with the same key wait for
// that result instead of repeating the computation. This is the standard
// singleflight pattern (x/sync/singleflight), reimplemented here because
// the repository takes no external dependencies — extended so that a
// waiter's own context bounds its wait: a request with a tight timeout_ms
// (or a disconnecting client) gets its context error at its deadline even
// while an identical unbounded query keeps computing.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are set
	val  *Answer
	err  error
}

// do runs fn once per key among concurrent callers. shared reports whether
// the caller joined another goroutine's in-flight execution; a joined
// caller whose ctx expires first abandons the wait and returns its own
// context error (the execution itself keeps running for the others).
//
// If fn panics, the panic propagates to the executing caller (net/http
// recovers handler panics per-connection), but waiters are still released
// with an error and the key is removed — a panicking query must not poison
// its cache key forever.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Answer, error)) (val *Answer, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			c.val, c.err = nil, errors.New("server: in-flight query panicked")
		}
		close(c.done)
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	c.val, c.err = fn()
	completed = true
	return c.val, c.err, false
}
