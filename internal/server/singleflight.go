package server

import (
	"errors"
	"sync"
)

// flightGroup collapses concurrent duplicate work: while one goroutine
// computes the answer for a key, later callers with the same key wait for
// that result instead of repeating the computation. This is the standard
// singleflight pattern (x/sync/singleflight), reimplemented here because
// the repository takes no external dependencies.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val *Answer
	err error
}

// do runs fn once per key among concurrent callers. shared reports whether
// the caller received another goroutine's in-flight result.
//
// If fn panics, the panic propagates to the leading caller (net/http
// recovers handler panics per-connection), but waiters are still released
// with an error and the key is removed — a panicking query must not poison
// its cache key forever.
func (g *flightGroup) do(key string, fn func() (*Answer, error)) (val *Answer, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			c.val, c.err = nil, errors.New("server: in-flight query panicked")
		}
		c.wg.Done()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
	}()
	c.val, c.err = fn()
	completed = true
	return c.val, c.err, false
}
