package server

// Temporal serving over the retained generation ring: validation of the
// as_of/window request fields and the exact windowed top-k execution.
//
// A point query with as_of=g is served from the retained generation g's
// engine (or the result cache — the answer a live query recorded at g).
// A window query combines each node's per-generation aggregate across
// the Window newest retained generations with "max" or "decay" and
// returns the exact top-k of the combined series, using a
// threshold-algorithm loop over per-generation top-m lists: any node
// outside every list is bounded by the combined m-th values, so once
// the k-th combined candidate meets that bound the answer is certified.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Window combiners.
const (
	windowAggMax   = "max"
	windowAggDecay = "decay"
)

// defaultDecay is the per-generation decay factor when window_agg is
// "decay" and the request names none.
const defaultDecay = 0.5

// normalizeTemporal validates and canonicalizes the as_of/window request
// fields (normalize calls it after the point-query fields settle).
func (r *QueryRequest) normalizeTemporal(s *Server) error {
	if r.Window < 0 {
		return fmt.Errorf("window %d is negative", r.Window)
	}
	r.WindowAgg = strings.ToLower(r.WindowAgg)
	if r.Window <= 1 {
		// A point query; zero the window triple so equivalent requests
		// share one cache key.
		if r.WindowAgg != "" {
			return errors.New("window_agg requires window > 1")
		}
		if r.Decay != 0 {
			return errors.New("decay requires window > 1")
		}
		r.Window = 0
	} else {
		switch r.WindowAgg {
		case windowAggMax:
			if r.Decay != 0 {
				return errors.New(`decay only applies to window_agg "decay"`)
			}
		case windowAggDecay:
			if r.Decay == 0 {
				r.Decay = defaultDecay
			}
			if !(r.Decay > 0 && r.Decay <= 1) {
				return fmt.Errorf("decay %v outside (0,1]", r.Decay)
			}
		case "":
			return errors.New(`window > 1 requires window_agg ("max" or "decay")`)
		default:
			return fmt.Errorf("unknown window_agg %q (want max or decay)", r.WindowAgg)
		}
		if r.Budget != 0 {
			return errors.New("budget is not supported with window queries (the window certificate needs exact per-generation answers)")
		}
	}
	if (r.AsOf != 0 || r.Window > 1) && r.Algorithm == algoView {
		return errors.New(`algorithm "view" serves only the live generation (drop as_of/window)`)
	}
	return nil
}

// engineQuery renders the request as a core query with K results — the
// same mapping execute's auto/explicit branches use for point queries.
func (r *QueryRequest) engineQuery(s *Server, agg core.Aggregate, order core.QueueOrder, k int) core.Query {
	if r.Algorithm == "auto" {
		return core.Query{Algorithm: core.AlgoAuto, K: k, Aggregate: agg}
	}
	algo, _ := ParseAlgorithm(r.Algorithm) // validated in normalize
	opts := core.Options{Gamma: r.Gamma, Order: order, Workers: r.Workers}
	if opts.Workers <= 0 {
		opts.Workers = s.opts.Workers
	}
	return core.Query{Algorithm: algo, K: k, Aggregate: agg, Options: opts}
}

// runWindow answers a window query exactly. snap.gen anchors the newest
// generation of the window (as_of already substituted by runCached);
// every generation in [snap.gen-Window+1, snap.gen] must be retained.
func (s *Server) runWindow(ctx context.Context, req QueryRequest, agg core.Aggregate, order core.QueueOrder,
	snap snapshot, ans *Answer) error {

	w := req.Window
	if uint64(w-1) > snap.gen {
		return fmt.Errorf("window %d reaches past generation 0 (anchor generation is %d)", w, snap.gen)
	}
	// entries[i] serves generation snap.gen-(w-1)+i; weights[i] is that
	// generation's contribution factor under "decay" (age 0 = newest).
	entries := make([]genEntry, w)
	weights := make([]float64, w)
	for i := 0; i < w; i++ {
		gen := snap.gen - uint64(w-1-i)
		e, oldest, ok := s.retained(gen)
		if !ok {
			return fmt.Errorf("window generation %d is not retained (oldest retained is %d; raise -journal-retain)",
				gen, oldest)
		}
		entries[i] = e
		if req.WindowAgg == windowAggDecay {
			weights[i] = pow(req.Decay, w-1-i)
		}
	}

	var stats core.QueryStats
	accumulate := func(qs core.QueryStats) {
		stats.Evaluated += qs.Evaluated
		stats.Pruned += qs.Pruned
		stats.Distributed += qs.Distributed
		stats.Visited += qs.Visited
	}

	// combine folds one generation's exact value into a node's running
	// combined value; bound folds the per-generation m-th values into
	// the threshold certifying every unlisted node.
	combine := func(acc, v float64, i int) float64 {
		if req.WindowAgg == windowAggMax {
			if v > acc {
				return v
			}
			return acc
		}
		return acc + weights[i]*v
	}

	// The threshold-algorithm loop: take each generation's top-m, unite
	// the candidates, evaluate every candidate exactly at every
	// generation, and accept once the k-th combined value dominates the
	// combined per-generation m-th values (the ceiling for any node
	// outside all lists). Aggregates of scores in [0,1] are nonnegative,
	// so an absent node contributes 0 and an enumerated-out generation
	// bounds unlisted nodes by 0.
	for m := req.K; ; m *= 2 {
		var tau float64
		allFull := true
		seen := make(map[int]struct{})
		for i := range entries {
			q := req.engineQuery(s, agg, order, m)
			q.Candidates = req.Candidates
			res, err := entries[i].engine.Run(ctx, q)
			if err != nil {
				return err
			}
			accumulate(res.Stats)
			for _, r := range res.Results {
				seen[r.Node] = struct{}{}
			}
			if len(res.Results) >= m {
				allFull = false
				tau = combine(tau, res.Results[len(res.Results)-1].Value, i)
			}
		}
		cand := make([]int, 0, len(seen))
		for v := range seen {
			cand = append(cand, v)
		}
		sort.Ints(cand)

		combined := make(map[int]float64, len(cand))
		for i := range entries {
			// Nodes added after this generation don't exist in its
			// engine; they contribute 0 there.
			n := entries[i].g.NumNodes()
			sub := cand
			if len(sub) > 0 && sub[len(sub)-1] >= n {
				j := sort.SearchInts(sub, n)
				sub = sub[:j]
			}
			if len(sub) == 0 {
				continue
			}
			q := req.engineQuery(s, agg, order, len(sub))
			q.Candidates = sub
			res, err := entries[i].engine.Run(ctx, q)
			if err != nil {
				return err
			}
			accumulate(res.Stats)
			for _, r := range res.Results {
				combined[r.Node] = combine(combined[r.Node], r.Value, i)
			}
		}

		ranked := make([]core.Result, 0, len(combined))
		for v, val := range combined {
			ranked = append(ranked, core.Result{Node: v, Value: val})
		}
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].Value != ranked[b].Value {
				return ranked[a].Value > ranked[b].Value
			}
			return ranked[a].Node < ranked[b].Node
		})
		if len(ranked) > req.K {
			ranked = ranked[:req.K]
		}
		if allFull || (len(ranked) == req.K && ranked[req.K-1].Value >= tau) {
			ans.Results, ans.Stats = ranked, stats
			if req.Algorithm == "auto" {
				ans.Planned = true
			}
			return nil
		}
	}
}

// pow is a tiny integer-exponent power (decay^age) that avoids the
// math.Pow special-case table for the hot combine path.
func pow(x float64, n int) float64 {
	out := 1.0
	for ; n > 0; n-- {
		out *= x
	}
	return out
}
