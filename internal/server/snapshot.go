package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	snapfmt "repro/internal/snapshot"
)

// SnapshotSource records where a server's boot state came from when it
// was loaded from a columnar snapshot instead of built from a generator
// or edge list. It exists for observability only: /v1/stats and /metrics
// surface it so an operator can tell how stale a restarted daemon's
// state is and what the mmap boot actually cost.
type SnapshotSource struct {
	Path         string        // snapshot file the server mapped
	ModTime      time.Time     // its mtime at open
	Bytes        int64         // file size
	Generation   uint64        // score generation stamped into the file
	LoadDuration time.Duration // open+map+validate+engine-adopt time
}

// SnapshotResult reports what a persisted snapshot captured — the
// POST /v1/snapshot response body.
type SnapshotResult struct {
	Path       string `json:"path"`
	Bytes      int64  `json:"bytes"`
	Generation uint64 `json:"generation"` // score generation captured
	ElapsedUS  int64  `json:"elapsed_us"`
}

// WriteSnapshot persists the server's current generation as a
// whole-graph snapshot at path (atomically, via temp file + rename).
// The write happens outside the generation lock against an immutable
// (graph, engine, generation) triple, so queries and even concurrent
// update batches proceed untouched; a batch landing mid-write simply
// means the snapshot captures the generation that was current when the
// write began — exactly what its stamped generation says.
func (s *Server) WriteSnapshot(path string) (*SnapshotResult, error) {
	if path == "" {
		return nil, errors.New("snapshot: no path configured (start lonad with -snapshot, or pass \"path\" in the request)")
	}
	start := time.Now()
	s.mu.RLock()
	engine, gen := s.engine, s.gen
	s.mu.RUnlock()

	w, err := snapfmt.NewWriter(engine.Graph(), engine.Scores(), engine.H(),
		engine.PrepareNeighborhoodIndex(s.opts.Workers))
	if err != nil {
		return nil, err
	}
	w.SetGeneration(gen)
	if err := w.WriteFile(path); err != nil {
		return nil, err
	}
	res := &SnapshotResult{Path: path, Generation: gen, ElapsedUS: time.Since(start).Microseconds()}
	if fi, err := os.Stat(path); err == nil {
		res.Bytes = fi.Size()
	}
	if j := s.opts.Journal; j != nil {
		// Anchor the journal to the freshly persisted generation: the next
		// boot opens the anchored snapshot and replays only commits past
		// gen, and Compact may drop everything at or below it. Both writes
		// are atomic (temp file + rename), and a crash between them merely
		// leaves the previous anchor pointing at the older snapshot — still
		// a valid replay base, never a torn one.
		if err := j.WriteAnchor(path, gen); err != nil {
			return nil, fmt.Errorf("snapshot written, but anchoring the journal failed: %w", err)
		}
	}
	s.metrics.snapshotsWritten.Add(1)
	return res, nil
}

// snapshotRequest is the /v1/snapshot body; the empty object (or empty
// body semantics — all fields optional) targets the server's configured
// snapshot path.
type snapshotRequest struct {
	Path string `json:"path,omitempty"`
}

// handleSnapshot serves POST /v1/snapshot: persist the current
// generation so the next boot can -snapshot straight back to it.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	req := snapshotRequest{}
	if r.ContentLength != 0 {
		if err := decodeBody(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	path := req.Path
	if path == "" {
		path = s.opts.SnapshotPath
	}
	res, err := s.WriteSnapshot(path)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// SnapshotStats is the snapshot section of /v1/stats: the source the
// server booted from (absent when it built its state from scratch) and
// the snapshots it has persisted since.
type SnapshotStats struct {
	Source           string  `json:"source,omitempty"`
	SourceModTime    string  `json:"source_mtime,omitempty"` // RFC3339
	SourceBytes      int64   `json:"source_bytes,omitempty"`
	SourceGeneration uint64  `json:"source_generation,omitempty"`
	LoadMS           float64 `json:"load_ms,omitempty"` // mmap boot cost
	Written          int64   `json:"written"`           // POST /v1/snapshot persists
}

// snapshotStats assembles the stats section, or nil when the server
// neither booted from a snapshot nor wrote one.
func (s *Server) snapshotStats() *SnapshotStats {
	written := s.metrics.snapshotsWritten.Load()
	src := s.opts.SnapshotSource
	if src == nil && written == 0 {
		return nil
	}
	st := &SnapshotStats{Written: written}
	if src != nil {
		st.Source = src.Path
		st.SourceModTime = src.ModTime.UTC().Format(time.RFC3339)
		st.SourceBytes = src.Bytes
		st.SourceGeneration = src.Generation
		st.LoadMS = float64(src.LoadDuration.Microseconds()) / 1000
	}
	return st
}
