package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// This file renders GET /metrics: the server's counters and histograms
// in Prometheus text exposition format (version 0.0.4), hand-rolled so
// the module stays dependency-free. The same latencyHist that backs
// /v1/stats quantiles backs the histogram families here — log2 buckets,
// so bucket i's inclusive upper bound is 2^i−1 (exact for the integer
// observations the histogram stores).

// handleMetrics serves the Prometheus scrape endpoint.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(s.renderMetrics()))
}

// renderMetrics builds the full exposition body. Counters are read from
// the same atomics /v1/stats snapshots, so the two surfaces can never
// disagree on what happened — only on when they looked.
func (s *Server) renderMetrics() string {
	m := s.metrics
	var b strings.Builder
	b.Grow(8 << 10)

	s.mu.RLock()
	gen, topo, cl := s.gen, s.topo, s.cl
	g, h := s.engine.Graph(), s.engine.H()
	s.mu.RUnlock()

	writeGauge(&b, "lona_start_time_seconds", "Unix time the server started.",
		float64(m.start.Unix()))
	writeGauge(&b, "lona_uptime_seconds", "Seconds since the server started.",
		time.Since(m.start).Seconds())
	writeGauge(&b, "lona_generation", "Current score generation (bumped per update or edit batch).",
		float64(gen))
	writeGauge(&b, "lona_topology_generation", "Current shard-topology generation (bumped per reshard).",
		float64(topo))
	writeGauge(&b, "lona_graph_nodes", "Nodes in the current-generation graph.", float64(g.NumNodes()))
	writeGauge(&b, "lona_graph_edges", "Edges in the current-generation graph.", float64(g.NumEdges()))
	writeGauge(&b, "lona_h", "Neighborhood radius h the server answers for.", float64(h))

	writeCounter(&b, "lona_cache_hits_total", "Result-cache hits.", m.hits.Load())
	writeCounter(&b, "lona_cache_misses_total", "Result-cache misses (queries executed).", m.misses.Load())
	writeCounter(&b, "lona_cache_collapsed_total", "Duplicate in-flight queries absorbed by singleflight.",
		m.collapsed.Load())
	if s.cache != nil {
		writeGauge(&b, "lona_cache_entries", "Resident result-cache entries.", float64(s.cache.len()))
		writeGauge(&b, "lona_cache_bytes", "Approximate resident bytes of cached answers.",
			float64(s.cache.bytes()))
		writeGauge(&b, "lona_cache_capacity_bytes", "Result-cache byte capacity.",
			float64(s.cache.capacityBytes()))
	}

	writeCounter(&b, "lona_update_batches_total", "Applied score-update batches.", m.updates.Load())
	writeCounter(&b, "lona_score_mutations_total", "Individual score mutations applied.", m.mutations.Load())
	writeCounter(&b, "lona_edit_batches_total", "Applied structural edit batches.", m.editBatches.Load())
	writeCounter(&b, "lona_edges_added_total", "Edges inserted by edit batches.", m.edgesAdded.Load())
	writeCounter(&b, "lona_edges_removed_total", "Edges removed by edit batches.", m.edgesRemoved.Load())
	writeCounter(&b, "lona_nodes_added_total", "Nodes appended by edit batches.", m.nodesAdded.Load())
	writeCounter(&b, "lona_edit_repaired_nodes_total", "Nodes incrementally repaired by edit batches.",
		m.editRepaired.Load())
	writeCounter(&b, "lona_edit_rebuilds_total", "Edit batches that fell back to a from-scratch rebuild.",
		m.editRebuilds.Load())

	writeCounter(&b, "lona_snapshots_written_total", "Snapshots persisted via /v1/snapshot.",
		m.snapshotsWritten.Load())
	if src := s.opts.SnapshotSource; src != nil {
		writeGauge(&b, "lona_snapshot_source_mtime_seconds",
			"Unix mtime of the snapshot file the server booted from.", float64(src.ModTime.Unix()))
		writeGauge(&b, "lona_snapshot_source_bytes",
			"Size of the snapshot file the server booted from.", float64(src.Bytes))
		writeGauge(&b, "lona_snapshot_source_generation",
			"Score generation stamped into the boot snapshot.", float64(src.Generation))
		writeGauge(&b, "lona_snapshot_load_seconds",
			"Time to map and validate the boot snapshot.", src.LoadDuration.Seconds())
	}

	if js := s.journalStats(); js != nil {
		if js.Enabled {
			writeGauge(&b, "lona_journal_depth", "Commits resident in the journal log.", float64(js.Depth))
			writeGauge(&b, "lona_journal_last_generation", "Generation of the newest journaled commit.",
				float64(js.LastGen))
		}
		writeCounter(&b, "lona_journal_appends_total", "Mutation batches durably appended to the journal.",
			js.Appends)
		writeCounter(&b, "lona_journal_replayed_commits_total",
			"Journal commits replayed through the incremental apply path (boot catch-up).", js.Replayed)
		writeGauge(&b, "lona_retained_generations", "Generations resident in the time-travel ring.",
			float64(js.Retained))
		writeCounter(&b, "lona_asof_queries_total", "Queries answered as of a retained past generation.",
			js.AsOfQueries)
		writeCounter(&b, "lona_asof_hits_total", "as_of queries served from the recorded live answer.",
			js.AsOfHits)
		writeCounter(&b, "lona_catchups_total", "Replay-based worker catch-up passes.", js.Catchups)
		writeCounter(&b, "lona_catchup_commits_total", "Journal commits shipped to lagging workers.",
			js.CatchupCommits)
	}

	writeCounter(&b, "lona_query_timeouts_total", "Queries abandoned at a deadline.", m.timeouts.Load())
	writeCounter(&b, "lona_query_cancels_total", "Queries cancelled by the caller.", m.cancels.Load())
	writeCounter(&b, "lona_slow_queries_total", "Executions at or over the slow-query threshold.",
		m.slowQueries.Load())

	writeCounter(&b, "lona_engine_evaluated_total", "Nodes whose aggregate was computed exactly.",
		m.evaluated.Load())
	writeCounter(&b, "lona_engine_pruned_total", "Nodes skipped by an upper bound.", m.pruned.Load())
	writeCounter(&b, "lona_engine_distributed_total", "Scores spread by backward distribution.",
		m.distributed.Load())
	writeCounter(&b, "lona_engine_visited_total", "Nodes touched by h-hop traversals.", m.visited.Load())

	if cl != nil {
		writeGauge(&b, "lona_shards", "Shards queries fan out across.", float64(cl.shards))
		writeCounter(&b, "lona_shard_queries_total", "Shard queries launched across all fan-outs.",
			m.shardQueries.Load())
		writeCounter(&b, "lona_shards_cut_total", "Shards ended early by the TA merge bound.",
			m.shardsCut.Load())
		writeCounter(&b, "lona_cluster_messages_total", "Cross-shard messages.", m.clusterMessages.Load())
		writeCounter(&b, "lona_reshards_total", "Shard-topology rebuilds via /v1/reshard.",
			m.reshards.Load())
		writeCounter(&b, "lona_partial_batches_total", "Streamed partial frames folded into merges.",
			m.partialBatches.Load())
		writeCounter(&b, "lona_budget_redistributed_total",
			"Traversals moved from cut shards to still-running ones.", m.budgetRedistributed.Load())
		writeCounter(&b, "lona_lambda_raises_total", "Folded batches that tightened the merge threshold.",
			m.lambdaRaises.Load())
		writeCounter(&b, "lona_lambda_primed_total",
			"Queries whose launch lambda was seeded from score sketches.", m.lambdaPrimed.Load())
		writeCounter(&b, "lona_grant_requests_total",
			"Mid-run budget grant round trips served over the ack stream.", m.grantRequests.Load())
	}

	// Per-algorithm query latency: one histogram family, algorithm label.
	writeHistHeader(&b, "lona_query_duration_seconds", "Query execution latency by algorithm.")
	s.metrics.mu.RLock()
	labels := make([]string, 0, len(s.metrics.hists))
	for label := range s.metrics.hists {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	hists := make([]*latencyHist, len(labels))
	for i, label := range labels {
		hists[i] = s.metrics.hists[label]
	}
	s.metrics.mu.RUnlock()
	for i, label := range labels {
		writeHistSeries(&b, "lona_query_duration_seconds",
			`algorithm="`+escapeLabel(label)+`",`, hists[i], 1e-6)
	}

	if cl != nil {
		// Per-shard query latency: the histograms /v1/stats summarizes as
		// p50/p99, exported whole so a scraper can aggregate its own way.
		writeHistHeader(&b, "lona_shard_query_duration_seconds",
			"Per-shard query latency within fan-outs.")
		for i, sh := range cl.hists {
			writeHistSeries(&b, "lona_shard_query_duration_seconds",
				fmt.Sprintf("shard=%q,", fmt.Sprint(i)), sh, 1e-6)
		}
		writeHistHeader(&b, "lona_lambda_raises_per_query",
			"Lambda tightenings per sharded query.")
		writeHistSeries(&b, "lona_lambda_raises_per_query", "", &m.lambdaPerQuery, 1)
		writeHistHeader(&b, "lona_shard_result_items",
			"Result items shipped per launched shard query (message size).")
		writeHistSeries(&b, "lona_shard_result_items", "", &m.shardItems, 1)
	}

	// Rolling-window families: the same log2 buckets, but decaying — old
	// traffic ages out in 10s slots over a 120s window, so these answer
	// "right now" where the cumulative families above answer "since
	// boot". Rendered with the histogram text shape so existing bucket
	// tooling works, though semantically they are gauges.
	ws := m.window.snapshot()
	writeHistHeader(&b, "lona_latency_window_seconds",
		"Query latency over the rolling 120s window (decays; see lona_query_duration_seconds for cumulative).")
	writeBuckets(&b, "lona_latency_window_seconds", "", ws.counts[:], ws.sumUS, 1e-6)
	writeGauge(&b, "lona_latency_window_queries",
		"Queries observed in the rolling 120s window.", float64(ws.count))
	writeGauge(&b, "lona_latency_window_p99_seconds",
		"Bucket-bound p99 latency over the rolling window.", ws.quantile(0.99)*1e-6)

	if cl != nil {
		// Per-shard rolling-window gauges, beside the cumulative
		// per-shard histograms: which shard degraded in the last minute.
		writeHeader(&b, "lona_shard_window_queries",
			"Shard queries observed in the rolling 120s window.", "gauge")
		shardWindows := make([]windowSnapshot, len(cl.windows))
		for i, wh := range cl.windows {
			shardWindows[i] = wh.snapshot()
			fmt.Fprintf(&b, "lona_shard_window_queries{shard=%q} %d\n", fmt.Sprint(i), shardWindows[i].count)
		}
		writeHeader(&b, "lona_shard_window_p99_seconds",
			"Bucket-bound p99 shard latency over the rolling window.", "gauge")
		for i := range cl.windows {
			fmt.Fprintf(&b, "lona_shard_window_p99_seconds{shard=%q} %s\n",
				fmt.Sprint(i), formatValue(shardWindows[i].quantile(0.99)*1e-6))
		}
	}

	if slo := s.opts.SLO; slo.enabled() {
		burn := slo.burnRate(ws)
		writeGauge(&b, "lona_slo_objective_seconds",
			"Configured per-query latency objective.", slo.Latency.Seconds())
		writeGauge(&b, "lona_slo_target",
			"Required fraction of window queries under the objective.", slo.Target)
		writeGauge(&b, "lona_slo_window_over",
			"Window queries over the latency objective.", float64(ws.over))
		writeGauge(&b, "lona_slo_burn_rate",
			"Error-budget burn rate over the rolling window (>=1 violates the SLO).", burn)
	}

	if exp := s.opts.TraceExporter; exp != nil {
		es := exp.Stats()
		writeCounter(&b, "lona_otlp_exported_total", "OTLP span batches delivered to the collector.",
			es.Exported)
		writeCounter(&b, "lona_otlp_dropped_total", "OTLP span batches dropped by the full export queue.",
			es.Dropped)
		writeCounter(&b, "lona_otlp_sampled_out_total", "OTLP span batches skipped by the sampling ratio.",
			es.Sampled)
		writeCounter(&b, "lona_otlp_failed_total", "OTLP span batches the collector refused or the POST lost.",
			es.Failed)
		writeGauge(&b, "lona_otlp_queue_len", "OTLP export queue backlog.", float64(es.QueueLen))
	}

	return b.String()
}

func writeCounter(b *strings.Builder, name, help string, v int64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(b *strings.Builder, name, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatValue(v))
}

func writeHistHeader(b *strings.Builder, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
}

// writeHistSeries renders one labeled series of a histogram family from a
// latencyHist. Bucket i of the hist holds integer observations v with
// bits.Len64(v) == i, so its inclusive upper bound is 2^i−1; scale maps
// the stored integers to the exported unit (1e-6 for µs → seconds, 1 for
// unitless value histograms). labels, when non-empty, must end with ','.
//
// The atomics are read once each, cumulated in order, and the +Inf
// bucket is clamped up to the running total, so a scrape racing
// observeValue always yields a well-formed (monotone, +Inf == _count)
// exposition — at worst it undercounts observations that landed
// mid-render, which the next scrape picks up.
func writeHistSeries(b *strings.Builder, name, labels string, h *latencyHist, scale float64) {
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	writeBuckets(b, name, labels, counts, h.sumUS.Load(), scale)
}

// writeBuckets renders one histogram series from already-loaded bucket
// counts (a latencyHist read or a summed window snapshot) plus the raw
// integer sum the scale maps to the exported unit.
func writeBuckets(b *strings.Builder, name, labels string, counts []int64, sum int64, scale float64) {
	hi := 0
	for i := range counts {
		if counts[i] != 0 {
			hi = i
		}
	}
	var cum int64
	for i := 0; i <= hi; i++ {
		cum += counts[i]
		le := float64(uint64(1)<<uint(i)-1) * scale
		fmt.Fprintf(b, "%s_bucket{%sle=%q} %d\n", name, labels, formatValue(le), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	suffix := ""
	if trimmed := strings.TrimSuffix(labels, ","); trimmed != "" {
		suffix = "{" + trimmed + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, formatValue(float64(sum)*scale))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, cum)
}

// writeHeader emits a HELP/TYPE pair for a family whose series the
// caller renders itself (labeled gauges).
func writeHeader(b *strings.Builder, name, help, typ string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// formatValue renders a float the way Prometheus expects: Go's shortest
// round-trip representation parses back exactly with strconv.ParseFloat.
func formatValue(v float64) string {
	return fmt.Sprintf("%g", v)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
