package server

// Replay-based worker catch-up: a shard worker that restarted (or
// missed fan-out legs) is brought back to the coordinator's generation
// by shipping it the journal suffix it lacks — no graph re-shipment, no
// worker pool restart. The probe/replay pass runs under the write lock
// so the target generation cannot move underneath it.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/trace"
	"repro/internal/wideevent"
)

// WorkerCatchUp reports one worker's catch-up outcome.
type WorkerCatchUp struct {
	Shard   int    `json:"shard"`
	From    uint64 `json:"from"`              // generation the probe found
	To      uint64 `json:"to"`                // generation after replay
	Applied int    `json:"applied"`           // journal commits replayed
	Error   string `json:"error,omitempty"`   // probe or replay failure
	Skipped string `json:"skipped,omitempty"` // why no replay was attempted
}

// CatchUpResult is the POST /v1/catchup response.
type CatchUpResult struct {
	Target    uint64          `json:"target_generation"`
	Probed    int             `json:"probed"`
	CaughtUp  int             `json:"caught_up"` // workers that applied >= 1 commit
	Commits   int             `json:"commits"`   // commits applied across all workers
	Workers   []WorkerCatchUp `json:"workers,omitempty"`
	ElapsedUS int64           `json:"elapsed_us"`
}

// CatchUpWorkers probes every HTTP shard worker and replays the journal
// suffix to any that report a generation behind the coordinator's.
// Requires a configured journal and an HTTP-sharded cluster; errors on
// any other topology (in-process shards share the coordinator's state
// and can never fall behind). Per-worker failures are findings in the
// result, not a pass failure — catching up the reachable workers is
// strictly better than catching up none.
func (s *Server) CatchUpWorkers(ctx context.Context) (*CatchUpResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.catchUpLocked(ctx)
	s.logCatchUp(ctx, res, err)
	return res, err
}

// catchUpLocked is the probe/replay core; the caller holds the write
// lock (CatchUpWorkers, or the fan-out failure path inside a mutation
// batch) and owns wide-event emission.
func (s *Server) catchUpLocked(ctx context.Context) (*CatchUpResult, error) {
	start := time.Now()
	j := s.opts.Journal
	if j == nil {
		return nil, errors.New("catch-up requires a journal (start lonad with -journal)")
	}
	if s.cl == nil || !s.cl.remote {
		return nil, errors.New("catch-up applies to HTTP shard workers only (in-process shards cannot fall behind)")
	}
	tr := s.cl.coord.Transport()
	prober, okP := tr.(cluster.HealthProber)
	replayer, okR := tr.(cluster.Replayer)
	if !okP || !okR {
		return nil, errors.New("transport supports neither health probes nor replay")
	}

	res := &CatchUpResult{Target: s.gen}
	for _, r := range prober.ProbeHealth(ctx) {
		res.Probed++
		wc := WorkerCatchUp{Shard: r.Shard, From: r.Generation, To: r.Generation}
		switch {
		case r.Err != nil:
			wc.Error = r.Err.Error()
		case r.Generation >= s.gen:
			wc.Skipped = "up to date"
		default:
			suffix := j.Suffix(r.Generation)
			commits := make([]cluster.ReplayCommit, len(suffix))
			for i, c := range suffix {
				commits[i] = cluster.ReplayCommit{Gen: c.Gen, Edits: c.Edits}
				if len(c.Scores) > 0 {
					ups := make([]cluster.ScoreUpdate, len(c.Scores))
					for k, u := range c.Scores {
						ups[k] = cluster.ScoreUpdate{Node: u.Node, Score: u.Score}
					}
					commits[i].Updates = ups
				}
			}
			if len(commits) == 0 || commits[0].Gen != r.Generation+1 {
				// The journal no longer holds (or never held) the commits
				// right after the worker's generation — compaction dropped
				// them, or the worker booted from an older snapshot lineage.
				wc.Error = fmt.Sprintf("journal cannot bridge generations %d..%d (oldest needed commit is gone; re-provision the worker from a newer snapshot)",
					r.Generation+1, s.gen)
				break
			}
			rr, err := replayer.Replay(ctx, r.Shard, commits)
			if err != nil {
				wc.Error = err.Error()
				break
			}
			wc.To, wc.Applied = rr.Generation, rr.Applied
			if rr.Applied > 0 {
				res.CaughtUp++
				res.Commits += rr.Applied
			}
			if rr.Generation != s.gen {
				wc.Error = fmt.Sprintf("worker landed at generation %d, coordinator is at %d", rr.Generation, s.gen)
			}
		}
		res.Workers = append(res.Workers, wc)
	}
	s.metrics.catchups.Add(1)
	s.metrics.catchupCommits.Add(int64(res.Commits))
	res.ElapsedUS = time.Since(start).Microseconds()
	return res, nil
}

// logCatchUp emits the catch-up wide event (one record per pass).
func (s *Server) logCatchUp(ctx context.Context, res *CatchUpResult, err error) {
	ev := wideevent.CatchUp{TraceID: trace.NewID(), Status: wideevent.StatusOK}
	if err != nil {
		ev.Status, ev.Err = wideevent.StatusError, err.Error()
	}
	if res != nil {
		ev.Generation = res.Target
		ev.Probed = res.Probed
		ev.CaughtUp = res.CaughtUp
		ev.Commits = res.Commits
		ev.Duration = time.Duration(res.ElapsedUS) * time.Microsecond
	}
	ev.Log(ctx, s.log)
}

// catchUpAndRetry is the fan-out failure fallback inside a mutation
// batch: when a leg fails and a journal is configured, the failure is
// often a worker that restarted and fell behind — catch it up from the
// journal, then retry the fan-out once. Returns nil when the retry
// succeeds. Caller holds the write lock.
func (s *Server) catchUpAndRetry(fanErr error, retry func(ctx context.Context) error) error {
	if s.opts.Journal == nil || s.cl == nil || !s.cl.remote {
		return fanErr
	}
	ctx := context.Background()
	res, err := s.catchUpLocked(ctx)
	s.logCatchUp(ctx, res, err)
	if err != nil {
		return fanErr
	}
	fanCtx, cancel := context.WithTimeout(ctx, shardUpdateTimeout)
	defer cancel()
	if err := retry(fanCtx); err != nil {
		return fmt.Errorf("%w (and the retry after journal catch-up also failed: %v)", fanErr, err)
	}
	return nil
}

// handleCatchUp serves POST /v1/catchup: an operator- (or monitor-)
// triggered probe-and-replay pass over the shard workers.
func (s *Server) handleCatchUp(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	res, err := s.CatchUpWorkers(r.Context())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
