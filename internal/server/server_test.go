package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// ctx is the background context shared by the tests that do not exercise
// cancellation; see cancel_test.go for the ones that do.
var ctx = context.Background()

// testGraph builds a connected random undirected graph, mirroring the
// core package's test helper.
func testGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func testScores(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed + 1000))
	scores := make([]float64, n)
	for i := range scores {
		if rng.Float64() < 0.5 {
			scores[i] = rng.Float64()
		}
	}
	return scores
}

func mustServer(t *testing.T, g *graph.Graph, scores []float64, h int, opts Options) *Server {
	t.Helper()
	s, err := New(g, scores, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// approxEq is the same FP tolerance the core tests use.
func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*(1+scale)
}

// sameResults compares two top-k answers, tolerating boundary permutation
// among tied values (FP jitter can legally reorder equal values).
func sameResults(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !approxEq(a[i].Value, b[i].Value) {
			return false
		}
	}
	if len(a) == 0 {
		return true
	}
	kth := a[len(a)-1].Value
	inB := make(map[int]struct{}, len(b))
	for _, r := range b {
		inB[r.Node] = struct{}{}
	}
	for _, r := range a {
		if _, ok := inB[r.Node]; !ok && !approxEq(r.Value, kth) {
			return false
		}
	}
	return true
}

// TestConcurrentQueriesAndUpdates is acceptance test (a): queries across
// every serving mode race update batches under -race, and once updates
// quiesce the served answers match a fresh Engine built on the post-update
// scores.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	const n = 150
	g := testGraph(n, 450, 31)
	scores := testScores(n, 31)
	s := mustServer(t, g, scores, 2, Options{Workers: 2})

	algos := []string{"auto", "view", "base", "backward", "backward-naive", "forward"}
	stop := make(chan struct{})
	errs := make(chan error, len(algos))
	var wg sync.WaitGroup
	for i, algo := range algos {
		wg.Add(1)
		go func(i int, algo string) {
			defer wg.Done()
			var firstErr error
			for {
				select {
				case <-stop:
					errs <- firstErr
					return
				default:
				}
				_, err := s.Run(ctx, QueryRequest{K: 5 + i, Aggregate: "sum", Algorithm: algo, Gamma: 0.3})
				if err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}(i, algo)
	}

	rng := rand.New(rand.NewSource(32))
	for batch := 0; batch < 50; batch++ {
		updates := make([]ScoreUpdate, 1+rng.Intn(4))
		for i := range updates {
			updates[i] = ScoreUpdate{Node: rng.Intn(n), Score: rng.Float64()}
		}
		if _, err := s.ApplyUpdates(updates); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for range algos {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	if got := s.Generation(); got != 50 {
		t.Fatalf("generation = %d after 50 batches, want 50", got)
	}

	// Fresh ground truth on the post-update scores.
	finalScores := make([]float64, n)
	for u := 0; u < n; u++ {
		finalScores[u] = s.view.Score(u)
	}
	fresh, err := core.NewEngine(g, finalScores, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []string{"sum", "avg", "count"} {
		coreAgg, _ := ParseAggregate(agg)
		want, _, err := fresh.Base(10, coreAgg)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []string{"auto", "view", "base", "backward"} {
			ans, err := s.Run(ctx, QueryRequest{K: 10, Aggregate: agg, Algorithm: algo})
			if err != nil {
				t.Fatalf("%s/%s: %v", agg, algo, err)
			}
			if !sameResults(ans.Results, want) {
				t.Fatalf("%s/%s after updates: got %v, want %v", agg, algo, ans.Results, want)
			}
		}
	}
}

// TestCacheHitOnRepeat is acceptance test (b): a repeated identical query
// at an unchanged generation is served from cache — the hit counter
// increments and the engine work counters stay flat.
func TestCacheHitOnRepeat(t *testing.T) {
	g := testGraph(80, 240, 33)
	s := mustServer(t, g, testScores(80, 33), 2, Options{})

	req := QueryRequest{K: 10, Aggregate: "sum", Algorithm: "backward", Gamma: 0.2}
	cold, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("first query reported cached")
	}
	st := s.Stats()
	if st.Cache.Hits != 0 || st.Cache.Misses != 1 {
		t.Fatalf("after cold query: hits=%d misses=%d", st.Cache.Hits, st.Cache.Misses)
	}
	visitedAfterCold := st.Engine.Visited
	evaluatedAfterCold := st.Engine.Evaluated

	for i := 0; i < 3; i++ {
		hit, err := s.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !hit.Cached {
			t.Fatalf("repeat %d not served from cache", i)
		}
		if !sameResults(hit.Results, cold.Results) {
			t.Fatalf("cached answer drifted: %v vs %v", hit.Results, cold.Results)
		}
	}
	st = s.Stats()
	if st.Cache.Hits != 3 {
		t.Fatalf("hits = %d, want 3", st.Cache.Hits)
	}
	if st.Engine.Visited != visitedAfterCold || st.Engine.Evaluated != evaluatedAfterCold {
		t.Fatalf("cache hits did engine work: visited %d→%d, evaluated %d→%d",
			visitedAfterCold, st.Engine.Visited, evaluatedAfterCold, st.Engine.Evaluated)
	}
}

// TestUpdateInvalidatesCache is acceptance test (c): an update batch bumps
// the generation, so the same request is recomputed and reflects the new
// scores.
func TestUpdateInvalidatesCache(t *testing.T) {
	// Star graph: node 0 sees every leaf within 1 hop.
	n := 10
	b := graph.NewBuilder(n, false)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	scores := make([]float64, n) // all zero
	s := mustServer(t, b.Build(), scores, 1, Options{SkipIndexes: true})

	req := QueryRequest{K: 1, Aggregate: "sum", Algorithm: "base"}
	before, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if before.Generation != 0 || before.Results[0].Value != 0 {
		t.Fatalf("unexpected initial answer %+v", before)
	}
	if _, err := s.Run(ctx, req); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Cache.Hits != 1 {
		t.Fatalf("warmup repeat missed the cache (hits=%d)", st.Cache.Hits)
	}

	res, err := s.ApplyUpdates([]ScoreUpdate{{Node: 3, Score: 1}, {Node: 4, Score: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 1 || res.Applied != 2 {
		t.Fatalf("unexpected update result %+v", res)
	}
	// Star, h=1: each update touches the leaf itself plus the hub and …
	// actually S_1(leaf) = {leaf, hub}, so 2 per update.
	if res.Touched != 4 {
		t.Fatalf("touched = %d, want 4", res.Touched)
	}

	after, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("post-update query served a stale cached answer")
	}
	if after.Generation != 1 {
		t.Fatalf("post-update generation = %d, want 1", after.Generation)
	}
	if after.Results[0].Node != 0 || !approxEq(after.Results[0].Value, 1.5) {
		t.Fatalf("post-update answer %+v, want hub with 1.5", after.Results[0])
	}

	// Invalid batches are rejected atomically: nothing applied.
	if _, err := s.ApplyUpdates([]ScoreUpdate{{Node: 1, Score: 0.9}, {Node: n, Score: 0.1}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := s.ApplyUpdates([]ScoreUpdate{{Node: 1, Score: 1.5}}); err == nil {
		t.Fatal("out-of-range score accepted")
	}
	if _, err := s.ApplyUpdates(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if got := s.Generation(); got != 1 {
		t.Fatalf("rejected batches changed the generation to %d", got)
	}
	if s.view.Score(1) != 0 {
		t.Fatal("rejected batch leaked a partial write")
	}
}

// TestQueryValidation exercises the request validation surface.
func TestQueryValidation(t *testing.T) {
	g := testGraph(20, 40, 35)
	s := mustServer(t, g, testScores(20, 35), 1, Options{SkipIndexes: true})
	bad := []QueryRequest{
		{K: 0, Aggregate: "sum"},
		{K: -2, Aggregate: "sum"},
		{K: 5, Aggregate: "median"},
		{K: 5, Aggregate: "sum", Algorithm: "dijkstra"},
		{K: 5, Aggregate: "sum", Algorithm: "backward", Gamma: 1.5},
		{K: 5, Aggregate: "sum", Order: "random"},
		{K: 5, Aggregate: "max", Algorithm: "forward"}, // MAX has no forward bound
	}
	for _, req := range bad {
		if _, err := s.Run(ctx, req); err == nil {
			t.Errorf("request %+v accepted", req)
		}
	}
	// Uppercase names and the default algorithm are fine.
	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "SUM"}); err != nil {
		t.Errorf("uppercase aggregate rejected: %v", err)
	}
	if _, err := s.Run(ctx, QueryRequest{K: 3, Aggregate: "max", Algorithm: "base"}); err != nil {
		t.Errorf("MAX via base rejected: %v", err)
	}
}

// TestHTTPEndpoints drives the JSON API end to end over httptest.
func TestHTTPEndpoints(t *testing.T) {
	g := testGraph(60, 180, 37)
	s := mustServer(t, g, testScores(60, 37), 2, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path string, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	// Query, then repeat: second answer must be flagged cached.
	resp, body := post("/v1/topk", `{"k":5,"aggregate":"sum","algorithm":"auto"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status %d: %s", resp.StatusCode, body)
	}
	var ans struct {
		Algorithm string        `json:"algorithm"`
		Planned   bool          `json:"planned"`
		Cached    bool          `json:"cached"`
		Results   []core.Result `json:"results"`
	}
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatalf("bad topk body %s: %v", body, err)
	}
	if !ans.Planned || ans.Algorithm == "auto" || len(ans.Results) != 5 {
		t.Fatalf("unexpected planned answer %+v", ans)
	}
	_, body = post("/v1/topk", `{"k":5,"aggregate":"sum","algorithm":"auto"}`)
	if err := json.Unmarshal(body, &ans); err != nil || !ans.Cached {
		t.Fatalf("repeat not cached: %s (err=%v)", body, err)
	}

	// Bad requests are 400 with a JSON error.
	for _, bad := range []string{`{`, `{"k":0,"aggregate":"sum"}`, `{"k":5,"aggregate":"sum","bogus":1}`} {
		resp, body = post("/v1/topk", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q gave status %d", bad, resp.StatusCode)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("non-JSON error response %s", body)
		}
	}

	// Score update bumps the generation.
	resp, body = post("/v1/scores", `{"updates":[{"node":1,"score":0.7}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scores status %d: %s", resp.StatusCode, body)
	}
	var upd UpdateResult
	if err := json.Unmarshal(body, &upd); err != nil || upd.Generation != 1 {
		t.Fatalf("unexpected update response %s (err=%v)", body, err)
	}

	// GET endpoints.
	for _, path := range []string{"/v1/stats", "/v1/health"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	var st Stats
	resp2, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if st.Generation != 1 || st.Cache.Hits < 1 || st.Nodes != 60 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if _, ok := st.Latency[ans.Algorithm]; !ok {
		t.Fatalf("stats missing latency histogram for %q (have %v)", ans.Algorithm, st.Latency)
	}

	// POST-only endpoints reject GET.
	resp3, err := http.Get(srv.URL + "/v1/topk")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/topk status %d", resp3.StatusCode)
	}
}

// TestDirectedGraphServing covers the engine-only path: no view, "view"
// algorithm rejected, updates still applied and invalidating.
func TestDirectedGraphServing(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	b := graph.NewBuilder(40, true)
	for i := 0; i < 160; i++ {
		u, v := rng.Intn(40), rng.Intn(40)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	scores := testScores(40, 39)
	s := mustServer(t, b.Build(), scores, 2, Options{SkipIndexes: true})
	if s.view != nil {
		t.Fatal("directed server built a view")
	}
	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "view"}); err == nil {
		t.Fatal(`"view" accepted on a directed graph`)
	}
	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "backward"}); err == nil {
		t.Fatal("backward accepted on a directed graph")
	}
	before, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "base"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyUpdates([]ScoreUpdate{{Node: before.Results[0].Node, Score: 0}}); err != nil {
		t.Fatal(err)
	}
	after, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "base"})
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation != 1 || after.Cached {
		t.Fatalf("post-update answer not recomputed: %+v", after)
	}
}

// TestCacheKeyCanonicalization: requests differing only in option fields
// their algorithm ignores share one cache entry (gamma only steers
// Backward, order only steers Forward, auto picks its own options).
func TestCacheKeyCanonicalization(t *testing.T) {
	g := testGraph(40, 120, 41)
	s := mustServer(t, g, testScores(40, 41), 2, Options{SkipIndexes: true})

	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "auto", Gamma: 0.2}); err != nil {
		t.Fatal(err)
	}
	ans, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "auto", Gamma: 0.7, Order: "degree-desc"})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Cached {
		t.Fatal("auto queries differing only in ignored options did not share a cache key")
	}

	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "base", Gamma: 0.1}); err != nil {
		t.Fatal(err)
	}
	ans, err = s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "base", Gamma: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Cached {
		t.Fatal("base queries differing only in gamma did not share a cache key")
	}

	// For Backward, gamma is load-bearing and must keep keys distinct.
	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "backward", Gamma: 0.1}); err != nil {
		t.Fatal(err)
	}
	ans, err = s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "backward", Gamma: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Cached {
		t.Fatal("backward queries with different gamma wrongly shared a cache key")
	}
}

// TestConcurrentUpdateBatchesAndLazyIndexes races multiple ApplyUpdates
// callers against queries that trigger core's lazy index builds
// (SkipIndexes), all under -race: the regression surface for the unlocked
// engine read in validation and the unguarded index construction.
func TestConcurrentUpdateBatchesAndLazyIndexes(t *testing.T) {
	const n = 100
	g := testGraph(n, 300, 43)
	s := mustServer(t, g, testScores(n, 43), 2, Options{SkipIndexes: true})

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for b := 0; b < 20; b++ {
				if _, err := s.ApplyUpdates([]ScoreUpdate{{Node: rng.Intn(n), Score: rng.Float64()}}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			algo := []string{"forward", "backward", "auto", "view"}[w%4]
			for q := 0; q < 15; q++ {
				if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: algo, Gamma: 0.3}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Generation(); got != 80 {
		t.Fatalf("generation = %d after 4×20 batches, want 80", got)
	}
	// Post-quiesce consistency against a fresh engine.
	fresh, err := core.NewEngine(g, s.view.ScoresCopy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.Base(8, core.Sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run(ctx, QueryRequest{K: 8, Aggregate: "sum"})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got.Results, want) {
		t.Fatalf("post-quiesce answer %v != fresh engine %v", got.Results, want)
	}
}
