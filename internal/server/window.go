package server

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the rolling-window side of the latency story. The
// cumulative latencyHist answers "since boot"; windowHist answers "right
// now": a ring of windowSlots slots, each covering windowSlotSeconds of
// wall time with the same log2 atomic buckets. Observations land in the
// slot for the current epoch (unix seconds / slot length); reads sum
// only slots whose epoch is still inside the window, so old traffic ages
// out in slot-sized steps instead of accumulating forever. The per-slot
// `over` counter tracks observations past the SLO latency objective
// exactly (the threshold is applied at observe time, not estimated from
// bucket bounds), which is what the burn-rate computation divides.

const (
	// windowSlots × windowSlotSeconds = the 120s rolling window.
	windowSlots       = 12
	windowSlotSeconds = 10
)

// windowSlot is one ring entry. epoch stamps which wall-clock slot the
// counters belong to; a slot whose epoch has fallen out of the window is
// dead weight until rotation recycles it.
type windowSlot struct {
	epoch   atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
	over    atomic.Int64
	buckets [48]atomic.Int64
}

func (s *windowSlot) reset(epoch int64) {
	s.count.Store(0)
	s.sumUS.Store(0)
	s.over.Store(0)
	for i := range s.buckets {
		s.buckets[i].Store(0)
	}
	s.epoch.Store(epoch)
}

// windowHist is a sliding-window log2 histogram. Observations are
// lock-free atomic adds; mu serializes only slot rotation. now is the
// injectable clock (nil = time.Now) so tests can march the window
// forward without sleeping through real slot boundaries.
type windowHist struct {
	mu   sync.Mutex
	now  func() time.Time
	slot [windowSlots]windowSlot
}

func (w *windowHist) epochNow() int64 {
	clk := w.now
	if clk == nil {
		clk = time.Now
	}
	return clk().Unix() / windowSlotSeconds
}

// currentSlot returns the live slot for epoch, recycling a stale ring
// entry under the mutex when the window has moved past it.
func (w *windowHist) currentSlot(epoch int64) *windowSlot {
	s := &w.slot[epoch%windowSlots]
	if s.epoch.Load() != epoch {
		w.mu.Lock()
		if s.epoch.Load() != epoch {
			s.reset(epoch)
		}
		w.mu.Unlock()
	}
	return s
}

// observe records one latency; over marks it past the SLO objective.
func (w *windowHist) observe(d time.Duration, over bool) {
	v := d.Microseconds()
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	s := w.currentSlot(w.epochNow())
	if i >= len(s.buckets) {
		i = len(s.buckets) - 1
	}
	s.count.Add(1)
	s.sumUS.Add(v)
	s.buckets[i].Add(1)
	if over {
		s.over.Add(1)
	}
}

// windowSnapshot is the summed view of every slot still in the window.
type windowSnapshot struct {
	counts [48]int64
	count  int64
	sumUS  int64
	over   int64
}

// snapshot sums the live slots. Slots with epochs outside
// (now-window, now] are skipped, which is how decay happens: nothing is
// zeroed eagerly, expired slots simply stop being counted.
func (w *windowHist) snapshot() windowSnapshot {
	cur := w.epochNow()
	min := cur - windowSlots + 1
	var out windowSnapshot
	for i := range w.slot {
		s := &w.slot[i]
		if e := s.epoch.Load(); e < min || e > cur {
			continue
		}
		out.count += s.count.Load()
		out.sumUS += s.sumUS.Load()
		out.over += s.over.Load()
		for j := range s.buckets {
			out.counts[j] += s.buckets[j].Load()
		}
	}
	return out
}

// quantile mirrors latencyHist.quantile on the summed window: the
// bucket-upper-bound estimate in µs.
func (ws windowSnapshot) quantile(q float64) float64 {
	if ws.count == 0 {
		return 0
	}
	rank := int64(q * float64(ws.count))
	if rank >= ws.count {
		rank = ws.count - 1
	}
	var seen int64
	for i := range ws.counts {
		seen += ws.counts[i]
		if seen > rank {
			return float64(uint64(1) << i)
		}
	}
	return float64(uint64(1) << (len(ws.counts) - 1))
}

// summary renders the window for /v1/stats, shape-compatible with the
// cumulative LatencySummary.
func (ws windowSnapshot) summary() LatencySummary {
	s := LatencySummary{Count: ws.count, P50US: ws.quantile(0.50), P99US: ws.quantile(0.99)}
	if ws.count > 0 {
		s.MeanUS = float64(ws.sumUS) / float64(ws.count)
	}
	return s
}

// SLO is a latency service-level objective: Target fraction of queries
// must finish within Latency. The zero value disables SLO tracking.
type SLO struct {
	// Latency is the per-query objective (lonad -slo-latency-ms).
	Latency time.Duration
	// Target is the fraction of queries that must meet it, in (0,1) —
	// e.g. 0.99 tolerates 1% of window queries over the objective.
	Target float64
}

// enabled reports whether the objective is configured and coherent.
func (o SLO) enabled() bool {
	return o.Latency > 0 && o.Target > 0 && o.Target < 1
}

// burnRate is the window's error budget consumption rate: the fraction
// of queries over the objective divided by the fraction the target
// allows. 1.0 means the budget burns exactly as fast as it refills;
// above 1 the SLO is being violated right now. An idle window burns
// nothing.
func (o SLO) burnRate(ws windowSnapshot) float64 {
	if !o.enabled() || ws.count == 0 {
		return 0
	}
	bad := float64(ws.over) / float64(ws.count)
	return bad / (1 - o.Target)
}

// SLOStats is the SLO section of /v1/stats and /v1/health: the rolling
// window judged against the configured objective.
type SLOStats struct {
	LatencyMS     float64 `json:"latency_ms"`     // the objective
	Target        float64 `json:"target"`         // required fraction under it
	WindowSeconds int     `json:"window_seconds"` // rolling window length
	WindowQueries int64   `json:"window_queries"` // queries in the window
	WindowOver    int64   `json:"window_over"`    // of those, over the objective
	BurnRate      float64 `json:"burn_rate"`      // error-budget burn rate
	Burning       bool    `json:"burning"`        // burn rate >= 1: actively violating
}

// sloStats judges the current window against the configured objective;
// nil when no SLO is configured.
func (s *Server) sloStats() *SLOStats {
	o := s.opts.SLO
	if !o.enabled() {
		return nil
	}
	ws := s.metrics.window.snapshot()
	burn := o.burnRate(ws)
	return &SLOStats{
		LatencyMS:     float64(o.Latency.Microseconds()) / 1000,
		Target:        o.Target,
		WindowSeconds: windowSlots * windowSlotSeconds,
		WindowQueries: ws.count,
		WindowOver:    ws.over,
		BurnRate:      burn,
		Burning:       burn >= 1,
	}
}
