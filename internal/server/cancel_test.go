package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/relevance"
)

// collabServer builds the acceptance-scale server once: the scale-0.2
// collaboration network at h=3, heavy enough that an uncancelled "base"
// query runs for hundreds of milliseconds — far above the scheduler's
// timer-delivery granularity. Indexes are skipped: the deadline tests
// force "base", which needs none.
var (
	collabOnce sync.Once
	collabSrv  *Server
)

func collabServer(t *testing.T) *Server {
	t.Helper()
	collabOnce.Do(func() {
		g := gen.Collaboration(gen.DatasetScale(0.2), 20100301)
		scores := relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.01}, 20100302)
		s, err := New(g, scores, 3, Options{SkipIndexes: true})
		if err != nil {
			panic(err)
		}
		collabSrv = s
	})
	return collabSrv
}

// slowQuery is the request the deadline/disconnect tests abandon.
var slowQuery = QueryRequest{K: 100, Aggregate: "sum", Algorithm: "base"}

// TestTimeoutMSDeadlinesInProcess is the serving half of the acceptance
// test: a timeout_ms far below the query's runtime returns
// context.DeadlineExceeded well before the uncancelled runtime, the
// timeout counter increments, and the server keeps serving.
func TestTimeoutMSDeadlinesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale graph")
	}
	s := collabServer(t)

	start := time.Now()
	if _, err := s.Run(context.Background(), slowQuery); err != nil {
		t.Fatal(err)
	}
	uncancelled := time.Since(start)

	timeoutsBefore := s.Stats().QueryTimeouts
	// A fresh k dodges the result cache (a cached answer would — correctly
	// — beat any deadline) so the timeout hits a live engine query.
	deadlined := slowQuery
	deadlined.K = 110
	deadlined.TimeoutMS = 25
	start = time.Now()
	_, err := s.Run(context.Background(), deadlined)
	aborted := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v after %v, want context.DeadlineExceeded", err, aborted)
	}
	if uncancelled > 100*time.Millisecond && aborted > uncancelled/2 {
		t.Fatalf("deadlined query took %v, want well under the uncancelled %v", aborted, uncancelled)
	}
	if got := s.Stats().QueryTimeouts; got != timeoutsBefore+1 {
		t.Fatalf("QueryTimeouts = %d, want %d", got, timeoutsBefore+1)
	}

	// Deadlined answers are not cached, and the server still serves: the
	// same request with a generous timeout completes cold.
	generous := deadlined
	generous.TimeoutMS = 120000
	ans, err := s.Run(context.Background(), generous)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Cached {
		t.Fatal("deadlined failure left a cached entry behind")
	}
	if len(ans.Results) != generous.K {
		t.Fatalf("post-timeout query returned %d results", len(ans.Results))
	}
}

// TestTimeoutMSOverHTTP drives the same acceptance through the full
// handler: timeout_ms surfaces as 504 with a JSON error, well before the
// uncancelled runtime.
func TestTimeoutMSOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale graph")
	}
	s := collabServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/topk", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, blob
	}

	start := time.Now()
	resp, body := post(`{"k":100,"aggregate":"sum","algorithm":"base"}`)
	uncancelled := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query status %d: %s", resp.StatusCode, body)
	}

	// A fresh k dodges the result cache so the deadline hits a live query.
	start = time.Now()
	resp, body = post(`{"k":101,"aggregate":"sum","algorithm":"base","timeout_ms":25}`)
	aborted := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("non-JSON 504 body %q", body)
	}
	if uncancelled > 100*time.Millisecond && aborted > uncancelled/2 {
		t.Fatalf("deadlined request took %v, want well under the uncancelled %v", aborted, uncancelled)
	}
}

// TestClientDisconnectAbortsQuery: dropping the HTTP connection mid-query
// cancels the engine work (the cancel counter moves) and leaves the server
// fully serving.
func TestClientDisconnectAbortsQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale graph")
	}
	s := collabServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	cancelsBefore := s.Stats().QueryCancels
	ctx, cancel := context.WithCancel(context.Background())
	// A fresh k dodges the cache; cancel the client a moment in.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/topk",
		strings.NewReader(`{"k":102,"aggregate":"sum","algorithm":"base"}`))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite client cancellation")
	}

	// The handler goroutine notices asynchronously; wait for the counter.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().QueryCancels == cancelsBefore {
		if time.Now().After(deadline) {
			t.Fatal("query cancellation never recorded after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server still answers.
	ans, err := s.Run(context.Background(), QueryRequest{K: 5, Aggregate: "sum", Algorithm: "base"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Results) != 5 {
		t.Fatalf("post-disconnect query returned %d results", len(ans.Results))
	}
}

// TestRequestBudgetAndCandidatesOverWire: the new Query fields round-trip
// through the JSON API — budget truncation is flagged, candidate
// restriction binds, and both participate in the cache key.
func TestRequestBudgetAndCandidatesOverWire(t *testing.T) {
	g := testGraph(80, 240, 51)
	s := mustServer(t, g, testScores(80, 51), 2, Options{SkipIndexes: true})

	full, err := s.Run(ctx, QueryRequest{K: 10, Aggregate: "sum", Algorithm: "base"})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("unbudgeted answer flagged truncated")
	}

	capped, err := s.Run(ctx, QueryRequest{K: 10, Aggregate: "sum", Algorithm: "base", Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Truncated || capped.Stats.Evaluated != 5 {
		t.Fatalf("budget 5: truncated=%v evaluated=%d", capped.Truncated, capped.Stats.Evaluated)
	}
	if capped.Cached {
		t.Fatal("budgeted request wrongly hit the unbudgeted cache entry")
	}

	// Candidate restriction binds and is canonicalized into the cache key:
	// the same set in a different order (with duplicates) is a cache hit.
	restricted, err := s.Run(ctx, QueryRequest{K: 3, Aggregate: "sum", Algorithm: "base", Candidates: []int{7, 3, 11}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range restricted.Results {
		if r.Node != 3 && r.Node != 7 && r.Node != 11 {
			t.Fatalf("non-candidate node %d in restricted answer", r.Node)
		}
	}
	again, err := s.Run(ctx, QueryRequest{K: 3, Aggregate: "sum", Algorithm: "base", Candidates: []int{11, 7, 3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("equivalent candidate sets did not share a cache key")
	}

	// Workers participates in the cache key exactly when it can change
	// the answer: a budgeted parallel scan splits its budget across
	// per-worker node ranges, so different (post-clamp) worker counts
	// cover different nodes and must not share an entry.
	if runtime.GOMAXPROCS(0) >= 2 {
		if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "parallel", Workers: 1, Budget: 6}); err != nil {
			t.Fatal(err)
		}
		w2, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "parallel", Workers: 2, Budget: 6})
		if err != nil {
			t.Fatal(err)
		}
		if w2.Cached {
			t.Fatal("budgeted parallel runs with different worker counts shared a cache key")
		}
	}
	// Beyond the core count the clamp makes worker counts equivalent, so
	// they do share one entry.
	max := runtime.GOMAXPROCS(0)
	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "parallel", Workers: max + 1, Budget: 9}); err != nil {
		t.Fatal(err)
	}
	over, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum", Algorithm: "parallel", Workers: max + 7, Budget: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !over.Cached {
		t.Fatal("over-core worker counts did not collapse onto one cache entry")
	}
	// On a non-parallel algorithm workers is canonicalized away.
	if _, err := s.Run(ctx, QueryRequest{K: 6, Aggregate: "sum", Algorithm: "base", Workers: 2}); err != nil {
		t.Fatal(err)
	}
	sameAnswer, err := s.Run(ctx, QueryRequest{K: 6, Aggregate: "sum", Algorithm: "base", Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswer.Cached {
		t.Fatal("base queries differing only in workers did not share a cache key")
	}

	// Validation errors surface for the new fields.
	if _, err := s.Run(ctx, QueryRequest{K: 3, Aggregate: "sum", Budget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := s.Run(ctx, QueryRequest{K: 3, Aggregate: "sum", TimeoutMS: -5}); err == nil {
		t.Fatal("negative timeout_ms accepted")
	}
	if _, err := s.Run(ctx, QueryRequest{K: 3, Aggregate: "sum", Candidates: []int{80}}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}

	// The stats report byte-accounted cache usage.
	st := s.Stats()
	if st.Cache.Bytes <= 0 || st.Cache.CapacityBytes <= 0 {
		t.Fatalf("cache byte stats not populated: %+v", st.Cache)
	}
	if st.Cache.Bytes > st.Cache.CapacityBytes {
		t.Fatalf("cache bytes %d exceed capacity %d", st.Cache.Bytes, st.Cache.CapacityBytes)
	}
}

// TestSingleflightSurvivorReexecutes: when the caller that executes a
// collapsed query is cancelled, a waiter with a live context re-executes
// instead of inheriting the cancellation.
func TestSingleflightSurvivorReexecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale graph")
	}
	s := collabServer(t)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()

	req := QueryRequest{K: 103, Aggregate: "sum", Algorithm: "base"}
	var wg sync.WaitGroup
	wg.Add(2)
	leaderErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := s.Run(leaderCtx, req)
		leaderErr <- err
	}()
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond) // let the leader take the flight
		cancelLeader()
	}()
	// This caller may join the leader's flight and see it cancelled; the
	// retry path must still deliver a real answer.
	ans, err := s.Run(context.Background(), req)
	wg.Wait()
	if err != nil {
		t.Fatalf("surviving caller got %v", err)
	}
	if len(ans.Results) != 103 {
		t.Fatalf("surviving caller got %d results", len(ans.Results))
	}
	if err := <-leaderErr; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("leader got %v, want nil or context.Canceled", err)
	}
}
