package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// editBatch is the canonical test batch: add a node, wire it to two
// hubs, and drop one existing edge.
func editBatch(g *graph.Graph) []EditRequest {
	return []EditRequest{
		{Op: "add-node"},
		{Op: "add-edge", U: g.NumNodes(), V: 0},
		{Op: "add-edge", U: g.NumNodes(), V: 1},
		{Op: "remove-edge", U: 0, V: int(g.Neighbors(0)[0])},
	}
}

// identicalResults requires byte-identical top-k lists.
func identicalResults(t *testing.T, label string, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Node != want[i].Node || math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestServerApplyEdits: an edit batch bumps the generation, retires
// cached answers, repairs the view incrementally, and leaves every
// algorithm's answers byte-identical to a server freshly built over the
// mutated graph.
func TestServerApplyEdits(t *testing.T) {
	g := testGraph(200, 400, 1)
	scores := testScores(200, 1)
	s := mustServer(t, g, scores, 2, Options{SkipIndexes: true})

	warm := QueryRequest{K: 10, Aggregate: "sum", Algorithm: "base"}
	before, err := s.Run(ctx, warm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx, warm); err != nil {
		t.Fatal(err)
	}

	batch := editBatch(g)
	res, err := s.ApplyEdits(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 1 || res.NodesAdded != 1 || res.EdgesAdded != 2 || res.EdgesRemoved != 1 {
		t.Fatalf("result %+v", res)
	}
	if res.Nodes != 201 || res.Repaired == 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Repaired >= 201 {
		t.Fatalf("repaired %d of 201 nodes — repair was not incremental", res.Repaired)
	}

	// The mutated-topology oracle: a fresh server over the same state.
	edits := make([]graph.Edit, len(batch))
	for i, r := range batch {
		op, err := graph.ParseEditOp(r.Op)
		if err != nil {
			t.Fatal(err)
		}
		edits[i] = graph.Edit{Op: op, U: r.U, V: r.V}
	}
	mutated, _, err := g.ApplyEdits(edits)
	if err != nil {
		t.Fatal(err)
	}
	oracle := mustServer(t, mutated, append(append([]float64(nil), scores...), 0), 2, Options{SkipIndexes: true})

	for _, algo := range []string{"base", "backward", "view", "auto"} {
		req := QueryRequest{K: 10, Aggregate: "sum", Algorithm: algo}
		got, err := s.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cached {
			t.Fatalf("%s: post-edit answer served from the pre-edit cache", algo)
		}
		want, err := oracle.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		identicalResults(t, algo, got.Results, want.Results)
	}
	if identical := func() bool {
		after, err := s.Run(ctx, warm)
		if err != nil {
			t.Fatal(err)
		}
		if len(after.Results) != len(before.Results) {
			return false
		}
		for i := range before.Results {
			if after.Results[i] != before.Results[i] {
				return false
			}
		}
		return true
	}(); identical {
		t.Fatal("edits (including an edge removal at node 0) changed no answer — test is vacuous")
	}

	st := s.Stats()
	if st.Edits.Batches != 1 || st.Edits.NodesAdded != 1 || st.Edits.EdgesAdded != 2 ||
		st.Edits.EdgesRemoved != 1 || st.Edits.Repaired == 0 {
		t.Fatalf("stats %+v", st.Edits)
	}
	if st.Nodes != 201 {
		t.Fatalf("stats report %d nodes, want 201", st.Nodes)
	}

	// A scored new node participates exactly like an original one.
	if _, err := s.ApplyUpdates([]ScoreUpdate{{Node: 200, Score: 1}}); err != nil {
		t.Fatalf("score update to added node: %v", err)
	}
}

// TestServerApplyEditsValidation: malformed ops and invalid edits reject
// the whole batch without touching the generation.
func TestServerApplyEditsValidation(t *testing.T) {
	g := testGraph(50, 80, 2)
	s := mustServer(t, g, testScores(50, 2), 2, Options{SkipIndexes: true})
	cases := [][]EditRequest{
		nil, // empty
		{{Op: "frobnicate", U: 1, V: 2}},
		{{Op: "add-edge", U: 1, V: 99}},
		{{Op: "add-edge", U: 3, V: 3}},
		{{Op: "add-node"}, {Op: "remove-edge", U: -1, V: 2}},
	}
	for i, batch := range cases {
		if _, err := s.ApplyEdits(batch); err == nil {
			t.Fatalf("case %d: invalid batch accepted", i)
		}
	}
	if s.Generation() != 0 {
		t.Fatalf("generation %d after rejected batches", s.Generation())
	}
}

// TestEdgesEndpoint drives /v1/edges over HTTP.
func TestEdgesEndpoint(t *testing.T) {
	g := testGraph(80, 150, 3)
	s := mustServer(t, g, testScores(80, 3), 2, Options{SkipIndexes: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(map[string]any{"edits": []map[string]any{
		{"op": "add-node"},
		{"op": "add-edge", "u": 80, "v": 3},
	}})
	resp, err := http.Post(srv.URL+"/v1/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res EditsResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Generation != 1 || res.NodesAdded != 1 || res.EdgesAdded != 1 || res.Nodes != 81 {
		t.Fatalf("response %+v", res)
	}

	for _, bad := range []string{
		`{"edits":[]}`,
		`{"edits":[{"op":"subtract-edge","u":1,"v":2}]}`,
		`{"edits":[{"op":"add-edge","u":1,"v":8080}]}`,
		`{"edit":[]}`, // unknown field
	} {
		resp, err := http.Post(srv.URL+"/v1/edges", "application/json", bytes.NewReader([]byte(bad)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	if got := s.Generation(); got != 1 {
		t.Fatalf("generation %d after rejected requests, want 1", got)
	}

	// GET is not allowed.
	resp2, err := http.Get(srv.URL + "/v1/edges")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp2.StatusCode)
	}
}

// TestShardedServerEdits: a -shards style server applies edits through
// the cluster transport and stays byte-identical to an unsharded server
// over the mutated state — the Coordinator ≡ Engine property surviving
// structural mutation end to end through the serving layer.
func TestShardedServerEdits(t *testing.T) {
	g := testGraph(300, 600, 4)
	scores := testScores(300, 4)
	sharded := mustServer(t, g, scores, 2, Options{Shards: 4, SkipIndexes: true})

	batch := editBatch(g)
	if _, err := sharded.ApplyEdits(batch); err != nil {
		t.Fatal(err)
	}
	// Score the added node through the sharded update fan-out — the
	// regression half: this used to assume a fixed node set.
	if _, err := sharded.ApplyUpdates([]ScoreUpdate{{Node: 300, Score: 0.75}}); err != nil {
		t.Fatalf("score fan-out to added node: %v", err)
	}

	flat := mustServer(t, g, scores, 2, Options{SkipIndexes: true})
	if _, err := flat.ApplyEdits(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := flat.ApplyUpdates([]ScoreUpdate{{Node: 300, Score: 0.75}}); err != nil {
		t.Fatal(err)
	}

	for _, req := range []QueryRequest{
		{K: 12, Aggregate: "sum", Algorithm: "base"},
		{K: 12, Aggregate: "avg", Algorithm: "base"},
		{K: 12, Aggregate: "count", Algorithm: "auto"},
		{K: 1, Aggregate: "sum", Algorithm: "base", Candidates: []int{300}},
	} {
		got, err := sharded.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := flat.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		identicalResults(t, req.Aggregate+"/"+req.Algorithm, got.Results, want.Results)
	}
}

// TestReshardAfterNodeAdd is the regression test for /v1/reshard on a
// grown node set: resharding after /v1/edges added nodes must partition
// the current graph (new nodes included), not the boot-time one.
func TestReshardAfterNodeAdd(t *testing.T) {
	g := testGraph(250, 500, 5)
	scores := testScores(250, 5)
	s := mustServer(t, g, scores, 2, Options{Shards: 2, SkipIndexes: true})

	if _, err := s.ApplyEdits([]EditRequest{
		{Op: "add-node"},
		{Op: "add-node"},
		{Op: "add-edge", U: 250, V: 251},
		{Op: "add-edge", U: 250, V: 0},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyUpdates([]ScoreUpdate{{Node: 251, Score: 1}}); err != nil {
		t.Fatal(err)
	}
	topoBefore := s.TopologyGeneration()
	if err := s.Reshard(4); err != nil {
		t.Fatalf("reshard after node adds: %v", err)
	}
	if s.Shards() != 4 || s.TopologyGeneration() != topoBefore+1 {
		t.Fatalf("shards=%d topo=%d", s.Shards(), s.TopologyGeneration())
	}

	// The resharded topology must still answer for the new nodes.
	flat := mustServer(t, s.Graph(), s.Scores(), 2, Options{SkipIndexes: true})
	for _, req := range []QueryRequest{
		{K: 10, Aggregate: "sum", Algorithm: "base"},
		{K: 2, Aggregate: "sum", Algorithm: "base", Candidates: []int{250, 251}},
	} {
		got, err := s.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := flat.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		identicalResults(t, "resharded "+req.Aggregate, got.Results, want.Results)
	}
}
