package server

import (
	"context"
	"errors"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/otlp"
)

// latencyHist is a lock-free log2-bucketed latency histogram: bucket i
// holds observations in [2^(i-1), 2^i) microseconds. Quantiles read the
// bucket upper bound, so reported p50/p99 are conservative (within 2× of
// the true value) — accurate enough to watch orders-of-magnitude effects
// like cache hits vs cold queries.
type latencyHist struct {
	count   atomic.Int64
	sumUS   atomic.Int64
	buckets [48]atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	h.observeValue(d.Microseconds())
}

// observeValue records a raw non-negative integer observation — the same
// log2 bucketing reused as a generic value histogram (λ raises per
// query, per-shard result items). For latency use the µs-denominated
// observe above.
func (h *latencyHist) observeValue(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.count.Add(1)
	h.sumUS.Add(v)
	h.buckets[i].Add(1)
}

// quantile returns the bucket-upper-bound estimate of quantile q in [0,1].
func (h *latencyHist) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return float64(uint64(1) << i) // bucket upper bound in µs
		}
	}
	return float64(uint64(1) << (len(h.buckets) - 1))
}

// LatencySummary is one histogram rendered for /v1/stats.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
}

func (h *latencyHist) summary() LatencySummary {
	n := h.count.Load()
	s := LatencySummary{Count: n, P50US: h.quantile(0.50), P99US: h.quantile(0.99)}
	if n > 0 {
		s.MeanUS = float64(h.sumUS.Load()) / float64(n)
	}
	return s
}

// metrics aggregates everything /v1/stats reports. Counters are atomic;
// the label → histogram map is guarded by mu (labels are few and stable,
// so the map rarely grows past the first requests).
type metrics struct {
	start     time.Time
	hits      atomic.Int64
	misses    atomic.Int64
	collapsed atomic.Int64
	updates   atomic.Int64
	mutations atomic.Int64

	// Structural-mutation counters (/v1/edges batches).
	editBatches  atomic.Int64
	edgesAdded   atomic.Int64
	edgesRemoved atomic.Int64
	nodesAdded   atomic.Int64
	editRepaired atomic.Int64

	// Context-abort counters: queries abandoned at a deadline (the
	// request's timeout_ms or a caller deadline) vs. cancelled outright
	// (client disconnect, shutdown drain).
	timeouts atomic.Int64
	cancels  atomic.Int64

	// Sharded-execution counters, live only when the server fans out
	// through a cluster coordinator.
	shardQueries    atomic.Int64 // shard queries launched across all fan-outs
	shardsCut       atomic.Int64 // shards ended early by the TA merge bound
	clusterMessages atomic.Int64 // cross-shard messages (bounds, queries, result items)
	reshards        atomic.Int64 // topology rebuilds via Reshard
	// Streaming counters: partial frames folded into merges, budget
	// traversals moved from cut shards to still-running ones, and λ
	// tightenings that actually moved the merge threshold.
	partialBatches      atomic.Int64
	budgetRedistributed atomic.Int64
	lambdaRaises        atomic.Int64
	// Priming and grant counters: queries whose launch λ was seeded from
	// score sketches (cold launches eliminated), and mid-run budget grant
	// round trips served over the ack stream.
	lambdaPrimed  atomic.Int64
	grantRequests atomic.Int64

	// editRebuilds counts /v1/edges batches that took the from-scratch
	// rebuild path instead of incremental repair.
	editRebuilds atomic.Int64

	// slowQueries counts executions at or over Options.SlowQuery.
	slowQueries atomic.Int64

	// window is the rolling 120s latency histogram beside the cumulative
	// per-algorithm hists: same log2 buckets, but old traffic ages out,
	// so it answers "what is p99 right now" and feeds the SLO burn rate.
	window windowHist

	// snapshotsWritten counts snapshots persisted via POST /v1/snapshot
	// or Server.WriteSnapshot.
	snapshotsWritten atomic.Int64

	// Versioned-lake counters: commits appended to the journal, commits
	// replayed through the incremental apply paths at boot, time-travel
	// queries (as_of naming a non-live retained generation) and the
	// subset served straight from the result cache, and worker catch-up
	// rounds (with the commits shipped for replay).
	journalAppends  atomic.Int64
	journalReplayed atomic.Int64
	asOfQueries     atomic.Int64
	asOfHits        atomic.Int64
	catchups        atomic.Int64
	catchupCommits  atomic.Int64

	// Value histograms (log2-bucketed, unitless): λ raises per sharded
	// query, and result items shipped per launched shard query — the
	// message-size observation the adaptive-tuning roadmap items consume.
	lambdaPerQuery latencyHist
	shardItems     latencyHist

	// Engine work counters summed over every executed (non-cached) query.
	evaluated   atomic.Int64
	pruned      atomic.Int64
	distributed atomic.Int64
	visited     atomic.Int64

	mu    sync.RWMutex
	hists map[string]*latencyHist
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), hists: make(map[string]*latencyHist)}
}

// hist returns the histogram for an algorithm label, creating it on first
// use.
func (m *metrics) hist(label string) *latencyHist {
	m.mu.RLock()
	h, ok := m.hists[label]
	m.mu.RUnlock()
	if ok {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok = m.hists[label]; ok {
		return h
	}
	h = &latencyHist{}
	m.hists[label] = h
	return h
}

// noteQueryAborted classifies a query error into the timeout/cancellation
// counters; non-context errors (validation and the like) are not counted.
func (m *metrics) noteQueryAborted(err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		m.timeouts.Add(1)
	case errors.Is(err, context.Canceled):
		m.cancels.Add(1)
	}
}

func (m *metrics) recordQuery(label string, d time.Duration, stats core.QueryStats) {
	m.hist(label).observe(d)
	m.evaluated.Add(int64(stats.Evaluated))
	m.pruned.Add(int64(stats.Pruned))
	m.distributed.Add(int64(stats.Distributed))
	m.visited.Add(int64(stats.Visited))
}

// CacheStats is the cache section of /v1/stats.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	HitRate   float64 `json:"hit_rate"`
	Entries   int     `json:"entries"`
	Collapsed int64   `json:"collapsed"` // duplicate in-flight queries absorbed by singleflight
	// Bytes is the approximate resident size of all cached answers — the
	// same per-entry sizing eviction enforces against CapacityBytes.
	Bytes         int64 `json:"cache_bytes"`
	CapacityBytes int64 `json:"cache_capacity_bytes"`
}

// EngineStats sums the core.QueryStats of every executed query — the
// quantities the paper's pruning bounds shrink. A healthy cache keeps
// these flat while queries repeat.
type EngineStats struct {
	Evaluated   int64 `json:"evaluated"`
	Pruned      int64 `json:"pruned"`
	Distributed int64 `json:"distributed"`
	Visited     int64 `json:"visited"`
}

// EditStats is the structural-mutation section of /v1/stats: what the
// /v1/edges batches did to the topology and how much incremental repair
// they cost (nodes recomputed instead of a full rebuild).
type EditStats struct {
	Batches      int64 `json:"batches"`
	EdgesAdded   int64 `json:"edges_added"`
	EdgesRemoved int64 `json:"edges_removed"`
	NodesAdded   int64 `json:"nodes_added"`
	// Repaired sums the per-batch affected-node counts — the incremental
	// work actually paid, vs Batches × Nodes for full rebuilds.
	Repaired int64 `json:"repaired"`
	// Rebuilds counts batches that fell back to a from-scratch rebuild
	// (the affected closure covered most of the graph).
	Rebuilds int64 `json:"rebuilds"`
}

// ShardLatency is one shard's row of the cluster stats section.
type ShardLatency struct {
	Shard   int            `json:"shard"`
	Owned   int            `json:"owned,omitempty"` // nodes this shard ranks
	Latency LatencySummary `json:"latency"`
}

// ClusterStats is the sharded-execution section of /v1/stats, present
// only when the server fans queries out through a cluster coordinator.
type ClusterStats struct {
	Shards int  `json:"shards"`
	Remote bool `json:"remote"` // shards live behind HTTP workers
	// TopologyGen is the shard-topology generation embedded in every
	// cache key; Reshards counts how often it was bumped.
	TopologyGen uint64 `json:"topology_generation"`
	Reshards    int64  `json:"reshards"`
	// EdgeCut and BoundaryNodes describe the partitioning itself: cut
	// edges (in-process topologies only) and ghost nodes replicated into
	// shard closures.
	EdgeCut       int   `json:"edge_cut,omitempty"`
	BoundaryNodes int64 `json:"boundary_nodes"`
	// Streaming reports whether shard queries stream partial batches (the
	// default), letting TA cuts land inside running shards.
	Streaming bool `json:"streaming"`
	// ShardQueries / ShardsCut / Messages accumulate over every fan-out:
	// shard queries launched, shards ended early by the TA merge bound,
	// and cross-shard messages (bound probes, query round-trips, result
	// items shipped, partial frames, λ acks).
	ShardQueries int64 `json:"shard_queries"`
	ShardsCut    int64 `json:"shards_cut"`
	Messages     int64 `json:"messages"`
	// PartialBatches counts streamed partial frames folded into merges;
	// BudgetRedistributed counts traversals moved from cut shards'
	// stranded budget slices to shards that could still use them;
	// LambdaRaises counts folded batches that actually tightened λ.
	PartialBatches      int64 `json:"partial_batches"`
	BudgetRedistributed int64 `json:"budget_redistributed"`
	LambdaRaises        int64 `json:"lambda_raises"`
	// LambdaPrimed counts queries whose launch λ was seeded from per-shard
	// score sketches (a zero-message warm start); GrantRequests counts
	// mid-run budget grant round trips served over the ack stream.
	LambdaPrimed  int64          `json:"lambda_primed"`
	GrantRequests int64          `json:"grant_requests"`
	PerShard      []ShardLatency `json:"per_shard"`
}

// JournalStats is the versioned-graph-lake section of /v1/stats: the
// commit journal's shape plus the time-travel and catch-up counters.
// Present whenever the server retains generations (always), with the
// journal fields zero when no -journal is configured.
type JournalStats struct {
	// Enabled reports whether a commit journal is configured.
	Enabled bool `json:"enabled"`
	// Depth is the number of commits currently in the journal log;
	// LastGen is the newest journaled generation.
	Depth   int    `json:"depth"`
	LastGen uint64 `json:"last_generation,omitempty"`
	// Appends counts commits appended this process; Replayed counts
	// commits replayed through the incremental apply paths at boot.
	Appends  int64 `json:"appends"`
	Replayed int64 `json:"replayed"`
	// Retained is the current generation-ring depth (live generation
	// included); OldestRetained is the oldest generation as_of can name.
	Retained       int    `json:"retained"`
	OldestRetained uint64 `json:"oldest_retained"`
	// AsOfQueries counts queries that named a non-live retained
	// generation; AsOfHits counts those served straight from the result
	// cache (the recorded live answer).
	AsOfQueries int64 `json:"as_of_queries"`
	AsOfHits    int64 `json:"as_of_hits"`
	// Catchups counts worker catch-up rounds that replayed a journal
	// suffix into at least one stale worker; CatchupCommits sums the
	// commits shipped.
	Catchups       int64 `json:"catchups"`
	CatchupCommits int64 `json:"catchup_commits"`
}

// Stats is the full /v1/stats response. Every counter and histogram is
// cumulative since Since (the server's start): pair two scrapes' deltas
// with the UptimeS delta to compute rates.
type Stats struct {
	Generation uint64 `json:"generation"`
	// Since is the server start time in RFC3339 — the zero point every
	// cumulative counter and histogram below accumulates from.
	Since         string                    `json:"since"`
	UptimeS       float64                   `json:"uptime_s"`
	Nodes         int                       `json:"nodes"`
	Edges         int64                     `json:"edges"`
	H             int                       `json:"h"`
	UpdateBatches int64                     `json:"update_batches"`
	Mutations     int64                     `json:"mutations"`
	Edits         EditStats                 `json:"edits"`
	SlowQueries   int64                     `json:"slow_queries,omitempty"`
	QueryTimeouts int64                     `json:"query_timeouts"` // queries abandoned at a deadline
	QueryCancels  int64                     `json:"query_cancels"`  // queries cancelled by the caller
	Cache         CacheStats                `json:"cache"`
	Engine        EngineStats               `json:"engine"`
	Cluster       *ClusterStats             `json:"cluster,omitempty"`
	Snapshot      *SnapshotStats            `json:"snapshot,omitempty"`
	Journal       *JournalStats             `json:"journal,omitempty"`
	Latency       map[string]LatencySummary `json:"latency"`
	// LatencyWindow summarizes the rolling 120s window — "now", where
	// Latency above is "since boot".
	LatencyWindow LatencySummary `json:"latency_window"`
	// SLO judges the window against the configured latency objective;
	// absent when no SLO is configured.
	SLO *SLOStats `json:"slo,omitempty"`
	// OTLP is the trace exporter's accounting (exported/dropped/sampled
	// batches); absent when no -otlp-endpoint is configured.
	OTLP *otlp.ExporterStats `json:"otlp,omitempty"`
}

func (m *metrics) snapshot() Stats {
	s := Stats{
		Since:         m.start.UTC().Format(time.RFC3339),
		UptimeS:       time.Since(m.start).Seconds(),
		UpdateBatches: m.updates.Load(),
		Mutations:     m.mutations.Load(),
		Edits: EditStats{
			Batches:      m.editBatches.Load(),
			EdgesAdded:   m.edgesAdded.Load(),
			EdgesRemoved: m.edgesRemoved.Load(),
			NodesAdded:   m.nodesAdded.Load(),
			Repaired:     m.editRepaired.Load(),
			Rebuilds:     m.editRebuilds.Load(),
		},
		SlowQueries:   m.slowQueries.Load(),
		QueryTimeouts: m.timeouts.Load(),
		QueryCancels:  m.cancels.Load(),
		Cache: CacheStats{
			Hits:      m.hits.Load(),
			Misses:    m.misses.Load(),
			Collapsed: m.collapsed.Load(),
		},
		Engine: EngineStats{
			Evaluated:   m.evaluated.Load(),
			Pruned:      m.pruned.Load(),
			Distributed: m.distributed.Load(),
			Visited:     m.visited.Load(),
		},
		Latency: make(map[string]LatencySummary),
	}
	if total := s.Cache.Hits + s.Cache.Misses; total > 0 {
		s.Cache.HitRate = float64(s.Cache.Hits) / float64(total)
	}
	m.mu.RLock()
	labels := make([]string, 0, len(m.hists))
	for label := range m.hists {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		s.Latency[label] = m.hists[label].summary()
	}
	m.mu.RUnlock()
	return s
}
