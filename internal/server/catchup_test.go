package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
)

// swappableWorker is an httptest-backed shard worker whose handler can
// be atomically replaced mid-test — the moral equivalent of killing the
// worker process and starting a fresh one on the same address. It also
// records which endpoints the CURRENT incarnation has served, so tests
// can prove catch-up went through /v1/shard/replay and not a re-send of
// the original batches.
type swappableWorker struct {
	mu    sync.Mutex
	h     http.Handler
	paths map[string]int
}

func (sw *swappableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw.mu.Lock()
	h := sw.h
	sw.paths[r.URL.Path]++
	sw.mu.Unlock()
	h.ServeHTTP(w, r)
}

// swap installs a new incarnation and resets its served-path record.
func (sw *swappableWorker) swap(h http.Handler) {
	sw.mu.Lock()
	sw.h = h
	sw.paths = make(map[string]int)
	sw.mu.Unlock()
}

func (sw *swappableWorker) served(path string) int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.paths[path]
}

// freshWorker builds a shard worker from the pristine boot inputs —
// generation 0, exactly what a restarted lonad -shard-worker would serve
// after re-mapping its boot shard snapshot.
func freshWorker(t *testing.T, g0 []float64, seed int64, parts, index int) *cluster.Worker {
	t.Helper()
	graph0 := testGraph(300, 900, seed)
	w, err := cluster.NewGraphWorker(graph0, g0, 2, parts, index)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWorkerCatchUpAfterRestart is the tentpole acceptance test: an HTTP
// shard worker that "dies" and comes back at its boot generation is
// brought to the coordinator's generation by replaying the journal
// suffix over /v1/shard/replay — no graph re-shipment, no worker pool
// restart — both via the explicit /v1/catchup pass and automatically
// when a mutation fan-out trips over the stale worker.
func TestWorkerCatchUpAfterRestart(t *testing.T) {
	const seed, parts = 21, 3
	g := testGraph(300, 900, seed)
	scores := testScores(300, seed)
	dir := t.TempDir()

	proxies := make([]*swappableWorker, parts)
	urls := make([]string, parts)
	for i := 0; i < parts; i++ {
		w, err := cluster.NewGraphWorker(g, append([]float64(nil), scores...), 2, parts, i)
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = &swappableWorker{h: w.Handler(), paths: make(map[string]int)}
		srv := httptest.NewServer(proxies[i])
		defer srv.Close()
		urls[i] = srv.URL
	}

	plain := mustServer(t, g, append([]float64(nil), scores...), 2, Options{SkipIndexes: true})
	coord := mustServer(t, g, append([]float64(nil), scores...), 2,
		Options{SkipIndexes: true, ShardWorkers: urls, Journal: mustJournal(t, dir)})

	// Build journaled history with every worker healthy: scores, edits
	// (adds node 300), scores on the new node.
	apply := func(s *Server) {
		t.Helper()
		if _, err := s.ApplyUpdates([]ScoreUpdate{{Node: 5, Score: 0.9}, {Node: 250, Score: 0}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ApplyEdits(editBatch(s.Graph())); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ApplyUpdates([]ScoreUpdate{{Node: 300, Score: 0.7}}); err != nil {
			t.Fatal(err)
		}
	}
	apply(plain)
	apply(coord)
	if coord.Generation() != 3 {
		t.Fatalf("coordinator at generation %d, want 3", coord.Generation())
	}

	// Kill worker 1; the restart comes back at generation 0 with the
	// 300-node boot graph.
	proxies[1].swap(freshWorker(t, append([]float64(nil), scores...), seed, parts, 1).Handler())

	res, err := coord.CatchUpWorkers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != 3 || res.Probed != parts || res.CaughtUp != 1 || res.Commits != 3 {
		t.Fatalf("catch-up result %+v", res)
	}
	for _, wc := range res.Workers {
		switch wc.Shard {
		case 1:
			if wc.From != 0 || wc.To != 3 || wc.Applied != 3 || wc.Error != "" {
				t.Fatalf("restarted worker outcome %+v", wc)
			}
		default:
			if wc.Skipped == "" || wc.Applied != 0 {
				t.Fatalf("healthy worker outcome %+v", wc)
			}
		}
	}
	// The restarted incarnation was caught up by replay alone: it never
	// saw the original score/edit batches re-sent.
	if proxies[1].served("/v1/shard/replay") == 0 {
		t.Fatal("catch-up did not go through /v1/shard/replay")
	}
	if n := proxies[1].served("/v1/shard/edits"); n != 0 {
		t.Fatalf("catch-up re-shipped %d edit batches instead of replaying", n)
	}
	if n := proxies[1].served("/v1/shard/scores"); n != 0 {
		t.Fatalf("catch-up re-shipped %d score batches instead of replaying", n)
	}

	// Post-catch-up answers fan out across all three workers and match
	// the unsharded oracle.
	req := QueryRequest{K: 10, Aggregate: "sum", Algorithm: "base"}
	want, err := plain.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatal("post-catch-up results diverge from the unsharded oracle")
	}
	if got.Shards != parts {
		t.Fatalf("answer reports %d shards, want %d", got.Shards, parts)
	}

	// Kill worker 1 AGAIN, and this time let a mutation batch trip over
	// it: the stale incarnation rejects the update for node 300 (it only
	// has 300 nodes), and the fan-out failure path must catch it up from
	// the journal and retry — the caller never sees the crash.
	proxies[1].swap(freshWorker(t, append([]float64(nil), scores...), seed, parts, 1).Handler())
	ups := []ScoreUpdate{{Node: 300, Score: 0.4}}
	if _, err := plain.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.ApplyUpdates(ups); err != nil {
		t.Fatalf("fan-out over a restarted worker did not self-heal: %v", err)
	}
	if proxies[1].served("/v1/shard/replay") == 0 {
		t.Fatal("self-heal did not go through /v1/shard/replay")
	}
	want, err = plain.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err = coord.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatal("post-self-heal results diverge from the unsharded oracle")
	}

	js := coord.Stats().Journal
	if js == nil || js.Catchups < 2 || js.CatchupCommits < 6 {
		t.Fatalf("catch-up counters wrong: %+v", js)
	}
}

// TestCatchUpEndpointAndPreconditions: POST /v1/catchup works over the
// wire against healthy workers (a pure probe pass), and the topologies
// that cannot fall behind are rejected with a useful error.
func TestCatchUpEndpoint(t *testing.T) {
	const seed, parts = 37, 2
	g := testGraph(200, 600, seed)
	scores := testScores(200, seed)

	urls := make([]string, parts)
	for i := 0; i < parts; i++ {
		w, err := cluster.NewGraphWorker(g, append([]float64(nil), scores...), 2, parts, i)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		defer srv.Close()
		urls[i] = srv.URL
	}
	coord := mustServer(t, g, append([]float64(nil), scores...), 2,
		Options{SkipIndexes: true, ShardWorkers: urls, Journal: mustJournal(t, t.TempDir())})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	body := postJSON(t, srv.URL+"/v1/catchup", `{}`)
	if !strings.Contains(body, `"probed":2`) || strings.Contains(body, `"caught_up":1`) {
		t.Fatalf("healthy catch-up pass: %s", body)
	}

	// No journal: catch-up has nothing to replay from.
	nojournal := mustServer(t, g, append([]float64(nil), scores...), 2,
		Options{SkipIndexes: true, ShardWorkers: urls})
	if _, err := nojournal.CatchUpWorkers(ctx); err == nil ||
		!strings.Contains(err.Error(), "journal") {
		t.Fatalf("journal-less catch-up: err = %v", err)
	}
	// In-process shards share the coordinator's state.
	local := mustServer(t, g, append([]float64(nil), scores...), 2,
		Options{SkipIndexes: true, Shards: 2, Journal: mustJournal(t, t.TempDir())})
	if _, err := local.CatchUpWorkers(ctx); err == nil ||
		!strings.Contains(err.Error(), "HTTP shard workers") {
		t.Fatalf("in-process catch-up: err = %v", err)
	}
}
