package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/promtext"
	"repro/internal/trace"
)

// scrape GETs path and returns the body.
func scrape(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
	}
	return body
}

// TestMetricsAndStatsUnderLoad hammers /metrics and /v1/stats while
// sharded streamed queries and structural edit batches run concurrently.
// Every scrape must be well-formed Prometheus exposition, and the
// counters both surfaces report must be monotone across scrapes. Run
// with -race this doubles as the torn-read check on the stats path.
func TestMetricsAndStatsUnderLoad(t *testing.T) {
	g := testGraph(300, 600, 11)
	scores := testScores(300, 12)
	s := mustServer(t, g, scores, 2, Options{Shards: 3, SkipIndexes: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	wg.Add(1)
	go func() { // queries: mixed k and aggregates, some traced
		defer wg.Done()
		for i := 0; i < 40; i++ {
			body := fmt.Sprintf(`{"k":%d,"aggregate":"sum","trace":%v}`, 1+i%7, i%5 == 0)
			resp, err := http.Post(srv.URL+"/v1/topk", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("topk %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // structural edits, racing the queries
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 10; i++ {
			u, v := rng.Intn(300), rng.Intn(300)
			if u == v {
				continue
			}
			body := fmt.Sprintf(`{"edits":[{"op":"add-edge","u":%d,"v":%d}]}`, u, v)
			resp, err := http.Post(srv.URL+"/v1/edges", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("edits %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // scrape both surfaces, checking form and monotonicity
		defer wg.Done()
		var prev Stats
		var prevSince string
		for i := 0; i < 15; i++ {
			if err := promtext.Validate(scrape(t, srv.URL, "/metrics")); err != nil {
				errs <- fmt.Errorf("scrape %d: %w", i, err)
				return
			}
			var st Stats
			if err := json.Unmarshal(scrape(t, srv.URL, "/v1/stats"), &st); err != nil {
				errs <- err
				return
			}
			if _, err := time.Parse(time.RFC3339, st.Since); err != nil {
				errs <- fmt.Errorf("since %q is not RFC3339: %w", st.Since, err)
				return
			}
			if prevSince != "" && st.Since != prevSince {
				errs <- fmt.Errorf("since moved: %q -> %q", prevSince, st.Since)
				return
			}
			prevSince = st.Since
			type mono struct {
				name       string
				prev, curr int64
			}
			checks := []mono{
				{"executed", prev.Cache.Hits + prev.Cache.Misses, st.Cache.Hits + st.Cache.Misses},
				{"evaluated", prev.Engine.Evaluated, st.Engine.Evaluated},
				{"edit batches", prev.Edits.Batches, st.Edits.Batches},
				{"uptime", int64(prev.UptimeS * 1e6), int64(st.UptimeS * 1e6)},
			}
			if prev.Cluster != nil && st.Cluster != nil {
				checks = append(checks,
					mono{"shard queries", prev.Cluster.ShardQueries, st.Cluster.ShardQueries},
					mono{"partial batches", prev.Cluster.PartialBatches, st.Cluster.PartialBatches},
					mono{"lambda raises", prev.Cluster.LambdaRaises, st.Cluster.LambdaRaises})
			}
			for _, c := range checks {
				if c.curr < c.prev {
					errs <- fmt.Errorf("scrape %d: %s went backwards: %d -> %d", i, c.name, c.prev, c.curr)
					return
				}
			}
			prev = st
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTraceSurface pins the /v1/topk EXPLAIN contract: "trace": true
// returns one stitched timeline, traced answers never come from or land
// in the cache, and untraced answers carry no trace at all.
func TestTraceSurface(t *testing.T) {
	g := testGraph(200, 400, 21)
	scores := testScores(200, 22)
	s := mustServer(t, g, scores, 2, Options{Shards: 2, SkipIndexes: true})

	req := QueryRequest{K: 5, Aggregate: "sum"}
	plain, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced request returned a trace")
	}

	// The identical traced request hits the cache and says so.
	req.Trace = true
	hit, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Trace == nil {
		t.Fatalf("expected a cached traced answer, got cached=%v trace=%v", hit.Cached, hit.Trace)
	}
	if len(hit.Trace.Events) != 1 || hit.Trace.Events[0].Kind != trace.KindCacheHit {
		t.Fatalf("cache-hit trace should be exactly one cache-hit event, got %+v", hit.Trace.Events)
	}

	// A traced cold query returns the real stitched timeline...
	req.K = 7 // different cache key
	cold, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached || cold.Trace == nil || cold.Trace.ID == "" {
		t.Fatalf("traced cold query: cached=%v trace=%+v", cold.Cached, cold.Trace)
	}
	kinds := map[string]bool{}
	for _, e := range cold.Trace.Events {
		kinds[e.Kind] = true
	}
	for _, want := range []string{trace.KindCacheMiss, trace.KindProbe, trace.KindLaunch, trace.KindExec, trace.KindShardStats} {
		if !kinds[want] {
			t.Errorf("stitched trace missing a %q event; kinds seen: %v", want, kinds)
		}
	}
	if len(cold.Trace.PerShard) != 2 {
		t.Errorf("traced sharded answer has %d shard reports, want 2", len(cold.Trace.PerShard))
	}

	// ...and never populates the cache: the same query untraced must
	// execute, not hit.
	misses := s.Stats().Cache.Misses
	req.Trace = false
	again, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("traced execution leaked into the result cache")
	}
	if got := s.Stats().Cache.Misses; got != misses+1 {
		t.Fatalf("expected one more miss (traced answers are uncacheable), got %d -> %d", misses, got)
	}
}

// TestSlowQueryLogging checks the -slow-query-ms path: with a zero
// threshold every execution qualifies, the configured sink receives a
// formatted timeline, and the slow-query counter advances.
func TestSlowQueryLogging(t *testing.T) {
	g := testGraph(150, 300, 31)
	scores := testScores(150, 32)
	var mu sync.Mutex
	var lines []string
	opts := Options{
		SkipIndexes: true,
		SlowQuery:   time.Nanosecond,
		SlowQueryLog: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	}
	s := mustServer(t, g, scores, 2, opts)
	if _, err := s.Run(ctx, QueryRequest{K: 3, Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("got %d slow-query log lines, want 1", len(lines))
	}
	if !strings.Contains(lines[0], "slow query trace") || !strings.Contains(lines[0], "exec") {
		t.Fatalf("slow-query line does not carry the timeline: %q", lines[0])
	}
	if got := s.Stats().SlowQueries; got != 1 {
		t.Fatalf("slow-query counter = %d, want 1", got)
	}
}

// TestReshardResetsShardHistograms pins the /v1/reshard histogram
// contract: a real reshard swaps in fresh per-shard histograms (under
// the write lock, so no scrape can see a half-reset), while a same-count
// reshard is a no-op that keeps them.
func TestReshardResetsShardHistograms(t *testing.T) {
	g := testGraph(200, 400, 41)
	scores := testScores(200, 42)
	s := mustServer(t, g, scores, 2, Options{Shards: 2, SkipIndexes: true, CacheBytes: -1})

	if _, err := s.Run(ctx, QueryRequest{K: 4, Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	var total int64
	for _, sl := range before.Cluster.PerShard {
		total += sl.Latency.Count
	}
	if total == 0 {
		t.Fatal("sharded query recorded no per-shard latency")
	}

	if err := s.Reshard(2); err != nil { // same count: no-op, keeps hists
		t.Fatal(err)
	}
	kept := s.Stats()
	var keptTotal int64
	for _, sl := range kept.Cluster.PerShard {
		keptTotal += sl.Latency.Count
	}
	if keptTotal != total || kept.Cluster.TopologyGen != before.Cluster.TopologyGen {
		t.Fatalf("same-count reshard mutated state: counts %d->%d, topo %d->%d",
			total, keptTotal, before.Cluster.TopologyGen, kept.Cluster.TopologyGen)
	}

	if err := s.Reshard(3); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Cluster.Shards != 3 || len(after.Cluster.PerShard) != 3 {
		t.Fatalf("reshard to 3 reported %d shards / %d rows", after.Cluster.Shards, len(after.Cluster.PerShard))
	}
	for _, sl := range after.Cluster.PerShard {
		if sl.Latency.Count != 0 {
			t.Fatalf("shard %d histogram survived the reshard with count %d", sl.Shard, sl.Latency.Count)
		}
	}
}

// TestRenderMetricsIsValid validates the exposition on quiet, busy, and
// unsharded servers — including the histogram families, whose log2
// buckets must satisfy the cumulative invariants promtext enforces.
func TestRenderMetricsIsValid(t *testing.T) {
	g := testGraph(150, 300, 51)
	scores := testScores(150, 52)
	for _, shards := range []int{0, 2} {
		s := mustServer(t, g, scores, 2, Options{Shards: shards, SkipIndexes: true})
		if err := promtext.Validate([]byte(s.renderMetrics())); err != nil {
			t.Fatalf("quiet server (shards=%d): %v", shards, err)
		}
		for i := 1; i <= 4; i++ {
			if _, err := s.Run(ctx, QueryRequest{K: i, Aggregate: "sum"}); err != nil {
				t.Fatal(err)
			}
		}
		body := s.renderMetrics()
		if err := promtext.Validate([]byte(body)); err != nil {
			t.Fatalf("busy server (shards=%d): %v\n%s", shards, err, body)
		}
		if !strings.Contains(body, `lona_query_duration_seconds_bucket{algorithm=`) {
			t.Fatal("per-algorithm latency histogram missing from /metrics")
		}
		if shards > 1 && !strings.Contains(body, `lona_shard_query_duration_seconds_bucket{shard="0",`) {
			t.Fatal("per-shard latency histogram missing from /metrics")
		}
	}
}
