package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/otlp"
	"repro/internal/promtext"
	"repro/internal/trace"
	"repro/internal/wideevent"
)

// lockedBuffer is a concurrency-safe log sink for slog's JSON handler.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for _, l := range strings.Split(b.buf.String(), "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

// scrape GETs path and returns the body.
func scrape(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
	}
	return body
}

// TestMetricsAndStatsUnderLoad hammers /metrics and /v1/stats while
// sharded streamed queries and structural edit batches run concurrently.
// Every scrape must be well-formed Prometheus exposition, and the
// counters both surfaces report must be monotone across scrapes. Run
// with -race this doubles as the torn-read check on the stats path.
func TestMetricsAndStatsUnderLoad(t *testing.T) {
	g := testGraph(300, 600, 11)
	scores := testScores(300, 12)
	s := mustServer(t, g, scores, 2, Options{Shards: 3, SkipIndexes: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	wg.Add(1)
	go func() { // queries: mixed k and aggregates, some traced
		defer wg.Done()
		for i := 0; i < 40; i++ {
			body := fmt.Sprintf(`{"k":%d,"aggregate":"sum","trace":%v}`, 1+i%7, i%5 == 0)
			resp, err := http.Post(srv.URL+"/v1/topk", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("topk %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // structural edits, racing the queries
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 10; i++ {
			u, v := rng.Intn(300), rng.Intn(300)
			if u == v {
				continue
			}
			body := fmt.Sprintf(`{"edits":[{"op":"add-edge","u":%d,"v":%d}]}`, u, v)
			resp, err := http.Post(srv.URL+"/v1/edges", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("edits %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // scrape both surfaces, checking form and monotonicity
		defer wg.Done()
		var prev Stats
		var prevSince string
		for i := 0; i < 15; i++ {
			if err := promtext.Validate(scrape(t, srv.URL, "/metrics")); err != nil {
				errs <- fmt.Errorf("scrape %d: %w", i, err)
				return
			}
			var st Stats
			if err := json.Unmarshal(scrape(t, srv.URL, "/v1/stats"), &st); err != nil {
				errs <- err
				return
			}
			if _, err := time.Parse(time.RFC3339, st.Since); err != nil {
				errs <- fmt.Errorf("since %q is not RFC3339: %w", st.Since, err)
				return
			}
			if prevSince != "" && st.Since != prevSince {
				errs <- fmt.Errorf("since moved: %q -> %q", prevSince, st.Since)
				return
			}
			prevSince = st.Since
			type mono struct {
				name       string
				prev, curr int64
			}
			checks := []mono{
				{"executed", prev.Cache.Hits + prev.Cache.Misses, st.Cache.Hits + st.Cache.Misses},
				{"evaluated", prev.Engine.Evaluated, st.Engine.Evaluated},
				{"edit batches", prev.Edits.Batches, st.Edits.Batches},
				{"uptime", int64(prev.UptimeS * 1e6), int64(st.UptimeS * 1e6)},
			}
			if prev.Cluster != nil && st.Cluster != nil {
				checks = append(checks,
					mono{"shard queries", prev.Cluster.ShardQueries, st.Cluster.ShardQueries},
					mono{"partial batches", prev.Cluster.PartialBatches, st.Cluster.PartialBatches},
					mono{"lambda raises", prev.Cluster.LambdaRaises, st.Cluster.LambdaRaises})
			}
			for _, c := range checks {
				if c.curr < c.prev {
					errs <- fmt.Errorf("scrape %d: %s went backwards: %d -> %d", i, c.name, c.prev, c.curr)
					return
				}
			}
			prev = st
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTraceSurface pins the /v1/topk EXPLAIN contract: "trace": true
// returns one stitched timeline, traced answers never come from or land
// in the cache, and untraced answers carry no trace at all.
func TestTraceSurface(t *testing.T) {
	g := testGraph(200, 400, 21)
	scores := testScores(200, 22)
	s := mustServer(t, g, scores, 2, Options{Shards: 2, SkipIndexes: true})

	req := QueryRequest{K: 5, Aggregate: "sum"}
	plain, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced request returned a trace")
	}

	// The identical traced request hits the cache and says so.
	req.Trace = true
	hit, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Trace == nil {
		t.Fatalf("expected a cached traced answer, got cached=%v trace=%v", hit.Cached, hit.Trace)
	}
	if len(hit.Trace.Events) != 1 || hit.Trace.Events[0].Kind != trace.KindCacheHit {
		t.Fatalf("cache-hit trace should be exactly one cache-hit event, got %+v", hit.Trace.Events)
	}

	// A traced cold query returns the real stitched timeline...
	req.K = 7 // different cache key
	cold, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached || cold.Trace == nil || cold.Trace.ID == "" {
		t.Fatalf("traced cold query: cached=%v trace=%+v", cold.Cached, cold.Trace)
	}
	kinds := map[string]bool{}
	for _, e := range cold.Trace.Events {
		kinds[e.Kind] = true
	}
	for _, want := range []string{trace.KindCacheMiss, trace.KindProbe, trace.KindLaunch, trace.KindExec, trace.KindShardStats} {
		if !kinds[want] {
			t.Errorf("stitched trace missing a %q event; kinds seen: %v", want, kinds)
		}
	}
	if len(cold.Trace.PerShard) != 2 {
		t.Errorf("traced sharded answer has %d shard reports, want 2", len(cold.Trace.PerShard))
	}

	// ...and never populates the cache: the same query untraced must
	// execute, not hit.
	misses := s.Stats().Cache.Misses
	req.Trace = false
	again, err := s.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("traced execution leaked into the result cache")
	}
	if got := s.Stats().Cache.Misses; got != misses+1 {
		t.Fatalf("expected one more miss (traced answers are uncacheable), got %d -> %d", misses, got)
	}
}

// TestSlowQueryWideEvent checks the -slow-query-ms path: with a
// nanosecond threshold every execution qualifies, the configured logger
// receives exactly one wide event per query — escalated to WARN with
// slow=true, not a separate multi-line dump — and the counter advances.
func TestSlowQueryWideEvent(t *testing.T) {
	g := testGraph(150, 300, 31)
	scores := testScores(150, 32)
	var buf lockedBuffer
	opts := Options{
		SkipIndexes: true,
		SlowQuery:   time.Nanosecond,
		Logger:      slog.New(slog.NewJSONHandler(&buf, nil)),
	}
	s := mustServer(t, g, scores, 2, opts)
	if _, err := s.Run(ctx, QueryRequest{K: 3, Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	lines := buf.Lines()
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1: %q", len(lines), lines)
	}
	if isWide, err := wideevent.Validate([]byte(lines[0])); !isWide || err != nil {
		t.Fatalf("slow-query line is not a valid wide event (wide=%v err=%v): %s", isWide, err, lines[0])
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["level"] != "WARN" || ev["slow"] != true || ev["event"] != string(wideevent.EventQuery) {
		t.Fatalf("slow query not escalated: level=%v slow=%v event=%v", ev["level"], ev["slow"], ev["event"])
	}
	if id, _ := ev["trace_id"].(string); id == "" {
		t.Fatalf("wide event carries no trace id: %s", lines[0])
	}
	if got := s.Stats().SlowQueries; got != 1 {
		t.Fatalf("slow-query counter = %d, want 1", got)
	}
}

// TestWideEventsUnderLoad hammers sharded queries past the SlowQuery
// threshold — interleaved with score batches — while /metrics is being
// scraped. Run with -race this is the torn-emission check: every line
// the server logs must validate against the wide-event schema and carry
// a non-empty trace id.
func TestWideEventsUnderLoad(t *testing.T) {
	g := testGraph(300, 600, 61)
	scores := testScores(300, 62)
	var buf lockedBuffer
	s := mustServer(t, g, scores, 2, Options{
		Shards: 3, SkipIndexes: true, CacheBytes: -1,
		SlowQuery: time.Nanosecond,
		Logger:    slog.New(slog.NewJSONHandler(&buf, nil)),
		SLO:       SLO{Latency: 5 * time.Millisecond, Target: 0.99},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	const workers, perWorker = 3, 25
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := fmt.Sprintf(`{"k":%d,"aggregate":"sum"}`, 1+(w+i)%6)
				resp, err := http.Post(srv.URL+"/v1/topk", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("topk %d/%d: status %d", w, i, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // score batches, racing the queries
		defer wg.Done()
		for i := 0; i < 8; i++ {
			body := fmt.Sprintf(`{"updates":[{"node":%d,"score":%f}]}`, i*7%300, 0.1*float64(i))
			resp, err := http.Post(srv.URL+"/v1/scores", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("scores %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // scrape the window-bearing exposition concurrently
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := promtext.Validate(scrape(t, srv.URL, "/metrics")); err != nil {
				errs <- fmt.Errorf("scrape %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	lines := buf.Lines()
	var wide, queries int
	for _, l := range lines {
		isWide, err := wideevent.Validate([]byte(l))
		if err != nil {
			t.Errorf("invalid wide event: %v\n%s", err, l)
		}
		if isWide {
			wide++
		}
		if strings.Contains(l, `"event":"query"`) {
			queries++
		}
	}
	if queries != workers*perWorker {
		t.Errorf("got %d query wide events, want %d", queries, workers*perWorker)
	}
	if wide < queries {
		t.Errorf("only %d of %d lines are wide events", wide, len(lines))
	}

	body := s.renderMetrics()
	for _, want := range []string{
		"lona_latency_window_seconds_bucket", "lona_latency_window_queries",
		"lona_shard_window_queries", "lona_slo_burn_rate",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestWindowDecayAndSLOBurn marches an injected clock through the
// rolling window: a burst of over-objective latencies flips /v1/health
// to 503 "degraded", then advancing the clock past the window decays the
// window histogram back to empty — while the cumulative histograms stay
// exactly where they were — and health recovers to 200.
func TestWindowDecayAndSLOBurn(t *testing.T) {
	g := testGraph(120, 240, 71)
	scores := testScores(120, 72)
	s := mustServer(t, g, scores, 2, Options{
		SkipIndexes: true,
		SLO:         SLO{Latency: 10 * time.Millisecond, Target: 0.9},
	})
	base := time.Unix(1_700_000_000, 0)
	var clock atomic.Int64
	clock.Store(base.Unix())
	s.metrics.window.now = func() time.Time { return time.Unix(clock.Load(), 0) }

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for i := 1; i <= 3; i++ { // real queries fill the cumulative hists
		if _, err := s.Run(ctx, QueryRequest{K: i, Aggregate: "sum"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ { // and a burst of objective violations
		s.metrics.window.observe(50*time.Millisecond, true)
	}

	st := s.Stats()
	if st.SLO == nil || !st.SLO.Burning || st.SLO.BurnRate < 1 {
		t.Fatalf("burst did not trip the SLO: %+v", st.SLO)
	}
	if st.LatencyWindow.Count < 50 {
		t.Fatalf("window count %d after 50 observations", st.LatencyWindow.Count)
	}
	resp, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK     bool      `json:"ok"`
		Status string    `json:"status"`
		SLO    *SLOStats `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || health.Status != "degraded" {
		t.Fatalf("burning SLO answered %d %q, want 503 degraded", resp.StatusCode, health.Status)
	}
	if !health.OK || health.SLO == nil || !health.SLO.Burning {
		t.Fatalf("degraded health body malformed: %+v", health)
	}

	var cumulative int64
	for _, l := range st.Latency {
		cumulative += l.Count
	}

	// March the clock past the whole window: every slot expires.
	clock.Store(base.Add((windowSlots + 1) * windowSlotSeconds * time.Second).Unix())

	st2 := s.Stats()
	if st2.LatencyWindow.Count != 0 {
		t.Fatalf("window did not decay: count %d", st2.LatencyWindow.Count)
	}
	if st2.SLO.Burning || st2.SLO.BurnRate != 0 {
		t.Fatalf("SLO still burning on an empty window: %+v", st2.SLO)
	}
	var cumulative2 int64
	for _, l := range st2.Latency {
		cumulative2 += l.Count
	}
	if cumulative2 != cumulative {
		t.Fatalf("cumulative histograms moved with the window: %d -> %d", cumulative, cumulative2)
	}
	resp, err = http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered window still answers %d", resp.StatusCode)
	}
}

// TestOTLPExportStitchesShardSpans runs a coordinator over HTTP shard
// workers with a trace exporter pointed at a collector stub: one query
// must arrive as one OTLP trace whose coordinator root span and
// per-shard worker spans all share a single trace id.
func TestOTLPExportStitchesShardSpans(t *testing.T) {
	var mu sync.Mutex
	var got []otlp.Request
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req otlp.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		got = append(got, req)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	defer collector.Close()

	g := testGraph(300, 900, 81)
	scores := testScores(300, 81)
	const parts = 2
	shards, _, err := cluster.BuildShards(g, scores, 2, parts)
	if err != nil {
		t.Fatal(err)
	}
	workerURLs := make([]string, parts)
	for i, sh := range shards {
		w := httptest.NewServer(cluster.NewWorker(sh).Handler())
		defer w.Close()
		workerURLs[i] = w.URL
	}

	exp := otlp.NewExporter(collector.URL, otlp.ExporterOptions{})
	s := mustServer(t, g, scores, 2, Options{
		SkipIndexes: true, ShardWorkers: workerURLs,
		TraceExporter: exp, CacheBytes: -1,
	})
	if _, err := s.Run(ctx, QueryRequest{K: 5, Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Close(closeCtx); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("collector received %d batches, want 1", len(got))
	}
	var spans []otlp.Span
	for _, rs := range got[0].ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			spans = append(spans, ss.Spans...)
		}
	}
	ids := map[string]bool{}
	names := map[string]bool{}
	var rootID string
	for _, sp := range spans {
		ids[sp.TraceID] = true
		names[sp.Name] = true
		if sp.ParentSpanID == "" {
			rootID = sp.SpanID
		}
	}
	if len(ids) != 1 {
		t.Fatalf("spans carry %d distinct trace ids, want 1: %v", len(ids), ids)
	}
	for _, want := range []string{"lona.query", "lona.shard/0", "lona.shard/1", "exec"} {
		if !names[want] {
			t.Errorf("trace missing a %q span; got %v", want, names)
		}
	}
	if rootID == "" {
		t.Fatal("no root span in the exported trace")
	}
	for _, sp := range spans {
		if strings.HasPrefix(sp.Name, "lona.shard/") && sp.ParentSpanID != rootID {
			t.Errorf("shard span %s not parented to the root", sp.Name)
		}
	}
	if st := s.Stats(); st.OTLP == nil || st.OTLP.Exported != 1 {
		t.Errorf("exporter stats not surfaced: %+v", st.OTLP)
	}
}

// TestReshardResetsShardHistograms pins the /v1/reshard histogram
// contract: a real reshard swaps in fresh per-shard histograms (under
// the write lock, so no scrape can see a half-reset), while a same-count
// reshard is a no-op that keeps them.
func TestReshardResetsShardHistograms(t *testing.T) {
	g := testGraph(200, 400, 41)
	scores := testScores(200, 42)
	s := mustServer(t, g, scores, 2, Options{Shards: 2, SkipIndexes: true, CacheBytes: -1})

	if _, err := s.Run(ctx, QueryRequest{K: 4, Aggregate: "sum"}); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	var total int64
	for _, sl := range before.Cluster.PerShard {
		total += sl.Latency.Count
	}
	if total == 0 {
		t.Fatal("sharded query recorded no per-shard latency")
	}

	if err := s.Reshard(2); err != nil { // same count: no-op, keeps hists
		t.Fatal(err)
	}
	kept := s.Stats()
	var keptTotal int64
	for _, sl := range kept.Cluster.PerShard {
		keptTotal += sl.Latency.Count
	}
	if keptTotal != total || kept.Cluster.TopologyGen != before.Cluster.TopologyGen {
		t.Fatalf("same-count reshard mutated state: counts %d->%d, topo %d->%d",
			total, keptTotal, before.Cluster.TopologyGen, kept.Cluster.TopologyGen)
	}

	if err := s.Reshard(3); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Cluster.Shards != 3 || len(after.Cluster.PerShard) != 3 {
		t.Fatalf("reshard to 3 reported %d shards / %d rows", after.Cluster.Shards, len(after.Cluster.PerShard))
	}
	for _, sl := range after.Cluster.PerShard {
		if sl.Latency.Count != 0 {
			t.Fatalf("shard %d histogram survived the reshard with count %d", sl.Shard, sl.Latency.Count)
		}
	}
}

// TestRenderMetricsIsValid validates the exposition on quiet, busy, and
// unsharded servers — including the histogram families, whose log2
// buckets must satisfy the cumulative invariants promtext enforces.
func TestRenderMetricsIsValid(t *testing.T) {
	g := testGraph(150, 300, 51)
	scores := testScores(150, 52)
	for _, shards := range []int{0, 2} {
		s := mustServer(t, g, scores, 2, Options{Shards: shards, SkipIndexes: true})
		if err := promtext.Validate([]byte(s.renderMetrics())); err != nil {
			t.Fatalf("quiet server (shards=%d): %v", shards, err)
		}
		for i := 1; i <= 4; i++ {
			if _, err := s.Run(ctx, QueryRequest{K: i, Aggregate: "sum"}); err != nil {
				t.Fatal(err)
			}
		}
		body := s.renderMetrics()
		if err := promtext.Validate([]byte(body)); err != nil {
			t.Fatalf("busy server (shards=%d): %v\n%s", shards, err, body)
		}
		if !strings.Contains(body, `lona_query_duration_seconds_bucket{algorithm=`) {
			t.Fatal("per-algorithm latency histogram missing from /metrics")
		}
		if shards > 1 && !strings.Contains(body, `lona_shard_query_duration_seconds_bucket{shard="0",`) {
			t.Fatal("per-shard latency histogram missing from /metrics")
		}
	}
}
