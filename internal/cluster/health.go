package cluster

import (
	"context"
	"sync"
)

// HealthReport is one worker's answer to an out-of-band health probe:
// the facts a coordinator needs to turn "query failed mid-fan-out"
// into a per-shard diagnosis. Err is set (and the other fields zero)
// when the worker could not be reached at all.
type HealthReport struct {
	Shard      int    // worker-list position probed
	OK         bool   // the worker's own self-assessment
	Generation uint64 // mutation batches applied since the worker's boot state
	Nodes      int    // full-graph node count the worker serves
	Edges      int    // edge count (full graph, or shard closure for bare workers)
	Snapshot   string // boot-snapshot provenance, when known
	Err        error  // probe transport failure
}

// HealthProber is implemented by transports that can interrogate
// worker health out of band. The in-process transport does not
// implement it: local shards share the coordinator's state by
// construction, so there is no divergence to probe for.
type HealthProber interface {
	ProbeHealth(ctx context.Context) []HealthReport
}

// ProbeHealth hits every worker's /v1/shard/health concurrently and
// reports per worker, never failing as a whole: an unreachable worker
// is itself a finding, carried in that report's Err.
func (t *HTTP) ProbeHealth(ctx context.Context) []HealthReport {
	if ctx == nil {
		ctx = context.Background()
	}
	reports := make([]HealthReport, len(t.workers))
	var wg sync.WaitGroup
	for i, base := range t.workers {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			var h wireHealth
			if err := t.get(ctx, base+"/v1/shard/health", &h); err != nil {
				reports[i] = HealthReport{Shard: i, Err: err}
				return
			}
			reports[i] = HealthReport{
				Shard: i, OK: h.OK, Generation: h.Generation,
				Nodes: h.Nodes, Edges: h.Edges, Snapshot: h.Snapshot,
			}
		}(i, base)
	}
	wg.Wait()
	return reports
}

var _ HealthProber = (*HTTP)(nil)
