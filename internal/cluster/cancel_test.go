package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestRunPreCancelled: an already-cancelled context aborts the fan-out
// before (or immediately after) any shard work, and the coordinator
// stays fully reusable.
func TestRunPreCancelled(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 61)
	scores := testScores(400, 61)
	local, err := NewLocal(g, scores, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	q := core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase}
	ans, err := coord.Run(cancelled, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ans.Results != nil {
		t.Fatal("cancelled fan-out leaked a partial answer")
	}

	engine, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(context.Background(), q)
	if err != nil {
		t.Fatalf("coordinator unusable after cancellation: %v", err)
	}
	assertSameResults(t, "reuse after cancel", got.Results, want.Results)
}

// TestRunCancelMidFanOut cancels the caller context while shard queries
// are in flight: the coordinator must return context.Canceled promptly
// (within a few poll strides, not a full scan) with no goroutine left
// running, and answer the same query correctly afterwards. Run under
// -race this also exercises the merge/cut bookkeeping against concurrent
// shard completions.
func TestRunCancelMidFanOut(t *testing.T) {
	// Heavy enough that a full Base scan takes visibly long per shard.
	g := gen.Collaboration(gen.DatasetScale(0.1), 71)
	scores := testScores(g.NumNodes(), 71)
	local, err := NewLocal(g, scores, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})
	q := core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase}

	// Measure the uncancelled run for the promptness comparison.
	start := time.Now()
	want, err := coord.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	for _, delay := range []time.Duration{full / 20, full / 4, full / 2} {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(delay, cancel)
		start := time.Now()
		_, err := coord.Run(ctx, q)
		elapsed := time.Since(start)
		timer.Stop()
		cancel()
		if !errors.Is(err, context.Canceled) {
			// The query may legitimately finish before a late cancel.
			if err == nil && elapsed <= full*2 {
				continue
			}
			t.Fatalf("delay %v: err = %v (elapsed %v), want context.Canceled", delay, err, elapsed)
		}
		if elapsed > full+200*time.Millisecond {
			t.Fatalf("delay %v: cancellation took %v, full run only %v", delay, elapsed, full)
		}
	}

	got, err := coord.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "reuse after mid-query cancel", got.Results, want.Results)
}

// TestConcurrentQueriesAndUpdates hammers the fan-out path with
// concurrent queries, cancellations, and score updates — the generation
// swap and merge state must stay race-free (run with -race) and every
// completed query must return either a valid answer or a context error.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	g := gen.BarabasiAlbert(1500, 3, 83)
	scores := testScores(1500, 83)
	local, err := NewLocal(g, scores, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			aggs := []core.Aggregate{core.Sum, core.Avg, core.Count}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithCancel(context.Background())
				if i%3 == 0 {
					time.AfterFunc(time.Duration(i%5)*100*time.Microsecond, cancel)
				}
				ans, err := coord.Run(ctx, core.Query{K: 5, Aggregate: aggs[i%len(aggs)]})
				cancel()
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("worker %d: unexpected error %v", w, err)
					return
				}
				if err == nil && len(ans.Results) == 0 {
					t.Errorf("worker %d: empty answer without error", w)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			upd := []ScoreUpdate{{Node: (i * 37) % 1500, Score: float64(i%9) / 8}}
			if err := local.ApplyScores(context.Background(), upd); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(60 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestHTTPCancelMidFanOut: cancelling the coordinator's context aborts
// in-flight worker HTTP requests, which aborts the worker-side engine
// queries cooperatively.
func TestHTTPCancelMidFanOut(t *testing.T) {
	g := gen.Collaboration(gen.DatasetScale(0.1), 73)
	scores := testScores(g.NumNodes(), 73)
	urls, _ := startWorkers(t, g, scores, 3, 4)
	transport, err := NewHTTP(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()
	coord := NewCoordinator(transport, Options{})
	q := core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase}

	start := time.Now()
	want, err := coord.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(full/10, cancel)
	_, err = coord.Run(ctx, q)
	timer.Stop()
	cancel()
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled or fast success", err)
	}

	got, err := coord.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "http reuse after cancel", got.Results, want.Results)
}
