package cluster

import (
	"sync"
	"time"
)

// This file tunes each shard's partial-emission cadence (the engine's
// PartialEvery) from observed batch latency, in the spirit of adaptive
// distributed top-k processing [ADiT]: sites should report at a rate
// matched to what the coordinator can usefully fold, not a fixed period.
// A cadence too fine floods the merge with frames that rarely move λ; a
// cadence too coarse starves it, delaying the cuts that save work.
// Because PartialEvery changes only when results are *reported*, never
// which results are certified, adapting it can never change an answer —
// the byte-identity guarantee is untouched.

const (
	// cadenceMin/<Max clamp the adapted PartialEvery. The floor matches
	// core's context-poll granularity; the ceiling keeps at least a few
	// frames per shard on the graphs this system targets.
	cadenceMin = 16
	cadenceMax = 4096
	// cadenceTarget brackets the per-batch wall-clock the controller
	// steers toward: batches faster than the lower edge are doubled
	// (frames are nearly free to produce but cost a fold and an ack
	// each), slower than the upper edge are halved (λ is going stale
	// between reports).
	cadenceTargetLow  = 500 * time.Microsecond
	cadenceTargetHigh = 8 * time.Millisecond
)

// cadence is the coordinator's cross-query controller: one adapted
// PartialEvery per shard, updated from each query's observed batch
// latency. Safe for concurrent use.
type cadence struct {
	mu    sync.Mutex
	every map[int]int
}

func newCadence() *cadence {
	return &cadence{every: make(map[int]int)}
}

// clampCadence bounds v to the controller's range.
func clampCadence(v int) int {
	if v < cadenceMin {
		return cadenceMin
	}
	if v > cadenceMax {
		return cadenceMax
	}
	return v
}

// forShard returns the cadence a launching shard query should use. The
// first query seeds from k — a batch much larger than k delays λ for no
// benefit, much smaller floods the coordinator before the list can even
// fill — and later queries inherit the adapted value.
func (c *cadence) forShard(shard, k int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.every[shard]; ok {
		return v
	}
	v := clampCadence(k)
	c.every[shard] = v
	return v
}

// observe feeds one completed shard query back: batches partial frames
// over dur of shard wall-clock, emitted at cadence used. Doubles the
// cadence when batches came faster than the target window, halves it
// when slower; within the window (or with nothing observed) it holds.
func (c *cadence) observe(shard, batches int, dur time.Duration, used int) {
	if batches <= 0 || dur <= 0 {
		return
	}
	per := dur / time.Duration(batches)
	next := used
	switch {
	case per < cadenceTargetLow:
		next = used * 2
	case per > cadenceTargetHigh:
		next = used / 2
	}
	next = clampCadence(next)
	c.mu.Lock()
	c.every[shard] = next
	c.mu.Unlock()
}
