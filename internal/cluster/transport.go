package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Transport reaches the shards of one partitioned dataset. Two
// implementations exist: Local (every shard in this process, one
// goroutine each — one lonad serving all shards on one box) and HTTP
// (each shard behind a lonad worker process). The Coordinator is written
// against this interface only, so the fan-out/merge logic is identical
// in-process and across machines.
type Transport interface {
	// Shards returns the number of shards in the topology.
	Shards() int
	// Nodes returns the node count of the full graph, for global
	// candidate validation.
	Nodes() int
	// Snapshot returns a consistent view of every shard for the duration
	// of one query, mirroring internal/server's generation-snapshot
	// discipline: a score update concurrent with a query must not let the
	// query observe some shards before the update and some after. The
	// HTTP transport returns itself — cross-process snapshot isolation
	// would need versioned reads, which remote workers do not promise.
	Snapshot() QueryView
	// ApplyScores applies a relevance update batch to every shard that
	// holds an affected node (owned or ghost copy).
	ApplyScores(ctx context.Context, updates []ScoreUpdate) error
	// ApplyEdits applies a structural edit batch (edge insertions and
	// removals, node additions) to the sharded topology: every shard
	// whose h-hop closure is affected is rebuilt over the successor graph
	// — ghost sets grow or shrink accordingly and memoized merge bounds
	// are recertified — while unaffected shards carry over untouched.
	ApplyEdits(ctx context.Context, edits []graph.Edit) error
	// Topology describes the partitioning for stats reporting; fields a
	// transport cannot know (the HTTP transport never sees the full
	// graph) are zero.
	Topology() Topology
	// Close releases transport resources.
	Close() error
}

// QueryView is one query's consistent view of the shard set.
type QueryView interface {
	// Query executes q (global ids, coordinator-split budget) on a shard.
	Query(ctx context.Context, shard int, q core.Query) (core.Answer, error)
	// QueryStream executes q on a shard, streaming partial top-k batches
	// to emit as the shard certifies results (emit may be called from the
	// transport's goroutine and must be safe to call until QueryStream
	// returns). The shard observes ctrl's threshold λ while running — via
	// a shared atomic in-process, piggybacked on stream acks over HTTP —
	// so the coordinator's merge can cut work inside the shard mid-query.
	QueryStream(ctx context.Context, shard int, q core.Query, ctrl *StreamControl,
		emit func(StreamBatch)) (core.Answer, error)
	// UpperBound returns the shard's certified merge bound for agg.
	UpperBound(ctx context.Context, shard int, agg core.Aggregate) (float64, error)
	// LiveBudget reports whether QueryStream queries can draw from ctrl's
	// budget redistribution pool mid-run — directly in-process, or through
	// the demand-driven grant protocol over the stream's ack channel
	// (HTTP). When false, the coordinator falls back to handing each
	// launching shard its pool share up front.
	LiveBudget() bool
	// ScoreSketch returns the shard's owned-score sketch for λ-priming,
	// or nil when none is available (a legacy worker, a failed refresh
	// after an update fan-out). A nil sketch only weakens the primed λ —
	// a lower bound over a subset of shards is still a lower bound — so
	// missing sketches cost pruning, never correctness.
	ScoreSketch(shard int) *Sketch
	// WireAcks reports whether λ acks and budget grants travel as real
	// messages on a stream (HTTP) rather than through shared memory —
	// the signal Breakdown.Messages uses to price them.
	WireAcks() bool
}

// ScoreUpdate is one relevance mutation, in global node ids.
type ScoreUpdate struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// Topology summarizes a shard layout for stats reporting.
type Topology struct {
	Shards int `json:"shards"`
	// EdgeCut is the partitioning's structural cut (0 when unknown).
	EdgeCut int `json:"edge_cut,omitempty"`
	// BoundaryNodes is the total ghost replication across shards: each
	// shard's closure size minus its owned size.
	BoundaryNodes int64 `json:"boundary_nodes"`
	// OwnedSizes lists each shard's owned-node count.
	OwnedSizes []int `json:"owned_sizes,omitempty"`
}

// Local is the in-process transport: every shard lives in this process
// and a "shard query" is a direct method call on its engine (the
// coordinator still runs them on separate goroutines, one simulated
// machine each). The shard set is swapped atomically on score updates
// and structural edits, so queries snapshot one generation for their
// whole fan-out.
type Local struct {
	applyMu sync.Mutex // serializes ApplyScores / ApplyEdits batches
	set     atomic.Pointer[shardSet]

	// Full-dataset context for structural edits, guarded by applyMu:
	// the current whole graph, score vector, and partitioning a shard
	// rebuild derives from. nil when the transport wraps prebuilt shards
	// (NewLocalFromShards), which therefore cannot apply edits.
	full *localDataset

	// prepared remembers PrepareIndexes so shards rebuilt after edits
	// keep the transport's index-eagerness.
	prepared    bool
	prepWorkers int
}

// localDataset is the whole-graph state behind an editable Local.
type localDataset struct {
	g      *graph.Graph
	scores []float64
	h      int
	p      *partition.Partitioning
}

// shardSet is one immutable generation of shards plus the full-graph
// facts (node count, edge cut) queries and stats read without locking.
type shardSet struct {
	shards  []*Shard
	nodes   int
	edgeCut int
}

// NewLocal partitions (g, scores, h) into parts shards and returns the
// in-process transport over them.
func NewLocal(g *graph.Graph, scores []float64, h, parts int) (*Local, error) {
	shards, p, err := BuildShards(g, scores, h, parts)
	if err != nil {
		return nil, err
	}
	l := NewLocalFromShards(shards, g.NumNodes(), p.EdgeCut(g))
	l.full = &localDataset{g: g, scores: append([]float64(nil), scores...), h: h, p: p}
	return l, nil
}

// NewLocalFromShards wraps prebuilt shards (tests, custom partitionings).
// The result serves queries and score updates but rejects structural
// edits: without the full graph there is nothing to rebuild a shard from.
func NewLocalFromShards(shards []*Shard, nodes, edgeCut int) *Local {
	l := &Local{}
	l.set.Store(&shardSet{shards: shards, nodes: nodes, edgeCut: edgeCut})
	return l
}

// PrepareIndexes eagerly builds each shard's neighborhood index (workers
// goroutines per build), so first queries do not stall and merge bounds
// are tight from the start. Shards rebuilt by later structural edits
// inherit the same eagerness. The per-edge differential index is left
// lazy: paying it P times eagerly would dominate startup, and the
// planner avoids Forward until it exists — the same contract as
// server.Options.SkipIndexes.
func (l *Local) PrepareIndexes(workers int) {
	l.applyMu.Lock()
	l.prepared, l.prepWorkers = true, workers
	l.applyMu.Unlock()
	for _, s := range l.set.Load().shards {
		s.Engine().PrepareNeighborhoodIndex(workers)
	}
}

// Shards returns the shard count.
func (l *Local) Shards() int { return len(l.set.Load().shards) }

// Nodes returns the full graph's node count at the current generation
// (structural edits can grow it).
func (l *Local) Nodes() int { return l.set.Load().nodes }

// Snapshot pins the current shard generation for one query.
func (l *Local) Snapshot() QueryView { return l.set.Load() }

// Query runs q directly against the shard.
func (ss *shardSet) Query(ctx context.Context, shard int, q core.Query) (core.Answer, error) {
	return ss.shards[shard].Run(ctx, q)
}

// QueryStream runs q against the shard with the streaming hooks wired
// straight through: the engine reads λ from ctrl's atomic and draws
// budget top-ups from its pool with no protocol in between.
func (ss *shardSet) QueryStream(ctx context.Context, shard int, q core.Query,
	ctrl *StreamControl, emit func(StreamBatch)) (core.Answer, error) {
	return ss.shards[shard].RunStream(ctx, q, ctrl, ctrl, emit)
}

// LiveBudget: in-process shard queries draw from the redistribution pool
// on demand.
func (ss *shardSet) LiveBudget() bool { return true }

// ScoreSketch reads the shard's memoized owned-score sketch. The shard
// set is an immutable generation, so the sketch is exact for the scores
// any query on this view observes.
func (ss *shardSet) ScoreSketch(shard int) *Sketch { return ss.shards[shard].Sketch() }

// WireAcks: in-process λ and grants move through shared atomics, not
// messages.
func (ss *shardSet) WireAcks() bool { return false }

// UpperBound returns the shard's memoized merge bound.
func (ss *shardSet) UpperBound(_ context.Context, shard int, agg core.Aggregate) (float64, error) {
	return ss.shards[shard].UpperBound(agg)
}

// ApplyScores derives a new shard generation with the updates applied and
// swaps it in atomically. In-flight queries keep their snapshot; new
// queries see every shard at the new generation. Shards untouched by the
// batch are reused as-is.
func (l *Local) ApplyScores(_ context.Context, updates []ScoreUpdate) error {
	l.applyMu.Lock()
	defer l.applyMu.Unlock()
	cur := l.set.Load()
	for _, u := range updates {
		if u.Node < 0 || u.Node >= cur.nodes {
			return fmt.Errorf("cluster: update node %d out of range [0,%d)", u.Node, cur.nodes)
		}
	}
	next := make([]*Shard, len(cur.shards))
	for i, s := range cur.shards {
		ns, _, err := s.WithUpdates(updates)
		if err != nil {
			return err
		}
		next[i] = ns
	}
	// Keep the whole-graph score vector current: a later structural edit
	// rebuilds shards from it, and a rebuild must never revert scores.
	if l.full != nil {
		for _, u := range updates {
			l.full.scores[u.Node] = u.Score
		}
	}
	l.set.Store(&shardSet{shards: next, nodes: cur.nodes, edgeCut: cur.edgeCut})
	return nil
}

// ApplyEdits derives the successor graph, extends the partitioning over
// any added nodes (deterministically — node v joins part v mod P), and
// rebuilds exactly the shards owning a node whose h-hop neighborhood
// changed: for those shards the closure is regrown — ghost sets widen or
// shrink with the edit — and the fresh Shard recertifies its merge
// bounds from scratch. Every other shard provably kept its closure,
// induced subgraph, and bounds, and carries over untouched. The new
// generation is swapped in atomically, exactly like a score batch.
func (l *Local) ApplyEdits(_ context.Context, edits []graph.Edit) error {
	l.applyMu.Lock()
	defer l.applyMu.Unlock()
	if l.full == nil {
		return errors.New("cluster: transport over prebuilt shards has no full graph to edit")
	}
	d := l.full
	newG, delta, err := d.g.ApplyEdits(edits)
	if err != nil {
		return err
	}
	for len(d.scores) < newG.NumNodes() {
		d.scores = append(d.scores, 0) // added nodes start unscored
	}
	d.p.ExtendTo(newG.NumNodes())

	affected := graph.AffectedNodes(d.g, newG, delta, d.h)
	needRebuild := make([]bool, d.p.P)
	for _, w := range affected {
		needRebuild[d.p.PartOf(w)] = true
	}

	cur := l.set.Load()
	next := make([]*Shard, len(cur.shards))
	for i, s := range cur.shards {
		if !needRebuild[i] {
			next[i] = s
			continue
		}
		ns, err := BuildShard(newG, d.scores, d.h, d.p, i)
		if err != nil {
			return err // nothing swapped in; the old generation still serves
		}
		if l.prepared {
			ns.Engine().PrepareNeighborhoodIndex(l.prepWorkers)
		}
		next[i] = ns
	}
	d.g = newG
	l.set.Store(&shardSet{shards: next, nodes: newG.NumNodes(), edgeCut: d.p.EdgeCut(newG)})
	return nil
}

// Topology reports the in-process layout.
func (l *Local) Topology() Topology {
	cur := l.set.Load()
	t := Topology{Shards: len(cur.shards), EdgeCut: cur.edgeCut}
	for _, s := range cur.shards {
		t.BoundaryNodes += int64(s.BoundaryNodes())
		t.OwnedSizes = append(t.OwnedSizes, s.OwnedCount())
	}
	return t
}

// Close is a no-op for the in-process transport.
func (l *Local) Close() error { return nil }

var _ Transport = (*Local)(nil)

// Partitioning re-derives the partitioning parameters used by BuildShards
// so out-of-process workers agree with an in-process coordinator built
// from the same inputs.
func Partitioning(g *graph.Graph, parts int) (*partition.Partitioning, error) {
	p, err := partition.BFSGrow(g, parts)
	if err != nil {
		return nil, err
	}
	if parts > 1 {
		partition.Refine(g, p, 1.3, 3)
	}
	return p, nil
}
