package cluster

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Transport reaches the shards of one partitioned dataset. Two
// implementations exist: Local (every shard in this process, one
// goroutine each — one lonad serving all shards on one box) and HTTP
// (each shard behind a lonad worker process). The Coordinator is written
// against this interface only, so the fan-out/merge logic is identical
// in-process and across machines.
type Transport interface {
	// Shards returns the number of shards in the topology.
	Shards() int
	// Nodes returns the node count of the full graph, for global
	// candidate validation.
	Nodes() int
	// Snapshot returns a consistent view of every shard for the duration
	// of one query, mirroring internal/server's generation-snapshot
	// discipline: a score update concurrent with a query must not let the
	// query observe some shards before the update and some after. The
	// HTTP transport returns itself — cross-process snapshot isolation
	// would need versioned reads, which remote workers do not promise.
	Snapshot() QueryView
	// ApplyScores applies a relevance update batch to every shard that
	// holds an affected node (owned or ghost copy).
	ApplyScores(ctx context.Context, updates []ScoreUpdate) error
	// Topology describes the partitioning for stats reporting; fields a
	// transport cannot know (the HTTP transport never sees the full
	// graph) are zero.
	Topology() Topology
	// Close releases transport resources.
	Close() error
}

// QueryView is one query's consistent view of the shard set.
type QueryView interface {
	// Query executes q (global ids, coordinator-split budget) on a shard.
	Query(ctx context.Context, shard int, q core.Query) (core.Answer, error)
	// UpperBound returns the shard's certified merge bound for agg.
	UpperBound(ctx context.Context, shard int, agg core.Aggregate) (float64, error)
}

// ScoreUpdate is one relevance mutation, in global node ids.
type ScoreUpdate struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// Topology summarizes a shard layout for stats reporting.
type Topology struct {
	Shards int `json:"shards"`
	// EdgeCut is the partitioning's structural cut (0 when unknown).
	EdgeCut int `json:"edge_cut,omitempty"`
	// BoundaryNodes is the total ghost replication across shards: each
	// shard's closure size minus its owned size.
	BoundaryNodes int64 `json:"boundary_nodes"`
	// OwnedSizes lists each shard's owned-node count.
	OwnedSizes []int `json:"owned_sizes,omitempty"`
}

// Local is the in-process transport: every shard lives in this process
// and a "shard query" is a direct method call on its engine (the
// coordinator still runs them on separate goroutines, one simulated
// machine each). The shard set is swapped atomically on score updates,
// so queries snapshot one generation for their whole fan-out.
type Local struct {
	nodes   int
	edgeCut int

	applyMu sync.Mutex // serializes ApplyScores batches
	set     atomic.Pointer[shardSet]
}

// shardSet is one immutable generation of shards.
type shardSet struct {
	shards []*Shard
}

// NewLocal partitions (g, scores, h) into parts shards and returns the
// in-process transport over them.
func NewLocal(g *graph.Graph, scores []float64, h, parts int) (*Local, error) {
	shards, p, err := BuildShards(g, scores, h, parts)
	if err != nil {
		return nil, err
	}
	return NewLocalFromShards(shards, g.NumNodes(), p.EdgeCut(g)), nil
}

// NewLocalFromShards wraps prebuilt shards (tests, custom partitionings).
func NewLocalFromShards(shards []*Shard, nodes, edgeCut int) *Local {
	l := &Local{nodes: nodes, edgeCut: edgeCut}
	l.set.Store(&shardSet{shards: shards})
	return l
}

// PrepareIndexes eagerly builds each shard's neighborhood index (workers
// goroutines per build), so first queries do not stall and merge bounds
// are tight from the start. The per-edge differential index is left
// lazy: paying it P times eagerly would dominate startup, and the
// planner avoids Forward until it exists — the same contract as
// server.Options.SkipIndexes.
func (l *Local) PrepareIndexes(workers int) {
	for _, s := range l.set.Load().shards {
		s.Engine().PrepareNeighborhoodIndex(workers)
	}
}

// Shards returns the shard count.
func (l *Local) Shards() int { return len(l.set.Load().shards) }

// Nodes returns the full graph's node count.
func (l *Local) Nodes() int { return l.nodes }

// Snapshot pins the current shard generation for one query.
func (l *Local) Snapshot() QueryView { return l.set.Load() }

// Query runs q directly against the shard.
func (ss *shardSet) Query(ctx context.Context, shard int, q core.Query) (core.Answer, error) {
	return ss.shards[shard].Run(ctx, q)
}

// UpperBound returns the shard's memoized merge bound.
func (ss *shardSet) UpperBound(_ context.Context, shard int, agg core.Aggregate) (float64, error) {
	return ss.shards[shard].UpperBound(agg)
}

// ApplyScores derives a new shard generation with the updates applied and
// swaps it in atomically. In-flight queries keep their snapshot; new
// queries see every shard at the new generation. Shards untouched by the
// batch are reused as-is.
func (l *Local) ApplyScores(_ context.Context, updates []ScoreUpdate) error {
	l.applyMu.Lock()
	defer l.applyMu.Unlock()
	cur := l.set.Load()
	next := make([]*Shard, len(cur.shards))
	for i, s := range cur.shards {
		ns, _, err := s.WithUpdates(updates)
		if err != nil {
			return err
		}
		next[i] = ns
	}
	l.set.Store(&shardSet{shards: next})
	return nil
}

// Topology reports the in-process layout.
func (l *Local) Topology() Topology {
	shards := l.set.Load().shards
	t := Topology{Shards: len(shards), EdgeCut: l.edgeCut}
	for _, s := range shards {
		t.BoundaryNodes += int64(s.BoundaryNodes())
		t.OwnedSizes = append(t.OwnedSizes, s.OwnedCount())
	}
	return t
}

// Close is a no-op for the in-process transport.
func (l *Local) Close() error { return nil }

var _ Transport = (*Local)(nil)

// Partitioning re-derives the partitioning parameters used by BuildShards
// so out-of-process workers agree with an in-process coordinator built
// from the same inputs.
func Partitioning(g *graph.Graph, parts int) (*partition.Partitioning, error) {
	p, err := partition.BFSGrow(g, parts)
	if err != nil {
		return nil, err
	}
	if parts > 1 {
		partition.Refine(g, p, 1.3, 3)
	}
	return p, nil
}
