package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Shard is one partition-local execution unit: a core.Engine over the
// h-hop closure of the nodes the shard owns. Owning the closure — the
// owned nodes plus every "ghost" node within h hops of one — is what
// makes shard answers exact: each owned node's complete neighborhood is
// local, so no traversal ever needs another machine mid-query. Ghost
// nodes are ranked nowhere (each node is owned by exactly one shard) but
// their scores contribute to owned aggregates, mirroring core's
// candidate semantics.
//
// Because the closure node list is sorted ascending, the global→local id
// remap is monotone: subgraph adjacency keeps the full graph's relative
// order, BFS visits nodes in the same relative order, and floating-point
// aggregate sums are bit-for-bit identical to a single-engine run. The
// coordinator's byte-identical merge guarantee rests on this.
//
// A Shard is immutable after construction (its engine, like core's, is
// safe for concurrent queries); WithUpdates derives a successor shard for
// a new score generation, sharing all topology state.
type Shard struct {
	index int
	parts int

	engine      *core.Engine
	h           int
	globalNodes int // node count of the full graph

	owned      []int32 // global ids owned by this shard, ascending
	ownedLocal []int   // the same nodes as subgraph-local ids, ascending
	toGlobal   []int   // local id -> global id (monotone)
	localIndex []int32 // global id -> local id, -1 outside the closure
	isOwned    []bool  // by local id

	mu     sync.Mutex
	bounds map[core.Aggregate]float64 // memoized merge bounds
	sketch *Sketch                    // memoized owned-score sketch
}

// BuildShard builds the execution unit for one part of a partitioning:
// collect the part's owned nodes, close them under h hops, induce the
// subgraph, and stand up an engine over it. Workers in separate
// processes call this with the same deterministic partitioning to agree
// on shard contents without any coordination.
func BuildShard(g *graph.Graph, scores []float64, h int, p *partition.Partitioning, index int) (*Shard, error) {
	if index < 0 || index >= p.P {
		return nil, fmt.Errorf("cluster: shard index %d out of range [0,%d)", index, p.P)
	}
	if len(scores) != g.NumNodes() {
		return nil, fmt.Errorf("cluster: %d scores for %d nodes", len(scores), g.NumNodes())
	}
	var owned []int
	for v := 0; v < g.NumNodes(); v++ {
		if p.PartOf(v) == index {
			owned = append(owned, v)
		}
	}
	closure, err := graph.HopClosure(g, owned, h)
	if err != nil {
		return nil, err
	}
	sub, toGlobal, err := graph.InducedSubgraph(g, closure)
	if err != nil {
		return nil, err
	}
	subScores := make([]float64, len(toGlobal))
	localIndex := make([]int32, g.NumNodes())
	for i := range localIndex {
		localIndex[i] = -1
	}
	for local, global := range toGlobal {
		subScores[local] = scores[global]
		localIndex[global] = int32(local)
	}
	engine, err := core.NewEngine(sub, subScores, h)
	if err != nil {
		return nil, err
	}
	s := &Shard{
		index:       index,
		parts:       p.P,
		engine:      engine,
		h:           h,
		globalNodes: g.NumNodes(),
		toGlobal:    toGlobal,
		localIndex:  localIndex,
		isOwned:     make([]bool, len(toGlobal)),
		bounds:      make(map[core.Aggregate]float64),
	}
	s.owned = make([]int32, len(owned))
	s.ownedLocal = make([]int, len(owned))
	for i, v := range owned {
		s.owned[i] = int32(v)
		local := int(localIndex[v])
		s.ownedLocal[i] = local
		s.isOwned[local] = true
	}
	return s, nil
}

// BuildShards partitions g with BFS growth plus boundary refinement and
// builds every shard — the in-process path. The refinement pass shrinks
// the edge cut, which directly shrinks each shard's ghost-node
// replication (its per-query "message" volume).
func BuildShards(g *graph.Graph, scores []float64, h, parts int) ([]*Shard, *partition.Partitioning, error) {
	p, err := Partitioning(g, parts)
	if err != nil {
		return nil, nil, err
	}
	shards := make([]*Shard, parts)
	for i := range shards {
		if shards[i], err = BuildShard(g, scores, h, p, i); err != nil {
			return nil, nil, err
		}
	}
	return shards, p, nil
}

// Index returns which part of the partitioning this shard executes.
func (s *Shard) Index() int { return s.index }

// Parts returns the total number of shards in the topology.
func (s *Shard) Parts() int { return s.parts }

// GlobalNodes returns the node count of the full (unpartitioned) graph.
func (s *Shard) GlobalNodes() int { return s.globalNodes }

// OwnedCount returns how many global nodes this shard ranks.
func (s *Shard) OwnedCount() int { return len(s.owned) }

// BoundaryNodes returns the number of ghost nodes replicated into the
// shard: closure size minus owned size — the shard's share of the
// steady-state replication cost a partitioning's edge cut induces.
func (s *Shard) BoundaryNodes() int { return len(s.toGlobal) - len(s.owned) }

// Engine exposes the shard-local engine (tests and eager index prep).
func (s *Shard) Engine() *core.Engine { return s.engine }

// localOf returns v's subgraph-local id, or -1 when v lies outside the
// closure — including ids minted by structural edits after this shard was
// built (an unaffected shard is reused across edit generations, so it may
// legitimately be asked about nodes it has never seen).
func (s *Shard) localOf(v int) int32 {
	if v < 0 || v >= len(s.localIndex) {
		return -1
	}
	return s.localIndex[v]
}

// Run executes q against the shard in global-id terms: candidates are
// intersected with the shard's owned nodes and translated to local ids,
// and results are translated back. The monotone id remap preserves the
// (value desc, id asc) tie-break, so merging per-shard answers
// reconstructs the single-engine ordering exactly. An empty candidate
// intersection — q names only nodes owned elsewhere — returns an empty
// answer without touching the engine.
func (s *Shard) Run(ctx context.Context, q core.Query) (core.Answer, error) {
	lq, ok, err := s.localize(q)
	if err != nil {
		return core.Answer{}, err
	}
	if !ok {
		return core.Answer{Results: []core.Result{}}, nil
	}
	ans, err := s.engine.Run(ctx, lq)
	if err != nil {
		return core.Answer{}, err
	}
	for i := range ans.Results {
		ans.Results[i].Node = s.toGlobal[ans.Results[i].Node]
	}
	return ans, nil
}

// RunStream is Run with the streaming hooks attached: partial batches
// (translated to global ids) flow to emit as the engine certifies
// results, the external merge threshold λ flows in through floor, and —
// when the query carries a budget — extra draws replacement traversals
// from the coordinator's redistribution pool once the shard's own slice
// is spent. floor and extra may be nil. emit is invoked synchronously
// from the executing goroutine, strictly before Run returns.
func (s *Shard) RunStream(ctx context.Context, q core.Query, floor core.FloorProvider,
	extra core.BudgetSource, emit func(StreamBatch)) (core.Answer, error) {

	lq, ok, err := s.localize(q)
	if err != nil {
		return core.Answer{}, err
	}
	if !ok {
		return core.Answer{Results: []core.Result{}}, nil
	}
	lq.Floor = floor
	// Hand the engine this shard's memoized merge bound as the whole-scan
	// ceiling (admissible for any candidate subset: the maximum over all
	// owned nodes bounds any restriction), so a floor-carrying query does
	// not re-pay the O(n) AggregateUpperBound scan per execution.
	if b, err := s.UpperBound(q.Aggregate); err == nil {
		lq.Ceiling = b
	}
	if lq.Budget > 0 {
		lq.ExtraBudget = extra
	}
	lq.OnPartial = func(pr core.PartialResult) {
		items := make([]core.Result, len(pr.Items))
		for i, it := range pr.Items {
			items[i] = core.Result{Node: s.toGlobal[it.Node], Value: it.Value}
		}
		emit(StreamBatch{Items: items, Stats: pr.Stats})
	}
	ans, err := s.engine.Run(ctx, lq)
	if err != nil {
		return core.Answer{}, err
	}
	for i := range ans.Results {
		ans.Results[i].Node = s.toGlobal[ans.Results[i].Node]
	}
	return ans, nil
}

// localize rewrites q's candidate restriction into shard-local ids:
// candidates are intersected with the owned set (ok=false when nothing
// this shard ranks is named), and an unrestricted query is restricted to
// the owned nodes unless the shard owns its whole closure.
func (s *Shard) localize(q core.Query) (local core.Query, ok bool, err error) {
	if len(q.Candidates) > 0 {
		locals := make([]int, 0, len(q.Candidates))
		for _, v := range q.Candidates {
			if v < 0 {
				return q, false, fmt.Errorf("cluster: candidate node %d out of range", v)
			}
			// Ids at or beyond this shard's build-time node count belong
			// to nodes added since; they are by construction outside the
			// closure, so they fall out of the intersection like any other
			// remotely-owned node (the transport validated global range).
			if li := s.localOf(v); li >= 0 && s.isOwned[li] {
				locals = append(locals, int(li))
			}
		}
		if len(locals) == 0 {
			return q, false, nil
		}
		q.Candidates = locals
	} else if len(s.ownedLocal) != len(s.toGlobal) {
		q.Candidates = s.ownedLocal
	} // owning the whole closure (P=1): no restriction needed
	return q, true, nil
}

// UpperBound returns a certified upper bound on any aggregate value the
// shard could contribute for agg — the quantity the coordinator's
// TA-style merge compares against the running global k-th value. It is
// memoized per aggregate (the underlying scores are immutable).
func (s *Shard) UpperBound(agg core.Aggregate) (float64, error) {
	s.mu.Lock()
	if b, ok := s.bounds[agg]; ok {
		s.mu.Unlock()
		return b, nil
	}
	s.mu.Unlock()

	b, err := s.engine.AggregateUpperBound(agg, s.ownedLocal)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.bounds[agg] = b
	s.mu.Unlock()
	return b, nil
}

// Sketch summarizes the raw scores of the shard's owned nodes for the
// coordinator's λ-priming (see sketch.go). Memoized like the merge
// bounds: the underlying scores are immutable, and WithUpdates derives a
// fresh shard whose sketch is recomputed lazily — so a sketch can never
// go stale against the scores it summarizes, which its admissibility
// depends on.
func (s *Shard) Sketch() *Sketch {
	s.mu.Lock()
	if s.sketch != nil {
		sk := s.sketch
		s.mu.Unlock()
		return sk
	}
	s.mu.Unlock()

	scores := s.engine.Scores()
	owned := make([]float64, len(s.ownedLocal))
	for i, li := range s.ownedLocal {
		owned[i] = scores[li]
	}
	sk := BuildSketch(owned)
	s.mu.Lock()
	s.sketch = sk
	s.mu.Unlock()
	return sk
}

// WithUpdates derives the shard for a new score generation: updates whose
// node falls inside the closure (owned or ghost) are applied to a copy of
// the local scores and a new engine is built via WithScores, sharing the
// subgraph and its topology-only indexes. applied reports how many
// updates landed inside the closure; when none do, the receiver itself is
// returned unchanged — re-sharing its memoized bounds is then sound.
func (s *Shard) WithUpdates(updates []ScoreUpdate) (shard *Shard, applied int, err error) {
	for _, u := range updates {
		if u.Node < 0 {
			return nil, 0, fmt.Errorf("cluster: update node %d out of range", u.Node)
		}
		// Nodes beyond the build-time snapshot (added by structural edits
		// an unaffected shard never saw) are simply outside the closure;
		// the transport validates the global range.
		if s.localOf(u.Node) >= 0 {
			applied++
		}
	}
	if applied == 0 {
		return s, 0, nil
	}
	scores := append([]float64(nil), s.engine.Scores()...)
	for _, u := range updates {
		if li := s.localOf(u.Node); li >= 0 {
			scores[li] = u.Score
		}
	}
	engine, err := s.engine.WithScores(scores)
	if err != nil {
		return nil, 0, err
	}
	next := &Shard{
		index:       s.index,
		parts:       s.parts,
		engine:      engine,
		h:           s.h,
		globalNodes: s.globalNodes,
		owned:       s.owned,
		ownedLocal:  s.ownedLocal,
		toGlobal:    s.toGlobal,
		localIndex:  s.localIndex,
		isOwned:     s.isOwned,
		bounds:      make(map[core.Aggregate]float64),
	}
	return next, applied, nil
}
