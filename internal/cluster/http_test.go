package cluster

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// startWorkers builds the shards of (g, scores, h, parts) and serves each
// behind its own httptest server — P worker processes in miniature.
func startWorkers(t *testing.T, g *graph.Graph, scores []float64, h, parts int) ([]string, []*Worker) {
	t.Helper()
	shards, _, err := BuildShards(g, scores, h, parts)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, parts)
	workers := make([]*Worker, parts)
	for i, s := range shards {
		w := NewWorker(s)
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
		workers[i] = w
	}
	return urls, workers
}

// TestHTTPMatchesEngine runs the byte-identical property through the full
// HTTP stack: JSON round-trips must not perturb float64 values.
func TestHTTPMatchesEngine(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 21)
	scores := testScores(500, 47)
	engine, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	urls, _ := startWorkers(t, g, scores, 2, 4)
	transport, err := NewHTTP(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()
	if transport.Nodes() != 500 || transport.Shards() != 4 {
		t.Fatalf("transport sees %d nodes / %d shards", transport.Nodes(), transport.Shards())
	}
	coord := NewCoordinator(transport, Options{})

	for _, agg := range allAggregates {
		for _, algo := range []core.Algorithm{core.AlgoAuto, core.AlgoBase, core.AlgoBackwardNaive} {
			if !supportsAgg(algo, agg) {
				continue
			}
			q := core.Query{Algorithm: algo, K: 15, Aggregate: agg}
			want, err := engine.Run(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Run(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, "http "+agg.String()+"/"+algo.String(), got.Results, want.Results)
			if algo == core.AlgoAuto && got.Plan == nil {
				t.Fatalf("auto query over HTTP lost its plan")
			}
		}
	}

	// Candidates and budget survive the wire.
	q := core.Query{K: 5, Aggregate: core.Sum, Algorithm: core.AlgoBase, Candidates: []int{1, 9, 250, 499}}
	want, err := engine.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "http candidates", got.Results, want.Results)
	tiny, err := coord.Run(context.Background(), core.Query{K: 5, Aggregate: core.Sum, Algorithm: core.AlgoBase, Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !tiny.Truncated {
		t.Fatal("budgeted HTTP query did not report truncation")
	}
}

// TestHTTPApplyScores checks the update fan-out: after a batch the
// HTTP-backed coordinator matches a fresh engine over the new vector.
func TestHTTPApplyScores(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 33)
	scores := testScores(300, 51)
	urls, _ := startWorkers(t, g, scores, 2, 4)
	transport, err := NewHTTP(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()
	coord := NewCoordinator(transport, Options{})

	updated := append([]float64(nil), scores...)
	batch := []ScoreUpdate{{Node: 7, Score: 1}, {Node: 250, Score: 0}, {Node: 100, Score: 0.5}}
	for _, u := range batch {
		updated[u.Node] = u.Score
	}
	if err := transport.ApplyScores(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(g, updated, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase}
	want, err := engine.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "http post-update", got.Results, want.Results)

	if err := transport.ApplyScores(context.Background(), []ScoreUpdate{{Node: -1, Score: 0}}); err == nil {
		t.Fatal("invalid update accepted by fan-out")
	}
}

// TestHTTPDialValidation checks the fail-fast topology probes.
func TestHTTPDialValidation(t *testing.T) {
	g := gen.BarabasiAlbert(200, 2, 3)
	scores := testScores(200, 3)
	urls, _ := startWorkers(t, g, scores, 2, 3)

	// Out-of-order worker list: shard indexes do not match positions.
	if _, err := NewHTTP(context.Background(), []string{urls[1], urls[0], urls[2]}, nil); err == nil {
		t.Fatal("out-of-order worker list accepted")
	}
	// Partial worker list: topology says 3 shards, dialing 2.
	if _, err := NewHTTP(context.Background(), urls[:2], nil); err == nil {
		t.Fatal("partial worker list accepted")
	}
	// Unreachable worker.
	if _, err := NewHTTP(context.Background(), []string{"http://127.0.0.1:1"}, nil); err == nil {
		t.Fatal("unreachable worker accepted")
	}
	// A worker from a different dataset.
	other := gen.BarabasiAlbert(150, 2, 4)
	otherURLs, _ := startWorkers(t, other, testScores(150, 4), 2, 3)
	if _, err := NewHTTP(context.Background(), []string{urls[0], otherURLs[1], urls[2]}, nil); err == nil {
		t.Fatal("mixed-dataset worker list accepted")
	}
	// The well-formed list dials fine.
	tr, err := NewHTTP(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
}

// TestWorkerHandlerErrors checks the worker's HTTP error surface.
func TestWorkerHandlerErrors(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 5)
	urls, _ := startWorkers(t, g, testScores(100, 5), 2, 1)
	transport, err := NewHTTP(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()

	// Invalid queries surface the worker's message, not a decode error.
	if _, err := transport.Query(context.Background(), 0, core.Query{K: 0, Aggregate: core.Sum}); err == nil {
		t.Fatal("k=0 accepted by worker")
	}
	if _, err := transport.Query(context.Background(), 0, core.Query{K: 5, Aggregate: core.Max, Algorithm: core.AlgoForward}); err == nil {
		t.Fatal("MAX/Forward accepted by worker")
	}
	if _, err := transport.UpperBound(context.Background(), 0, core.Aggregate(77)); err == nil {
		t.Fatal("unknown aggregate bound accepted by worker")
	}
}
