package cluster

// Journal replay over the wire: the coordinator's catch-up path for a
// worker that restarted (or missed a fan-out leg) ships the journal
// suffix the worker lacks instead of re-shipping the whole graph. Each
// commit is one applied mutation batch, generation-stamped, and the
// worker applies them in order through the same incremental score/edit
// machinery the live fan-out uses — so a caught-up worker is
// bit-identical to one that never went away.
//
// Replay deliberately does not touch the worker's editSeq: journaled
// commits were fully fan-out-applied before they were journaled, so
// they are never re-sent through /v1/shard/edits, and the only batch a
// coordinator retries (the pending, unjournaled one) is exactly the
// batch a caught-up worker has not seen yet.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/graph"
)

// ReplayCommit is one journaled mutation batch: a generation stamp plus
// exactly one of a score-update batch or a structural edit batch.
type ReplayCommit struct {
	Gen     uint64
	Updates []ScoreUpdate
	Edits   []graph.Edit
}

// ReplayResult summarizes a worker's state after a replay: how many
// commits it actually applied (commits at or below its generation are
// skipped idempotently) and where it landed.
type ReplayResult struct {
	Applied    int
	Generation uint64
	Nodes      int
}

// Replayer is implemented by transports that can ship a journal suffix
// to one worker. The in-process transport does not implement it: local
// shards share the coordinator's state and can never fall behind.
type Replayer interface {
	Replay(ctx context.Context, shard int, commits []ReplayCommit) (ReplayResult, error)
}

// wireCommit is one ReplayCommit on the wire.
type wireCommit struct {
	Gen     uint64        `json:"gen"`
	Updates []ScoreUpdate `json:"updates,omitempty"`
	Edits   []wireEdit    `json:"edits,omitempty"`
}

// wireReplay is the /v1/shard/replay request and response.
type wireReplay struct {
	Commits []wireCommit `json:"commits,omitempty"`
	// Response fields.
	Applied    int     `json:"applied,omitempty"`
	Generation uint64  `json:"generation,omitempty"`
	Nodes      int     `json:"nodes,omitempty"`
	Owned      int     `json:"owned,omitempty"`
	Boundary   int     `json:"boundary,omitempty"`
	Sketch     *Sketch `json:"sketch,omitempty"`
}

// handleReplay applies a generation-contiguous journal suffix. Commits
// at or below the worker's generation are skipped (the coordinator may
// ship a generous suffix); a gap above it is a hard error — replaying
// across a hole would silently diverge the replica.
func (w *Worker) handleReplay(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		writeWireError(rw, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	var req wireReplay
	if err := dec.Decode(&req); err != nil {
		writeWireError(rw, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.g == nil {
		writeWireError(rw, http.StatusNotImplemented,
			errors.New("worker was built from a bare shard and cannot replay structural history"))
		return
	}
	applied := 0
	for _, c := range req.Commits {
		if c.Gen <= w.gen {
			continue // already applied before the worker's boot state
		}
		if c.Gen != w.gen+1 {
			writeWireError(rw, http.StatusConflict,
				fmt.Errorf("replay gap: worker is at generation %d, next shipped commit is %d", w.gen, c.Gen))
			return
		}
		if status, err := w.applyCommitLocked(c); err != nil {
			writeWireError(rw, status, fmt.Errorf("commit for generation %d: %w", c.Gen, err))
			return
		}
		w.gen = c.Gen
		applied++
	}
	writeJSON(rw, http.StatusOK, wireReplay{
		Applied:    applied,
		Generation: w.gen,
		Nodes:      w.g.NumNodes(),
		Owned:      w.shard.OwnedCount(),
		Boundary:   w.shard.BoundaryNodes(),
		Sketch:     w.shard.Sketch(),
	})
}

// applyCommitLocked applies one replayed commit's payload (the caller
// owns the generation bookkeeping). It reuses the exact live paths:
// Shard.WithUpdates for scores, applyEditsLocked for structure.
func (w *Worker) applyCommitLocked(c wireCommit) (status int, err error) {
	switch {
	case len(c.Updates) > 0 && len(c.Edits) > 0:
		return http.StatusBadRequest, errors.New("commit carries both scores and edits")
	case len(c.Updates) > 0:
		for _, u := range c.Updates {
			if u.Node < 0 || u.Node >= len(w.scores) {
				return http.StatusBadRequest,
					fmt.Errorf("update node %d out of range [0,%d)", u.Node, len(w.scores))
			}
		}
		next, _, err := w.shard.WithUpdates(c.Updates)
		if err != nil {
			return http.StatusBadRequest, err
		}
		w.shard = next
		for _, u := range c.Updates {
			w.scores[u.Node] = u.Score
		}
		return 0, nil
	case len(c.Edits) > 0:
		edits, err := decodeEdits(c.Edits)
		if err != nil {
			return http.StatusBadRequest, err
		}
		_, status, err := w.applyEditsLocked(edits)
		return status, err
	default:
		return http.StatusBadRequest, errors.New("commit carries neither scores nor edits")
	}
}

// Replay ships a journal suffix to one worker and reports where it
// landed. Unlike the fan-outs this is a single leg: catch-up targets
// exactly the workers a health probe found behind. The worker's
// piggybacked sketch refreshes this transport's priming state; the
// cached topology is left alone — journaled commits were fully applied
// cluster-wide before journaling, so a successful replay lands the
// worker on the shape the topology already records (the node-count
// check below enforces exactly that).
func (t *HTTP) Replay(ctx context.Context, shard int, commits []ReplayCommit) (ReplayResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if shard < 0 || shard >= len(t.workers) {
		return ReplayResult{}, fmt.Errorf("cluster: replay shard %d out of range [0,%d)", shard, len(t.workers))
	}
	wire := make([]wireCommit, len(commits))
	for i, c := range commits {
		wire[i] = wireCommit{Gen: c.Gen, Updates: c.Updates}
		if len(c.Edits) > 0 {
			wire[i].Edits = encodeEdits(c.Edits)
		}
	}
	var resp wireReplay
	if err := t.post(ctx, t.workers[shard]+"/v1/shard/replay", wireReplay{Commits: wire}, &resp); err != nil {
		return ReplayResult{}, fmt.Errorf("cluster: worker %d (%s): %w", shard, t.workers[shard], err)
	}
	t.mu.Lock()
	if resp.Sketch != nil && shard < len(t.sketches) {
		t.sketches[shard] = resp.Sketch
	}
	nodes := t.nodes
	t.mu.Unlock()
	if nodes != 0 && resp.Nodes != nodes {
		return ReplayResult{}, fmt.Errorf("cluster: worker %d reports %d nodes after replay, coordinator expects %d — replica desynchronized",
			shard, resp.Nodes, nodes)
	}
	return ReplayResult{Applied: resp.Applied, Generation: resp.Generation, Nodes: resp.Nodes}, nil
}

var _ Replayer = (*HTTP)(nil)
