package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// This file extends the Coordinator ≡ Engine property to mutating
// graphs: structural edit batches propagated through Transport.ApplyEdits
// must leave every affected shard's closure, ghost set, and recertified
// merge bound in a state whose merged answers are still byte-identical to
// a single engine over the mutated graph — at every generation, for
// P ∈ {1,2,4,8}, and under concurrent edits and in-flight queries.

// randomClusterEdits draws a legal batch against an n-node graph,
// mixing inserts (sometimes duplicates), removals (aimed at real edges),
// and node additions.
func randomClusterEdits(rng *rand.Rand, g *graph.Graph, batch int) []graph.Edit {
	n := g.NumNodes()
	edits := make([]graph.Edit, 0, batch)
	for len(edits) < batch {
		switch rng.Intn(8) {
		case 0:
			edits = append(edits, graph.Edit{Op: graph.EditAddNode})
			n++
		case 1, 2:
			u := rng.Intn(g.NumNodes())
			if g.Degree(u) > 0 {
				nbrs := g.Neighbors(u)
				edits = append(edits, graph.Edit{Op: graph.EditRemoveEdge, U: u, V: int(nbrs[rng.Intn(len(nbrs))])})
			}
		default:
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edits = append(edits, graph.Edit{Op: graph.EditAddEdge, U: u, V: v})
			}
		}
	}
	return edits
}

// TestCoordinatorMatchesEngineUnderEdits applies random edit scripts
// (interleaved with score updates, including on freshly added nodes)
// through the Local transport and checks, at every generation, that the
// coordinator still matches a fresh single engine over the mutated
// graph for every aggregate × algorithm × P ∈ {1,2,4,8}.
func TestCoordinatorMatchesEngineUnderEdits(t *testing.T) {
	const h, k, rounds = 2, 10, 3
	ctx := context.Background()
	graphs := map[string]*graph.Graph{
		"ba":        gen.BarabasiAlbert(350, 3, 7),
		"er":        gen.ErdosRenyi(300, 700, 13),
		"ws":        gen.WattsStrogatz(280, 6, 0.2, 19),
		"community": gen.PlantedPartition(300, 4, 0.07, 0.004, 23),
	}
	for name, start := range graphs {
		for _, parts := range []int{1, 2, 4, 8} {
			rng := rand.New(rand.NewSource(int64(parts)*100 + int64(len(name))))
			scores := testScores(start.NumNodes(), 29)
			local, err := NewLocal(start, scores, h, parts)
			if err != nil {
				t.Fatalf("%s parts=%d: %v", name, parts, err)
			}
			coord := NewCoordinator(local, Options{})
			g := start // the oracle replays the same deterministic batches
			for round := 0; round < rounds; round++ {
				edits := randomClusterEdits(rng, g, 1+rng.Intn(8))
				if err := local.ApplyEdits(ctx, edits); err != nil {
					t.Fatalf("%s parts=%d round %d: %v", name, parts, round, err)
				}
				next, _, err := g.ApplyEdits(edits)
				if err != nil {
					t.Fatal(err)
				}
				g = next
				for len(scores) < g.NumNodes() {
					scores = append(scores, 0)
				}
				// Score a random node — frequently one the batch just
				// minted — through the transport, so edits compose with
				// the score fan-out.
				node := rng.Intn(g.NumNodes())
				newScore := float64(rng.Intn(9)) / 8
				if err := local.ApplyScores(ctx, []ScoreUpdate{{Node: node, Score: newScore}}); err != nil {
					t.Fatalf("%s parts=%d round %d: score: %v", name, parts, round, err)
				}
				scores[node] = newScore

				engine, err := core.NewEngine(g, scores, h)
				if err != nil {
					t.Fatal(err)
				}
				for _, agg := range allAggregates {
					for _, algo := range append([]core.Algorithm{core.AlgoAuto}, core.Algorithms...) {
						if !supportsAgg(algo, agg) {
							continue
						}
						q := core.Query{Algorithm: algo, K: k, Aggregate: agg}
						want, errWant := engine.Run(ctx, q)
						got, errGot := coord.Run(ctx, q)
						label := name + "/" + agg.String() + "/" + algo.String()
						if (errWant == nil) != (errGot == nil) {
							t.Fatalf("%s parts=%d round %d: engine err=%v, coordinator err=%v",
								label, parts, round, errWant, errGot)
						}
						if errWant != nil {
							continue
						}
						assertSameResults(t, label, got.Results, want.Results)
					}
				}
			}
		}
	}
}

// TestClusterEditsConcurrentWithQueries is the race-enabled
// serializability check: while edit batches apply sequentially, queries
// run concurrently, and every answer must be byte-identical to the
// answer at SOME generation — the shard-set snapshot makes each query
// see one consistent topology, never a half-applied batch.
func TestClusterEditsConcurrentWithQueries(t *testing.T) {
	const h, k, parts, batches = 2, 10, 4, 6
	ctx := context.Background()
	g := gen.BarabasiAlbert(400, 3, 31)
	scores := testScores(g.NumNodes(), 37)

	// Pre-derive the per-generation graphs and expected answers by
	// replaying the deterministic batches.
	rng := rand.New(rand.NewSource(41))
	gens := []*graph.Graph{g}
	scripts := make([][]graph.Edit, batches)
	cur := g
	for b := 0; b < batches; b++ {
		scripts[b] = randomClusterEdits(rng, cur, 5)
		next, _, err := cur.ApplyEdits(scripts[b])
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, next)
		cur = next
	}
	q := core.Query{Algorithm: core.AlgoBase, K: k, Aggregate: core.Sum}
	expected := make([][]core.Result, len(gens))
	for i, gg := range gens {
		s := scores
		for len(s) < gg.NumNodes() {
			s = append(s, 0)
		}
		engine, err := core.NewEngine(gg, s, h)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := engine.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = ans.Results
	}

	local, err := NewLocal(g, scores, h, parts)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ans, err := coord.Run(ctx, q)
				if err != nil {
					errs <- err
					return
				}
				if !matchesSomeGeneration(ans.Results, expected) {
					errs <- errNoGeneration
					return
				}
			}
		}()
	}
	for b := 0; b < batches; b++ {
		if err := local.ApplyEdits(ctx, scripts[b]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Quiesced: the final answers must be exactly the last generation's.
	ans, err := coord.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "final generation", ans.Results, expected[len(expected)-1])
}

// errNoGeneration is the serializability violation sentinel.
var errNoGeneration = errNG{}

type errNG struct{}

func (errNG) Error() string {
	return "cluster: query answer matches no generation — inconsistent with every serializable edit order"
}

// matchesSomeGeneration reports whether got is byte-identical to one of
// the per-generation expected answers.
func matchesSomeGeneration(got []core.Result, expected [][]core.Result) bool {
	for _, want := range expected {
		if len(got) != len(want) {
			continue
		}
		same := true
		for i := range want {
			if got[i].Node != want[i].Node ||
				math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// TestHTTPWorkersApplyEdits drives the same equivalence over the wire:
// graph-aware workers behind real HTTP servers apply edit batches fanned
// out by the transport, rebuild only affected shards, and keep merged
// answers byte-identical to a single engine — including for a node that
// did not exist at dial time.
func TestHTTPWorkersApplyEdits(t *testing.T) {
	const h, k, parts = 2, 10, 3
	ctx := context.Background()
	g := gen.BarabasiAlbert(240, 3, 43)
	scores := testScores(g.NumNodes(), 47)

	urls := make([]string, parts)
	for i := 0; i < parts; i++ {
		w, err := NewGraphWorker(g, scores, h, parts, i)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(w.Handler())
		defer srv.Close()
		urls[i] = srv.URL
	}
	transport, err := NewHTTP(ctx, urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()
	coord := NewCoordinator(transport, Options{})

	edits := []graph.Edit{
		{Op: graph.EditAddNode},
		{Op: graph.EditAddEdge, U: g.NumNodes(), V: 0},
		{Op: graph.EditAddEdge, U: g.NumNodes(), V: 7},
		{Op: graph.EditRemoveEdge, U: 0, V: int(g.Neighbors(0)[0])},
	}
	if err := transport.ApplyEdits(ctx, edits); err != nil {
		t.Fatal(err)
	}
	if transport.Nodes() != g.NumNodes()+1 {
		t.Fatalf("transport reports %d nodes, want %d", transport.Nodes(), g.NumNodes()+1)
	}

	// Score the new node over the wire, then verify equivalence.
	newNode := g.NumNodes()
	if err := transport.ApplyScores(ctx, []ScoreUpdate{{Node: newNode, Score: 0.875}}); err != nil {
		t.Fatal(err)
	}
	mutated, _, err := g.ApplyEdits(edits)
	if err != nil {
		t.Fatal(err)
	}
	updated := append(append([]float64(nil), scores...), 0.875)
	engine, err := core.NewEngine(mutated, updated, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []core.Aggregate{core.Sum, core.Avg, core.Count} {
		q := core.Query{Algorithm: core.AlgoBase, K: k, Aggregate: agg}
		want, err := engine.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "http/"+agg.String(), got.Results, want.Results)
	}

	// The new node must be rankable as an explicit candidate too.
	want, err := engine.Run(ctx, core.Query{Algorithm: core.AlgoBase, K: 1, Aggregate: core.Sum, Candidates: []int{newNode}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(ctx, core.Query{Algorithm: core.AlgoBase, K: 1, Aggregate: core.Sum, Candidates: []int{newNode}})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "http/new-node-candidate", got.Results, want.Results)
}

// TestHTTPEditRetryIdempotent: a partially-failed edit fan-out is
// recovered by re-sending the identical batch — the batch keeps its
// sequence number, workers that already applied it answer idempotently,
// and an add-node batch (whose raw replay would mint a duplicate node
// and permanently desynchronize the replicas) converges exactly once.
func TestHTTPEditRetryIdempotent(t *testing.T) {
	const h, parts = 2, 2
	ctx := context.Background()
	g := gen.BarabasiAlbert(150, 3, 53)
	scores := testScores(g.NumNodes(), 59)

	urls := make([]string, parts)
	var failOnce atomic.Bool
	for i := 0; i < parts; i++ {
		w, err := NewGraphWorker(g, scores, h, parts, i)
		if err != nil {
			t.Fatal(err)
		}
		handler := w.Handler()
		if i == parts-1 {
			// The last worker fails its first /v1/shard/edits, after the
			// earlier workers have already applied the batch.
			inner := handler
			handler = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/shard/edits" && failOnce.CompareAndSwap(false, true) {
					http.Error(rw, `{"error":"injected crash"}`, http.StatusInternalServerError)
					return
				}
				inner.ServeHTTP(rw, r)
			})
		}
		srv := httptest.NewServer(handler)
		defer srv.Close()
		urls[i] = srv.URL
	}
	transport, err := NewHTTP(ctx, urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()

	batch := []graph.Edit{
		{Op: graph.EditAddNode},
		{Op: graph.EditAddEdge, U: g.NumNodes(), V: 3},
	}
	if err := transport.ApplyEdits(ctx, batch); err == nil {
		t.Fatal("injected worker failure did not surface")
	}
	// The documented recovery: re-send the identical batch.
	if err := transport.ApplyEdits(ctx, batch); err != nil {
		t.Fatalf("retry did not converge: %v", err)
	}
	if got := transport.Nodes(); got != g.NumNodes()+1 {
		t.Fatalf("transport reports %d nodes after retry, want %d (duplicate add-node?)", got, g.NumNodes()+1)
	}

	// A subsequent, genuinely new batch still applies everywhere.
	if err := transport.ApplyEdits(ctx, []graph.Edit{{Op: graph.EditAddNode}}); err != nil {
		t.Fatal(err)
	}
	if got := transport.Nodes(); got != g.NumNodes()+2 {
		t.Fatalf("post-recovery batch: %d nodes, want %d", got, g.NumNodes()+2)
	}

	// Answers stay byte-identical to a single engine over the converged
	// state.
	mutated, _, err := g.ApplyEdits(append(batch, graph.Edit{Op: graph.EditAddNode}))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(mutated, append(append([]float64(nil), scores...), 0, 0), h)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(transport, Options{})
	q := core.Query{Algorithm: core.AlgoBase, K: 8, Aggregate: core.Sum}
	want, err := engine.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "post-retry", got.Results, want.Results)
}

// TestWorkerScoreRangeValidation: both worker flavors reject updates to
// node ids beyond their full-graph authority (the build-time count for a
// bare shard worker, the live — possibly grown — count for a graph
// worker), instead of silently dropping them.
func TestWorkerScoreRangeValidation(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 61)
	scores := testScores(100, 67)

	shards, _, err := BuildShards(g, scores, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	bare := httptest.NewServer(NewWorker(shards[0]).Handler())
	defer bare.Close()
	full, err := NewGraphWorker(g, scores, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	fullSrv := httptest.NewServer(full.Handler())
	defer fullSrv.Close()

	post := func(url string, updates []ScoreUpdate) int {
		t.Helper()
		blob, _ := json.Marshal(wireScores{Updates: updates})
		resp, err := http.Post(url+"/v1/shard/scores", "application/json", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, url := range []string{bare.URL, fullSrv.URL} {
		if code := post(url, []ScoreUpdate{{Node: 999999, Score: 0.5}}); code != http.StatusBadRequest {
			t.Fatalf("%s: out-of-range update answered %d, want 400", url, code)
		}
		if code := post(url, []ScoreUpdate{{Node: 5, Score: 0.5}}); code != http.StatusOK {
			t.Fatalf("%s: valid update answered %d", url, code)
		}
	}

	// After an edit grows the graph, the graph worker's limit grows too.
	newNode := g.NumNodes()
	blob, _ := json.Marshal(wireEdits{Edits: encodeEdits([]graph.Edit{{Op: graph.EditAddNode}}), Seq: 1})
	resp, err := http.Post(fullSrv.URL+"/v1/shard/edits", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit answered %d", resp.StatusCode)
	}
	if code := post(fullSrv.URL, []ScoreUpdate{{Node: newNode, Score: 1}}); code != http.StatusOK {
		t.Fatalf("update to freshly added node answered %d, want 200", code)
	}
}

// TestApplyEditsValidation: invalid batches are rejected whole, and a
// transport without full-graph context refuses edits.
func TestApplyEditsValidation(t *testing.T) {
	ctx := context.Background()
	g := gen.BarabasiAlbert(120, 3, 5)
	scores := testScores(120, 7)
	local, err := NewLocal(g, scores, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})
	before, err := coord.Run(ctx, core.Query{Algorithm: core.AlgoBase, K: 5, Aggregate: core.Sum})
	if err != nil {
		t.Fatal(err)
	}
	if err := local.ApplyEdits(ctx, []graph.Edit{
		{Op: graph.EditAddEdge, U: 0, V: 1},
		{Op: graph.EditAddEdge, U: 0, V: 9999},
	}); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	after, err := coord.Run(ctx, core.Query{Algorithm: core.AlgoBase, K: 5, Aggregate: core.Sum})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "rejected batch must not mutate", after.Results, before.Results)

	shards, p, err := BuildShards(g, scores, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	bare := NewLocalFromShards(shards, g.NumNodes(), p.EdgeCut(g))
	if err := bare.ApplyEdits(ctx, []graph.Edit{{Op: graph.EditAddNode}}); err == nil {
		t.Fatal("transport without full graph accepted edits")
	}
}
