package cluster

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/relevance"
)

// aggregates every algorithm supports, plus the Max special case.
var allAggregates = []core.Aggregate{core.Sum, core.Avg, core.WeightedSum, core.Count, core.Max}

// supportsAgg mirrors core.checkQuery's aggregate/algorithm matrix.
func supportsAgg(algo core.Algorithm, agg core.Aggregate) bool {
	if agg != core.Max {
		return true
	}
	switch algo {
	case core.AlgoForward, core.AlgoBackward, core.AlgoForwardDist:
		return false
	}
	return true
}

// testScores builds a deterministic relevance vector with deliberate
// ties (quantized to 1/8ths) so the (value desc, id asc) tie-break is
// exercised, not just float equality.
func testScores(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64(rng.Intn(9)) / 8
	}
	return scores
}

// assertSameResults fails unless got is byte-identical to want —
// including ordering and float bits.
func assertSameResults(t *testing.T, label string, got, want []core.Result) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		limit := len(got)
		if len(want) < limit {
			limit = len(want)
		}
		for i := 0; i < limit; i++ {
			if got[i] != want[i] {
				t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
			}
		}
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
}

// TestCoordinatorMatchesEngine is the central property: for every
// aggregate, every algorithm that supports it, and P ∈ {1,2,4,8}, the
// coordinator's merged answer is byte-identical (results and ordering,
// tie-breaks included) to a single-engine run on the full graph.
func TestCoordinatorMatchesEngine(t *testing.T) {
	const h, k = 2, 12
	graphs := map[string]*graph.Graph{
		"ba-400":   gen.BarabasiAlbert(400, 3, 7),
		"ba-900":   gen.BarabasiAlbert(900, 2, 11),
		"er-500":   gen.ErdosRenyi(500, 1200, 13), // disconnected components cross shards
		"directed": gen.Citation(gen.DatasetScale(0.02), 17),
	}
	for name, g := range graphs {
		scores := testScores(g.NumNodes(), 23)
		engine, err := core.NewEngine(g, scores, h)
		if err != nil {
			t.Fatal(err)
		}
		engine.PrepareDifferentialIndex(0) // let the planner and Forward run
		for _, parts := range []int{1, 2, 4, 8} {
			local, err := NewLocal(g, scores, h, parts)
			if err != nil {
				t.Fatalf("%s parts=%d: %v", name, parts, err)
			}
			coord := NewCoordinator(local, Options{})
			for _, agg := range allAggregates {
				for _, algo := range append([]core.Algorithm{core.AlgoAuto}, core.Algorithms...) {
					if !supportsAgg(algo, agg) {
						continue
					}
					q := core.Query{Algorithm: algo, K: k, Aggregate: agg}
					want, errWant := engine.Run(context.Background(), q)
					got, errGot := coord.Run(context.Background(), q)
					label := name + "/" + agg.String() + "/" + algo.String() +
						"/parts=" + string(rune('0'+parts))
					if (errWant == nil) != (errGot == nil) {
						t.Fatalf("%s: engine err=%v, coordinator err=%v", label, errWant, errGot)
					}
					if errWant != nil {
						continue // e.g. backward on the directed graph
					}
					assertSameResults(t, label, got.Results, want.Results)
				}
			}
		}
	}
}

// TestCoordinatorCandidates checks the candidate restriction splits
// correctly across shards, including sets owned entirely by one shard.
func TestCoordinatorCandidates(t *testing.T) {
	g := gen.BarabasiAlbert(600, 3, 5)
	scores := testScores(600, 31)
	engine, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(g, scores, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})

	rng := rand.New(rand.NewSource(41))
	cases := [][]int{
		{5},               // single node
		{0, 1, 2, 3},      // a contiguous prefix (likely one shard)
		{599, 0, 300, 17}, // spread, unsorted
	}
	var random []int
	for v := 0; v < 600; v++ {
		if rng.Intn(3) == 0 {
			random = append(random, v)
		}
	}
	cases = append(cases, random)
	for i, cand := range cases {
		q := core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase, Candidates: cand}
		want, err := engine.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "candidates case "+string(rune('0'+i)), got.Results, want.Results)
	}

	// Out-of-range candidates are rejected before any fan-out.
	if _, err := coord.Run(context.Background(), core.Query{K: 1, Aggregate: core.Sum, Candidates: []int{600}}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
}

// TestCoordinatorCutsAreLossless proves TA early termination never
// changes the answer: with parallelism 1 and skewed scores (all mass in
// one shard's region), trailing shards are cut, and the merged result
// still matches both the uncut coordinator and the single engine.
func TestCoordinatorCutsAreLossless(t *testing.T) {
	// Four disconnected communities (pout=0): BFS growth keeps each
	// community's shards self-contained, so putting every non-zero score
	// in community 0 gives the other communities' shards a zero upper
	// bound — once k results arrive they are all cut.
	g := gen.PlantedPartition(800, 4, 0.05, 0, 9)
	scores := make([]float64, 800)
	for v := 0; v < 800; v += 4 { // community 0 = ids ≡ 0 (mod 4)
		scores[v] = 0.25 + 0.75*float64(v%13)/13
	}
	engine, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(g, scores, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	local.PrepareIndexes(0) // tight distribution bounds so cuts trigger

	cut := NewCoordinator(local, Options{Parallel: 1})
	uncut := NewCoordinator(local, Options{Parallel: 1, DisableCut: true})
	for _, agg := range []core.Aggregate{core.Sum, core.Count, core.Max} {
		q := core.Query{K: 5, Aggregate: agg, Algorithm: core.AlgoBase}
		want, err := engine.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		gotCut, bd, err := cut.RunDetailed(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		gotUncut, err := uncut.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, agg.String()+"/cut", gotCut.Results, want.Results)
		assertSameResults(t, agg.String()+"/uncut", gotUncut.Results, want.Results)
		if agg == core.Sum && bd.ShardsCut == 0 {
			t.Fatalf("%v: expected the skewed-mass topology to cut at least one shard, got %+v", agg, bd)
		}
	}
}

// TestCoordinatorBudget checks the per-shard budget split: a budgeted
// run reports Truncated, returns at most k results, and a budget large
// enough for every shard reproduces the exact answer.
func TestCoordinatorBudget(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 3)
	scores := testScores(500, 29)
	engine, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(g, scores, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})

	tiny, err := coord.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase, Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !tiny.Truncated {
		t.Fatal("budget 8 over 500 nodes did not truncate")
	}
	if len(tiny.Results) > 10 {
		t.Fatalf("truncated run returned %d results for k=10", len(tiny.Results))
	}

	want, err := engine.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase})
	if err != nil {
		t.Fatal(err)
	}
	ample, err := coord.Run(context.Background(), core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase, Budget: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if ample.Truncated {
		t.Fatal("budget 4000 over 500 nodes truncated")
	}
	assertSameResults(t, "ample budget", ample.Results, want.Results)
}

// TestCoordinatorValidation mirrors Engine.Run's input rejection.
func TestCoordinatorValidation(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 1)
	local, err := NewLocal(g, testScores(100, 1), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})
	bad := []core.Query{
		{K: 0, Aggregate: core.Sum},
		{K: -3, Aggregate: core.Sum},
		{K: 5, Aggregate: core.Sum, Budget: -1},
		{K: 5, Aggregate: core.Sum, Candidates: []int{-1}},
		{K: 5, Aggregate: core.Aggregate(200)},
		{K: 5, Aggregate: core.Max, Algorithm: core.AlgoForward},
	}
	for i, q := range bad {
		if _, err := coord.Run(context.Background(), q); err == nil {
			t.Fatalf("case %d: invalid query %+v accepted", i, q)
		}
	}
}

// TestCoordinatorApplyScores checks score updates reach owned and ghost
// copies alike: after a batch, the coordinator still matches a fresh
// single engine over the updated vector.
func TestCoordinatorApplyScores(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 19)
	scores := testScores(400, 37)
	local, err := NewLocal(g, scores, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})

	updated := append([]float64(nil), scores...)
	var batch []ScoreUpdate
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 50; i++ {
		node := rng.Intn(400)
		score := float64(rng.Intn(9)) / 8
		updated[node] = score
		batch = append(batch, ScoreUpdate{Node: node, Score: score})
	}
	if err := local.ApplyScores(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(g, updated, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []core.Aggregate{core.Sum, core.Avg, core.Count} {
		q := core.Query{K: 10, Aggregate: agg, Algorithm: core.AlgoBase}
		want, err := engine.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "post-update "+agg.String(), got.Results, want.Results)
	}

	if err := local.ApplyScores(context.Background(), []ScoreUpdate{{Node: 9999, Score: 0.5}}); err == nil {
		t.Fatal("out-of-range update accepted")
	}
}

// TestUpperBoundAdmissible checks the merge bound really bounds every
// owned node's aggregate — the property TA cutting depends on — both
// index-free and with the neighborhood index built.
func TestUpperBoundAdmissible(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 13)
	scores := relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.05}, 3)
	engine, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, prepared := range []bool{false, true} {
		shards, _, err := BuildShards(g, scores, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range shards {
			if prepared {
				s.Engine().PrepareNeighborhoodIndex(0)
			}
			for _, agg := range allAggregates {
				bound, err := s.UpperBound(agg)
				if err != nil {
					t.Fatal(err)
				}
				// The shard's full owned top-1 must sit at or below it.
				ans, err := engine.Run(context.Background(), core.Query{
					K: 1, Aggregate: agg, Algorithm: core.AlgoBase, Candidates: ownedOf(s),
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(ans.Results) > 0 && ans.Results[0].Value > bound {
					t.Fatalf("prepared=%v shard %d %v: true max %v exceeds bound %v",
						prepared, s.Index(), agg, ans.Results[0].Value, bound)
				}
			}
		}
	}
}

// ownedOf lists a shard's owned nodes as global ints.
func ownedOf(s *Shard) []int {
	out := make([]int, len(s.owned))
	for i, v := range s.owned {
		out[i] = int(v)
	}
	return out
}

// faultyView wraps a QueryView, failing one shard's query on both the
// whole-answer and the streaming path.
type faultyView struct {
	QueryView
	fail int
}

func (f faultyView) Query(ctx context.Context, shard int, q core.Query) (core.Answer, error) {
	if shard == f.fail {
		return core.Answer{}, errFault
	}
	return f.QueryView.Query(ctx, shard, q)
}

func (f faultyView) QueryStream(ctx context.Context, shard int, q core.Query,
	ctrl *StreamControl, emit func(StreamBatch)) (core.Answer, error) {
	if shard == f.fail {
		return core.Answer{}, errFault
	}
	return f.QueryView.QueryStream(ctx, shard, q, ctrl, emit)
}

var errFault = errors.New("injected shard fault")

// TestCoordinatorShardFaultAborts: one shard failing surfaces its error
// (not a collateral cancellation) and the fan-out still terminates with
// the coordinator reusable.
func TestCoordinatorShardFaultAborts(t *testing.T) {
	g := gen.BarabasiAlbert(600, 3, 53)
	scores := testScores(600, 53)
	local, err := NewLocal(g, scores, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})
	q := core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase}

	for fail := 0; fail < 4; fail++ {
		view := faultyView{QueryView: local.Snapshot(), fail: fail}
		_, _, err := coord.RunOn(context.Background(), view, q)
		if !errors.Is(err, errFault) {
			t.Fatalf("fail=%d: err = %v, want the injected fault", fail, err)
		}
	}
	if _, err := coord.Run(context.Background(), q); err != nil {
		t.Fatalf("coordinator unusable after shard faults: %v", err)
	}
}

// TestHopClosureMatchesSingleSource cross-checks the multi-source BFS
// against per-source traversals.
func TestHopClosureMatchesSingleSource(t *testing.T) {
	g := gen.ErdosRenyi(200, 500, 7)
	tr := graph.NewTraverser(g)
	sources := []int{3, 77, 150, 3} // duplicate tolerated
	for h := 0; h <= 3; h++ {
		closure, err := graph.HopClosure(g, sources, h)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int]bool{}
		for _, s := range sources {
			tr.VisitWithin(s, h, func(v, _ int) { want[v] = true })
		}
		if len(closure) != len(want) {
			t.Fatalf("h=%d: closure size %d, want %d", h, len(closure), len(want))
		}
		for i, v := range closure {
			if !want[v] {
				t.Fatalf("h=%d: closure contains %d, not reachable", h, v)
			}
			if i > 0 && closure[i-1] >= v {
				t.Fatalf("h=%d: closure not sorted ascending at %d", h, i)
			}
		}
	}
	if _, err := graph.HopClosure(g, []int{200}, 1); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := graph.HopClosure(g, []int{0}, -1); err == nil {
		t.Fatal("negative hop radius accepted")
	}
}
