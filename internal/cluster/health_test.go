package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/trace"
)

// TestProbeHealthAndGenerations covers the enriched health surface: the
// probe reports per-worker generation, node/edge counts, and snapshot
// provenance; mutation batches advance the generation; an unreachable
// worker is a per-report finding rather than a probe failure.
func TestProbeHealthAndGenerations(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 77)
	scores := testScores(300, 78)
	const parts = 2
	shards, _, err := BuildShards(g, scores, 2, parts)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, parts)
	servers := make([]*httptest.Server, parts)
	for i, sh := range shards {
		w := NewWorker(sh)
		if i == 0 {
			w.SetProvenance("/data/snap.lona", 7)
		}
		servers[i] = httptest.NewServer(w.Handler())
		defer servers[i].Close()
		urls[i] = servers[i].URL
	}

	transport, err := NewHTTP(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()

	reports := transport.ProbeHealth(context.Background())
	if len(reports) != parts {
		t.Fatalf("probe returned %d reports, want %d", len(reports), parts)
	}
	r0 := reports[0]
	if r0.Err != nil || !r0.OK {
		t.Fatalf("healthy worker 0 reported err=%v ok=%v", r0.Err, r0.OK)
	}
	if r0.Generation != 7 || r0.Snapshot != "/data/snap.lona" {
		t.Fatalf("provenance lost: gen=%d snapshot=%q", r0.Generation, r0.Snapshot)
	}
	if r0.Nodes != 300 || r0.Edges == 0 {
		t.Fatalf("worker 0 reports nodes=%d edges=%d", r0.Nodes, r0.Edges)
	}
	if reports[1].Generation != 0 || reports[1].Snapshot != "" {
		t.Fatalf("worker 1 should boot at generation 0 with no provenance: %+v", reports[1])
	}

	// A score batch bumps every worker's generation by one.
	if err := transport.ApplyScores(context.Background(), []ScoreUpdate{{Node: 5, Score: 0.75}}); err != nil {
		t.Fatal(err)
	}
	reports = transport.ProbeHealth(context.Background())
	if reports[0].Generation != 8 || reports[1].Generation != 1 {
		t.Fatalf("score batch did not advance generations: %d, %d",
			reports[0].Generation, reports[1].Generation)
	}

	// Killing a worker turns its report into an error, not a panic or a
	// probe-wide failure.
	servers[1].Close()
	reports = transport.ProbeHealth(context.Background())
	if reports[0].Err != nil {
		t.Fatalf("surviving worker reported %v", reports[0].Err)
	}
	if reports[1].Err == nil {
		t.Fatal("dead worker probe reported no error")
	}
}

// TestTraceparentHeaders pins the W3C propagation contract: outbound
// shard hops carry a well-formed traceparent beside the native header,
// and the worker-side intake prefers the native header but falls back
// to the traceparent trace-id.
func TestTraceparentHeaders(t *testing.T) {
	id := trace.NewID()
	h := http.Header{}
	setTraceHeaders(h, id)
	if h.Get(traceHeader) != id {
		t.Fatalf("native header lost: %q", h.Get(traceHeader))
	}
	tp := h.Get(traceparentHeader)
	if ok, _ := regexp.MatchString(`^00-[0-9a-f]{32}-[0-9a-f]{16}-01$`, tp); !ok {
		t.Fatalf("malformed traceparent %q", tp)
	}
	if !strings.Contains(tp, id) {
		t.Fatalf("traceparent %q does not carry trace id %q", tp, id)
	}

	// Legacy 16-hex ids widen with zero padding.
	h = http.Header{}
	setTraceHeaders(h, "00000000deadbeef")
	if got := h.Get(traceparentHeader); !strings.HasPrefix(got, "00-000000000000000000000000deadbeef-") {
		t.Fatalf("legacy id not widened: %q", got)
	}

	// Ids that cannot widen keep only the native header.
	h = http.Header{}
	setTraceHeaders(h, "not-hex!")
	if h.Get(traceparentHeader) != "" || h.Get(traceHeader) != "not-hex!" {
		t.Fatalf("non-hex id mishandled: traceparent=%q native=%q",
			h.Get(traceparentHeader), h.Get(traceHeader))
	}

	r := httptest.NewRequest(http.MethodPost, "/v1/shard/query", nil)
	r.Header.Set(traceparentHeader, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if got := requestTraceID(r); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("traceparent fallback returned %q", got)
	}
	r.Header.Set(traceHeader, "native-id")
	if got := requestTraceID(r); got != "native-id" {
		t.Fatalf("native header not preferred: %q", got)
	}
	r2 := httptest.NewRequest(http.MethodPost, "/v1/shard/query", nil)
	r2.Header.Set(traceparentHeader, "garbage")
	if got := requestTraceID(r2); got != "" {
		t.Fatalf("garbage traceparent yielded id %q", got)
	}
}
