package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// The HTTP transport speaks a small JSON protocol to lonad worker
// processes (cmd/lonad -shard-worker), one shard per worker:
//
//	POST /v1/shard/query  — execute a shard-local query (global node ids)
//	GET  /v1/shard/bound  — the shard's merge bound for ?aggregate=
//	POST /v1/shard/scores — apply a relevance update batch to the shard
//	GET  /v1/shard/health — shard identity and shape, probed at dial time
//
// Queries carry the caller's context: cancelling the request (a TA cut, a
// client disconnect, a deadline) cancels the worker-side engine query
// cooperatively, exactly as in-process execution would.

// wireQuery is the /v1/shard/query body — core.Query flattened into the
// same names /v1/topk uses, with candidates in global ids and the budget
// already split by the coordinator.
type wireQuery struct {
	Algorithm  string  `json:"algorithm,omitempty"` // "" or "auto" = planner
	K          int     `json:"k"`
	Aggregate  string  `json:"aggregate"`
	Gamma      float64 `json:"gamma,omitempty"`
	Order      string  `json:"order,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Candidates []int   `json:"candidates,omitempty"`
	Budget     int     `json:"budget,omitempty"`
}

// wireAnswer is the /v1/shard/query response.
type wireAnswer struct {
	Results   []core.Result   `json:"results"`
	Stats     core.QueryStats `json:"stats"`
	Truncated bool            `json:"truncated,omitempty"`
	// Plan round-trips the shard planner's decision for AlgoAuto queries.
	PlanAlgorithm string `json:"plan_algorithm,omitempty"`
	PlanReason    string `json:"plan_reason,omitempty"`
}

// wireHealth is the /v1/shard/health response; the transport validates it
// against the worker's position at dial time so a mis-wired worker list
// fails fast instead of merging the wrong partitions.
type wireHealth struct {
	OK       bool `json:"ok"`
	Shard    int  `json:"shard"`
	Shards   int  `json:"shards"`
	Nodes    int  `json:"nodes"` // full-graph node count
	Owned    int  `json:"owned"`
	Boundary int  `json:"boundary"`
	H        int  `json:"h"`
}

// wireBound is the /v1/shard/bound response.
type wireBound struct {
	Aggregate string  `json:"aggregate"`
	Bound     float64 `json:"bound"`
}

// wireScores is the /v1/shard/scores request and response: workers apply
// the updates that fall inside their closure and report how many landed.
type wireScores struct {
	Updates []ScoreUpdate `json:"updates,omitempty"`
	Applied int           `json:"applied,omitempty"`
}

// wireError is every non-2xx worker response body.
type wireError struct {
	Error string `json:"error"`
}

// encodeQuery flattens q onto the wire.
func encodeQuery(q core.Query) wireQuery {
	return wireQuery{
		Algorithm:  q.Algorithm.WireName(),
		K:          q.K,
		Aggregate:  q.Aggregate.WireName(),
		Gamma:      q.Options.Gamma,
		Order:      q.Options.Order.String(),
		Workers:    q.Options.Workers,
		Candidates: q.Candidates,
		Budget:     q.Budget,
	}
}

// decodeQuery validates and reconstructs a core.Query from the wire.
func decodeQuery(w wireQuery) (core.Query, error) {
	var q core.Query
	var err error
	if q.Aggregate, err = core.ParseAggregate(w.Aggregate); err != nil {
		return q, err
	}
	if w.Algorithm != "" {
		if q.Algorithm, err = core.ParseAlgorithm(w.Algorithm); err != nil {
			return q, err
		}
	}
	switch w.Order {
	case "", "natural":
		q.Options.Order = core.OrderNatural
	case "degree-desc":
		q.Options.Order = core.OrderDegreeDesc
	case "score-desc":
		q.Options.Order = core.OrderScoreDesc
	default:
		return q, fmt.Errorf("unknown order %q", w.Order)
	}
	q.K = w.K
	q.Options.Gamma = w.Gamma
	q.Options.Workers = w.Workers
	q.Candidates = w.Candidates
	q.Budget = w.Budget
	return q, nil
}

// Worker serves one Shard over HTTP — the worker half of the protocol,
// mounted by cmd/lonad in -shard-worker mode. Score updates swap the
// shard generation under a write lock; queries snapshot the current
// generation, mirroring internal/server's discipline.
type Worker struct {
	mu    sync.RWMutex
	shard *Shard
}

// NewWorker wraps a shard for serving.
func NewWorker(s *Shard) *Worker { return &Worker{shard: s} }

// Shard returns the current shard generation.
func (w *Worker) Shard() *Shard {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.shard
}

// Handler returns the worker's HTTP API.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shard/query", w.handleQuery)
	mux.HandleFunc("/v1/shard/bound", w.handleBound)
	mux.HandleFunc("/v1/shard/scores", w.handleScores)
	mux.HandleFunc("/v1/shard/health", w.handleHealth)
	return mux
}

func writeJSON(rw http.ResponseWriter, status int, body any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body) // the connection is the only failure mode here
}

func writeWireError(rw http.ResponseWriter, status int, err error) {
	writeJSON(rw, status, wireError{Error: err.Error()})
}

func (w *Worker) handleQuery(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		writeWireError(rw, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	var wq wireQuery
	if err := dec.Decode(&wq); err != nil {
		writeWireError(rw, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	q, err := decodeQuery(wq)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	ans, err := w.Shard().Run(r.Context(), q)
	switch {
	case err == nil:
	case isContextErr(err):
		// 499 in nginx tradition: the coordinator went away (a TA cut or
		// its caller's cancellation); nothing useful can be answered.
		writeWireError(rw, 499, err)
		return
	default:
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	wa := wireAnswer{Results: ans.Results, Stats: ans.Stats, Truncated: ans.Truncated}
	if wa.Results == nil {
		wa.Results = []core.Result{}
	}
	if ans.Plan != nil {
		wa.PlanAlgorithm = ans.Plan.Algorithm.WireName()
		wa.PlanReason = ans.Plan.Reason
	}
	writeJSON(rw, http.StatusOK, wa)
}

func (w *Worker) handleBound(rw http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("aggregate")
	agg, err := core.ParseAggregate(name)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	b, err := w.Shard().UpperBound(agg)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	writeJSON(rw, http.StatusOK, wireBound{Aggregate: name, Bound: b})
}

func (w *Worker) handleScores(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		writeWireError(rw, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	var ws wireScores
	if err := dec.Decode(&ws); err != nil {
		writeWireError(rw, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	w.mu.Lock()
	next, applied, err := w.shard.WithUpdates(ws.Updates)
	if err == nil {
		w.shard = next
	}
	w.mu.Unlock()
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	writeJSON(rw, http.StatusOK, wireScores{Applied: applied})
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	s := w.Shard()
	writeJSON(rw, http.StatusOK, wireHealth{
		OK: true, Shard: s.Index(), Shards: s.Parts(),
		Nodes: s.GlobalNodes(), Owned: s.OwnedCount(), Boundary: s.BoundaryNodes(),
		H: s.h,
	})
}

// HTTP is the cross-process transport: shard i lives behind workers[i], a
// lonad in -shard-worker mode. Construct with NewHTTP, which probes every
// worker's /v1/shard/health and fails fast on a mis-wired topology
// (wrong shard index, inconsistent shard count, disagreeing graphs).
type HTTP struct {
	workers []string
	client  *http.Client

	nodes    int
	h        int
	topology Topology
}

// NewHTTP dials the worker list. client may be nil for a default with a
// 10-second dial/health timeout; per-query timeouts come from the query
// context, not the client.
func NewHTTP(ctx context.Context, workers []string, client *http.Client) (*HTTP, error) {
	if len(workers) == 0 {
		return nil, errors.New("cluster: empty worker list")
	}
	if client == nil {
		client = &http.Client{}
	}
	t := &HTTP{client: client, topology: Topology{Shards: len(workers)}}
	t.workers = make([]string, len(workers))
	for i, w := range workers {
		t.workers[i] = strings.TrimRight(w, "/")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	probeCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for i, base := range t.workers {
		var h wireHealth
		if err := t.get(probeCtx, base+"/v1/shard/health", &h); err != nil {
			return nil, fmt.Errorf("cluster: worker %d (%s): %w", i, base, err)
		}
		switch {
		case !h.OK:
			return nil, fmt.Errorf("cluster: worker %d (%s) reports not OK", i, base)
		case h.Shard != i:
			return nil, fmt.Errorf("cluster: worker %d (%s) serves shard %d — worker list out of order", i, base, h.Shard)
		case h.Shards != len(t.workers):
			return nil, fmt.Errorf("cluster: worker %d (%s) belongs to a %d-shard topology, dialing %d workers", i, base, h.Shards, len(t.workers))
		case i > 0 && (h.Nodes != t.nodes || h.H != t.h):
			return nil, fmt.Errorf("cluster: worker %d (%s) serves a different dataset (nodes=%d h=%d, want nodes=%d h=%d)",
				i, base, h.Nodes, h.H, t.nodes, t.h)
		}
		if i == 0 {
			t.nodes, t.h = h.Nodes, h.H
		}
		t.topology.BoundaryNodes += int64(h.Boundary)
		t.topology.OwnedSizes = append(t.topology.OwnedSizes, h.Owned)
	}
	return t, nil
}

// Shards returns the worker count.
func (t *HTTP) Shards() int { return len(t.workers) }

// Nodes returns the full graph's node count as reported by the workers.
func (t *HTTP) Nodes() int { return t.nodes }

// H returns the hop radius the workers serve; a coordinator must refuse
// to merge shards built for a different h than its own.
func (t *HTTP) H() int { return t.h }

// Snapshot returns the transport itself: remote workers swap their shard
// generations independently, so cross-process queries are only as
// snapshot-isolated as the update fan-out is quiescent. (In-process
// sharding gets the strict guarantee; see Local.)
func (t *HTTP) Snapshot() QueryView { return t }

// Query executes q on worker shard via POST /v1/shard/query.
func (t *HTTP) Query(ctx context.Context, shard int, q core.Query) (core.Answer, error) {
	var wa wireAnswer
	if err := t.post(ctx, t.workers[shard]+"/v1/shard/query", encodeQuery(q), &wa); err != nil {
		return core.Answer{}, err
	}
	ans := core.Answer{Results: wa.Results, Stats: wa.Stats, Truncated: wa.Truncated}
	if wa.PlanAlgorithm != "" {
		algo, err := core.ParseAlgorithm(wa.PlanAlgorithm)
		if err != nil {
			return core.Answer{}, fmt.Errorf("cluster: worker %d returned unknown plan algorithm %q", shard, wa.PlanAlgorithm)
		}
		ans.Plan = &core.Plan{Algorithm: algo, Reason: wa.PlanReason}
	}
	return ans, nil
}

// UpperBound fetches the shard's merge bound via GET /v1/shard/bound.
func (t *HTTP) UpperBound(ctx context.Context, shard int, agg core.Aggregate) (float64, error) {
	var wb wireBound
	u := t.workers[shard] + "/v1/shard/bound?aggregate=" + url.QueryEscape(agg.WireName())
	if err := t.get(ctx, u, &wb); err != nil {
		return 0, err
	}
	return wb.Bound, nil
}

// ApplyScores fans the update batch out to every worker (workers ignore
// nodes outside their closure). The fan-out is not transactional: a
// mid-batch worker failure leaves earlier workers updated — the caller
// owns retry semantics, and queries remain exact per worker generation.
func (t *HTTP) ApplyScores(ctx context.Context, updates []ScoreUpdate) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for i, base := range t.workers {
		var resp wireScores
		if err := t.post(ctx, base+"/v1/shard/scores", wireScores{Updates: updates}, &resp); err != nil {
			return fmt.Errorf("cluster: worker %d (%s): %w", i, base, err)
		}
	}
	return nil
}

// Topology reports what the health probes revealed (edge cut is unknown
// across processes).
func (t *HTTP) Topology() Topology { return t.topology }

// Close drops idle worker connections.
func (t *HTTP) Close() error {
	t.client.CloseIdleConnections()
	return nil
}

var _ Transport = (*HTTP)(nil)

// post sends a JSON body and decodes a JSON response.
func (t *HTTP) post(ctx context.Context, url string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return t.do(req, out)
}

// get fetches a JSON response.
func (t *HTTP) get(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return t.do(req, out)
}

// do executes the request, surfacing worker-side errors (and the caller's
// own context error, unwrapped from the client's transport error so the
// coordinator's cut/cancel classification sees context.Canceled).
func (t *HTTP) do(req *http.Request, out any) error {
	resp, err := t.client.Do(req)
	if err != nil {
		if ctxErr := req.Context().Err(); ctxErr != nil {
			return ctxErr
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we wireError
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(blob, &we) == nil && we.Error != "" {
			return errors.New(we.Error)
		}
		return fmt.Errorf("worker answered %d: %s", resp.StatusCode, strings.TrimSpace(string(blob)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
