package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/trace"
)

// The HTTP transport speaks a small JSON protocol to lonad worker
// processes (cmd/lonad -shard-worker), one shard per worker:
//
//	POST /v1/shard/query  — execute a shard-local query (global node ids)
//	POST /v1/shard/query/stream
//	                      — execute a shard-local query, streaming partial
//	                        top-k batches back as NDJSON frames; the
//	                        request body stays open and carries λ acks
//	                        downstream (see the protocol notes below)
//	GET  /v1/shard/bound  — the shard's merge bound for ?aggregate=
//	POST /v1/shard/scores — apply a relevance update batch to the shard
//	POST /v1/shard/edits  — apply a structural edit batch; the worker
//	                        re-derives its full graph, extends the shared
//	                        partitioning, and rebuilds its shard when its
//	                        h-hop closure is affected
//	GET  /v1/shard/health — shard identity and shape, probed at dial time
//
// Queries carry the caller's context: cancelling the request (a TA cut, a
// client disconnect, a deadline) cancels the worker-side engine query
// cooperatively, exactly as in-process execution would.
//
// # Streaming protocol
//
// /v1/shard/query/stream is a full-duplex exchange over one request:
//
//	client → worker (request body, NDJSON):
//	  {"k":...,"aggregate":...}        the query, first
//	  {"ack":1,"floor":0.71,
//	   "granted":64,"answered":64}     one ack per received frame; floor
//	                                   is the coordinator's current λ, and
//	                                   granted/answered are the cumulative
//	                                   budget-grant counters (see below)
//	client ← worker (response body, NDJSON):
//	  {"seq":1,"items":[...],"stats":{...}}   partial batch: results newly
//	                                          certified, cumulative stats
//	  {"seq":2,"need":64}                     budget grant request: the
//	                                          cumulative budget this worker
//	                                          has asked for (no items; the
//	                                          coordinator answers on the ack)
//	  {"seq":N,"final":true,"items":[...],"stats":{...},...}
//	                                          summary frame: final results,
//	                                          total stats, truncation, plan
//
// Two request headers extend the exchange without touching the strictly
// decoded query document (absent headers mean legacy behavior, so old
// and new coordinators/workers interoperate): X-Lona-Floor carries the
// coordinator's launch-time λ — sketch-primed, possibly already raised —
// so the worker starts pruning warm; X-Lona-Grants advertises that the
// coordinator answers budget grant requests, without which a worker
// never sends need frames (it would block forever against a legacy
// coordinator).
//
// Frames are sequence-numbered from 1 with no gaps; the transport rejects
// out-of-order frames. Acks are coalesced, never dropped: the writer
// always sends the latest state, replacing any ack still waiting for the
// pipe, so a worker runs on a stale floor for at most one write. All ack
// fields are cumulative/monotone, which is what makes latest-wins
// lossless. A worker that never receives an ack simply keeps its last λ
// (every λ is admissible, so staleness costs work, never correctness).
// Budget grants ride the same channel: when a budgeted worker's slice
// runs dry it raises its cumulative "need" in a dedicated frame and
// blocks; the coordinator serves the delta from the shared
// redistribution pool — including budget refunded by cut shards — and
// answers with cumulative granted/answered counters. An answer that
// grants nothing new means the pool was dry (the same instantaneous
// semantics an in-process TakeBudget sees) and the worker truncates.
// Failure semantics: cancelling the request kills the
// worker-side query cooperatively (a TA cut or client disconnect) and
// unblocks any pending grant wait; a
// connection that dies before the final frame surfaces as a transport
// error to the coordinator, which aborts the merge — partial batches
// already folded never corrupt it, because every streamed item is an
// exact (or lower-bound, under budget truncation) value.

// wireQuery is the /v1/shard/query body — core.Query flattened into the
// same names /v1/topk uses, with candidates in global ids and the budget
// already split by the coordinator.
type wireQuery struct {
	Algorithm  string  `json:"algorithm,omitempty"` // "" or "auto" = planner
	K          int     `json:"k"`
	Aggregate  string  `json:"aggregate"`
	Gamma      float64 `json:"gamma,omitempty"`
	Order      string  `json:"order,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Candidates []int   `json:"candidates,omitempty"`
	Budget     int     `json:"budget,omitempty"`
	// Trace asks the worker to record its side of the query's trace and
	// ship the events back (in the response for /v1/shard/query, on the
	// final summary frame for the stream). The trace id itself travels in
	// the X-Lona-Trace request header.
	Trace bool `json:"trace,omitempty"`
}

// traceHeader carries the coordinator's trace id to workers, so the
// worker-side events join the same logical trace.
const traceHeader = "X-Lona-Trace"

// floorHeader carries the coordinator's launch-time merge threshold λ on
// stream requests: the sketch-primed floor, possibly already raised by
// batches folded before this shard launched. A header rather than a
// query-document field so legacy workers (which decode the query
// strictly) ignore it instead of rejecting the request.
const floorHeader = "X-Lona-Floor"

// grantsHeader ("1") advertises that the coordinator answers
// demand-driven budget grant requests on the stream's ack channel.
// Workers must never block on a grant a legacy coordinator will never
// answer, so the capability is opt-in per request.
const grantsHeader = "X-Lona-Grants"

// traceparentHeader is the W3C trace-context header set alongside
// traceHeader on every shard hop, so off-the-shelf HTTP middleware and
// OTLP backends see the same trace id the lona-native header names.
const traceparentHeader = "traceparent"

// setTraceHeaders stamps both trace headers on an outbound shard
// request. The traceparent parent-id is a fresh random span id — the
// OTLP exporter synthesizes its own span tree from the recorded
// timeline, so the id only needs to be well-formed, not resolvable.
// Ids that cannot be widened to traceparent's 32-lower-hex trace-id
// (caller-chosen non-hex ids) keep only the lona-native header.
func setTraceHeaders(h http.Header, id string) {
	h.Set(traceHeader, id)
	if id == "" || len(id) > 32 || !isLowerHex(id) {
		return
	}
	h.Set(traceparentHeader,
		"00-"+strings.Repeat("0", 32-len(id))+id+"-"+trace.NewID()[:16]+"-01")
}

// requestTraceID extracts the inbound trace id: the lona-native header
// when present, else the trace-id field of a W3C traceparent, so
// queries arriving through generic tracing middleware still join the
// caller's trace.
func requestTraceID(r *http.Request) string {
	if id := r.Header.Get(traceHeader); id != "" {
		return id
	}
	parts := strings.Split(r.Header.Get(traceparentHeader), "-")
	if len(parts) >= 2 && len(parts[1]) == 32 && isLowerHex(parts[1]) {
		return parts[1]
	}
	return ""
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// wireAnswer is the /v1/shard/query response.
type wireAnswer struct {
	Results   []core.Result   `json:"results"`
	Stats     core.QueryStats `json:"stats"`
	Truncated bool            `json:"truncated,omitempty"`
	// Plan round-trips the shard planner's decision for AlgoAuto queries.
	PlanAlgorithm string `json:"plan_algorithm,omitempty"`
	PlanReason    string `json:"plan_reason,omitempty"`
	// Trace is the worker-side event list of a traced query; offsets are
	// microseconds since the worker began, rebased by the coordinator.
	Trace []trace.Event `json:"trace,omitempty"`
}

// wireStreamFrame is one NDJSON frame of a /v1/shard/query/stream
// response. Non-final frames carry the results newly certified since the
// previous frame plus cumulative stats; the final frame carries the
// shard's whole answer (Items are then the final results), total stats,
// truncation, and the plan — or Error when the query failed after
// streaming began.
type wireStreamFrame struct {
	Seq   uint64        `json:"seq"`
	Items []core.Result `json:"items,omitempty"`
	// Need, when positive, marks a budget grant request: the cumulative
	// budget this worker has asked for over the stream's lifetime. Grant
	// frames carry no items or stats and are not folded into the merge;
	// the coordinator answers on the ack's granted/answered counters.
	Need          int64           `json:"need,omitempty"`
	Stats         core.QueryStats `json:"stats"`
	Final         bool            `json:"final,omitempty"`
	Truncated     bool            `json:"truncated,omitempty"`
	PlanAlgorithm string          `json:"plan_algorithm,omitempty"`
	PlanReason    string          `json:"plan_reason,omitempty"`
	Error         string          `json:"error,omitempty"`
	// Trace rides only the final summary frame of a traced query: the
	// worker's whole event list, shipped once so per-batch frames stay
	// small.
	Trace []trace.Event `json:"trace,omitempty"`
}

// wireStreamAck is one client→worker frame on the open request body: the
// coordinator's current merge threshold λ, piggybacked on the
// acknowledgement of frame Ack. Every field is cumulative or monotone,
// so coalescing to the latest ack loses nothing.
type wireStreamAck struct {
	Ack   uint64  `json:"ack"`
	Floor float64 `json:"floor"`
	// Granted/Answered are the demand-driven budget grant counters for
	// this shard: cumulative budget granted from the pool, and the
	// cumulative need the coordinator has answered (granted < answered's
	// delta means the pool came up short — a denial, not a pending
	// request). Zero/absent against legacy coordinators.
	Granted  int64 `json:"granted,omitempty"`
	Answered int64 `json:"answered,omitempty"`
}

// wireHealth is the /v1/shard/health response; the transport validates it
// against the worker's position at dial time so a mis-wired worker list
// fails fast instead of merging the wrong partitions.
type wireHealth struct {
	OK       bool `json:"ok"`
	Shard    int  `json:"shard"`
	Shards   int  `json:"shards"`
	Nodes    int  `json:"nodes"` // full-graph node count
	Owned    int  `json:"owned"`
	Boundary int  `json:"boundary"`
	H        int  `json:"h"`
	// Generation counts the mutation batches (scores and edits) this
	// worker has applied on top of its boot state, seeded from the
	// snapshot generation when the worker was provisioned from one. A
	// coordinator whose generation disagrees is merging against a
	// replica that missed (or double-applied) a batch.
	Generation uint64 `json:"generation"`
	// Edges is the worker's edge count: the full-graph count for
	// edit-capable workers, the shard closure's count for bare workers.
	Edges int `json:"edges"`
	// Snapshot names the snapshot file the worker booted from, when
	// known — the provenance half of a generation-mismatch diagnosis.
	Snapshot string `json:"snapshot,omitempty"`
	// Sketch summarizes the worker's owned raw scores for the
	// coordinator's λ-priming; absent from legacy workers (priming then
	// simply skips this shard).
	Sketch *Sketch `json:"sketch,omitempty"`
}

// wireBound is the /v1/shard/bound response.
type wireBound struct {
	Aggregate string  `json:"aggregate"`
	Bound     float64 `json:"bound"`
}

// wireScores is the /v1/shard/scores request and response: workers apply
// the updates that fall inside their closure and report how many landed,
// piggybacking a fresh score sketch so the coordinator's priming state
// stays current with zero extra round trips.
type wireScores struct {
	Updates []ScoreUpdate `json:"updates,omitempty"`
	Applied int           `json:"applied,omitempty"`
	Sketch  *Sketch       `json:"sketch,omitempty"` // response only
}

// wireEdit is one structural mutation on the wire; Op uses the
// graph.EditOp wire names (add-edge, remove-edge, add-node).
type wireEdit struct {
	Op string `json:"op"`
	U  int    `json:"u,omitempty"`
	V  int    `json:"v,omitempty"`
}

// wireEdits is the /v1/shard/edits request and response: the worker
// reports its post-batch shape so the transport can refresh its cached
// topology without a re-probe.
type wireEdits struct {
	Edits []wireEdit `json:"edits,omitempty"`
	// Seq is the coordinator-assigned batch sequence number. Workers
	// remember the highest Seq they applied and answer a replay (Seq <=
	// last applied) with their current state WITHOUT re-applying — which
	// makes the retry-after-partial-failure flow safe even for add-node
	// batches, whose replay is otherwise not a no-op and would mint
	// duplicate nodes on the workers that already applied the batch.
	// Zero means "no sequencing" (bare callers) and is always applied.
	Seq uint64 `json:"seq,omitempty"`
	// Response fields.
	Nodes    int     `json:"nodes,omitempty"`    // full-graph node count after the batch
	Rebuilt  bool    `json:"rebuilt,omitempty"`  // this worker's closure was affected
	Owned    int     `json:"owned,omitempty"`    // post-batch owned-node count
	Boundary int     `json:"boundary,omitempty"` // post-batch ghost-node count
	Sketch   *Sketch `json:"sketch,omitempty"`   // post-batch score sketch
}

// encodeEdits flattens an edit batch onto the wire.
func encodeEdits(edits []graph.Edit) []wireEdit {
	out := make([]wireEdit, len(edits))
	for i, e := range edits {
		out[i] = wireEdit{Op: e.Op.String(), U: e.U, V: e.V}
	}
	return out
}

// decodeEdits validates and reconstructs an edit batch from the wire.
func decodeEdits(wire []wireEdit) ([]graph.Edit, error) {
	out := make([]graph.Edit, len(wire))
	for i, w := range wire {
		op, err := graph.ParseEditOp(w.Op)
		if err != nil {
			return nil, fmt.Errorf("edit %d: %w", i, err)
		}
		out[i] = graph.Edit{Op: op, U: w.U, V: w.V}
	}
	return out, nil
}

// wireError is every non-2xx worker response body.
type wireError struct {
	Error string `json:"error"`
}

// encodeQuery flattens q onto the wire.
func encodeQuery(q core.Query) wireQuery {
	return wireQuery{
		Algorithm:  q.Algorithm.WireName(),
		K:          q.K,
		Aggregate:  q.Aggregate.WireName(),
		Gamma:      q.Options.Gamma,
		Order:      q.Options.Order.String(),
		Workers:    q.Options.Workers,
		Candidates: q.Candidates,
		Budget:     q.Budget,
		Trace:      q.Tracer != nil,
	}
}

// decodeQuery validates and reconstructs a core.Query from the wire.
func decodeQuery(w wireQuery) (core.Query, error) {
	var q core.Query
	var err error
	if q.Aggregate, err = core.ParseAggregate(w.Aggregate); err != nil {
		return q, err
	}
	if w.Algorithm != "" {
		if q.Algorithm, err = core.ParseAlgorithm(w.Algorithm); err != nil {
			return q, err
		}
	}
	switch w.Order {
	case "", "natural":
		q.Options.Order = core.OrderNatural
	case "degree-desc":
		q.Options.Order = core.OrderDegreeDesc
	case "score-desc":
		q.Options.Order = core.OrderScoreDesc
	default:
		return q, fmt.Errorf("unknown order %q", w.Order)
	}
	q.K = w.K
	q.Options.Gamma = w.Gamma
	q.Options.Workers = w.Workers
	q.Candidates = w.Candidates
	q.Budget = w.Budget
	return q, nil
}

// grantChunk is how much budget a worker requests per need frame. A
// chunk amortizes the round trip (one request per 64 traversals at
// worst, matching core's context-poll granularity) at the cost of
// stranding at most one chunk per shard mid-run — and even that flows
// back to the pool at finish, because the coordinator folds granted
// budget into the shard's allotment before the end-of-query refund.
const grantChunk = 64

// grantClient is the worker-side half of the demand-driven budget grant
// protocol: a core.BudgetSource whose TakeBudget blocks until the
// coordinator answers the worker's cumulative need over the stream's ack
// channel. Safe for concurrent use — parallel scan workers share one
// source (core.BudgetSource's contract).
type grantClient struct {
	mu   sync.Mutex
	cond *sync.Cond
	// Cumulative monotone counters, reconciled against the coordinator's
	// ledger (StreamControl.Grant) through acks.
	requested int64 // budget asked for (need frames sent)
	answered  int64 // need the coordinator has answered
	granted   int64 // budget the coordinator has granted
	taken     int64 // granted budget already consumed by the engine
	closed    bool
	// ask writes a need frame carrying the new cumulative need; false
	// means the stream is dead and no answer will ever come.
	ask func(cum int64) bool
}

func newGrantClient(ask func(int64) bool) *grantClient {
	g := &grantClient{ask: ask}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// TakeBudget implements core.BudgetSource: serve from already-granted
// budget when any remains; otherwise raise the cumulative need by one
// chunk and block until the coordinator answers. An answer that brings
// nothing means the pool was dry at that instant — deny, so the engine
// truncates exactly as an in-process query would against an empty pool.
func (g *grantClient) TakeBudget(want int) int {
	if g == nil || want <= 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	asked := false
	for {
		if avail := g.granted - g.taken; avail > 0 {
			take := int64(want)
			if take > avail {
				take = avail
			}
			g.taken += take
			return int(take)
		}
		if g.closed {
			return 0
		}
		if g.answered >= g.requested {
			if asked {
				return 0 // our request was answered empty-handed: pool dry
			}
			g.requested += grantChunk
			asked = true
			if !g.ask(g.requested) {
				g.closed = true
				return 0
			}
		}
		g.cond.Wait()
	}
}

// update folds one ack's cumulative counters in; monotone max keeps
// reordered or coalesced acks harmless. Nil-safe (grants disabled).
func (g *grantClient) update(granted, answered int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if granted > g.granted {
		g.granted = granted
	}
	if answered > g.answered {
		g.answered = answered
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// close unblocks every waiter with a denial: the stream (or its context)
// is gone and no further grant can arrive. Nil-safe.
func (g *grantClient) close() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Worker serves one Shard over HTTP — the worker half of the protocol,
// mounted by cmd/lonad in -shard-worker mode. Score updates and
// structural edits swap the shard generation under a write lock; queries
// snapshot the current generation, mirroring internal/server's
// discipline.
//
// A worker constructed with NewGraphWorker keeps the full graph, score
// vector, and partitioning alongside its shard, which is what lets it
// apply structural edits: it re-derives the successor graph exactly as
// the coordinator does (the edit stream and the extension rule are both
// deterministic), so independent processes stay in agreement without a
// consensus round. A bare NewWorker shard serves queries and scores but
// rejects edits.
type Worker struct {
	mu    sync.RWMutex
	shard *Shard

	// Full-dataset context for structural edits; nil for bare workers.
	g      *graph.Graph
	scores []float64
	h      int
	p      *partition.Partitioning
	// editSeq is the highest sequenced edit batch applied; replays at or
	// below it are answered idempotently (see wireEdits.Seq).
	editSeq uint64

	// gen counts applied mutation batches on top of the boot state
	// (seeded by SetProvenance when booting from a snapshot), mirroring
	// the coordinator's generation counter so divergence is detectable
	// via /v1/shard/health.
	gen uint64
	// provenance names the snapshot the boot state came from, if any.
	provenance string
}

// SetProvenance records where this worker's boot state came from: the
// snapshot path and the generation stored in it. Seeding gen from the
// snapshot keeps the worker's generation counter aligned with a
// coordinator booted from the same snapshot, which is what makes the
// health probe's generation comparison meaningful.
func (w *Worker) SetProvenance(path string, gen uint64) {
	w.mu.Lock()
	w.provenance, w.gen = path, gen
	w.mu.Unlock()
}

// Generation returns the count of mutation batches applied on top of
// the boot state (plus the boot snapshot's own generation, if any).
func (w *Worker) Generation() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.gen
}

// NewWorker wraps a prebuilt shard for serving (no structural edits).
func NewWorker(s *Shard) *Worker { return &Worker{shard: s} }

// NewGraphWorker builds shard index of the deterministic parts-way
// partitioning of (g, scores, h) and serves it with full structural-edit
// support.
func NewGraphWorker(g *graph.Graph, scores []float64, h, parts, index int) (*Worker, error) {
	p, err := Partitioning(g, parts)
	if err != nil {
		return nil, err
	}
	s, err := BuildShard(g, scores, h, p, index)
	if err != nil {
		return nil, err
	}
	return &Worker{
		shard:  s,
		g:      g,
		scores: append([]float64(nil), scores...),
		h:      h,
		p:      p,
	}, nil
}

// Shard returns the current shard generation.
func (w *Worker) Shard() *Shard {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.shard
}

// Handler returns the worker's HTTP API.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shard/query", w.handleQuery)
	mux.HandleFunc("/v1/shard/query/stream", w.handleQueryStream)
	mux.HandleFunc("/v1/shard/bound", w.handleBound)
	mux.HandleFunc("/v1/shard/scores", w.handleScores)
	mux.HandleFunc("/v1/shard/edits", w.handleEdits)
	mux.HandleFunc("/v1/shard/replay", w.handleReplay)
	mux.HandleFunc("/v1/shard/health", w.handleHealth)
	return mux
}

func writeJSON(rw http.ResponseWriter, status int, body any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body) // the connection is the only failure mode here
}

func writeWireError(rw http.ResponseWriter, status int, err error) {
	writeJSON(rw, status, wireError{Error: err.Error()})
}

func (w *Worker) handleQuery(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		writeWireError(rw, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	var wq wireQuery
	if err := dec.Decode(&wq); err != nil {
		writeWireError(rw, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	q, err := decodeQuery(wq)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	// A traced query gets a worker-local recorder under the coordinator's
	// id; its events ship back in the response for the coordinator to
	// stitch onto its own timeline.
	var rec *trace.Recorder
	if wq.Trace {
		rec = trace.NewWithID(requestTraceID(r))
		q.Tracer = rec.ForShard(w.Shard().Index())
	}
	ans, err := w.Shard().Run(r.Context(), q)
	switch {
	case err == nil:
	case isContextErr(err):
		// 499 in nginx tradition: the coordinator went away (a TA cut or
		// its caller's cancellation); nothing useful can be answered.
		writeWireError(rw, 499, err)
		return
	default:
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	wa := wireAnswer{Results: ans.Results, Stats: ans.Stats, Truncated: ans.Truncated}
	if wa.Results == nil {
		wa.Results = []core.Result{}
	}
	if ans.Plan != nil {
		wa.PlanAlgorithm = ans.Plan.Algorithm.WireName()
		wa.PlanReason = ans.Plan.Reason
	}
	if rec != nil {
		wa.Trace = rec.Snapshot().Events
	}
	writeJSON(rw, http.StatusOK, wa)
}

// handleQueryStream serves the streaming half of the protocol: it runs
// the shard query with a partial-result sink writing NDJSON frames, while
// a reader goroutine consumes λ acks from the still-open request body and
// raises the engine-visible floor. Pre-query validation failures are
// ordinary HTTP errors; once streaming starts, failures travel in the
// final frame.
func (w *Worker) handleQueryStream(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		writeWireError(rw, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	// No MaxBytesReader on the whole body — it is an open ack stream, not
	// a bounded document — but the query itself is the first NDJSON line
	// and gets the same 16 MiB cap and strict field checking as the
	// non-streaming endpoint. The buffered reader carries over to the ack
	// goroutine so no stream bytes are lost between the two decoders.
	br := bufio.NewReader(r.Body)
	queryLine, err := readQueryLine(br)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	qdec := json.NewDecoder(bytes.NewReader(queryLine))
	qdec.DisallowUnknownFields()
	var wq wireQuery
	if err := qdec.Decode(&wq); err != nil {
		writeWireError(rw, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	q, err := decodeQuery(wq)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	// Worker-local recorder for traced queries; the whole event list ships
	// on the final summary frame (per-batch frames stay small).
	var rec *trace.Recorder
	if wq.Trace {
		rec = trace.NewWithID(requestTraceID(r))
		q.Tracer = rec.ForShard(w.Shard().Index())
	}
	dec := json.NewDecoder(br)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	// Full-duplex: HTTP/1.1 needs an explicit opt-in to keep the request
	// body readable while the response streams (HTTP/2 always is). If the
	// opt-in fails the stream still works — λ acks are simply never seen,
	// which costs pruning opportunities, not correctness.
	rc := http.NewResponseController(rw)
	duplexErr := rc.EnableFullDuplex()
	floor := &StreamControl{}
	// Seed the engine-visible floor from the coordinator's launch-time λ
	// (sketch-primed, possibly already raised by earlier batches). Absent
	// or malformed header → 0, the legacy cold start.
	if f, err := strconv.ParseFloat(r.Header.Get(floorHeader), 64); err == nil {
		floor.Raise(f)
	}

	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	// writeMu serializes the response stream: partial batches from the
	// engine, need frames from grant waits (engine goroutines), and the
	// final frame must interleave whole, and seq must match write order.
	var writeMu sync.Mutex
	var seq uint64
	enc := json.NewEncoder(rw)
	enc.SetEscapeHTML(false)

	// Demand-driven budget grants: only when the coordinator advertises it
	// answers need frames, the query is budgeted at all, and the ack
	// channel actually works (full duplex on HTTP/1.1, or HTTP/2) — a need
	// frame nobody can answer would park the engine forever.
	var gc *grantClient
	if r.Header.Get(grantsHeader) == "1" && q.Budget > 0 &&
		(duplexErr == nil || r.ProtoMajor >= 2) {
		gc = newGrantClient(func(cum int64) bool {
			writeMu.Lock()
			defer writeMu.Unlock()
			seq++
			if err := enc.Encode(wireStreamFrame{Seq: seq, Need: cum}); err != nil {
				cancel()
				return false
			}
			_ = rc.Flush()
			return true
		})
		// A dead context (coordinator cut this shard, client vanished) must
		// unblock grant waiters, or RunStream never returns.
		stop := context.AfterFunc(ctx, gc.close)
		defer stop()
	}

	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		defer gc.close() // ack stream gone → no grant will ever arrive
		for {
			var ack wireStreamAck
			if err := dec.Decode(&ack); err != nil {
				return // ack stream closed (or the client went away)
			}
			floor.Raise(ack.Floor)
			gc.update(ack.Granted, ack.Answered)
		}
	}()

	emit := func(b StreamBatch) {
		writeMu.Lock()
		defer writeMu.Unlock()
		seq++
		if err := enc.Encode(wireStreamFrame{Seq: seq, Items: b.Items, Stats: b.Stats}); err != nil {
			// The coordinator is gone; stop the engine query cooperatively
			// instead of finishing work nobody will read.
			cancel()
			return
		}
		_ = rc.Flush()
	}
	var extra core.BudgetSource
	if gc != nil {
		extra = gc
	}
	ans, err := w.Shard().RunStream(ctx, q, floor, extra, emit)
	writeMu.Lock()
	seq++
	final := wireStreamFrame{Seq: seq, Final: true}
	if err != nil {
		final.Error = err.Error()
	} else {
		final.Items, final.Stats, final.Truncated = ans.Results, ans.Stats, ans.Truncated
		if final.Items == nil {
			final.Items = []core.Result{}
		}
		if ans.Plan != nil {
			final.PlanAlgorithm = ans.Plan.Algorithm.WireName()
			final.PlanReason = ans.Plan.Reason
		}
	}
	if rec != nil {
		final.Trace = rec.Snapshot().Events
	}
	_ = enc.Encode(final)
	_ = rc.Flush()
	writeMu.Unlock()
	// Hold the exchange open until the client closes its ack stream (it
	// does so as soon as it decodes the final frame). Returning earlier —
	// with the request body still open — makes Go's HTTP/1 teardown
	// withhold the response tail for tens of milliseconds, stalling every
	// streamed query on a fixed latency cliff.
	<-ackDone
}

func (w *Worker) handleBound(rw http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("aggregate")
	agg, err := core.ParseAggregate(name)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	b, err := w.Shard().UpperBound(agg)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	writeJSON(rw, http.StatusOK, wireBound{Aggregate: name, Bound: b})
}

func (w *Worker) handleScores(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		writeWireError(rw, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	var ws wireScores
	if err := dec.Decode(&ws); err != nil {
		writeWireError(rw, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	w.mu.Lock()
	// Validate the node range against the worker's authority on the full
	// graph: the live score vector for edit-capable workers (which grows
	// with the node set), the build-time node count for bare workers
	// (whose topology can never change). Shard.WithUpdates itself is
	// tolerant of beyond-snapshot ids — that tolerance is for shards
	// legitimately reused across edit generations, not for typo'd ids.
	limit := w.shard.GlobalNodes()
	if w.g != nil {
		limit = len(w.scores)
	}
	for _, u := range ws.Updates {
		if u.Node < 0 || u.Node >= limit {
			w.mu.Unlock()
			writeWireError(rw, http.StatusBadRequest,
				fmt.Errorf("update node %d out of range [0,%d)", u.Node, limit))
			return
		}
	}
	next, applied, err := w.shard.WithUpdates(ws.Updates)
	if err == nil {
		w.shard = next
		if w.g != nil {
			for _, u := range ws.Updates {
				w.scores[u.Node] = u.Score
			}
		}
		w.gen++
	}
	w.mu.Unlock()
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}
	writeJSON(rw, http.StatusOK, wireScores{Applied: applied, Sketch: w.Shard().Sketch()})
}

// handleEdits applies a structural edit batch to the worker's full graph
// and rebuilds its shard when the batch touches the shard's h-hop
// closure. The response carries the post-batch shape so the coordinator
// transport can refresh its cached topology.
func (w *Worker) handleEdits(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rw.Header().Set("Allow", http.MethodPost)
		writeWireError(rw, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	var we wireEdits
	if err := dec.Decode(&we); err != nil {
		writeWireError(rw, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	edits, err := decodeEdits(we.Edits)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, err)
		return
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.g == nil {
		writeWireError(rw, http.StatusNotImplemented,
			errors.New("worker was built from a bare shard and holds no full graph to edit"))
		return
	}
	if we.Seq != 0 && we.Seq <= w.editSeq {
		// Replay of a batch this worker already applied (the coordinator
		// is retrying a partial fan-out failure): answer with the current
		// state instead of re-applying, so add-node batches cannot mint
		// duplicate nodes and desynchronize the replicas.
		writeJSON(rw, http.StatusOK, wireEdits{
			Nodes:    w.g.NumNodes(),
			Owned:    w.shard.OwnedCount(),
			Boundary: w.shard.BoundaryNodes(),
			Sketch:   w.shard.Sketch(),
		})
		return
	}
	rebuild, status, err := w.applyEditsLocked(edits)
	if err != nil {
		writeWireError(rw, status, err)
		return
	}
	w.gen++
	if we.Seq != 0 {
		w.editSeq = we.Seq
	}
	writeJSON(rw, http.StatusOK, wireEdits{
		Nodes:    w.g.NumNodes(),
		Rebuilt:  rebuild,
		Owned:    w.shard.OwnedCount(),
		Boundary: w.shard.BoundaryNodes(),
		Sketch:   w.shard.Sketch(),
	})
}

// applyEditsLocked is the edit-apply core shared by the live fan-out
// handler and journal replay: apply the batch to the full-graph
// replica, grow the score vector and partitioning for minted nodes, and
// rebuild the shard when the batch touches its h-hop closure. The
// caller holds w.mu and owns all generation/sequence bookkeeping. On
// error the old shard generation keeps serving; status carries the HTTP
// classification (bad batch vs failed rebuild).
func (w *Worker) applyEditsLocked(edits []graph.Edit) (rebuilt bool, status int, err error) {
	newG, delta, err := w.g.ApplyEdits(edits)
	if err != nil {
		return false, http.StatusBadRequest, err
	}
	for len(w.scores) < newG.NumNodes() {
		w.scores = append(w.scores, 0)
	}
	w.p.ExtendTo(newG.NumNodes())

	affected := graph.AffectedNodes(w.g, newG, delta, w.h)
	for _, v := range affected {
		if w.p.PartOf(v) == w.shard.Index() {
			rebuilt = true
			break
		}
	}
	if rebuilt {
		next, err := BuildShard(newG, w.scores, w.h, w.p, w.shard.Index())
		if err != nil {
			return false, http.StatusInternalServerError, err
		}
		w.shard = next
	}
	w.g = newG
	return rebuilt, 0, nil
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	w.mu.RLock()
	s := w.shard
	gen, prov := w.gen, w.provenance
	edges := s.Engine().Graph().NumEdges()
	if w.g != nil {
		edges = w.g.NumEdges()
	}
	w.mu.RUnlock()
	writeJSON(rw, http.StatusOK, wireHealth{
		OK: true, Shard: s.Index(), Shards: s.Parts(),
		Nodes: s.GlobalNodes(), Owned: s.OwnedCount(), Boundary: s.BoundaryNodes(),
		H: s.h, Generation: gen, Edges: edges, Snapshot: prov,
		Sketch: s.Sketch(),
	})
}

// readQueryLine reads the newline-terminated query document that opens a
// stream request, rejecting documents past the same 16 MiB bound the
// non-streaming endpoint enforces.
func readQueryLine(br *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > 16<<20 {
			return nil, errors.New("query document exceeds 16 MiB")
		}
		switch err {
		case nil:
			return line, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return nil, err
		}
	}
}

// HTTP is the cross-process transport: shard i lives behind workers[i], a
// lonad in -shard-worker mode. Construct with NewHTTP, which probes every
// worker's /v1/shard/health and fails fast on a mis-wired topology
// (wrong shard index, inconsistent shard count, disagreeing graphs).
type HTTP struct {
	workers []string
	client  *http.Client

	h int

	// mu guards the facts structural edits move: the full-graph node
	// count, the cached topology summary, and the edit-batch sequencing.
	mu       sync.RWMutex
	nodes    int
	topology Topology
	// editSeq numbers edit batches so workers can no-op replays. A batch
	// that partially failed keeps its number (pendingSeq/pendingEdits):
	// re-sending the identical batch — the documented recovery — reuses
	// it, so workers that already applied it answer idempotently instead
	// of minting duplicate nodes.
	editSeq      uint64
	pendingSeq   uint64
	pendingEdits string
	// sketches[i] summarizes worker i's owned score distribution for
	// λ-priming. Seeded from the dial-time health probe and refreshed by
	// every score/edit fan-out response; a failed fan-out leg nils its
	// entry, because a sketch of scores that were since lowered could
	// overstate λ (nil only weakens priming, never correctness).
	sketches []*Sketch
}

// NewHTTP dials the worker list. client may be nil for a default with a
// 10-second dial/health timeout; per-query timeouts come from the query
// context, not the client.
func NewHTTP(ctx context.Context, workers []string, client *http.Client) (*HTTP, error) {
	if len(workers) == 0 {
		return nil, errors.New("cluster: empty worker list")
	}
	if client == nil {
		client = &http.Client{}
	}
	t := &HTTP{client: client, topology: Topology{Shards: len(workers)}}
	t.sketches = make([]*Sketch, len(workers))
	t.workers = make([]string, len(workers))
	for i, w := range workers {
		t.workers[i] = strings.TrimRight(w, "/")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	probeCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for i, base := range t.workers {
		var h wireHealth
		if err := t.get(probeCtx, base+"/v1/shard/health", &h); err != nil {
			return nil, fmt.Errorf("cluster: worker %d (%s): %w", i, base, err)
		}
		switch {
		case !h.OK:
			return nil, fmt.Errorf("cluster: worker %d (%s) reports not OK", i, base)
		case h.Shard != i:
			return nil, fmt.Errorf("cluster: worker %d (%s) serves shard %d — worker list out of order", i, base, h.Shard)
		case h.Shards != len(t.workers):
			return nil, fmt.Errorf("cluster: worker %d (%s) belongs to a %d-shard topology, dialing %d workers", i, base, h.Shards, len(t.workers))
		case i > 0 && (h.Nodes != t.nodes || h.H != t.h):
			return nil, fmt.Errorf("cluster: worker %d (%s) serves a different dataset (nodes=%d h=%d, want nodes=%d h=%d)",
				i, base, h.Nodes, h.H, t.nodes, t.h)
		}
		if i == 0 {
			t.nodes, t.h = h.Nodes, h.H
		}
		t.topology.BoundaryNodes += int64(h.Boundary)
		t.topology.OwnedSizes = append(t.topology.OwnedSizes, h.Owned)
		t.sketches[i] = h.Sketch
	}
	return t, nil
}

// Shards returns the worker count.
func (t *HTTP) Shards() int { return len(t.workers) }

// Nodes returns the full graph's node count as reported by the workers
// (structural edits can grow it).
func (t *HTTP) Nodes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes
}

// H returns the hop radius the workers serve; a coordinator must refuse
// to merge shards built for a different h than its own.
func (t *HTTP) H() int { return t.h }

// Snapshot returns the transport itself: remote workers swap their shard
// generations independently, so cross-process queries are only as
// snapshot-isolated as the update fan-out is quiescent. (In-process
// sharding gets the strict guarantee; see Local.)
func (t *HTTP) Snapshot() QueryView { return t }

// Query executes q on worker shard via POST /v1/shard/query. A traced
// query ships only its trace id (header) out and imports the worker's
// event list from the response, rebased onto the local timeline at the
// moment the request started.
func (t *HTTP) Query(ctx context.Context, shard int, q core.Query) (core.Answer, error) {
	blob, err := json.Marshal(encodeQuery(q))
	if err != nil {
		return core.Answer{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.workers[shard]+"/v1/shard/query", bytes.NewReader(blob))
	if err != nil {
		return core.Answer{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var baseUS int64
	if q.Tracer != nil {
		setTraceHeaders(req.Header, q.Tracer.ID())
		baseUS = q.Tracer.SinceUS()
	}
	var wa wireAnswer
	if err := t.do(req, &wa); err != nil {
		return core.Answer{}, err
	}
	q.Tracer.Import(wa.Trace, baseUS)
	ans := core.Answer{Results: wa.Results, Stats: wa.Stats, Truncated: wa.Truncated}
	if wa.PlanAlgorithm != "" {
		algo, err := core.ParseAlgorithm(wa.PlanAlgorithm)
		if err != nil {
			return core.Answer{}, fmt.Errorf("cluster: worker %d returned unknown plan algorithm %q", shard, wa.PlanAlgorithm)
		}
		ans.Plan = &core.Plan{Algorithm: algo, Reason: wa.PlanReason}
	}
	return ans, nil
}

// QueryStream executes q on worker shard via POST /v1/shard/query/stream:
// partial batches flow to emit as the worker certifies results, and the
// coordinator's λ (read from ctrl at each frame) flows back on the open
// request body. Acks are coalesced latest-wins — every field is
// cumulative, so replacing a queued ack loses nothing — and never
// dropped, which the grant protocol requires: a dropped ack carrying a
// grant would leave the worker blocked until the next frame by luck.
// ctrl is also the grant ledger: need frames draw from its shared pool
// via Grant, closing the budget-stranding gap LiveBudget documents.
func (t *HTTP) QueryStream(ctx context.Context, shard int, q core.Query,
	ctrl *StreamControl, emit func(StreamBatch)) (core.Answer, error) {

	blob, err := json.Marshal(encodeQuery(q))
	if err != nil {
		return core.Answer{}, err
	}
	bodyR, bodyW := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.workers[shard]+"/v1/shard/query/stream", bodyR)
	if err != nil {
		bodyW.Close()
		return core.Answer{}, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	// Launch-time floor and grant capability ride headers, not the query
	// document: the worker decodes the query strictly, and old workers
	// ignore unknown headers — absent headers mean legacy behavior.
	if f := ctrl.Floor(); f > 0 {
		req.Header.Set(floorHeader, strconv.FormatFloat(f, 'g', -1, 64))
	}
	if q.Budget > 0 {
		req.Header.Set(grantsHeader, "1")
	}
	var baseUS int64
	if q.Tracer != nil {
		setTraceHeaders(req.Header, q.Tracer.ID())
		baseUS = q.Tracer.SinceUS()
	}

	// The ack writer owns the request body: the query document first, then
	// acks. sendAck parks the latest ack in a one-slot mailbox — replacing,
	// never dropping, whatever is still waiting for the pipe — so a slow
	// writer coalesces acks instead of stalling frame consumption, and the
	// state that reaches the worker is always the freshest.
	var ackMu sync.Mutex
	var pending *wireStreamAck
	notify := make(chan struct{}, 1)
	writerDone := make(chan struct{})
	defer close(writerDone)
	sendAck := func(a wireStreamAck) {
		ackMu.Lock()
		pending = &a
		ackMu.Unlock()
		select {
		case notify <- struct{}{}:
		default:
		}
	}
	go func() {
		defer bodyW.Close()
		if _, err := bodyW.Write(append(blob, '\n')); err != nil {
			return
		}
		enc := json.NewEncoder(bodyW)
		for {
			select {
			case <-notify:
				for {
					ackMu.Lock()
					a := pending
					pending = nil
					ackMu.Unlock()
					if a == nil {
						break
					}
					if enc.Encode(*a) != nil {
						return
					}
				}
			case <-writerDone:
				return
			}
		}
	}()
	// Watchdog: the transport blocks on the open body pipe in some error
	// paths (a worker that stops responding without closing the
	// connection); force the pipe shut when the context dies so the
	// round-trip can never outlive its deadline.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			bodyW.CloseWithError(ctx.Err())
		case <-done:
		}
	}()

	resp, err := t.client.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return core.Answer{}, ctxErr
		}
		return core.Answer{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we wireError
		errBlob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(errBlob, &we) == nil && we.Error != "" {
			return core.Answer{}, errors.New(we.Error)
		}
		return core.Answer{}, fmt.Errorf("worker answered %d: %s", resp.StatusCode, strings.TrimSpace(string(errBlob)))
	}

	dec := json.NewDecoder(resp.Body)
	var lastSeq uint64
	var granted, answered int64
	for {
		// A cancelled caller must see its context error even when the
		// remaining frames (final included) are already sitting in the
		// decoder's buffer and would decode without touching the network.
		if err := ctx.Err(); err != nil {
			return core.Answer{}, err
		}
		var f wireStreamFrame
		if err := dec.Decode(&f); err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return core.Answer{}, ctxErr
			}
			return core.Answer{}, fmt.Errorf("cluster: worker %d stream died before its final frame: %w", shard, err)
		}
		if f.Error != "" {
			return core.Answer{}, errors.New(f.Error)
		}
		if f.Seq != lastSeq+1 {
			// A gap or replay means the stream can no longer be trusted —
			// a dropped batch would silently lose certified results.
			return core.Answer{}, fmt.Errorf("cluster: worker %d stream frame out of order: seq %d after %d", shard, f.Seq, lastSeq)
		}
		lastSeq = f.Seq
		if f.Final {
			q.Tracer.Import(f.Trace, baseUS)
			ans := core.Answer{Results: f.Items, Stats: f.Stats, Truncated: f.Truncated}
			if ans.Results == nil {
				ans.Results = []core.Result{}
			}
			if f.PlanAlgorithm != "" {
				algo, err := core.ParseAlgorithm(f.PlanAlgorithm)
				if err != nil {
					return core.Answer{}, fmt.Errorf("cluster: worker %d returned unknown plan algorithm %q", shard, f.PlanAlgorithm)
				}
				ans.Plan = &core.Plan{Algorithm: algo, Reason: f.PlanReason}
			}
			return ans, nil
		}
		if f.Need > 0 {
			// Grant request: a control frame, not a batch — its zero stats
			// must not fold into the merge. Serve the need delta from the
			// shared pool and answer on the ack.
			granted, answered = ctrl.Grant(shard, f.Need)
		} else {
			emit(StreamBatch{Items: f.Items, Stats: f.Stats})
		}
		// Ack every frame with the freshest λ and the cumulative grant
		// counters; coalescing keeps this from ever blocking the loop.
		sendAck(wireStreamAck{Ack: f.Seq, Floor: ctrl.Floor(), Granted: granted, Answered: answered})
	}
}

// LiveBudget: remote workers draw from the coordinator's budget pool
// mid-run through the grant protocol on the ack stream, so budget
// refunded by cut shards reaches still-running workers instead of
// stranding — a budgeted sharded run now evaluates at least as many
// candidates as a single-engine run with the same budget.
func (t *HTTP) LiveBudget() bool { return true }

// ScoreSketch returns the cached per-shard score sketch, refreshed on
// every successful score/edit fan-out and invalidated (nil) when a
// worker's fan-out leg fails — a stale sketch could overstate λ and
// break admissibility, while a nil one only weakens priming.
func (t *HTTP) ScoreSketch(shard int) *Sketch {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if shard < 0 || shard >= len(t.sketches) {
		return nil
	}
	return t.sketches[shard]
}

// WireAcks: frames and acks are real messages on this transport.
func (t *HTTP) WireAcks() bool { return true }

// UpperBound fetches the shard's merge bound via GET /v1/shard/bound.
func (t *HTTP) UpperBound(ctx context.Context, shard int, agg core.Aggregate) (float64, error) {
	var wb wireBound
	u := t.workers[shard] + "/v1/shard/bound?aggregate=" + url.QueryEscape(agg.WireName())
	if err := t.get(ctx, u, &wb); err != nil {
		return 0, err
	}
	return wb.Bound, nil
}

// applyParallel bounds the concurrent legs of a score/edit fan-out: wide
// enough to hide per-worker latency on the topologies this system
// targets, narrow enough not to stampede a shared network path.
const applyParallel = 8

// fanOut posts body to path on every worker with bounded concurrency,
// decoding worker i's response into out(i). Every leg runs to completion
// (success or failure) regardless of the others — idempotent-retry
// semantics need to know each worker's actual state, and a retried batch
// re-sends to everyone anyway. Returns the lowest-index error.
func (t *HTTP) fanOut(ctx context.Context, path string, body any, out func(i int) any) error {
	errs := make([]error, len(t.workers))
	sem := make(chan struct{}, applyParallel)
	var wg sync.WaitGroup
	for i, base := range t.workers {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, base string) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := t.post(ctx, base+path, body, out(i)); err != nil {
				errs[i] = fmt.Errorf("cluster: worker %d (%s): %w", i, base, err)
			}
		}(i, base)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// setSketches installs the fan-out's piggybacked sketches wholesale:
// worker i's fresh sketch on success, nil on a failed leg (the zero
// response) or a legacy worker (no sketch field). After a failed leg the
// worker's scores are unknown, and a stale sketch could overstate λ —
// nil only weakens priming, never correctness.
func (t *HTTP) setSketches(fresh []*Sketch) {
	t.mu.Lock()
	defer t.mu.Unlock()
	copy(t.sketches, fresh)
}

// ApplyScores fans the update batch out to every worker (workers ignore
// nodes outside their closure), applyParallel legs at a time. The
// fan-out is not transactional: a mid-batch worker failure leaves other
// workers updated — the caller owns retry semantics, and queries remain
// exact per worker generation. Responses piggyback each worker's
// refreshed score sketch for λ-priming; a failed leg invalidates its
// cached sketch instead.
func (t *HTTP) ApplyScores(ctx context.Context, updates []ScoreUpdate) error {
	if ctx == nil {
		ctx = context.Background()
	}
	responses := make([]wireScores, len(t.workers))
	err := t.fanOut(ctx, "/v1/shard/scores", wireScores{Updates: updates},
		func(i int) any { return &responses[i] })
	fresh := make([]*Sketch, len(responses))
	for i := range responses {
		fresh[i] = responses[i].Sketch
	}
	t.setSketches(fresh)
	return err
}

// ApplyEdits fans the structural edit batch out to every worker,
// applyParallel legs at a time. Each worker applies it to its own
// full-graph replica and rebuilds its shard only when its closure is
// affected; the responses refresh this transport's cached node count,
// topology, and score sketches. The fan-out is not transactional — a
// mid-batch worker failure leaves other workers at the new topology —
// but retrying with the identical batch converges:
// the batch keeps its sequence number across retries, and workers that
// already applied it answer idempotently (essential for add-node
// batches, whose raw replay would mint duplicate nodes).
func (t *HTTP) ApplyEdits(ctx context.Context, edits []graph.Edit) error {
	if ctx == nil {
		ctx = context.Background()
	}

	// Assign (or, for a retry of the batch that last failed, re-use) the
	// batch's sequence number.
	fingerprint := graph.FormatEditScript(edits)
	t.mu.Lock()
	var seq uint64
	if t.pendingSeq != 0 && t.pendingEdits == fingerprint {
		seq = t.pendingSeq
	} else {
		t.editSeq++
		seq = t.editSeq
	}
	t.pendingSeq, t.pendingEdits = seq, fingerprint
	t.mu.Unlock()

	body := wireEdits{Edits: encodeEdits(edits), Seq: seq}
	responses := make([]wireEdits, len(t.workers))
	err := t.fanOut(ctx, "/v1/shard/edits", body, func(i int) any { return &responses[i] })
	fresh := make([]*Sketch, len(responses))
	for i := range responses {
		fresh[i] = responses[i].Sketch
	}
	t.setSketches(fresh)
	if err != nil {
		return err
	}
	// Workers ran the same deterministic batch from the same replica
	// state; disagreement on the resulting node count means a
	// desynchronized replica (e.g. a worker that missed an earlier
	// batch) and must fail loudly before any query merges mixed
	// topologies.
	for i, resp := range responses {
		if resp.Nodes != responses[0].Nodes {
			return fmt.Errorf("cluster: worker %d reports %d nodes after the batch, worker 0 reports %d — replicas desynchronized",
				i, resp.Nodes, responses[0].Nodes)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pendingSeq, t.pendingEdits = 0, "" // fully applied; nothing to retry
	t.nodes = responses[0].Nodes
	t.topology.BoundaryNodes = 0
	t.topology.OwnedSizes = t.topology.OwnedSizes[:0]
	for _, resp := range responses {
		t.topology.BoundaryNodes += int64(resp.Boundary)
		t.topology.OwnedSizes = append(t.topology.OwnedSizes, resp.Owned)
	}
	return nil
}

// Topology reports what the health probes revealed (edge cut is unknown
// across processes).
func (t *HTTP) Topology() Topology {
	t.mu.RLock()
	defer t.mu.RUnlock()
	topo := t.topology
	topo.OwnedSizes = append([]int(nil), t.topology.OwnedSizes...)
	return topo
}

// Close drops idle worker connections.
func (t *HTTP) Close() error {
	t.client.CloseIdleConnections()
	return nil
}

var _ Transport = (*HTTP)(nil)

// post sends a JSON body and decodes a JSON response.
func (t *HTTP) post(ctx context.Context, url string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return t.do(req, out)
}

// get fetches a JSON response.
func (t *HTTP) get(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return t.do(req, out)
}

// do executes the request, surfacing worker-side errors (and the caller's
// own context error, unwrapped from the client's transport error so the
// coordinator's cut/cancel classification sees context.Canceled).
func (t *HTTP) do(req *http.Request, out any) error {
	resp, err := t.client.Do(req)
	if err != nil {
		if ctxErr := req.Context().Err(); ctxErr != nil {
			return ctxErr
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we wireError
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(blob, &we) == nil && we.Error != "" {
			return errors.New(we.Error)
		}
		return fmt.Errorf("worker answered %d: %s", resp.StatusCode, strings.TrimSpace(string(blob)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
