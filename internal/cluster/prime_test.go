package cluster

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestSketchBasics pins the sketch's two tiers: small shards keep exact
// values in the digest (so PrimeFloor is exact), larger ones demote the
// tail into log buckets whose floors under-state every member.
func TestSketchBasics(t *testing.T) {
	exact := BuildSketch([]float64{0.9, 0.5, 0.7})
	if len(exact.Top) != 3 || exact.Top[0] != 0.9 || exact.Top[1] != 0.7 || exact.Top[2] != 0.5 {
		t.Fatalf("digest %v, want [0.9 0.7 0.5]", exact.Top)
	}
	if exact.Scored != 3 {
		t.Fatalf("Scored = %d, want 3", exact.Scored)
	}
	if got := PrimeFloor([]*Sketch{exact}, 2); got != 0.7 {
		t.Fatalf("PrimeFloor k=2 over an exact digest = %v, want 0.7", got)
	}

	// 40 values: 16 stay exact, 24 fall into buckets. The k-th largest is
	// known in closed form, and the floor must never exceed it.
	scores := make([]float64, 40)
	for i := range scores {
		scores[i] = float64(i+1) / 40
	}
	sk := BuildSketch(scores)
	if len(sk.Top) != sketchDigestSize {
		t.Fatalf("digest size %d, want %d", len(sk.Top), sketchDigestSize)
	}
	var bucketed int64
	for _, c := range sk.Counts {
		bucketed += c
	}
	if bucketed != 24 || sk.Scored != 40 {
		t.Fatalf("bucketed %d / scored %d, want 24 / 40", bucketed, sk.Scored)
	}
	for k := 1; k <= 40; k++ {
		kth := float64(40-k+1) / 40
		if got := PrimeFloor([]*Sketch{sk}, k); got > kth {
			t.Fatalf("PrimeFloor k=%d = %v exceeds the true k-th value %v", k, got, kth)
		}
	}
	// Beyond the population the floor must collapse to 0, not invent
	// evidence.
	if got := PrimeFloor([]*Sketch{sk}, 41); got != 0 {
		t.Fatalf("PrimeFloor past the population = %v, want 0", got)
	}

	// Zero and negative scores contribute nothing.
	if sk := BuildSketch([]float64{0, -1, 0.25}); sk.Scored != 1 {
		t.Fatalf("non-positive scores counted: %+v", sk)
	}
}

// TestPrimeFloorNilSketchesWeakenOnly proves the merge degrades
// gracefully: dropping a shard's sketch can lower the floor (less
// evidence) but never raise it — the subset lower bound stays admissible.
func TestPrimeFloorNilSketchesWeakenOnly(t *testing.T) {
	a := BuildSketch([]float64{0.9, 0.8, 0.7})
	b := BuildSketch([]float64{0.95, 0.6})
	full := PrimeFloor([]*Sketch{a, b}, 3)
	if full != 0.8 {
		t.Fatalf("merged floor = %v, want 0.8", full)
	}
	partial := PrimeFloor([]*Sketch{a, nil}, 3)
	if partial > full {
		t.Fatalf("nil sketch raised the floor: %v > %v", partial, full)
	}
	if got := PrimeFloor([]*Sketch{nil, nil}, 3); got != 0 {
		t.Fatalf("all-nil sketches primed %v, want 0", got)
	}
}

// TestPrimeFloorAdmissible is the admissibility property test: across
// graph shapes, primable aggregates, and shard counts, the sketch-primed
// launch floor never exceeds the true k-th aggregate value, and the
// primed coordinator's answer stays byte-identical to both the unprimed
// coordinator and the single engine.
func TestPrimeFloorAdmissible(t *testing.T) {
	shapes := map[string]*graph.Graph{
		"hub-heavy":   gen.BarabasiAlbert(400, 3, 19),
		"uniform":     gen.ErdosRenyi(400, 1200, 7),
		"communities": gen.PlantedPartition(400, 4, 0.06, 0.004, 23),
	}
	aggregates := []core.Aggregate{core.Sum, core.WeightedSum, core.Count, core.Max}
	for name, g := range shapes {
		scores := testScores(g.NumNodes(), 31)
		engine, err := core.NewEngine(g, scores, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, parts := range []int{1, 2, 4, 8} {
			local, err := NewLocal(g, scores, 2, parts)
			if err != nil {
				t.Fatal(err)
			}
			view := local.Snapshot()
			primedCoord := NewCoordinator(local, Options{Parallel: 2})
			coldCoord := NewCoordinator(local, Options{Parallel: 2, DisablePriming: true})
			for _, agg := range aggregates {
				for _, k := range []int{1, 5, 25} {
					label := name + "/" + agg.String()
					q := core.Query{K: k, Aggregate: agg, Algorithm: core.AlgoBase}
					want, err := engine.Run(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					sketches := make([]*Sketch, parts)
					for i := range sketches {
						sketches[i] = view.ScoreSketch(i)
					}
					primed := PrimeFloor(sketches, k)
					if len(want.Results) >= k {
						kth := want.Results[k-1].Value
						if primed > kth {
							t.Fatalf("%s P=%d k=%d: primed floor %v exceeds true k-th value %v — inadmissible",
								label, parts, k, primed, kth)
						}
					}
					got, bd, err := primedCoord.RunDetailed(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					if bd.LambdaPrimed != primed {
						t.Fatalf("%s P=%d k=%d: breakdown primed λ %v, sketch merge says %v",
							label, parts, k, bd.LambdaPrimed, primed)
					}
					cold, err := coldCoord.Run(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResults(t, label+"/primed-vs-engine", got.Results, want.Results)
					assertSameResults(t, label+"/primed-vs-cold", got.Results, cold.Results)
				}
			}
		}
	}
}

// TestPrimingSkippedWhenInadmissible: Avg aggregates (membership shrinks
// the denominator, so F(u) ≥ f(u) fails) and candidate-restricted queries
// (the k-th over a subset can sit below the global k-th raw score) must
// launch cold.
func TestPrimingSkippedWhenInadmissible(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 11)
	scores := testScores(300, 13)
	local, err := NewLocal(g, scores, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{Parallel: 2})

	_, bd, err := coord.RunDetailed(context.Background(),
		core.Query{K: 5, Aggregate: core.Avg, Algorithm: core.AlgoBase})
	if err != nil {
		t.Fatal(err)
	}
	if bd.LambdaPrimed != 0 {
		t.Fatalf("Avg query primed λ=%v, must launch cold", bd.LambdaPrimed)
	}

	_, bd, err = coord.RunDetailed(context.Background(),
		core.Query{K: 2, Aggregate: core.Sum, Algorithm: core.AlgoBase, Candidates: []int{5, 6, 7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if bd.LambdaPrimed != 0 {
		t.Fatalf("candidate-restricted query primed λ=%v, must launch cold", bd.LambdaPrimed)
	}
}

// TestPrimedColdShardsCutPreLaunch is the cold-launch fix end to end:
// with every top-k candidate in one community and the other shards cold,
// the primed coordinator must cut the cold shards before launching them —
// zero batches, zero launches — while still answering byte-identically.
func TestPrimedColdShardsCutPreLaunch(t *testing.T) {
	g := gen.PlantedPartition(800, 4, 0.05, 0, 9)
	scores := make([]float64, 800)
	for v := 0; v < 800; v += 4 { // community 0 = ids ≡ 0 (mod 4)
		scores[v] = 0.25 + 0.75*float64(v%13)/13
	}
	engine, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(g, scores, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	local.PrepareIndexes(0)

	coord := NewCoordinator(local, Options{Parallel: 4})
	q := core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase}
	want, err := engine.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, bd, err := coord.RunDetailed(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "cold-shards", got.Results, want.Results)
	if bd.LambdaPrimed <= 0 {
		t.Fatalf("no primed λ on an all-mass-in-one-shard topology: %+v", bd)
	}
	cut := 0
	for _, r := range bd.PerShard {
		if r.Launched {
			continue
		}
		cut++
		if !r.Cut {
			t.Fatalf("shard %d neither launched nor cut: %+v", r.Shard, r)
		}
		if r.Batches != 0 || r.Items != 0 {
			t.Fatalf("pre-launch-cut shard %d streamed traffic: %+v", r.Shard, r)
		}
	}
	if cut == 0 {
		t.Fatalf("primed coordinator launched every shard: %+v", bd.PerShard)
	}
}

// TestShardSketchFreshAfterUpdates: WithUpdates derives a new shard whose
// lazily rebuilt sketch reflects the new scores — the staleness rule that
// keeps priming admissible across score updates.
func TestShardSketchFreshAfterUpdates(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 5)
	scores := testScores(200, 3)
	local, err := NewLocal(g, scores, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := PrimeFloor([]*Sketch{local.Snapshot().ScoreSketch(0), local.Snapshot().ScoreSketch(1)}, 1)

	// Crush every score to near zero: a stale sketch would keep priming at
	// the old top value, overstating λ for every later query.
	updates := make([]ScoreUpdate, 200)
	for v := range updates {
		updates[v] = ScoreUpdate{Node: v, Score: 0.001}
	}
	if err := local.ApplyScores(context.Background(), updates); err != nil {
		t.Fatal(err)
	}
	view := local.Snapshot()
	after := PrimeFloor([]*Sketch{view.ScoreSketch(0), view.ScoreSketch(1)}, 1)
	if after >= before {
		t.Fatalf("sketch floor %v did not drop after crushing scores (was %v) — stale sketch", after, before)
	}
	if after > 0.001 {
		t.Fatalf("post-update floor %v overstates the uniform 0.001 scores", after)
	}
}
