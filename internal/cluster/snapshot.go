package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// WriteShardSnapshot persists s as a shard snapshot at path: the closure
// subgraph in columnar CSR form, the shard-local scores, the N(v) index
// (built first if the shard has not needed it yet — snapshots exist to
// make the next boot free, so the index is always included), and the
// identity needed to re-join the topology (parts, index, globalNodes,
// toGlobal, owned). generation stamps the score generation the snapshot
// captures, so a worker restarted from disk can report how stale it is.
func WriteShardSnapshot(s *Shard, path string, generation uint64) error {
	w, err := snapshot.NewWriter(s.engine.Graph(), s.engine.Scores(), s.h,
		s.engine.PrepareNeighborhoodIndex(0))
	if err != nil {
		return err
	}
	toGlobal := make([]int32, len(s.toGlobal))
	for local, global := range s.toGlobal {
		toGlobal[local] = int32(global)
	}
	if err := w.SetShard(s.parts, s.index, s.globalNodes, toGlobal, s.owned); err != nil {
		return err
	}
	w.SetGeneration(generation)
	return w.WriteFile(path)
}

// ShardFromSnapshot reconstructs the execution unit a shard snapshot
// captures. The columnar sections are adopted zero-copy (the engine's
// CSR, scores, and N(v) index alias the mapped file — the caller must
// keep r open for the shard's lifetime), and only the derived lookup
// tables (localIndex, ownedLocal, isOwned) are materialized, so standing
// a worker back up costs O(closure) pointer work instead of a partition,
// closure, and index build over the full graph.
//
// The snapshot's own decoding already proved the structural invariants
// (monotone toGlobal embedding, owned ⊆ closure); this constructor only
// rejects snapshots that are not shard snapshots at all.
func ShardFromSnapshot(r *snapshot.Reader) (*Shard, error) {
	if !r.IsShard() {
		return nil, fmt.Errorf("cluster: %s is a whole-graph snapshot, not a shard", r.Path())
	}
	engine, err := core.NewEngine(r.Graph(), r.Scores(), r.H())
	if err != nil {
		return nil, err
	}
	if ix := r.Index(); ix != nil {
		if err := engine.AdoptNeighborhoodIndex(ix); err != nil {
			return nil, err
		}
	}
	toGlobal := make([]int, len(r.ToGlobal()))
	localIndex := make([]int32, r.GlobalNodes())
	for i := range localIndex {
		localIndex[i] = -1
	}
	for local, global := range r.ToGlobal() {
		toGlobal[local] = int(global)
		localIndex[global] = int32(local)
	}
	s := &Shard{
		index:       r.ShardIndex(),
		parts:       r.Parts(),
		engine:      engine,
		h:           r.H(),
		globalNodes: r.GlobalNodes(),
		owned:       r.Owned(),
		toGlobal:    toGlobal,
		localIndex:  localIndex,
		isOwned:     make([]bool, len(toGlobal)),
		bounds:      make(map[core.Aggregate]float64),
	}
	s.ownedLocal = make([]int, len(s.owned))
	for i, v := range s.owned {
		local := int(localIndex[v])
		s.ownedLocal[i] = local
		s.isOwned[local] = true
	}
	return s, nil
}
