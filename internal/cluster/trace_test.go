package cluster

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/trace"
)

// collectTraced runs one traced query and indexes its stitched timeline.
func collectTraced(t *testing.T, coord *Coordinator, q core.Query) (*trace.Trace, Breakdown) {
	t.Helper()
	rec := trace.New()
	q.Tracer = rec
	if _, bd, err := coord.RunOn(context.Background(), coord.Snapshot(), q); err != nil {
		t.Fatal(err)
	} else {
		return rec.Snapshot(), bd
	}
	return nil, Breakdown{}
}

// TestHTTPTraceAssembly drives a four-shard query through the full HTTP
// stack with score mass concentrated in the low node ids, so the shards
// owning only zero-score nodes are cut by the TA bound — and checks the
// stitched timeline against the coordinator's own accounting:
//
//   - exactly one launch span per launched shard, none for cut-before-
//     launch shards;
//   - λ-tightening events in nondecreasing (here: strictly increasing)
//     λ order;
//   - one shard-stats event per shard whose evaluated count matches the
//     ShardReport — including shards cut mid-query, whose count comes
//     from their last streamed batch (the PR 5 accounting fix);
//   - per-shard batch events whose item counts sum to the report's
//     Items.
func TestHTTPTraceAssembly(t *testing.T) {
	// Four disconnected communities (pout=0) with every non-zero score in
	// community 0 (ids ≡ 0 mod 4) — the same skew
	// TestCoordinatorCutsAreLossless uses: the other communities' shards
	// probe a zero upper bound and are cut once k results arrive.
	const n, parts = 800, 4
	g := gen.PlantedPartition(n, 4, 0.05, 0, 9)
	scores := make([]float64, n)
	for v := 0; v < n; v += 4 {
		scores[v] = 0.25 + 0.75*float64(v%13)/13
	}
	shards, _, err := BuildShards(g, scores, 2, parts)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, parts)
	for i, sh := range shards {
		// Tight distribution bounds so the TA cut triggers.
		sh.Engine().PrepareNeighborhoodIndex(0)
		srv := httptest.NewServer(NewWorker(sh).Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	transport, err := NewHTTP(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()
	// Parallel 1 launches shards one at a time in descending-bound order,
	// so λ from the first (high-scoring) shard deterministically cuts the
	// zero-score shards before they launch.
	coord := NewCoordinator(transport, Options{Parallel: 1})

	tr, bd := collectTraced(t, coord, core.Query{K: 5, Aggregate: core.Sum, Algorithm: core.AlgoBase})
	if tr.ID == "" {
		t.Fatal("stitched trace has no id")
	}
	if len(bd.PerShard) != parts {
		t.Fatalf("breakdown covers %d shards, want %d", len(bd.PerShard), parts)
	}
	if bd.ShardsCut == 0 {
		t.Fatal("score skew produced no cut shards; the cut assertions below would be vacuous")
	}

	launches := map[int]int{}
	stats := map[int][]trace.Event{}
	batchItems := map[int]int{}
	var lambdas []float64
	var execs int
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.KindLaunch:
			launches[e.Shard]++
			if e.DurUS <= 0 {
				t.Fatalf("launch event for shard %d is not a span: %+v", e.Shard, e)
			}
		case trace.KindShardStats:
			stats[e.Shard] = append(stats[e.Shard], e)
		case trace.KindBatch:
			batchItems[e.Shard] += e.N
		case trace.KindLambda:
			lambdas = append(lambdas, e.Value)
		case trace.KindExec:
			execs++
		}
	}

	for _, r := range bd.PerShard {
		if r.Launched && launches[r.Shard] != 1 {
			t.Errorf("shard %d launched but has %d launch spans, want exactly 1", r.Shard, launches[r.Shard])
		}
		if !r.Launched && launches[r.Shard] != 0 {
			t.Errorf("shard %d was cut pre-launch but has %d launch spans", r.Shard, launches[r.Shard])
		}
		if len(stats[r.Shard]) != 1 {
			t.Fatalf("shard %d has %d shard-stats events, want exactly 1", r.Shard, len(stats[r.Shard]))
		}
		if got := stats[r.Shard][0].N; got != r.Evaluated {
			t.Errorf("shard %d shard-stats evaluated %d != report %d", r.Shard, got, r.Evaluated)
		}
		if r.Batches > 0 && batchItems[r.Shard] != r.Items {
			t.Errorf("shard %d batch events sum to %d items, report says %d", r.Shard, batchItems[r.Shard], r.Items)
		}
	}

	for i := 1; i < len(lambdas); i++ {
		if lambdas[i] < lambdas[i-1] {
			t.Fatalf("λ went backwards at event %d: %v", i, lambdas)
		}
	}
	if len(lambdas) != bd.LambdaRaises {
		t.Errorf("%d λ events vs %d counted raises", len(lambdas), bd.LambdaRaises)
	}

	// Cross-process stitching: the launched shards ran inside worker
	// processes, so their engine exec spans only reach this timeline via
	// the Import rebase on the final stream frame.
	if execs == 0 {
		t.Error("no worker exec spans in the stitched trace — worker events were not imported")
	}
}

// TestLocalTraceSharing checks the in-process transport's propagation
// path: shard queries share the coordinator's recorder directly, so
// engine-level events land in the same timeline with no import step.
func TestLocalTraceSharing(t *testing.T) {
	const n = 300
	g := gen.BarabasiAlbert(n, 3, 33)
	scores := testScores(n, 51)
	local, err := NewLocal(g, scores, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(local, Options{})

	tr, bd := collectTraced(t, coord, core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase})
	kinds := map[string]int{}
	for _, e := range tr.Events {
		kinds[e.Kind]++
	}
	if kinds[trace.KindExec] == 0 {
		t.Error("no engine exec spans — local shards did not share the recorder")
	}
	if kinds[trace.KindProbe] == 0 || kinds[trace.KindShardStats] != bd.Shards {
		t.Errorf("coordinator events missing: %v (want probes and %d shard-stats)", kinds, bd.Shards)
	}
	// An untraced run of the same query must stay untraced end to end.
	if _, _, err := coord.RunOn(context.Background(), coord.Snapshot(),
		core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase}); err != nil {
		t.Fatal(err)
	}
}
