package cluster

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// This file holds the shared state of one streaming fan-out. Instead of
// waiting for whole shard answers, workers emit partial top-k batches
// (core.Query.OnPartial); the coordinator folds each batch into its
// global heap, tightens the running k-th value λ, and pushes it back down
// — through a shared atomic for in-process shards, piggybacked on stream
// acks for HTTP workers — so the Threshold Algorithm's stopping rule cuts
// work *inside* a running shard, not just whole shards [Fagin et al.;
// Akbarinia et al.].

// StreamBatch is one partial emission of a shard query, in global node
// ids: the results newly certified since the previous batch, plus the
// shard's cumulative work stats (so the coordinator can account the work
// of a shard it later cuts mid-query).
type StreamBatch struct {
	Items []core.Result
	Stats core.QueryStats
}

// StreamControl is the shared coordination state of one fan-out: the
// monotone merge threshold λ every shard observes, and the budget
// redistribution pool holding the slices of shards that were cut before
// using them. It is safe for concurrent use and implements both
// core.FloorProvider and core.BudgetSource.
type StreamControl struct {
	// floorBits holds math.Float64bits(λ). λ is always non-negative
	// (aggregates are), and the IEEE-754 bit patterns of non-negative
	// floats order identically to the floats themselves, so a CAS-max on
	// the bits is a CAS-max on λ.
	floorBits atomic.Uint64
	pool      atomic.Int64 // unclaimed redistributed traversals
	granted   atomic.Int64 // traversals handed back out so far

	// Demand-driven grant ledger for remote workers (see Grant). gmu
	// guards the per-shard cumulative counters; in-process shards bypass
	// the ledger entirely by calling TakeBudget directly.
	gmu     sync.Mutex
	gshards map[int]*grantLedger
	greqs   int64 // grant requests answered (stats)
}

// grantLedger is one shard's cumulative grant state. Cumulative counters
// — total budget ever requested, total ever granted — make the protocol
// robust to ack coalescing and retransmission: the latest ack always
// carries the whole truth, so dropped or merged intermediates lose
// nothing.
type grantLedger struct {
	need    int64 // cumulative budget the worker has requested
	granted int64 // cumulative budget granted to the worker
}

// Floor returns the current λ — a certified lower bound on the final
// global k-th value (core.FloorProvider).
func (c *StreamControl) Floor() float64 {
	return math.Float64frombits(c.floorBits.Load())
}

// Raise lifts λ to v if v is larger, reporting whether it actually
// tightened the floor; lower or non-finite values are ignored, keeping
// the floor monotone and admissible. The report lets the coordinator
// count (and trace) real λ-tightenings without re-reading the atomic.
func (c *StreamControl) Raise(v float64) bool {
	if math.IsNaN(v) || v <= 0 {
		return false
	}
	bits := math.Float64bits(v)
	for {
		cur := c.floorBits.Load()
		if cur >= bits {
			return false
		}
		if c.floorBits.CompareAndSwap(cur, bits) {
			return true
		}
	}
}

// AddBudget returns n unused traversals (a cut shard's stranded slice)
// to the pool.
func (c *StreamControl) AddBudget(n int) {
	if n > 0 {
		c.pool.Add(int64(n))
	}
}

// TakeBudget consumes up to want traversals from the pool
// (core.BudgetSource). In-process shard queries draw one traversal at a
// time on demand, so the pool is spent exactly where work remains.
func (c *StreamControl) TakeBudget(want int) int {
	if want <= 0 {
		return 0
	}
	for {
		cur := c.pool.Load()
		if cur <= 0 {
			return 0
		}
		take := int64(want)
		if take > cur {
			take = cur
		}
		if c.pool.CompareAndSwap(cur, cur-take) {
			c.granted.Add(take)
			return int(take)
		}
	}
}

// TakeShare consumes a 1/parts share (rounded up) of the current pool —
// the up-front slice handed to a launching shard on transports that
// cannot draw from the pool mid-run (HTTP workers).
func (c *StreamControl) TakeShare(parts int) int {
	if parts <= 0 {
		return 0
	}
	cur := c.pool.Load()
	if cur <= 0 {
		return 0
	}
	want := (int(cur) + parts - 1) / parts
	return c.TakeBudget(want)
}

// Redistributed reports how many traversals were handed back out of the
// pool over the fan-out's lifetime.
func (c *StreamControl) Redistributed() int {
	return int(c.granted.Load())
}

// Grant answers a remote worker's demand-driven budget request: cumNeed
// is the cumulative budget the shard has asked for over the stream's
// lifetime. Any newly requested amount (beyond what was already
// answered) is served from the pool — possibly partially, possibly with
// zero when the pool is dry, which is the same instantaneous semantics
// an in-process TakeBudget sees. Returns the shard's cumulative granted
// and answered totals, the two monotone counters the worker reconciles
// against. Replays (cumNeed ≤ already answered) return current state
// without touching the pool.
func (c *StreamControl) Grant(shard int, cumNeed int64) (granted, answered int64) {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	if c.gshards == nil {
		c.gshards = make(map[int]*grantLedger)
	}
	g := c.gshards[shard]
	if g == nil {
		g = &grantLedger{}
		c.gshards[shard] = g
	}
	if cumNeed > g.need {
		delta := cumNeed - g.need
		g.need = cumNeed
		g.granted += int64(c.TakeBudget(int(delta)))
		c.greqs++
	}
	return g.granted, g.need
}

// GrantedTo reports the cumulative budget granted to a shard through the
// demand-driven protocol (0 for shards that never asked — including all
// in-process shards, which draw via TakeBudget instead).
func (c *StreamControl) GrantedTo(shard int) int64 {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	if g := c.gshards[shard]; g != nil {
		return g.granted
	}
	return 0
}

// GrantRequests reports how many distinct grant requests the fan-out
// answered.
func (c *StreamControl) GrantRequests() int64 {
	c.gmu.Lock()
	defer c.gmu.Unlock()
	return c.greqs
}
