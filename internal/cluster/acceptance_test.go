package cluster

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relevance"
)

// TestAcceptanceCollaborationP4 is this PR's acceptance criterion:
// Coordinator.Run returns byte-identical top-k (results and ordering) to
// Engine.Run for every aggregate on the scale-0.2 collaboration network
// at P=4, under the paper's mixture relevance — both through the planner
// (AlgoAuto) and the explicit Base scan.
func TestAcceptanceCollaborationP4(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale dataset")
	}
	const h, k, parts = 2, 100, 4
	g := gen.Collaboration(gen.DatasetScale(0.2), 20100301)
	scores := relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.01}, 20100302)
	engine, err := core.NewEngine(g, scores, h)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(g, scores, h, parts)
	if err != nil {
		t.Fatal(err)
	}
	local.PrepareIndexes(0)
	coord := NewCoordinator(local, Options{})

	for _, agg := range allAggregates {
		for _, algo := range []core.Algorithm{core.AlgoAuto, core.AlgoBase} {
			if !supportsAgg(algo, agg) {
				continue
			}
			q := core.Query{Algorithm: algo, K: k, Aggregate: agg}
			want, err := engine.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("%v/%v: engine: %v", agg, algo, err)
			}
			got, bd, err := coord.RunDetailed(context.Background(), q)
			if err != nil {
				t.Fatalf("%v/%v: coordinator: %v", agg, algo, err)
			}
			assertSameResults(t, agg.String()+"/"+algo.String(), got.Results, want.Results)
			if len(got.Results) != k {
				t.Fatalf("%v/%v: %d results, want %d", agg, algo, len(got.Results), k)
			}
			if bd.Shards != parts || bd.Messages == 0 {
				t.Fatalf("%v/%v: implausible breakdown %+v", agg, algo, bd)
			}
		}
	}
}
