// Package cluster is the sharded query execution subsystem: the
// infrastructure the paper closes with ("partitioning the network into
// subnetworks and distributing the aggregation workload"). A Coordinator
// satisfies the same Run(ctx, Query) shape as core's Engine, Planner, and
// View, but executes the query across P partition-local engines — each a
// core.Engine over the h-hop closure of the nodes its shard owns — and
// merges the partial top-k lists into an answer byte-identical to a
// single-engine run.
//
// # Merge with early termination
//
// Each shard first reports a certified upper bound on any value it could
// contribute (core.Engine.AggregateUpperBound). The coordinator fans the
// query out in descending bound order and maintains the running global
// k-th value λ; following the Threshold Algorithm's stopping rule
// [Fagin et al.], a shard whose bound falls strictly below λ is cut
// short — skipped if it has not launched, cancelled via its context if it
// is mid-query — because no node it owns can reach the final top-k.
// Strict comparison keeps value ties resolving exactly as a single
// engine would. Exactness of the surviving shard answers (see Shard) then
// makes the merged list — values, ordering, and tie-breaks — identical to
// Engine.Run.
//
// # Transports
//
// Workers are reached through the Transport interface: Local runs every
// shard in-process (one goroutine per shard, the simulated-machine model
// internal/partition introduced), HTTP fans out to lonad worker processes
// exposing /v1/shard/query. internal/server routes /v1/topk through a
// Coordinator when serving sharded, and cmd/lonad wires up both modes.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/topk"
	"repro/internal/trace"
)

// Options tunes a Coordinator. The zero value is a sensible default.
type Options struct {
	// Parallel bounds how many shard queries run concurrently
	// (<=0 = min(shards, GOMAXPROCS)). With fewer slots than shards the
	// bound-descending launch order makes early termination bite: the
	// shards most likely to raise λ run first, and trailing shards are
	// often cut before they ever start.
	Parallel int
	// DisableCut turns TA early termination off (benchmarks isolating
	// the fan-out cost, and tests proving the cut changes nothing).
	DisableCut bool
	// DisableStreaming turns off partial-result streaming: shards answer
	// with one whole response, λ tightens only on shard completion, and
	// cuts land only between shards — kept for benchmarks pricing the
	// streaming protocol and as an escape hatch. Note the budget
	// redistribution bugfix (cut shards' slices flow to shards with work
	// left) applies in BOTH modes: it is a coordinator repair, not part
	// of the streaming protocol, so budgeted queries do more useful work
	// than they did pre-streaming even with streaming off.
	DisableStreaming bool
	// DisablePriming turns off sketch-based λ-priming (see sketch.go):
	// queries launch with λ = −∞ exactly as before PR 9 — kept for
	// benchmarks pricing the priming win and tests proving it changes no
	// answers.
	DisablePriming bool
	// PartialEvery pins the shards' partial-emission cadence instead of
	// adapting it per shard from observed batch latency (see cadence.go).
	// 0 = adaptive; benchmarks pin it for run-to-run comparability. A
	// query that sets its own core.Query.PartialEvery wins over both.
	PartialEvery int
}

// Coordinator fans queries out across a Transport's shards and merges the
// partial answers. It is safe for concurrent use; construct with
// NewCoordinator.
type Coordinator struct {
	t    Transport
	opts Options
	cad  *cadence
}

// NewCoordinator returns a coordinator over the transport.
func NewCoordinator(t Transport, opts Options) *Coordinator {
	return &Coordinator{t: t, opts: opts, cad: newCadence()}
}

// Transport returns the transport the coordinator fans out over.
func (c *Coordinator) Transport() Transport { return c.t }

// Shards returns the number of shards queries fan out across.
func (c *Coordinator) Shards() int { return c.t.Shards() }

// Snapshot pins the current shard generation; pass it to RunOn so a
// caller holding its own generation lock (internal/server) observes one
// consistent shard set per query.
func (c *Coordinator) Snapshot() QueryView { return c.t.Snapshot() }

// ShardReport is one shard's slice of a Breakdown.
type ShardReport struct {
	Shard     int   `json:"shard"`
	ElapsedUS int64 `json:"elapsed_us"`
	Results   int   `json:"results"`
	// Cut means the TA bound ended this shard early: skipped before
	// launch, or cancelled mid-query.
	Cut bool `json:"cut,omitempty"`
	// Launched distinguishes a mid-query cancellation (true) from a
	// pre-launch skip (false) among cut shards.
	Launched bool `json:"launched"`
	// Batches counts the partial-result frames this shard streamed.
	Batches int `json:"batches,omitempty"`
	// Evaluated is the shard's exact-evaluation count — from its final
	// answer, or from its last streamed batch when it was cut mid-query.
	Evaluated int `json:"evaluated,omitempty"`
	// Items counts the result items this shard shipped back (streamed
	// batch items, or the whole answer's results when not streaming) —
	// the per-shard message-size observation /metrics histograms.
	Items int `json:"items,omitempty"`
	// Cadence is the PartialEvery this shard query emitted at — the
	// adaptive controller's current setting (or the pinned override).
	Cadence int `json:"cadence,omitempty"`
	// Granted is the budget this shard drew mid-run through the
	// demand-driven grant protocol (remote workers only; in-process
	// shards draw from the pool without a ledger).
	Granted int `json:"granted,omitempty"`
}

// Breakdown reports what one distributed execution did — the
// cross-machine counters the paper's infrastructure section cares about,
// aggregated into /v1/stats by the serving layer.
type Breakdown struct {
	Shards    int `json:"shards"`
	ShardsCut int `json:"shards_cut"`
	// Messages counts simulated (Local) or real (HTTP) cross-shard
	// exchanges: one bound probe per shard, a request and a response per
	// launched shard query, one message per result item shipped back,
	// and — when streaming — one per partial frame plus, on transports
	// that push state over the wire, one per λ ack and two per budget
	// grant request (the need frame and its granting ack). Shards cut
	// pre-launch by a sketch-primed λ contribute only their bound probe.
	Messages int64 `json:"messages"`
	// PartialBatches counts the streamed partial frames folded into the
	// merge across all shards.
	PartialBatches int64 `json:"partial_batches,omitempty"`
	// BudgetRedistributed counts traversals moved from cut shards'
	// stranded budget slices to shards that could still use them.
	BudgetRedistributed int `json:"budget_redistributed,omitempty"`
	// LambdaRaises counts how many folded batches (or whole answers)
	// actually tightened the merge threshold λ — the within-shard TA
	// machinery visibly working, vs batches that changed nothing.
	LambdaRaises int `json:"lambda_raises,omitempty"`
	// LambdaPrimed is the initial λ certified from the per-shard score
	// sketches before any shard launched (0 when priming was off or
	// inapplicable — Avg queries, candidate restrictions, missing
	// sketches).
	LambdaPrimed float64 `json:"lambda_primed,omitempty"`
	// GrantRequests counts the demand-driven budget grant requests
	// answered mid-stream (remote workers whose slice ran dry).
	GrantRequests int64         `json:"grant_requests,omitempty"`
	PerShard      []ShardReport `json:"per_shard"`
}

// Run executes a query across every shard and merges the answer — the
// same context-aware entry-point shape as Engine.Run, Planner.Run, and
// View.Run. Results (values, ordering, tie-breaks) are identical to a
// single-engine run; Stats sum the work of every shard that executed;
// Truncated reports whether any shard's budget slice ran out.
func (c *Coordinator) Run(ctx context.Context, q core.Query) (core.Answer, error) {
	ans, _, err := c.RunDetailed(ctx, q)
	return ans, err
}

// RunDetailed is Run plus the distributed-execution breakdown.
func (c *Coordinator) RunDetailed(ctx context.Context, q core.Query) (core.Answer, Breakdown, error) {
	return c.RunOn(ctx, c.t.Snapshot(), q)
}

// RunOn executes the query against an explicit shard-set snapshot.
func (c *Coordinator) RunOn(ctx context.Context, view QueryView, q core.Query) (core.Answer, Breakdown, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bd := Breakdown{Shards: c.t.Shards()}
	if q.K <= 0 {
		return core.Answer{}, bd, fmt.Errorf("cluster: k must be positive, got %d", q.K)
	}
	if q.Budget < 0 {
		return core.Answer{}, bd, fmt.Errorf("cluster: negative budget %d", q.Budget)
	}
	n := c.t.Nodes()
	for _, v := range q.Candidates {
		if v < 0 || v >= n {
			return core.Answer{}, bd, fmt.Errorf("cluster: candidate node %d out of range [0,%d)", v, n)
		}
	}
	parts := bd.Shards
	if parts <= 0 {
		return core.Answer{}, bd, errors.New("cluster: transport has no shards")
	}

	// rec scopes the query's trace (nil when untraced — every recording
	// site below is nil-safe, so the plain path pays only dead branches).
	rec := q.Tracer
	var probeStart time.Time
	if rec != nil {
		probeStart = time.Now()
	}

	// Phase 1 — merge bounds, fetched concurrently. A failed probe makes
	// the shard uncuttable (+Inf) rather than failing the query: the
	// shard query itself will surface any real transport fault.
	bounds := make([]float64, parts)
	var probeWG sync.WaitGroup
	for i := 0; i < parts; i++ {
		probeWG.Add(1)
		go func(i int) {
			defer probeWG.Done()
			b, err := view.UpperBound(ctx, i, q.Aggregate)
			if err != nil {
				b = math.Inf(1)
			}
			bounds[i] = b
		}(i)
	}
	probeWG.Wait()
	bd.Messages += int64(parts)
	if rec != nil {
		rec.Span(trace.KindProbe, probeStart, parts, 0, "bound probes")
		for i, b := range bounds {
			rec.ForShard(i).Emit(trace.KindProbe, 0, b, "")
		}
	}

	// Launch order: descending bound, ascending shard index among ties —
	// the shards most able to raise λ go first.
	order := make([]int, parts)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return bounds[order[a]] > bounds[order[b]] })

	// Budget slices: q.Budget splits evenly by shard index (not bound
	// order), so the split is deterministic across runs.
	budgets := partition.SplitBudget(q.Budget, parts)

	parallel := c.opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > parts {
		parallel = parts
	}

	// Phase 2 — fan out with TA cuts. All shared state below is guarded
	// by mu: the merged list, per-shard outcomes, and the cancel/cut
	// bookkeeping the λ-watcher mutates. ctrl carries the lock-free state
	// running shard queries read themselves: the streamed threshold λ and
	// the budget redistribution pool.
	streaming := !c.opts.DisableStreaming
	liveBudget := streaming && view.LiveBudget()
	ctrl := &StreamControl{}
	// λ-priming: merge the per-shard score sketches into a certified
	// lower bound on the global k-th value and seed the floor with it, so
	// cold shards are cut before they launch (zero stream messages) and
	// every launched shard prunes against a warm floor from its first
	// traversal. Skipped for aggregates where the raw-score bound is not
	// admissible (Avg) and for candidate-restricted queries, whose k-th
	// value ranges over a subset the sketches know nothing about.
	if !c.opts.DisableCut && !c.opts.DisablePriming &&
		len(q.Candidates) == 0 && primableAggregate(q.Aggregate) {
		sketches := make([]*Sketch, parts)
		for i := range sketches {
			sketches[i] = view.ScoreSketch(i)
		}
		if primed := PrimeFloor(sketches, q.K); primed > 0 {
			ctrl.Raise(primed)
			bd.LambdaPrimed = primed
			rec.Emit(trace.KindPrime, q.K, primed, "λ primed from score sketches")
		}
	}
	type outcome struct {
		ans      core.Answer
		err      error
		dur      time.Duration
		claimed  bool // a launch goroutine owns this shard's query
		launched bool // the shard query ran (possibly to a cancellation)
		finished bool // the shard query completed and ans is valid
		allot    int  // budget handed to the shard at launch
		cut      bool
		done     bool
		batches  int // partial frames folded
		items    int // result items shipped back (streamed or whole)
		cadence  int // PartialEvery this shard query emitted at
		// partial is the cumulative work reported by the last streamed
		// batch — all that remains of a shard cut mid-query, and exactly
		// what the merged Stats must not lose.
		partial    core.QueryStats
		hasPartial bool
	}
	var (
		mu       sync.Mutex
		list     = topk.New(q.K)
		outcomes = make([]outcome, parts)
		cancels  = make([]context.CancelFunc, parts)
		aborted  bool // a shard failed; the rest of the fan-out is moot
	)
	// cuttable reports whether shard i cannot affect the final top-k:
	// strict (<) so a shard that could still tie λ — and win the
	// smaller-id tie-break — always runs to completion. The threshold is
	// the floor (which starts at the sketch-primed λ, so cold shards are
	// cuttable before any result arrives), tightened by the merged
	// list's bound once it fills.
	cuttable := func(i int) bool {
		if c.opts.DisableCut {
			return false
		}
		th := ctrl.Floor()
		if list.Full() && list.Bound() > th {
			th = list.Bound()
		}
		return th > 0 && bounds[i] < th
	}
	// raise (mu held) tightens λ to the merged list's bound, counting and
	// tracing the pushes that actually moved it.
	raise := func() {
		if list.Full() && ctrl.Raise(list.Bound()) {
			bd.LambdaRaises++
			rec.Emit(trace.KindLambda, 0, list.Bound(), "")
		}
	}
	// cutShard (mu held) records one shard's TA cut; refunded > 0 means a
	// never-launched shard's budget slice just went to the pool.
	cutShard := func(sj int, note string, refunded int) {
		if rec == nil {
			return
		}
		srec := rec.ForShard(sj)
		srec.Emit(trace.KindCut, 0, list.Bound(), note)
		if refunded > 0 {
			srec.Emit(trace.KindRefund, refunded, 0, "stranded slice to pool")
		}
	}
	// reap (mu held) cuts every shard that can no longer affect the final
	// top-k: running shards are cancelled mid-query, shards that never
	// launched are finished before they start — and their untouched
	// budget slices go to the redistribution pool instead of being
	// stranded (pre-streaming, a cut shard's slice was simply lost and a
	// budgeted query did less work than asked).
	reap := func() {
		for sj := 0; sj < parts; sj++ {
			oj := &outcomes[sj]
			if oj.done || oj.cut || !cuttable(sj) {
				continue
			}
			oj.cut = true
			if oj.claimed {
				cancels[sj]()
				cutShard(sj, "mid-query", 0)
			} else {
				oj.done = true
				ctrl.AddBudget(budgets[sj])
				cutShard(sj, "pre-launch", budgets[sj])
			}
		}
	}
	// fold (locks mu) merges one streamed batch: offer the newly
	// certified items, remember the shard's cumulative stats, tighten λ,
	// and re-evaluate every cut — within-shard early termination instead
	// of waiting for whole shards to finish.
	fold := func(si int, b StreamBatch) {
		mu.Lock()
		defer mu.Unlock()
		o := &outcomes[si]
		o.batches++
		o.items += len(b.Items)
		o.partial, o.hasPartial = b.Stats, true
		if aborted || ctx.Err() != nil {
			return
		}
		for _, it := range b.Items {
			list.Offer(it.Node, it.Value)
		}
		raise()
		rec.ForShard(si).Emit(trace.KindBatch, len(b.Items), ctrl.Floor(), "")
		reap()
	}

	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for _, si := range order {
		// The slot is acquired here, not inside the goroutine: goroutines
		// racing for it would launch in scheduler order, and the
		// descending-bound launch order Options.Parallel promises (the
		// shards most able to raise λ run first, trailing shards get cut
		// before they start) would hold only by luck.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			defer func() { <-sem }()

			mu.Lock()
			o := &outcomes[si]
			if ctx.Err() != nil || aborted || o.done {
				mu.Unlock()
				return
			}
			if cuttable(si) {
				o.cut, o.done = true, true
				ctrl.AddBudget(budgets[si])
				cutShard(si, "pre-launch", budgets[si])
				mu.Unlock()
				return
			}
			// Count the shards that could still launch (self included)
			// before claiming, for the up-front pool share below.
			pending := 0
			for sj := range outcomes {
				oj := &outcomes[sj]
				if !oj.claimed && !oj.done {
					pending++
				}
			}
			o.claimed = true
			sctx, cancel := context.WithCancel(ctx)
			cancels[si] = cancel
			sq := q
			// Retag the trace scope: the shard engine's events (floor
			// observations, emissions, cuts) land under this shard's index.
			// Local shares the recorder; HTTP ships only its id.
			sq.Tracer = rec.ForShard(si)
			sq.Budget = budgets[si]
			if sq.Budget > 0 && !liveBudget {
				// This transport cannot draw from the pool mid-run, so a
				// launching shard takes its share of the slices stranded
				// so far up front. Live-budget transports skip this: the
				// running query draws on demand, spending the pool only
				// where work actually remains.
				if extra := ctrl.TakeShare(pending); extra > 0 {
					sq.Budget += extra
					sq.Tracer.Emit(trace.KindGrant, extra, 0, "pool share at launch")
				}
			}
			o.allot = sq.Budget
			if streaming && sq.PartialEvery == 0 {
				// Emission cadence: the caller's own setting wins, then the
				// pinned option, then the per-shard adaptive controller.
				if c.opts.PartialEvery > 0 {
					sq.PartialEvery = c.opts.PartialEvery
				} else {
					sq.PartialEvery = c.cad.forShard(si, q.K)
				}
			}
			o.cadence = sq.PartialEvery
			mu.Unlock()
			defer cancel()

			start := time.Now()
			var ans core.Answer
			var err error
			if streaming {
				ans, err = view.QueryStream(sctx, si, sq, ctrl, func(b StreamBatch) { fold(si, b) })
			} else {
				ans, err = view.Query(sctx, si, sq)
			}
			dur := time.Since(start)
			if rec != nil {
				mode := "whole"
				if streaming {
					mode = "streaming"
				}
				rec.ForShard(si).Span(trace.KindLaunch, start, sq.Budget, bounds[si], mode)
			}

			mu.Lock()
			defer mu.Unlock()
			o.launched, o.dur, o.done = true, dur, true
			if err != nil {
				// A cancellation we caused — a TA cut, or collateral of
				// another shard's fatal error — is not this shard's
				// fault; a cancellation the caller caused is reported as
				// the caller's context error below.
				if (o.cut || aborted) && isContextErr(err) && ctx.Err() == nil {
					return
				}
				o.err = err
				// The merged answer can no longer be produced: stop the
				// shards still running instead of letting them finish
				// work nobody will read.
				aborted = true
				for sj := range cancels {
					oj := &outcomes[sj]
					if sj != si && !oj.done && cancels[sj] != nil {
						cancels[sj]()
					}
				}
				return
			}
			o.finished = true
			o.ans = ans
			// Budget drawn mid-run through the grant protocol joins the
			// shard's allotment before the refund below, so over-granted
			// chunks (a worker asks in fixed chunks, not exact amounts)
			// flow back to the pool instead of stranding.
			o.allot += int(ctrl.GrantedTo(si))
			// A shard that finished under its allotment (it ran out of
			// owned work) returns the leftover to the pool for shards
			// still running. Budget spend is exactly the evaluation +
			// distribution count, core's one-spend-per-traversal contract.
			if spent := ans.Stats.Evaluated + ans.Stats.Distributed; o.allot > spent {
				ctrl.AddBudget(o.allot - spent)
				rec.ForShard(si).Emit(trace.KindRefund, o.allot-spent, 0, "unused allotment to pool")
			}
			if streaming {
				// Every final result already arrived through a batch
				// (core's streaming contract); offering them again would
				// duplicate nodes in the merged heap.
			} else {
				o.items = len(ans.Results)
				for _, it := range ans.Results {
					list.Offer(it.Node, it.Value)
				}
			}
			// λ may have risen: cut every shard that can no longer
			// contribute, running or not yet launched.
			raise()
			reap()
		}(si)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return core.Answer{}, bd, err
	}
	merged := core.Answer{Results: list.Items()}
	bd.BudgetRedistributed = ctrl.Redistributed()
	bd.GrantRequests = ctrl.GrantRequests()
	for si := range outcomes {
		o := &outcomes[si]
		if o.err != nil {
			return core.Answer{}, bd, fmt.Errorf("cluster: shard %d: %w", si, o.err)
		}
		// A shard cut mid-query returned no final answer; its last
		// streamed batch carries the work it did do, which the merged
		// stats (and /v1/stats upstream) must account rather than drop.
		s := o.ans.Stats
		if !o.finished && o.hasPartial {
			s = o.partial
		}
		report := ShardReport{Shard: si, ElapsedUS: o.dur.Microseconds(),
			Results: len(o.ans.Results), Cut: o.cut, Launched: o.launched,
			Batches: o.batches, Evaluated: s.Evaluated, Items: o.items,
			Cadence: o.cadence, Granted: int(ctrl.GrantedTo(si))}
		bd.PerShard = append(bd.PerShard, report)
		if o.launched && c.opts.PartialEvery == 0 {
			// Feed the adaptive cadence controller: how fast did this
			// shard's frames actually arrive at the cadence it used.
			c.cad.observe(si, o.batches, o.dur, o.cadence)
		}
		if rec != nil {
			note := ""
			switch {
			case o.cut && o.launched:
				note = "cut mid-query"
			case o.cut:
				note = "cut pre-launch"
			}
			rec.ForShard(si).Emit(trace.KindShardStats, s.Evaluated, 0, note)
		}
		if o.cut {
			bd.ShardsCut++
		}
		bd.PartialBatches += int64(o.batches)
		if o.launched {
			bd.Messages += 2 + int64(o.items) + int64(o.batches)
			if streaming {
				// The final summary frame re-ships the shard's result
				// list (so the wire answer is self-contained); count it,
				// or the streaming-vs-whole-shard message comparison
				// would flatter streaming by up to k items per shard.
				bd.Messages += int64(len(o.ans.Results))
				if view.WireAcks() {
					// λ acks ride the request stream back to remote
					// workers, at most one per folded frame (the writer
					// coalesces to latest, so this is an upper estimate).
					bd.Messages += int64(o.batches)
				}
			}
		}
		merged.Stats.Evaluated += s.Evaluated
		merged.Stats.Pruned += s.Pruned
		merged.Stats.Distributed += s.Distributed
		merged.Stats.Visited += s.Visited
		merged.Truncated = merged.Truncated || o.ans.Truncated
	}
	if view.WireAcks() && bd.GrantRequests > 0 {
		// Each answered grant request cost a need frame upstream and a
		// granting ack downstream.
		bd.Messages += 2 * bd.GrantRequests
	}
	// Fold per-shard planner decisions into one Plan for the merged
	// Answer: the lowest-index executed shard's choice, annotated with
	// the shard count (shards plan independently — their score
	// distributions differ — so the note keeps the reported plan honest).
	if q.Algorithm == core.AlgoAuto {
		for si := range outcomes {
			if p := outcomes[si].ans.Plan; p != nil {
				plan := *p
				plan.Reason = fmt.Sprintf("sharded ×%d (shard %d): %s", parts, si, plan.Reason)
				merged.Plan = &plan
				break
			}
		}
	}
	return merged, bd, nil
}

// isContextErr reports whether err is (or wraps) a context cancellation
// or deadline error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
