// Package cluster is the sharded query execution subsystem: the
// infrastructure the paper closes with ("partitioning the network into
// subnetworks and distributing the aggregation workload"). A Coordinator
// satisfies the same Run(ctx, Query) shape as core's Engine, Planner, and
// View, but executes the query across P partition-local engines — each a
// core.Engine over the h-hop closure of the nodes its shard owns — and
// merges the partial top-k lists into an answer byte-identical to a
// single-engine run.
//
// # Merge with early termination
//
// Each shard first reports a certified upper bound on any value it could
// contribute (core.Engine.AggregateUpperBound). The coordinator fans the
// query out in descending bound order and maintains the running global
// k-th value λ; following the Threshold Algorithm's stopping rule
// [Fagin et al.], a shard whose bound falls strictly below λ is cut
// short — skipped if it has not launched, cancelled via its context if it
// is mid-query — because no node it owns can reach the final top-k.
// Strict comparison keeps value ties resolving exactly as a single
// engine would. Exactness of the surviving shard answers (see Shard) then
// makes the merged list — values, ordering, and tie-breaks — identical to
// Engine.Run.
//
// # Transports
//
// Workers are reached through the Transport interface: Local runs every
// shard in-process (one goroutine per shard, the simulated-machine model
// internal/partition introduced), HTTP fans out to lonad worker processes
// exposing /v1/shard/query. internal/server routes /v1/topk through a
// Coordinator when serving sharded, and cmd/lonad wires up both modes.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/topk"
)

// Options tunes a Coordinator. The zero value is a sensible default.
type Options struct {
	// Parallel bounds how many shard queries run concurrently
	// (<=0 = min(shards, GOMAXPROCS)). With fewer slots than shards the
	// bound-descending launch order makes early termination bite: the
	// shards most likely to raise λ run first, and trailing shards are
	// often cut before they ever start.
	Parallel int
	// DisableCut turns TA early termination off (benchmarks isolating
	// the fan-out cost, and tests proving the cut changes nothing).
	DisableCut bool
}

// Coordinator fans queries out across a Transport's shards and merges the
// partial answers. It is safe for concurrent use; construct with
// NewCoordinator.
type Coordinator struct {
	t    Transport
	opts Options
}

// NewCoordinator returns a coordinator over the transport.
func NewCoordinator(t Transport, opts Options) *Coordinator {
	return &Coordinator{t: t, opts: opts}
}

// Transport returns the transport the coordinator fans out over.
func (c *Coordinator) Transport() Transport { return c.t }

// Shards returns the number of shards queries fan out across.
func (c *Coordinator) Shards() int { return c.t.Shards() }

// Snapshot pins the current shard generation; pass it to RunOn so a
// caller holding its own generation lock (internal/server) observes one
// consistent shard set per query.
func (c *Coordinator) Snapshot() QueryView { return c.t.Snapshot() }

// ShardReport is one shard's slice of a Breakdown.
type ShardReport struct {
	Shard     int   `json:"shard"`
	ElapsedUS int64 `json:"elapsed_us"`
	Results   int   `json:"results"`
	// Cut means the TA bound ended this shard early: skipped before
	// launch, or cancelled mid-query.
	Cut bool `json:"cut,omitempty"`
	// Launched distinguishes a mid-query cancellation (true) from a
	// pre-launch skip (false) among cut shards.
	Launched bool `json:"launched"`
}

// Breakdown reports what one distributed execution did — the
// cross-machine counters the paper's infrastructure section cares about,
// aggregated into /v1/stats by the serving layer.
type Breakdown struct {
	Shards    int `json:"shards"`
	ShardsCut int `json:"shards_cut"`
	// Messages counts simulated (Local) or real (HTTP) cross-shard
	// exchanges: one bound probe per shard, a request and a response per
	// launched shard query, and one message per result item shipped back.
	Messages int64         `json:"messages"`
	PerShard []ShardReport `json:"per_shard"`
}

// Run executes a query across every shard and merges the answer — the
// same context-aware entry-point shape as Engine.Run, Planner.Run, and
// View.Run. Results (values, ordering, tie-breaks) are identical to a
// single-engine run; Stats sum the work of every shard that executed;
// Truncated reports whether any shard's budget slice ran out.
func (c *Coordinator) Run(ctx context.Context, q core.Query) (core.Answer, error) {
	ans, _, err := c.RunDetailed(ctx, q)
	return ans, err
}

// RunDetailed is Run plus the distributed-execution breakdown.
func (c *Coordinator) RunDetailed(ctx context.Context, q core.Query) (core.Answer, Breakdown, error) {
	return c.RunOn(ctx, c.t.Snapshot(), q)
}

// RunOn executes the query against an explicit shard-set snapshot.
func (c *Coordinator) RunOn(ctx context.Context, view QueryView, q core.Query) (core.Answer, Breakdown, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bd := Breakdown{Shards: c.t.Shards()}
	if q.K <= 0 {
		return core.Answer{}, bd, fmt.Errorf("cluster: k must be positive, got %d", q.K)
	}
	if q.Budget < 0 {
		return core.Answer{}, bd, fmt.Errorf("cluster: negative budget %d", q.Budget)
	}
	n := c.t.Nodes()
	for _, v := range q.Candidates {
		if v < 0 || v >= n {
			return core.Answer{}, bd, fmt.Errorf("cluster: candidate node %d out of range [0,%d)", v, n)
		}
	}
	parts := bd.Shards
	if parts <= 0 {
		return core.Answer{}, bd, errors.New("cluster: transport has no shards")
	}

	// Phase 1 — merge bounds, fetched concurrently. A failed probe makes
	// the shard uncuttable (+Inf) rather than failing the query: the
	// shard query itself will surface any real transport fault.
	bounds := make([]float64, parts)
	var probeWG sync.WaitGroup
	for i := 0; i < parts; i++ {
		probeWG.Add(1)
		go func(i int) {
			defer probeWG.Done()
			b, err := view.UpperBound(ctx, i, q.Aggregate)
			if err != nil {
				b = math.Inf(1)
			}
			bounds[i] = b
		}(i)
	}
	probeWG.Wait()
	bd.Messages += int64(parts)

	// Launch order: descending bound, ascending shard index among ties —
	// the shards most able to raise λ go first.
	order := make([]int, parts)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return bounds[order[a]] > bounds[order[b]] })

	// Budget slices: q.Budget splits evenly by shard index (not bound
	// order), so the split is deterministic across runs.
	budgets := partition.SplitBudget(q.Budget, parts)

	parallel := c.opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > parts {
		parallel = parts
	}

	// Phase 2 — fan out with TA cuts. All shared state below is guarded
	// by mu: the merged list, per-shard outcomes, and the cancel/cut
	// bookkeeping the λ-watcher mutates.
	type outcome struct {
		ans      core.Answer
		err      error
		dur      time.Duration
		launched bool
		cut      bool
		done     bool
	}
	var (
		mu       sync.Mutex
		list     = topk.New(q.K)
		outcomes = make([]outcome, parts)
		cancels  = make([]context.CancelFunc, parts)
		aborted  bool // a shard failed; the rest of the fan-out is moot
	)
	// cuttable reports whether shard i cannot affect the final top-k:
	// strict (<) so a shard that could still tie λ — and win the
	// smaller-id tie-break — always runs to completion.
	cuttable := func(i int) bool {
		return !c.opts.DisableCut && list.Full() && bounds[i] < list.Bound()
	}

	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for _, si := range order {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()

			mu.Lock()
			if ctx.Err() != nil || aborted {
				mu.Unlock()
				return
			}
			if cuttable(si) {
				outcomes[si] = outcome{cut: true, done: true}
				mu.Unlock()
				return
			}
			sctx, cancel := context.WithCancel(ctx)
			cancels[si] = cancel
			mu.Unlock()
			defer cancel()

			sq := q
			sq.Budget = budgets[si]
			start := time.Now()
			ans, err := view.Query(sctx, si, sq)
			dur := time.Since(start)

			mu.Lock()
			defer mu.Unlock()
			o := &outcomes[si]
			o.launched, o.dur, o.done = true, dur, true
			if err != nil {
				// A cancellation we caused — a TA cut, or collateral of
				// another shard's fatal error — is not this shard's
				// fault; a cancellation the caller caused is reported as
				// the caller's context error below.
				if (o.cut || aborted) && isContextErr(err) && ctx.Err() == nil {
					return
				}
				o.err = err
				// The merged answer can no longer be produced: stop the
				// shards still running instead of letting them finish
				// work nobody will read.
				aborted = true
				for sj := range cancels {
					oj := &outcomes[sj]
					if sj != si && !oj.done && cancels[sj] != nil {
						cancels[sj]()
					}
				}
				return
			}
			o.ans = ans
			for _, it := range ans.Results {
				list.Offer(it.Node, it.Value)
			}
			// λ may have risen: cut every launched shard that can no
			// longer contribute. Pending shards are cut at launch time,
			// when they observe the final λ themselves.
			for sj := 0; sj < parts; sj++ {
				oj := &outcomes[sj]
				if sj == si || oj.done || oj.cut || cancels[sj] == nil || !cuttable(sj) {
					continue
				}
				oj.cut = true
				cancels[sj]()
			}
		}(si)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return core.Answer{}, bd, err
	}
	merged := core.Answer{Results: list.Items()}
	for si := range outcomes {
		o := &outcomes[si]
		if o.err != nil {
			return core.Answer{}, bd, fmt.Errorf("cluster: shard %d: %w", si, o.err)
		}
		report := ShardReport{Shard: si, ElapsedUS: o.dur.Microseconds(),
			Results: len(o.ans.Results), Cut: o.cut, Launched: o.launched}
		bd.PerShard = append(bd.PerShard, report)
		if o.cut {
			bd.ShardsCut++
		}
		if o.launched {
			bd.Messages += 2 + int64(len(o.ans.Results))
		}
		s := o.ans.Stats
		merged.Stats.Evaluated += s.Evaluated
		merged.Stats.Pruned += s.Pruned
		merged.Stats.Distributed += s.Distributed
		merged.Stats.Visited += s.Visited
		merged.Truncated = merged.Truncated || o.ans.Truncated
	}
	// Fold per-shard planner decisions into one Plan for the merged
	// Answer: the lowest-index executed shard's choice, annotated with
	// the shard count (shards plan independently — their score
	// distributions differ — so the note keeps the reported plan honest).
	if q.Algorithm == core.AlgoAuto {
		for si := range outcomes {
			if p := outcomes[si].ans.Plan; p != nil {
				plan := *p
				plan.Reason = fmt.Sprintf("sharded ×%d (shard %d): %s", parts, si, plan.Reason)
				merged.Plan = &plan
				break
			}
		}
	}
	return merged, bd, nil
}

// isContextErr reports whether err is (or wraps) a context cancellation
// or deadline error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
