package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestStreamingVsWholeShard compares the two merge modes against each
// other and the single engine: streaming (within-shard cuts, the
// default) and whole-shard answers (PR 3's behavior) must both stay
// byte-identical to Engine.Run for every aggregate, algorithm, and shard
// count. The default-mode matrix is also covered by
// TestCoordinatorMatchesEngine; this test keeps the non-streaming path
// from rotting behind the flag.
func TestStreamingVsWholeShard(t *testing.T) {
	const h, k = 2, 10
	g := gen.BarabasiAlbert(700, 3, 41)
	scores := testScores(g.NumNodes(), 41)
	engine, err := core.NewEngine(g, scores, h)
	if err != nil {
		t.Fatal(err)
	}
	engine.PrepareDifferentialIndex(0)
	for _, parts := range []int{1, 2, 4, 8} {
		local, err := NewLocal(g, scores, h, parts)
		if err != nil {
			t.Fatal(err)
		}
		streaming := NewCoordinator(local, Options{})
		whole := NewCoordinator(local, Options{DisableStreaming: true})
		for _, agg := range allAggregates {
			for _, algo := range append([]core.Algorithm{core.AlgoAuto}, core.Algorithms...) {
				if !supportsAgg(algo, agg) {
					continue
				}
				q := core.Query{Algorithm: algo, K: k, Aggregate: agg}
				want, err := engine.Run(context.Background(), q)
				if err != nil {
					continue // e.g. backward needs undirected; BA is undirected, so unreachable
				}
				label := fmt.Sprintf("%v/%v/parts=%d", agg, algo, parts)
				got, bd, err := streaming.RunDetailed(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, label+"/streaming", got.Results, want.Results)
				if parts > 0 && bd.PartialBatches == 0 {
					t.Fatalf("%s: streaming run folded no partial batches", label)
				}
				gotWhole, err := whole.Run(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				assertSameResults(t, label+"/whole-shard", gotWhole.Results, want.Results)
			}
		}
	}
}

// TestBudgetRedistribution is the lost-budget-slices regression
// (pre-streaming, shards cut before launch stranded their even split of
// q.Budget): with half the shards holding zero mass and cut as soon as λ
// rises, a budgeted sharded run must still evaluate at least as many
// candidates as the single-engine run with the same budget — the cut
// shards' slices flow to the shards that still have work.
func TestBudgetRedistribution(t *testing.T) {
	// Two disconnected communities; all mass in community 0 (even ids).
	g := gen.PlantedPartition(800, 2, 0.05, 0, 9)
	scores := make([]float64, 800)
	for v := 0; v < 800; v += 2 {
		scores[v] = 0.25 + 0.75*float64(v%13)/13
	}
	engine, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewLocal(g, scores, 2, 4)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 300
	q := core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase, Budget: budget}
	want, err := engine.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.Evaluated != budget {
		t.Fatalf("single engine evaluated %d, want the full budget %d", want.Stats.Evaluated, budget)
	}

	coord := NewCoordinator(local, Options{Parallel: 1})
	ans, bd, err := coord.RunDetailed(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if bd.ShardsCut == 0 {
		t.Fatalf("skewed topology cut no shards: %+v", bd)
	}
	if bd.BudgetRedistributed == 0 {
		t.Fatal("cut shards' budget slices were not redistributed")
	}
	if ans.Stats.Evaluated < want.Stats.Evaluated {
		t.Fatalf("sharded budgeted run evaluated %d, single engine %d — budget slices were stranded",
			ans.Stats.Evaluated, want.Stats.Evaluated)
	}
}

// gatedView injects a synthetic shard 1: a tiny merge bound, and a
// stream that reports work, emits one batch, then parks until cancelled
// — the deterministic shape of a shard that gets cut mid-query.
type gatedView struct {
	QueryView
	batchFolded chan struct{} // closed once shard 1's batch was emitted
}

func (v *gatedView) UpperBound(ctx context.Context, shard int, agg core.Aggregate) (float64, error) {
	if shard == 1 {
		return 0.001, nil // above zero (not cuttable pre-λ), below any real λ
	}
	return v.QueryView.UpperBound(ctx, shard, agg)
}

func (v *gatedView) QueryStream(ctx context.Context, shard int, q core.Query,
	ctrl *StreamControl, emit func(StreamBatch)) (core.Answer, error) {
	if shard != 1 {
		// Hold the real shard back until the synthetic shard's batch is
		// in, so the orchestration — batch folded, then λ rises, then the
		// mid-query cut lands — is deterministic under any scheduler.
		select {
		case <-v.batchFolded:
		case <-ctx.Done():
			return core.Answer{}, ctx.Err()
		}
		return v.QueryView.QueryStream(ctx, shard, q, ctrl, emit)
	}
	emit(StreamBatch{Stats: core.QueryStats{Evaluated: 7, Visited: 70}})
	close(v.batchFolded)
	<-ctx.Done()
	return core.Answer{}, ctx.Err()
}

// TestCutShardPartialStatsReported is the dropped-partial-stats
// regression: a shard cancelled mid-query used to vanish from the merged
// Answer.Stats entirely. Its last streamed batch must now be accounted.
func TestCutShardPartialStatsReported(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 19)
	scores := testScores(400, 19)
	local, err := NewLocal(g, scores, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Priming off: with sketch-primed λ the synthetic shard (bound 0.001)
	// is cut before launch, and this regression is about a shard cut
	// *mid-query* — it must launch and stream its batch first.
	coord := NewCoordinator(local, Options{Parallel: 2, DisablePriming: true})
	view := &gatedView{QueryView: local.Snapshot(), batchFolded: make(chan struct{})}

	q := core.Query{K: 5, Aggregate: core.Sum, Algorithm: core.AlgoBase}
	ans, bd, err := coord.RunOn(context.Background(), view, q)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-view.batchFolded:
	default:
		t.Fatal("shard 1 never streamed its batch")
	}
	if bd.ShardsCut != 1 {
		t.Fatalf("ShardsCut = %d, want 1 (%+v)", bd.ShardsCut, bd)
	}
	r1 := bd.PerShard[1]
	if !r1.Cut || !r1.Launched {
		t.Fatalf("shard 1 report %+v, want a launched mid-query cut", r1)
	}
	if r1.Evaluated != 7 {
		t.Fatalf("shard 1 reported %d evaluated, want its partial 7", r1.Evaluated)
	}
	// The merged stats carry both the surviving shard's full work and the
	// cut shard's partial work.
	if ans.Stats.Evaluated != bd.PerShard[0].Evaluated+7 {
		t.Fatalf("merged Evaluated = %d, want %d (shard 0) + 7 (cut shard 1's partials)",
			ans.Stats.Evaluated, bd.PerShard[0].Evaluated)
	}
	if ans.Stats.Visited < 70 {
		t.Fatalf("merged Visited = %d lost the cut shard's 70", ans.Stats.Visited)
	}
}

// fakeStreamWorker serves /v1/shard/health plus a scripted
// /v1/shard/query/stream, for protocol-violation tests.
func fakeStreamWorker(t *testing.T, nodes int, stream http.HandlerFunc) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shard/health", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, wireHealth{OK: true, Shard: 0, Shards: 1, Nodes: nodes, Owned: nodes, H: 2})
	})
	mux.HandleFunc("/v1/shard/query/stream", stream)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

// streamFrames decodes the query then emits raw frames, flushed. Like
// the real handler it opts into full duplex — without it the HTTP/1.1
// server would drain the client's never-ending ack stream before the
// first response write.
func streamFrames(rw http.ResponseWriter, r *http.Request, frames ...string) {
	rc := http.NewResponseController(rw)
	_ = rc.EnableFullDuplex()
	dec := json.NewDecoder(r.Body)
	var wq wireQuery
	_ = dec.Decode(&wq)
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	for _, f := range frames {
		_, _ = rw.Write([]byte(f + "\n"))
	}
	_ = rc.Flush()
}

// drainBody blocks until the client closes its ack stream, like the real
// worker handler's request lifetime.
func drainBody(r *http.Request) {
	buf := make([]byte, 1024)
	for {
		if _, err := r.Body.Read(buf); err != nil {
			return
		}
	}
}

// TestStreamOutOfOrderSeqRejected: a gap in the frame sequence numbers
// means certified results may have been lost; the transport must refuse
// to keep merging.
func TestStreamOutOfOrderSeqRejected(t *testing.T) {
	url := fakeStreamWorker(t, 100, func(rw http.ResponseWriter, r *http.Request) {
		streamFrames(rw, r,
			`{"seq":1,"stats":{"evaluated":1,"pruned":0,"distributed":0,"visited":1}}`,
			`{"seq":3,"stats":{"evaluated":2,"pruned":0,"distributed":0,"visited":2}}`,
			`{"seq":4,"final":true,"items":[],"stats":{"evaluated":2,"pruned":0,"distributed":0,"visited":2}}`)
		drainBody(r)
	})
	tr, err := NewHTTP(context.Background(), []string{url}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = tr.QueryStream(ctx, 0, core.Query{K: 5, Aggregate: core.Sum}, &StreamControl{}, func(StreamBatch) {})
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("err = %v, want an out-of-order rejection", err)
	}
}

// killAfterFirstFrame writes a valid 200 + one NDJSON frame by hand over
// the hijacked connection, then slams it shut — a worker process dying
// mid-stream, with no terminal chunk and no final frame.
func killAfterFirstFrame(rw http.ResponseWriter, r *http.Request) {
	frame := `{"seq":1,"stats":{"evaluated":3,"pruned":0,"distributed":0,"visited":3}}` + "\n"
	conn, buf, err := rw.(http.Hijacker).Hijack()
	if err != nil {
		panic(err)
	}
	defer conn.Close()
	fmt.Fprintf(buf, "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n\r\n")
	fmt.Fprintf(buf, "%x\r\n%s\r\n", len(frame), frame)
	buf.Flush()
}

// TestStreamWorkerDiesMidStream: a worker whose connection dies before
// the final frame must surface a transport error promptly — at both the
// transport and the coordinator level — never hang the merge.
func TestStreamWorkerDiesMidStream(t *testing.T) {
	url := fakeStreamWorker(t, 100, killAfterFirstFrame)
	tr, err := NewHTTP(context.Background(), []string{url}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var folded int
	_, err = tr.QueryStream(ctx, 0, core.Query{K: 5, Aggregate: core.Sum}, &StreamControl{},
		func(StreamBatch) { folded++ })
	if err == nil || ctx.Err() != nil {
		t.Fatalf("err = %v (ctx %v), want a prompt stream-death error", err, ctx.Err())
	}
	if folded != 1 {
		t.Fatalf("folded %d batches before the death, want 1", folded)
	}

	// Coordinator level: one real worker, one that dies mid-stream. The
	// merge aborts with the transport error and terminates.
	g := gen.BarabasiAlbert(300, 3, 47)
	scores := testScores(300, 47)
	shards, _, err := BuildShards(g, scores, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	healthy := httptest.NewServer(NewWorker(shards[0]).Handler())
	t.Cleanup(healthy.Close)
	dying := httptest.NewServer(&midStreamKiller{inner: NewWorker(shards[1]).Handler()})
	t.Cleanup(dying.Close)
	tr2, err := NewHTTP(context.Background(), []string{healthy.URL, dying.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	coord := NewCoordinator(tr2, Options{})
	cctx, ccancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer ccancel()
	if _, err := coord.Run(cctx, core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase}); err == nil {
		t.Fatal("coordinator merged past a worker that died mid-stream")
	}
	if cctx.Err() != nil {
		t.Fatal("coordinator hung on the dying worker")
	}
}

// midStreamKiller proxies a real worker but aborts the stream response
// after its first frame.
type midStreamKiller struct{ inner http.Handler }

func (k *midStreamKiller) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/shard/query/stream" {
		k.inner.ServeHTTP(rw, r)
		return
	}
	killAfterFirstFrame(rw, r)
}

// TestStreamClientCancelMidStream: cancelling the caller context between
// frames tears the stream down promptly with context.Canceled, leaving
// no goroutine blocked on the open request body (the race detector and
// test timeout police the leak).
func TestStreamClientCancelMidStream(t *testing.T) {
	// Heavy enough (h=3 BFS per evaluation) that the shard query spans
	// many batches, so the cancel lands well before the final frame.
	g := gen.Collaboration(gen.DatasetScale(0.1), 53)
	scores := testScores(g.NumNodes(), 53)
	urls, _ := startWorkers(t, g, scores, 3, 2)
	tr, err := NewHTTP(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, err = tr.QueryStream(ctx, 0, core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase},
		&StreamControl{}, func(StreamBatch) { once.Do(cancel) })
	if err == nil {
		t.Fatal("cancelled stream reported success")
	}
	if err != context.Canceled {
		// The read may fail with the transport's wrapped error before the
		// context check lands; either way the context must be the cause.
		if ctx.Err() == nil {
			t.Fatalf("stream failed for a non-cancellation reason: %v", err)
		}
	}
}
