package cluster

import (
	"math"
	"sort"

	"repro/internal/core"
)

// This file implements the coordinator-side score sketches that prime the
// merge threshold λ before any shard launches. Pre-priming, every fan-out
// started with λ = −∞ and the Threshold Algorithm's stopping rule could
// only cut a shard after k results had streamed back from somewhere —
// cold shards were always launched, paying a round of messages for work
// the final answer provably never needed. A sketch is a few hundred bytes
// summarizing the raw relevance scores a shard owns; merging the sketches
// yields a certified lower bound on the global k-th *raw score*, which —
// for the self-inclusive aggregates (u ∈ S_h(u), scores in [0,1]) — is
// also a lower bound on the global k-th *aggregate* value, i.e. an
// admissible initial λ. Cold shards whose merge bound falls below it are
// cut with zero stream messages, and every launched shard starts pruning
// against a warm floor. The construction follows the sketch-at-the-
// coordinator idea of communication-efficient distributed top-k
// monitoring [Biermeier et al.]: the coordinator keeps a tiny summary per
// site and pays messages only when the data actually moves.

const (
	// sketchDigestSize is how many exact top scores a sketch retains.
	// 16 covers the common k ≤ 16 exactly; larger k falls back to the
	// histogram's bucket floors, which are coarser but still admissible.
	sketchDigestSize = 16
	// sketchBuckets is the number of log₂ histogram buckets. Bucket b
	// covers scores in (2^-(b+1), 2^-b]; the last bucket widens to
	// (0, 2^-(sketchBuckets-1)] so every positive score lands somewhere.
	sketchBuckets = 32
)

// Sketch summarizes the raw relevance scores of one shard's owned nodes:
// the top sketchDigestSize values exactly (descending), a log-bucketed
// histogram of the rest, and the count of positive scores. It is
// immutable once built and JSON-encodable, so it piggybacks on the HTTP
// transport's health, score-update, and edit responses with no extra
// round trips.
type Sketch struct {
	// Top holds the largest owned scores exactly, descending.
	Top []float64 `json:"top,omitempty"`
	// Counts[b] is the number of positive owned scores outside Top that
	// fall in log bucket b. Digest members are excluded so a merge can
	// combine exact values and bucket floors without double counting.
	Counts []int64 `json:"counts,omitempty"`
	// Scored is the total number of positive owned scores (digest
	// members included).
	Scored int64 `json:"scored"`
}

// sketchBucket maps a positive score to its log₂ bucket index.
func sketchBucket(v float64) int {
	b := int(-math.Floor(math.Log2(v)))
	// Scores in (0.5, 1] have -floor(log2 v) == 0; clamp fp edge cases
	// (v slightly above 1 is rejected by the engine, but stay defensive)
	// and the long tail into the catch-all last bucket.
	if b < 0 {
		b = 0
	}
	if b >= sketchBuckets {
		b = sketchBuckets - 1
	}
	return b
}

// sketchBucketFloor is the certified lower edge of bucket b: every score
// in the bucket is strictly greater. The catch-all last bucket's floor is
// 0, so it can never raise λ — exactly right for scores too small to
// certify anything.
func sketchBucketFloor(b int) float64 {
	if b >= sketchBuckets-1 {
		return 0
	}
	return math.Exp2(float64(-(b + 1)))
}

// BuildSketch summarizes a raw score slice (a shard's owned scores).
// Zero scores are not represented: a zero can never lower-bound a
// positive k-th value, and Count-aggregate semantics ignore them too.
func BuildSketch(scores []float64) *Sketch {
	s := &Sketch{}
	for _, v := range scores {
		if v <= 0 || math.IsNaN(v) {
			continue
		}
		s.Scored++
		if len(s.Top) < sketchDigestSize || v > s.Top[len(s.Top)-1] {
			i := sort.Search(len(s.Top), func(i int) bool { return s.Top[i] < v })
			s.Top = append(s.Top, 0)
			copy(s.Top[i+1:], s.Top[i:])
			s.Top[i] = v
			if len(s.Top) <= sketchDigestSize {
				continue
			}
			// Digest overflow: demote the evicted smallest to the histogram.
			v = s.Top[sketchDigestSize]
			s.Top = s.Top[:sketchDigestSize]
		}
		if s.Counts == nil {
			s.Counts = make([]int64, sketchBuckets)
		}
		s.Counts[sketchBucket(v)]++
	}
	return s
}

// PrimeFloor merges per-shard sketches into a certified lower bound on
// the k-th largest raw score across every summarized shard — the primed
// λ. Nil entries (shards with no sketch: a legacy worker, a failed
// refresh) contribute nothing, which only lowers the result; a lower
// bound over a subset of the population is still a lower bound, so the
// answer stays admissible. Returns 0 when fewer than k positive scores
// are summarized (no positive bound can be certified).
//
// The merge walks exact digest values and histogram bucket floors as one
// descending sequence of (value, count) evidence: "at least count nodes
// have raw score ≥ value". Accumulating counts until they reach k makes
// the value at that point a certified lower bound on the k-th largest.
func PrimeFloor(sketches []*Sketch, k int) float64 {
	if k <= 0 {
		return 0
	}
	type evidence struct {
		value float64
		count int64
	}
	var ev []evidence
	for _, s := range sketches {
		if s == nil {
			continue
		}
		for _, v := range s.Top {
			ev = append(ev, evidence{value: v, count: 1})
		}
		for b, n := range s.Counts {
			if n > 0 {
				ev = append(ev, evidence{value: sketchBucketFloor(b), count: n})
			}
		}
	}
	sort.Slice(ev, func(i, j int) bool { return ev[i].value > ev[j].value })
	var cum int64
	for _, e := range ev {
		cum += e.count
		if cum >= int64(k) {
			return e.value
		}
	}
	return 0
}

// primableAggregate reports whether a sketch-primed λ is admissible for
// agg. The argument: scores lie in [0,1] and u ∈ S_h(u), so F(u) ≥ f(u)
// pointwise — Sum and WeightedSum include the term f(u)·w(u,u) with
// w(u,u) = 1, Count is ≥ 1 ≥ f(u) whenever f(u) > 0, and Max is ≥ f(u)
// by definition. The k-th largest aggregate therefore dominates the k-th
// largest raw score, and any certified lower bound on the latter is an
// admissible λ. Avg fails the pointwise argument (dividing by the
// neighborhood size can push F(u) below f(u)), so it is never primed.
// Unknown future aggregates default to not primable.
func primableAggregate(agg core.Aggregate) bool {
	switch agg {
	case core.Sum, core.WeightedSum, core.Count, core.Max:
		return true
	}
	return false
}
