package cluster

import (
	"testing"
	"time"
)

// TestCadenceSeedsFromK: a shard's first query seeds PartialEvery from k,
// clamped into the controller's range, and the seed is sticky until an
// observation moves it.
func TestCadenceSeedsFromK(t *testing.T) {
	c := newCadence()
	if got := c.forShard(0, 100); got != 100 {
		t.Fatalf("seed for k=100 = %d, want 100", got)
	}
	// The seed is remembered per shard — a later query with a different k
	// inherits the adapted value, it does not re-seed.
	if got := c.forShard(0, 7); got != 100 {
		t.Fatalf("second query re-seeded: %d, want 100", got)
	}
	if got := c.forShard(1, 1); got != cadenceMin {
		t.Fatalf("seed for k=1 = %d, want the %d floor", got, cadenceMin)
	}
	if got := c.forShard(2, 1<<20); got != cadenceMax {
		t.Fatalf("seed for huge k = %d, want the %d ceiling", got, cadenceMax)
	}
}

// TestCadenceAdapts pins the control law: batches faster than the target
// window double the cadence, slower halve it, within the window hold —
// always clamped, and per shard independently.
func TestCadenceAdapts(t *testing.T) {
	c := newCadence()
	used := c.forShard(0, 256)

	// 10 batches in 1ms — 100µs each, below the low edge: double.
	c.observe(0, 10, time.Millisecond, used)
	if got := c.forShard(0, 256); got != 512 {
		t.Fatalf("fast batches: cadence %d, want 512", got)
	}
	// 10 batches in 1s — 100ms each, above the high edge: halve.
	c.observe(0, 10, time.Second, 512)
	if got := c.forShard(0, 256); got != 256 {
		t.Fatalf("slow batches: cadence %d, want 256", got)
	}
	// 10 batches at 1ms each — inside [500µs, 8ms]: hold.
	c.observe(0, 10, 10*time.Millisecond, 256)
	if got := c.forShard(0, 256); got != 256 {
		t.Fatalf("in-window batches moved the cadence to %d, want 256", got)
	}
	// Shard 1 is untouched by shard 0's history.
	if got := c.forShard(1, 64); got != 64 {
		t.Fatalf("shard 1 inherited shard 0's cadence: %d, want 64", got)
	}

	// Doubling saturates at the ceiling, halving at the floor.
	c.observe(0, 1000, time.Millisecond, cadenceMax)
	if got := c.forShard(0, 256); got != cadenceMax {
		t.Fatalf("doubling escaped the ceiling: %d", got)
	}
	c.observe(0, 1, time.Minute, cadenceMin)
	if got := c.forShard(0, 256); got != cadenceMin {
		t.Fatalf("halving escaped the floor: %d", got)
	}

	// Degenerate observations (no batches, no elapsed time) hold.
	c.observe(1, 0, time.Second, 64)
	c.observe(1, 10, 0, 64)
	if got := c.forShard(1, 64); got != 64 {
		t.Fatalf("degenerate observation moved the cadence to %d, want 64", got)
	}
}
