package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestGrantLedgerCumulative pins the coordinator half of the grant
// protocol: deltas come from the cumulative need, re-asking the same
// need is a no-op (retransmission-safe), and a dry pool still answers —
// advancing answered with no new grant is the denial.
func TestGrantLedgerCumulative(t *testing.T) {
	ctrl := &StreamControl{}
	ctrl.AddBudget(100)

	granted, answered := ctrl.Grant(0, 64)
	if granted != 64 || answered != 64 {
		t.Fatalf("first grant = (%d, %d), want (64, 64)", granted, answered)
	}
	// Replay of the same cumulative need must not double-grant.
	granted, answered = ctrl.Grant(0, 64)
	if granted != 64 || answered != 64 {
		t.Fatalf("replayed grant = (%d, %d), want unchanged (64, 64)", granted, answered)
	}
	// The next chunk drains the pool: 36 remain of 100.
	granted, answered = ctrl.Grant(0, 128)
	if granted != 100 || answered != 128 {
		t.Fatalf("second grant = (%d, %d), want (100, 128)", granted, answered)
	}
	// Pool dry: answered advances, granted does not — the denial.
	granted, answered = ctrl.Grant(0, 192)
	if granted != 100 || answered != 192 {
		t.Fatalf("dry-pool grant = (%d, %d), want (100, 192)", granted, answered)
	}
	if ctrl.GrantedTo(0) != 100 || ctrl.GrantedTo(1) != 0 {
		t.Fatalf("GrantedTo = (%d, %d), want (100, 0)", ctrl.GrantedTo(0), ctrl.GrantedTo(1))
	}
	if ctrl.GrantRequests() != 3 {
		t.Fatalf("GrantRequests = %d, want 3 (the replay is free)", ctrl.GrantRequests())
	}
}

// TestGrantClientDeniesAndCloses pins the worker half: an answer that
// grants nothing is a denial (TakeBudget returns 0, the engine
// truncates), and close unblocks a parked waiter the same way.
func TestGrantClientDeniesAndCloses(t *testing.T) {
	asked := make(chan int64, 4)
	gc := newGrantClient(func(cum int64) bool {
		asked <- cum
		return true
	})

	// Answer the first ask with a grant, the second with a denial.
	done := make(chan int, 2)
	go func() {
		done <- gc.TakeBudget(10)
		done <- gc.TakeBudget(10)
	}()
	if cum := <-asked; cum != grantChunk {
		t.Fatalf("first ask cum=%d, want %d", cum, grantChunk)
	}
	gc.update(grantChunk, grantChunk)
	if got := <-done; got != 10 {
		t.Fatalf("granted TakeBudget = %d, want 10", got)
	}
	// The chunk still holds 54; the second take is served locally.
	if got := <-done; got != 10 {
		t.Fatalf("locally served TakeBudget = %d, want 10", got)
	}

	// Drain the chunk, then deny the re-ask.
	if got := gc.TakeBudget(1000); got != grantChunk-20 {
		t.Fatalf("drain = %d, want %d", got, grantChunk-20)
	}
	go func() {
		done <- gc.TakeBudget(5)
	}()
	if cum := <-asked; cum != 2*grantChunk {
		t.Fatalf("second ask cum=%d, want %d", cum, 2*grantChunk)
	}
	gc.update(grantChunk, 2*grantChunk) // answered, nothing new granted
	if got := <-done; got != 0 {
		t.Fatalf("denied TakeBudget = %d, want 0", got)
	}

	// A waiter parked on an unanswered ask is unblocked by close.
	go func() {
		done <- gc.TakeBudget(5)
	}()
	<-asked
	gc.close()
	if got := <-done; got != 0 {
		t.Fatalf("closed TakeBudget = %d, want 0", got)
	}
	// And a nil client is a permanent denial, not a panic.
	var nilGC *grantClient
	if got := nilGC.TakeBudget(5); got != 0 {
		t.Fatalf("nil client TakeBudget = %d, want 0", got)
	}
	nilGC.update(1, 1)
	nilGC.close()
}

// TestHTTPBudgetedAtLeastSingleEngine closes the PR 5 regression through
// the real wire: the same skewed budgeted query that TestBudgetRedistribution
// runs in-process, but over HTTP workers — where budget used to be split
// at launch and stranded. With demand-driven grants the sharded run must
// evaluate at least as many candidates as the single engine.
func TestHTTPBudgetedAtLeastSingleEngine(t *testing.T) {
	g := gen.PlantedPartition(800, 2, 0.05, 0, 9)
	scores := make([]float64, 800)
	for v := 0; v < 800; v += 2 {
		scores[v] = 0.25 + 0.75*float64(v%13)/13
	}
	engine, err := core.NewEngine(g, scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	urls, _ := startWorkers(t, g, scores, 2, 4)
	transport, err := NewHTTP(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()
	if !transport.LiveBudget() {
		t.Fatal("HTTP transport does not report live budget — grants are wired in")
	}

	const budget = 300
	q := core.Query{K: 10, Aggregate: core.Sum, Algorithm: core.AlgoBase, Budget: budget}
	want, err := engine.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.Evaluated != budget {
		t.Fatalf("single engine evaluated %d, want the full budget %d", want.Stats.Evaluated, budget)
	}

	coord := NewCoordinator(transport, Options{Parallel: 1})
	ans, bd, err := coord.RunDetailed(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Stats.Evaluated < want.Stats.Evaluated {
		t.Fatalf("budgeted HTTP run evaluated %d, single engine %d — budget stranded on the wire",
			ans.Stats.Evaluated, want.Stats.Evaluated)
	}
	if bd.GrantRequests == 0 {
		t.Fatalf("no grant requests on a budget-starved skewed run: %+v", bd)
	}
}

// TestGrantsUnderShardCutsRace drives concurrent budgeted fan-outs over
// real workers on a skewed topology, where grants, λ acks, pre-launch
// cuts, and mid-query cuts all interleave — the shape the race detector
// watches in CI.
func TestGrantsUnderShardCutsRace(t *testing.T) {
	g := gen.PlantedPartition(400, 2, 0.05, 0, 9)
	scores := make([]float64, 400)
	for v := 0; v < 400; v += 2 {
		scores[v] = 0.25 + 0.75*float64(v%13)/13
	}
	urls, _ := startWorkers(t, g, scores, 2, 4)
	transport, err := NewHTTP(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()
	coord := NewCoordinator(transport, Options{Parallel: 4})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := core.Query{K: 5 + i, Aggregate: core.Sum, Algorithm: core.AlgoBase, Budget: 150}
			if _, err := coord.Run(context.Background(), q); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

// TestWorkerDeathMidGrant kills the stream right after the worker asks
// for budget: the coordinator must surface a transport error promptly —
// not hang waiting for frames that will never come — and the worker-side
// grant client must likewise unblock (covered by the ack-reader close).
func TestWorkerDeathMidGrant(t *testing.T) {
	url := fakeStreamWorker(t, 100, func(rw http.ResponseWriter, r *http.Request) {
		// Hijack and slam the connection shut right after the need frame —
		// a worker process dying with a grant in flight: no terminal
		// chunk, no final frame, no grant wait resolution.
		frame := `{"seq":1,"need":64}` + "\n"
		conn, buf, err := rw.(http.Hijacker).Hijack()
		if err != nil {
			panic(err)
		}
		defer conn.Close()
		fmt.Fprintf(buf, "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n\r\n")
		fmt.Fprintf(buf, "%x\r\n%s\r\n", len(frame), frame)
		buf.Flush()
	})
	transport, err := NewHTTP(context.Background(), []string{url}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()
	coord := NewCoordinator(transport, Options{})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = coord.Run(ctx, core.Query{K: 3, Aggregate: core.Sum, Algorithm: core.AlgoBase, Budget: 50})
	if err == nil {
		t.Fatal("coordinator succeeded against a worker that died mid-grant")
	}
	if ctx.Err() != nil {
		t.Fatalf("coordinator hung until the safety timeout: %v", err)
	}
	if !strings.Contains(err.Error(), "stream") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestAckCoalescingMonotone floods one QueryStream with frames faster
// than acks can flush and asserts what the worker observes: ack floors
// and sequence numbers only ever move forward, and the last ack seen
// reflects the freshest coordinator state — latest-wins, never stale.
// The fake worker holds its final frame until the ack for the last
// stats frame lands: while the stream is open the client's ack writer
// is live, so the coalescing mailbox must deliver the newest ack.
func TestAckCoalescingMonotone(t *testing.T) {
	const frames = 200
	var mu sync.Mutex
	var seen []wireStreamAck
	lastAcked := make(chan struct{})
	url := fakeStreamWorker(t, 100, func(rw http.ResponseWriter, r *http.Request) {
		rc := http.NewResponseController(rw)
		_ = rc.EnableFullDuplex()
		rw.Header().Set("Content-Type", "application/x-ndjson")
		rw.WriteHeader(http.StatusOK)
		_ = rc.Flush()
		go func() {
			dec := json.NewDecoder(r.Body)
			// Skip the query line, then collect every ack that survives
			// coalescing. The reader stops (and stops appending) as soon
			// as the freshest ack arrives, so the test can read `seen`
			// without racing once QueryStream returns.
			var q json.RawMessage
			if dec.Decode(&q) != nil {
				return
			}
			for {
				var a wireStreamAck
				if dec.Decode(&a) != nil {
					return
				}
				mu.Lock()
				seen = append(seen, a)
				fresh := a.Ack == frames
				mu.Unlock()
				if fresh {
					close(lastAcked)
					return
				}
			}
		}()
		enc := json.NewEncoder(rw)
		for seq := uint64(1); seq <= frames; seq++ {
			_ = enc.Encode(wireStreamFrame{Seq: seq, Stats: core.QueryStats{Evaluated: 1}})
			_ = rc.Flush()
		}
		<-lastAcked
		_ = enc.Encode(wireStreamFrame{Seq: frames + 1, Final: true, Items: []core.Result{}})
		_ = rc.Flush()
		drainBody(r)
	})
	transport, err := NewHTTP(context.Background(), []string{url}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Close()

	ctrl := &StreamControl{}
	q := core.Query{K: 3, Aggregate: core.Sum, Algorithm: core.AlgoBase}
	raised := 0
	_, err = transport.QueryStream(context.Background(), 0, q, ctrl, func(b StreamBatch) {
		// Tighten λ on every frame so coalesced acks have fresh state to
		// carry.
		raised++
		ctrl.Raise(float64(raised) / frames)
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("worker saw no acks at all")
	}
	var last wireStreamAck
	for _, a := range seen {
		if a.Ack < last.Ack || a.Floor < last.Floor || a.Granted < last.Granted || a.Answered < last.Answered {
			t.Fatalf("ack went backwards: %+v after %+v", a, last)
		}
		last = a
	}
	if last.Ack != frames || last.Floor != ctrl.Floor() {
		t.Fatalf("final coalesced ack %+v, coordinator floor %v — stale state won", last, ctrl.Floor())
	}
}
