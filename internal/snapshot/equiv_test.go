// Equivalence: an engine over a mmap-ed snapshot must be
// indistinguishable from an engine over the graph it was written from —
// not approximately, but byte-for-byte: the same result nodes in the
// same order, bit-identical float values, identical tie-breaks, and
// identical work counters (Stats.Evaluated et al.), across the full
// algorithm × aggregate × k matrix, single-engine and sharded. Anything
// less means the snapshot path changed visit order or float summation
// order somewhere, and cached answers would go stale across a
// snapshot-boot restart.
//
// This lives in an external test package because cluster imports
// snapshot; package snapshot itself cannot import cluster back.
package snapshot_test

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/relevance"
	"repro/internal/snapshot"
)

const (
	equivScale = 0.04 // ~1600 nodes: big enough for real pruning, fast enough for -race
	equivSeed  = 20100301
	equivH     = 2
)

func equivDataset(t testing.TB) (*graph.Graph, []float64) {
	t.Helper()
	g := gen.Collaboration(gen.DatasetScale(equivScale), equivSeed)
	scores := relevance.Mixture(g, relevance.MixtureParams{BlackingRatio: 0.01}, equivSeed+1)
	return g, scores
}

// equivMatrix is the full query surface both engines must agree on.
func equivMatrix() []core.Query {
	algos := []core.Algorithm{
		core.AlgoAuto, core.AlgoBase, core.AlgoBaseParallel, core.AlgoForward,
		core.AlgoBackwardNaive, core.AlgoBackward, core.AlgoForwardDist,
	}
	aggs := []core.Aggregate{core.Sum, core.Avg, core.WeightedSum, core.Count, core.Max}
	ks := []int{1, 10}
	var qs []core.Query
	for _, algo := range algos {
		for _, agg := range aggs {
			for _, k := range ks {
				qs = append(qs, core.Query{Algorithm: algo, Aggregate: agg, K: k})
			}
		}
	}
	return qs
}

func queryName(q core.Query) string {
	return fmt.Sprintf("%v/%v/k=%d", q.Algorithm, q.Aggregate, q.K)
}

// requireSameAnswer fails unless got is byte-identical to want: node
// order, float bits, truncation, and every work counter.
func requireSameAnswer(t *testing.T, want, got core.Answer) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("result count: got %d, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if g.Node != w.Node || math.Float64bits(g.Value) != math.Float64bits(w.Value) {
			t.Fatalf("result[%d]: got node %d value %x, want node %d value %x",
				i, g.Node, math.Float64bits(g.Value), w.Node, math.Float64bits(w.Value))
		}
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats: got %+v, want %+v", got.Stats, want.Stats)
	}
	if got.Truncated != want.Truncated {
		t.Fatalf("truncated: got %v, want %v", got.Truncated, want.Truncated)
	}
}

// TestSnapshotEngineEquivalence runs the matrix on an engine built from
// the in-memory graph and on an engine whose graph, scores, and N(v)
// index are externally-owned slices into a mmap-ed snapshot.
func TestSnapshotEngineEquivalence(t *testing.T) {
	g, scores := equivDataset(t)

	built, err := core.NewEngine(g, scores, equivH)
	if err != nil {
		t.Fatal(err)
	}
	built.PrepareNeighborhoodIndex(0)

	path := filepath.Join(t.TempDir(), "equiv.snap")
	w, err := snapshot.NewWriter(g, scores, equivH, graph.BuildNeighborhoodIndex(g, equivH, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	r, err := snapshot.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	mapped, err := core.NewEngine(r.Graph(), r.Scores(), r.H())
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.AdoptNeighborhoodIndex(r.Index()); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for _, q := range equivMatrix() {
		t.Run(queryName(q), func(t *testing.T) {
			want, errB := built.Run(ctx, q)
			got, errS := mapped.Run(ctx, q)
			if (errB == nil) != (errS == nil) {
				t.Fatalf("error mismatch: built=%v snapshot=%v", errB, errS)
			}
			if errB != nil {
				// Unsupported combination (e.g. Forward×Max): both engines
				// must reject it the same way.
				if errB.Error() != errS.Error() {
					t.Fatalf("error text: built=%q snapshot=%q", errB, errS)
				}
				return
			}
			requireSameAnswer(t, want, got)
		})
	}
}

// TestSnapshotShardedEquivalence does the same through the sharded path:
// a coordinator over shards rebuilt from per-shard snapshots must merge
// to byte-identical answers against a coordinator over shards built
// directly from the full graph, at P ∈ {2, 4}. Parallel=1 with the TA
// cut and streaming off makes the merge schedule deterministic, so the
// aggregated work counters are comparable exactly.
func TestSnapshotShardedEquivalence(t *testing.T) {
	g, scores := equivDataset(t)
	opts := cluster.Options{Parallel: 1, DisableCut: true, DisableStreaming: true}

	for _, parts := range []int{2, 4} {
		t.Run(fmt.Sprintf("P=%d", parts), func(t *testing.T) {
			builtShards, p, err := cluster.BuildShards(g, scores, equivH, parts)
			if err != nil {
				t.Fatal(err)
			}
			edgeCut := p.EdgeCut(g)
			builtLocal := cluster.NewLocalFromShards(builtShards, g.NumNodes(), edgeCut)
			builtLocal.PrepareIndexes(0)
			builtCoord := cluster.NewCoordinator(builtLocal, opts)

			// Write each shard's closure, reopen via mmap, and rebuild the
			// shard set purely from the mapped bytes.
			dir := t.TempDir()
			mappedShards := make([]*cluster.Shard, parts)
			for i, s := range builtShards {
				path := filepath.Join(dir, fmt.Sprintf("equiv.snap.shard%d", i))
				if err := cluster.WriteShardSnapshot(s, path, 0); err != nil {
					t.Fatal(err)
				}
				r, err := snapshot.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				defer r.Close()
				if mappedShards[i], err = cluster.ShardFromSnapshot(r); err != nil {
					t.Fatal(err)
				}
			}
			mappedLocal := cluster.NewLocalFromShards(mappedShards, g.NumNodes(), edgeCut)
			mappedCoord := cluster.NewCoordinator(mappedLocal, opts)

			ctx := context.Background()
			for _, q := range equivMatrix() {
				t.Run(queryName(q), func(t *testing.T) {
					want, errB := builtCoord.Run(ctx, q)
					got, errS := mappedCoord.Run(ctx, q)
					if (errB == nil) != (errS == nil) {
						t.Fatalf("error mismatch: built=%v snapshot=%v", errB, errS)
					}
					if errB != nil {
						if errB.Error() != errS.Error() {
							t.Fatalf("error text: built=%q snapshot=%q", errB, errS)
						}
						return
					}
					requireSameAnswer(t, want, got)
				})
			}
		})
	}
}
