//go:build !unix

package snapshot

import (
	"fmt"
	"os"
)

// Open reads the snapshot file at path into memory and decodes it. On
// platforms without mmap support the whole file is read once; the
// Reader's slices view that buffer, so the loading cost is a single
// sequential read plus validation — still no graph or index rebuild.
func Open(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	r, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	r.path = path
	r.mtime = st.ModTime()
	return r, nil
}

func munmap([]byte) error { return nil }
