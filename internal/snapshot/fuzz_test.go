package snapshot

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzSnapshot drives Decode with arbitrary bytes. The invariants:
//
//  1. Decode never panics, whatever the input.
//  2. If Decode accepts the input, re-encoding the decoded snapshot
//     reproduces the input byte for byte (the format is canonical), and
//     the decoded graph passes the constructors' structural validation
//     by construction — corruption can produce an error, never a wrong
//     graph.
//
// The seed corpus holds valid encodings of every snapshot shape
// (directed/undirected, with/without index, shard, empty) so the fuzzer
// starts from accepting inputs and mutates toward the rejection
// boundary.
func FuzzSnapshot(f *testing.F) {
	seed := func(n, edges int, directed bool, h int, withIndex, asShard bool) {
		g, scores, ix := testGraph(f, n, edges, directed, h)
		if !withIndex {
			ix = nil
		}
		w, err := NewWriter(g, scores, h, ix)
		if err != nil {
			f.Fatal(err)
		}
		w.SetGeneration(uint64(n))
		if asShard {
			toGlobal := make([]int32, g.NumNodes())
			for i := range toGlobal {
				toGlobal[i] = int32(i + 3)
			}
			owned := toGlobal[:len(toGlobal)/2]
			if err := w.SetShard(3, 1, g.NumNodes()+10, toGlobal, owned); err != nil {
				f.Fatal(err)
			}
		}
		blob, err := w.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	seed(8, 20, false, 2, true, false)
	seed(6, 14, true, 1, true, false)
	seed(5, 10, false, 2, false, false)
	seed(7, 16, false, 2, true, true)
	seed(0, 0, false, 0, true, false)
	f.Add([]byte(Magic))
	f.Add(bytes.Repeat([]byte{0}, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Decode(data)
		if err != nil {
			return // rejected cleanly
		}
		// Accepted: the decode must be lossless and canonical.
		w, err := NewWriter(r.Graph(), r.Scores(), r.H(), r.Index())
		if err != nil {
			t.Fatalf("accepted snapshot cannot be re-written: %v", err)
		}
		w.SetGeneration(r.Generation())
		if r.IsShard() {
			if err := w.SetShard(r.Parts(), r.ShardIndex(), r.GlobalNodes(), r.ToGlobal(), r.Owned()); err != nil {
				t.Fatalf("accepted shard snapshot cannot be re-written: %v", err)
			}
		}
		again, err := w.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("encode(decode(x)) differs from x: %d vs %d bytes", len(again), len(data))
		}
		// The decoded graph must uphold CSR invariants end to end.
		offsets, adj := r.Graph().Arrays()
		if _, err := graph.FromArrays(r.Graph().Directed(), offsets, adj); err != nil {
			t.Fatalf("decoded graph fails validation: %v", err)
		}
	})
}
