package snapshot

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// testGraph builds a deterministic random graph plus scores and its h-hop
// index.
func testGraph(t testing.TB, n, edges int, directed bool, h int) (*graph.Graph, []float64, *graph.NeighborhoodIndex) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)*1e6 + int64(edges)))
	b := graph.NewBuilder(n, directed)
	for i := 0; i < edges; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(u, v)
	}
	g := b.Build()
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	return g, scores, graph.BuildNeighborhoodIndex(g, h, 1)
}

// reencode reconstructs the byte encoding from a decoded Reader, proving
// the decode lost nothing.
func reencode(t testing.TB, r *Reader) []byte {
	t.Helper()
	w, err := NewWriter(r.Graph(), r.Scores(), r.H(), r.Index())
	if err != nil {
		t.Fatalf("NewWriter from decoded reader: %v", err)
	}
	w.SetGeneration(r.Generation())
	if r.IsShard() {
		if err := w.SetShard(r.Parts(), r.ShardIndex(), r.GlobalNodes(), r.ToGlobal(), r.Owned()); err != nil {
			t.Fatalf("SetShard from decoded reader: %v", err)
		}
	}
	blob, err := w.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	return blob
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		n, edges int
		directed bool
		h        int
		noIndex  bool
	}{
		{"undirected", 200, 600, false, 2, false},
		{"directed", 150, 500, true, 2, false},
		{"no-index", 100, 300, false, 1, true},
		{"h0", 50, 100, false, 0, false},
		{"empty", 0, 0, false, 2, false},
		{"edgeless", 10, 0, false, 2, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, scores, ix := testGraph(t, tc.n, tc.edges, tc.directed, tc.h)
			if tc.noIndex {
				ix = nil
			}
			w, err := NewWriter(g, scores, tc.h, ix)
			if err != nil {
				t.Fatal(err)
			}
			w.SetGeneration(42)
			blob, err := w.Encode()
			if err != nil {
				t.Fatal(err)
			}
			r, err := Decode(blob)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if r.Graph().NumNodes() != g.NumNodes() || r.Graph().NumArcs() != g.NumArcs() {
				t.Fatalf("decoded %d nodes/%d arcs, want %d/%d",
					r.Graph().NumNodes(), r.Graph().NumArcs(), g.NumNodes(), g.NumArcs())
			}
			if r.Graph().Directed() != tc.directed {
				t.Fatalf("directed = %v, want %v", r.Graph().Directed(), tc.directed)
			}
			if r.H() != tc.h || r.Generation() != 42 || r.IsShard() {
				t.Fatalf("meta mismatch: h=%d gen=%d shard=%v", r.H(), r.Generation(), r.IsShard())
			}
			for u := 0; u < g.NumNodes(); u++ {
				if !bytes.Equal(int32Bytes(g.Neighbors(u)), int32Bytes(r.Graph().Neighbors(u))) {
					t.Fatalf("adjacency of node %d differs", u)
				}
			}
			for v, s := range scores {
				if r.Scores()[v] != s {
					t.Fatalf("score[%d] = %v, want %v", v, r.Scores()[v], s)
				}
			}
			if ix == nil {
				if r.Index() != nil {
					t.Fatal("decoded an index that was never written")
				}
			} else {
				for v := range ix.Size {
					if r.Index().Size[v] != ix.Size[v] {
						t.Fatalf("N(%d) = %d, want %d", v, r.Index().Size[v], ix.Size[v])
					}
				}
			}
			if again := reencode(t, r); !bytes.Equal(again, blob) {
				t.Fatal("encode(decode(blob)) != blob")
			}
		})
	}
}

func TestShardRoundTrip(t *testing.T) {
	g, scores, ix := testGraph(t, 120, 400, false, 2)
	// Fake a closure: the "shard" holds all nodes of g embedded into a
	// larger 500-node global space at even positions, owning a prefix.
	toGlobal := make([]int32, g.NumNodes())
	for i := range toGlobal {
		toGlobal[i] = int32(2 * i)
	}
	owned := toGlobal[:40]
	w, err := NewWriter(g, scores, 2, ix)
	if err != nil {
		t.Fatal(err)
	}
	w.SetGeneration(7)
	if err := w.SetShard(4, 1, 500, toGlobal, owned); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !r.IsShard() || r.Parts() != 4 || r.ShardIndex() != 1 || r.GlobalNodes() != 500 {
		t.Fatalf("shard meta mismatch: %v %d/%d global=%d", r.IsShard(), r.ShardIndex(), r.Parts(), r.GlobalNodes())
	}
	if !bytes.Equal(int32Bytes(r.ToGlobal()), int32Bytes(toGlobal)) {
		t.Fatal("toGlobal differs")
	}
	if !bytes.Equal(int32Bytes(r.Owned()), int32Bytes(owned)) {
		t.Fatal("owned differs")
	}
	if again := reencode(t, r); !bytes.Equal(again, blob) {
		t.Fatal("encode(decode(blob)) != blob")
	}
}

func TestOpenMmap(t *testing.T) {
	g, scores, ix := testGraph(t, 300, 900, false, 2)
	w, err := NewWriter(g, scores, 2, ix)
	if err != nil {
		t.Fatal(err)
	}
	w.SetGeneration(3)
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Path() != path || r.ModTime().IsZero() {
		t.Fatalf("source info not populated: path=%q mtime=%v", r.Path(), r.ModTime())
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != st.Size() {
		t.Fatalf("Size() = %d, want %d", r.Size(), st.Size())
	}
	if r.Graph().NumNodes() != g.NumNodes() || r.Generation() != 3 {
		t.Fatalf("decoded %d nodes gen %d", r.Graph().NumNodes(), r.Generation())
	}
	sum := 0.0
	for _, s := range r.Scores() {
		sum += s
	}
	want := 0.0
	for _, s := range scores {
		want += s
	}
	if sum != want {
		t.Fatalf("score sum over mmap = %v, want %v", sum, want)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	g, scores, ix := testGraph(t, 60, 200, false, 2)
	w, err := NewWriter(g, scores, 2, ix)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Every truncation must fail cleanly.
	for _, cut := range []int{0, 1, headerSize - 1, headerSize, len(blob) / 2, len(blob) - 1} {
		if _, err := Decode(blob[:cut]); err == nil {
			t.Fatalf("Decode accepted a %d-byte truncation of a %d-byte snapshot", cut, len(blob))
		}
	}
	// Every single-byte flip must fail cleanly (padding included: the
	// canonical-layout check catches what the CRCs don't cover).
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("Decode accepted a bit flip at byte %d", i)
		}
	}
	// And through the file path.
	path := filepath.Join(dir, "bad.snap")
	mut := append([]byte(nil), blob...)
	mut[len(mut)-3] ^= 0x01
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

func TestWriterRejectsBadInput(t *testing.T) {
	g, scores, ix := testGraph(t, 20, 40, false, 2)
	if _, err := NewWriter(nil, nil, 2, nil); err == nil {
		t.Fatal("NewWriter accepted a nil graph")
	}
	if _, err := NewWriter(g, scores[:10], 2, nil); err == nil {
		t.Fatal("NewWriter accepted a short score vector")
	}
	if _, err := NewWriter(g, scores, -1, nil); err == nil {
		t.Fatal("NewWriter accepted a negative hop radius")
	}
	if _, err := NewWriter(g, scores, 3, ix); err == nil {
		t.Fatal("NewWriter accepted an index with mismatched h")
	}
	w, err := NewWriter(g, scores, 2, ix)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetShard(0, 0, 20, nil, nil); err == nil {
		t.Fatal("SetShard accepted zero parts")
	}
	if err := w.SetShard(2, 0, 10, nil, nil); err == nil {
		t.Fatal("SetShard accepted globalNodes below the closure size")
	}
}
