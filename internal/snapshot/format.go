// Package snapshot defines the versioned binary columnar snapshot format
// for LONA graphs and the zero-copy loader over it.
//
// A snapshot file is the on-disk artifact every serving process boots
// from: the CSR arrays, the per-node scores, and the precomputed h-hop
// neighborhood index, laid out as raw little-endian columns that can be
// handed to the engine directly out of an mmap-ed file — no parsing, no
// copying, no index rebuild. Cold start becomes O(validation scan)
// instead of O(graph generation + index construction).
//
// # File layout
//
//	offset size  field
//	0      8     magic "LONASNAP"
//	8      4     version (uint32, currently 1)
//	12     4     flags   (bit 0 directed, bit 1 shard)
//	16     8     nodes   (uint64; closure-local count for shard snapshots)
//	24     8     arcs    (uint64)
//	32     4     h       (uint32 hop radius of the index section)
//	36     4     section count (uint32)
//	40     8     generation (uint64 score generation)
//	48     4     parts       (uint32; shard snapshots only, else 0)
//	52     4     shard index (uint32; shard snapshots only, else 0)
//	56     8     global nodes (uint64; == nodes for whole-graph snapshots)
//	64     4     table CRC  (CRC-32C of the section table bytes)
//	68     4     header CRC (CRC-32C of bytes [0,68))
//	72     24    zero padding to 96
//	96     32×N  section table
//	...          section payloads, each 64-byte aligned
//
// Each section-table entry is 32 bytes:
//
//	offset size  field
//	0      4     kind (uint32)
//	4      4     payload CRC-32C
//	8      8     payload file offset (uint64, 64-byte aligned)
//	16     8     payload length in bytes (uint64)
//	24     8     reserved (zero)
//
// Section kinds and their payloads (all little-endian, fixed-width):
//
//	1  offsets   int64 × nodes+1   CSR row offsets
//	2  adj       int32 × arcs      CSR arc targets
//	3  scores    float64 × nodes   node relevance scores in [0,1]
//	4  index     int32 × nodes     NeighborhoodIndex.Size for hop radius h
//	5  toGlobal  int32 × nodes     shard-local id -> global id (monotone)
//	6  owned     int32 × owned     global ids ranked by this shard, ascending
//
// Sections 1–3 are mandatory; 4 is optional (a snapshot without it forces
// an index rebuild at load); 5–6 are mandatory exactly when the shard
// flag is set.
//
// # Integrity
//
// Every byte of the file is covered by a CRC-32C (Castagnoli): the header
// by the header CRC, the section table by the table CRC, and each payload
// by its table entry's CRC. Decode verifies all of them plus full
// structural validation (monotone offsets, sorted in-range adjacency,
// finite scores in [0,1], index sizes in [1,n]) before handing out a
// graph, so a truncated or bit-flipped file fails cleanly — it can never
// yield a wrong graph.
//
// # Versioning policy
//
// The version field is bumped on any incompatible layout change; readers
// reject versions they do not know. Additive changes (new optional
// section kinds) do not bump the version: unknown kinds are rejected by
// this reader, so new-format files written with new sections are only
// readable by new readers, while old files remain readable forever.
package snapshot

import "hash/crc32"

// Magic identifies a LONA snapshot file.
const Magic = "LONASNAP"

// Version is the current format version written by this package.
const Version = 1

const (
	headerSize   = 96
	tableEntrySz = 32
	sectionAlign = 64

	flagDirected = 1 << 0
	flagShard    = 1 << 1
)

// Section kinds.
const (
	kindOffsets  = 1
	kindAdj      = 2
	kindScores   = 3
	kindIndex    = 4
	kindToGlobal = 5
	kindOwned    = 6

	maxKind = kindOwned
)

// maxNodes bounds the node count: ids must fit in int32 (CSR adjacency is
// int32), and one more than the count must be addressable.
const maxNodes = 1<<31 - 2

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// align64 rounds n up to the next multiple of sectionAlign.
func align64(n int) int { return (n + sectionAlign - 1) &^ (sectionAlign - 1) }
