package snapshot

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// hostLittle reports whether the running host is little-endian — the
// format's on-disk byte order. On such hosts (every platform this repo
// targets) column reads and writes are pointer reinterpretations; on
// big-endian hosts the code paths below fall back to element-wise
// conversion so the format stays portable.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

// sliceBytes reinterprets a fixed-width numeric slice as its raw bytes.
func sliceBytes[T int32 | int64 | float64](v []T) []byte {
	if len(v) == 0 {
		return nil
	}
	var zero T
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*int(unsafe.Sizeof(zero)))
}

// aligned reports whether b's backing array starts at a multiple of n.
// mmap regions are page-aligned and all sections sit at 64-byte file
// offsets, so views over a mapped file always pass; Decode over an
// arbitrary in-memory slice (tests, fuzzing) may not, and then the view
// helpers copy instead.
func aligned(b []byte, n uintptr) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%n == 0
}

// int64View interprets b as little-endian int64s, zero-copy when the
// host layout permits.
func int64View(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && aligned(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// int32View interprets b as little-endian int32s, zero-copy when the
// host layout permits.
func int32View(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && aligned(b, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// float64View interprets b as little-endian float64s, zero-copy when the
// host layout permits.
func float64View(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittle && aligned(b, 8) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
