package snapshot

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/graph"
)

// Reader is a decoded snapshot: a validated graph, its scores, and (when
// present) its neighborhood index, all viewing the snapshot's backing
// bytes directly. When the Reader comes from Open those bytes are an
// mmap-ed file — Close unmaps it, after which every slice handed out by
// the Reader is invalid. Readers decoded from an in-memory buffer alias
// that buffer and Close is a no-op.
type Reader struct {
	g      *graph.Graph
	scores []float64
	ix     *graph.NeighborhoodIndex

	h          int
	generation uint64

	shard       bool
	parts       int
	shardIndex  int
	globalNodes int
	toGlobal    []int32
	owned       []int32

	path  string
	size  int64
	mtime time.Time

	mapped []byte
}

// Graph returns the snapshot's graph. The graph aliases the snapshot's
// backing bytes; it must not outlive Close.
func (r *Reader) Graph() *graph.Graph { return r.g }

// Scores returns the per-node relevance scores, aliasing the backing
// bytes. Callers must treat the slice as read-only.
func (r *Reader) Scores() []float64 { return r.scores }

// Index returns the snapshot's neighborhood index, or nil when the
// snapshot was written without one.
func (r *Reader) Index() *graph.NeighborhoodIndex { return r.ix }

// H returns the hop radius the snapshot was taken at.
func (r *Reader) H() int { return r.h }

// Generation returns the score generation stamped at write time.
func (r *Reader) Generation() uint64 { return r.generation }

// IsShard reports whether the snapshot holds one shard's partition
// closure rather than a whole graph.
func (r *Reader) IsShard() bool { return r.shard }

// Parts returns the partition count for a shard snapshot (0 otherwise).
func (r *Reader) Parts() int { return r.parts }

// ShardIndex returns which part a shard snapshot holds (0 otherwise).
func (r *Reader) ShardIndex() int { return r.shardIndex }

// GlobalNodes returns the node count of the full graph the snapshot was
// cut from; for a whole-graph snapshot it equals Graph().NumNodes().
func (r *Reader) GlobalNodes() int { return r.globalNodes }

// ToGlobal returns the shard's local→global id map (nil for whole-graph
// snapshots). Read-only, aliases the backing bytes.
func (r *Reader) ToGlobal() []int32 { return r.toGlobal }

// Owned returns the global ids a shard snapshot ranks (nil for
// whole-graph snapshots). Read-only, aliases the backing bytes.
func (r *Reader) Owned() []int32 { return r.owned }

// Path returns the file the Reader was opened from ("" for Decode).
func (r *Reader) Path() string { return r.path }

// Size returns the snapshot's size in bytes.
func (r *Reader) Size() int64 { return r.size }

// ModTime returns the snapshot file's modification time (zero for
// Decode).
func (r *Reader) ModTime() time.Time { return r.mtime }

// Close releases the underlying mapping, if any. Every slice obtained
// from the Reader — including the graph and index — is invalid after
// Close returns.
func (r *Reader) Close() error {
	m := r.mapped
	r.mapped = nil
	if m == nil {
		return nil
	}
	return munmap(m)
}

// Decode validates data as a snapshot and returns a Reader whose graph,
// scores, and index view data in place (zero-copy on little-endian
// hosts). Validation is exhaustive: magic, version, all three CRC
// layers, canonical layout, and full structural checks — a corrupt input
// produces an error, never a wrong graph.
//
// Decode only accepts canonical encodings: sections in kind order at
// exactly the offsets Encode assigns, zero padding, no trailing bytes.
// Consequently re-encoding a decoded snapshot reproduces the input
// byte for byte.
func Decode(data []byte) (*Reader, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("snapshot: %d bytes is smaller than the %d-byte header", len(data), headerSize)
	}
	if string(data[0:8]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", data[0:8])
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (reader knows %d)", v, Version)
	}
	if got, want := le.Uint32(data[68:]), crc(data[:68]); got != want {
		return nil, fmt.Errorf("snapshot: header CRC mismatch (%08x != %08x)", got, want)
	}
	for _, b := range data[72:headerSize] {
		if b != 0 {
			return nil, fmt.Errorf("snapshot: nonzero header padding")
		}
	}

	flags := le.Uint32(data[12:])
	if flags&^uint32(flagDirected|flagShard) != 0 {
		return nil, fmt.Errorf("snapshot: unknown flags %#x", flags)
	}
	directed := flags&flagDirected != 0
	shard := flags&flagShard != 0

	nodes64 := le.Uint64(data[16:])
	arcs64 := le.Uint64(data[24:])
	if nodes64 > maxNodes {
		return nil, fmt.Errorf("snapshot: node count %d exceeds format limit %d", nodes64, maxNodes)
	}
	if arcs64 > uint64(len(data)) {
		return nil, fmt.Errorf("snapshot: arc count %d exceeds file size", arcs64)
	}
	n := int(nodes64)
	arcs := int(arcs64)
	h := int(le.Uint32(data[32:]))
	count := int(le.Uint32(data[36:]))
	generation := le.Uint64(data[40:])
	parts := int(le.Uint32(data[48:]))
	shardIndex := int(le.Uint32(data[52:]))
	globalNodes64 := le.Uint64(data[56:])
	if globalNodes64 > maxNodes {
		return nil, fmt.Errorf("snapshot: global node count %d exceeds format limit %d", globalNodes64, maxNodes)
	}
	globalNodes := int(globalNodes64)

	if count < 3 || count > maxKind {
		return nil, fmt.Errorf("snapshot: section count %d out of range [3,%d]", count, maxKind)
	}
	tableEnd := headerSize + count*tableEntrySz
	if tableEnd > len(data) {
		return nil, fmt.Errorf("snapshot: section table extends past end of file")
	}
	table := data[headerSize:tableEnd]
	if got, want := le.Uint32(data[64:]), crc(table); got != want {
		return nil, fmt.Errorf("snapshot: section table CRC mismatch (%08x != %08x)", got, want)
	}

	// Walk the table, enforcing canonical layout: strictly ascending
	// kinds, payloads exactly where the encoder places them, zero
	// padding in the gaps, no trailing bytes.
	sections := make(map[uint32][]byte, count)
	expectOff := align64(tableEnd)
	prevKind := uint32(0)
	for i := 0; i < count; i++ {
		entry := table[i*tableEntrySz:]
		kind := le.Uint32(entry[0:])
		sum := le.Uint32(entry[4:])
		off64 := le.Uint64(entry[8:])
		length64 := le.Uint64(entry[16:])
		if rsvd := le.Uint64(entry[24:]); rsvd != 0 {
			return nil, fmt.Errorf("snapshot: nonzero reserved field in section %d", i)
		}
		if kind == 0 || kind > maxKind {
			return nil, fmt.Errorf("snapshot: unknown section kind %d", kind)
		}
		if kind <= prevKind {
			return nil, fmt.Errorf("snapshot: section kinds not strictly ascending (%d after %d)", kind, prevKind)
		}
		prevKind = kind
		if off64 != uint64(expectOff) {
			return nil, fmt.Errorf("snapshot: section kind %d at offset %d, canonical layout requires %d", kind, off64, expectOff)
		}
		if length64 > uint64(len(data))-off64 {
			return nil, fmt.Errorf("snapshot: section kind %d (%d bytes at %d) extends past end of file", kind, length64, off64)
		}
		payload := data[off64 : off64+length64]
		if got := crc(payload); got != sum {
			return nil, fmt.Errorf("snapshot: section kind %d CRC mismatch (%08x != %08x)", kind, got, sum)
		}
		sections[kind] = payload
		expectOff = align64(int(off64) + int(length64))
	}
	if expectOff != len(data) {
		return nil, fmt.Errorf("snapshot: file is %d bytes, canonical layout requires %d", len(data), expectOff)
	}
	// Padding between the aligned regions must be zero for the encoding
	// to be canonical (CRCs do not cover it).
	pad := func(lo, hi int) error {
		for _, b := range data[lo:hi] {
			if b != 0 {
				return fmt.Errorf("snapshot: nonzero padding in [%d,%d)", lo, hi)
			}
		}
		return nil
	}
	if err := pad(tableEnd, align64(tableEnd)); err != nil {
		return nil, err
	}
	for i := 0; i < count; i++ {
		entry := table[i*tableEntrySz:]
		end := int(le.Uint64(entry[8:])) + int(le.Uint64(entry[16:]))
		if err := pad(end, align64(end)); err != nil {
			return nil, err
		}
	}

	// Required and conditional sections, with exact length checks.
	need := func(kind uint32, name string, want int) ([]byte, error) {
		p, ok := sections[kind]
		if !ok {
			return nil, fmt.Errorf("snapshot: missing %s section", name)
		}
		if len(p) != want {
			return nil, fmt.Errorf("snapshot: %s section is %d bytes, want %d", name, len(p), want)
		}
		return p, nil
	}
	offsetsRaw, err := need(kindOffsets, "offsets", (n+1)*8)
	if err != nil {
		return nil, err
	}
	adjRaw, err := need(kindAdj, "adj", arcs*4)
	if err != nil {
		return nil, err
	}
	scoresRaw, err := need(kindScores, "scores", n*8)
	if err != nil {
		return nil, err
	}
	var indexRaw []byte
	if _, ok := sections[kindIndex]; ok {
		if indexRaw, err = need(kindIndex, "index", n*4); err != nil {
			return nil, err
		}
	}
	var toGlobalRaw, ownedRaw []byte
	if shard {
		if parts <= 0 || shardIndex < 0 || shardIndex >= parts {
			return nil, fmt.Errorf("snapshot: shard %d of %d out of range", shardIndex, parts)
		}
		if globalNodes < n {
			return nil, fmt.Errorf("snapshot: global node count %d below closure size %d", globalNodes, n)
		}
		if toGlobalRaw, err = need(kindToGlobal, "toGlobal", n*4); err != nil {
			return nil, err
		}
		var ok bool
		if ownedRaw, ok = sections[kindOwned]; !ok {
			return nil, fmt.Errorf("snapshot: missing owned section")
		}
		if len(ownedRaw)%4 != 0 || len(ownedRaw) > n*4 {
			return nil, fmt.Errorf("snapshot: owned section is %d bytes, want a multiple of 4 at most %d", len(ownedRaw), n*4)
		}
	} else {
		if parts != 0 || shardIndex != 0 {
			return nil, fmt.Errorf("snapshot: whole-graph snapshot with shard fields %d/%d", parts, shardIndex)
		}
		if globalNodes != n {
			return nil, fmt.Errorf("snapshot: whole-graph snapshot with global node count %d != %d", globalNodes, n)
		}
		if _, ok := sections[kindToGlobal]; ok {
			return nil, fmt.Errorf("snapshot: whole-graph snapshot with toGlobal section")
		}
		if _, ok := sections[kindOwned]; ok {
			return nil, fmt.Errorf("snapshot: whole-graph snapshot with owned section")
		}
	}

	// Structural validation through the graph constructors: a snapshot
	// whose CRCs pass but whose content violates CSR or index invariants
	// (a writer bug, not bit rot) is still rejected.
	g, err := graph.FromArrays(directed, int64View(offsetsRaw), int32View(adjRaw))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	scores := float64View(scoresRaw)
	for v, s := range scores {
		if !(s >= 0 && s <= 1) { // NaN fails both comparisons
			return nil, fmt.Errorf("snapshot: score[%d] = %v outside [0,1]", v, s)
		}
	}
	var ix *graph.NeighborhoodIndex
	if indexRaw != nil {
		if ix, err = graph.IndexFromSizes(h, int32View(indexRaw), n); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}

	r := &Reader{
		g: g, scores: scores, ix: ix,
		h: h, generation: generation,
		shard: shard, globalNodes: globalNodes,
		size: int64(len(data)),
	}
	if shard {
		r.parts, r.shardIndex = parts, shardIndex
		r.toGlobal = int32View(toGlobalRaw)
		r.owned = int32View(ownedRaw)
		// toGlobal must be a monotone embedding of the closure into the
		// full id space — the property the byte-identical merge rests on —
		// and owned must be an ascending subset of it.
		prev := int32(-1)
		for i, gid := range r.toGlobal {
			if gid <= prev || int(gid) >= globalNodes {
				return nil, fmt.Errorf("snapshot: toGlobal[%d] = %d breaks monotone embedding into [0,%d)", i, gid, globalNodes)
			}
			prev = gid
		}
		j := 0
		for i, gid := range r.owned {
			if i > 0 && gid <= r.owned[i-1] {
				return nil, fmt.Errorf("snapshot: owned[%d] = %d not strictly ascending", i, gid)
			}
			for j < len(r.toGlobal) && r.toGlobal[j] < gid {
				j++
			}
			if j == len(r.toGlobal) || r.toGlobal[j] != gid {
				return nil, fmt.Errorf("snapshot: owned node %d outside the shard closure", gid)
			}
		}
	}
	return r, nil
}
