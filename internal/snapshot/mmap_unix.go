//go:build unix

package snapshot

import (
	"fmt"
	"os"
	"syscall"
)

// Open maps the snapshot file at path into memory and decodes it
// zero-copy: the returned Reader's graph, scores, and index are views
// into the mapping, which stays alive until Close. The file descriptor
// is closed before returning — the mapping does not need it.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < headerSize {
		return nil, fmt.Errorf("snapshot: %s is %d bytes, smaller than the %d-byte header", path, st.Size(), headerSize)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("snapshot: mmap %s: %w", path, err)
	}
	r, err := Decode(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	r.mapped = data
	r.path = path
	r.mtime = st.ModTime()
	return r, nil
}

func munmap(data []byte) error { return syscall.Munmap(data) }
