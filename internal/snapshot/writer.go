package snapshot

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// Writer assembles a snapshot from an engine's in-memory state. The zero
// value is not usable; construct with NewWriter, optionally attach
// metadata (SetGeneration, SetShard), then Encode or WriteFile.
type Writer struct {
	g      *graph.Graph
	scores []float64
	ix     *graph.NeighborhoodIndex
	h      int

	generation uint64

	shard       bool
	parts       int
	shardIndex  int
	globalNodes int
	toGlobal    []int32
	owned       []int32
}

// NewWriter returns a Writer for a whole-graph snapshot of (g, scores,
// ix) at hop radius h. ix may be nil, producing a snapshot without an
// index section (loaders then rebuild the index); when non-nil its H must
// equal h.
func NewWriter(g *graph.Graph, scores []float64, h int, ix *graph.NeighborhoodIndex) (*Writer, error) {
	if g == nil {
		return nil, fmt.Errorf("snapshot: nil graph")
	}
	if h < 0 {
		return nil, fmt.Errorf("snapshot: negative hop radius %d", h)
	}
	if len(scores) != g.NumNodes() {
		return nil, fmt.Errorf("snapshot: %d scores for %d nodes", len(scores), g.NumNodes())
	}
	if g.NumNodes() > maxNodes {
		return nil, fmt.Errorf("snapshot: %d nodes exceeds format limit %d", g.NumNodes(), maxNodes)
	}
	if ix != nil && ix.H != h {
		return nil, fmt.Errorf("snapshot: index built for h=%d, snapshot declares h=%d", ix.H, h)
	}
	if ix != nil && len(ix.Size) != g.NumNodes() {
		return nil, fmt.Errorf("snapshot: index has %d sizes for %d nodes", len(ix.Size), g.NumNodes())
	}
	return &Writer{g: g, scores: scores, ix: ix, h: h, globalNodes: g.NumNodes()}, nil
}

// SetGeneration stamps the score generation the snapshot was taken at.
func (w *Writer) SetGeneration(gen uint64) { w.generation = gen }

// SetShard marks the snapshot as one shard's partition closure: the
// writer's graph is the closure subgraph of shard shardIndex out of
// parts, cut from a full graph of globalNodes nodes; toGlobal maps local
// ids to global ids (monotone ascending) and owned lists the global ids
// this shard ranks (ascending).
func (w *Writer) SetShard(parts, shardIndex, globalNodes int, toGlobal, owned []int32) error {
	if parts <= 0 || shardIndex < 0 || shardIndex >= parts {
		return fmt.Errorf("snapshot: shard %d of %d out of range", shardIndex, parts)
	}
	if globalNodes < w.g.NumNodes() || globalNodes > maxNodes {
		return fmt.Errorf("snapshot: global node count %d out of range [%d,%d]", globalNodes, w.g.NumNodes(), maxNodes)
	}
	if len(toGlobal) != w.g.NumNodes() {
		return fmt.Errorf("snapshot: toGlobal has %d entries for %d closure nodes", len(toGlobal), w.g.NumNodes())
	}
	if len(owned) > len(toGlobal) {
		return fmt.Errorf("snapshot: %d owned nodes exceed closure size %d", len(owned), len(toGlobal))
	}
	w.shard = true
	w.parts = parts
	w.shardIndex = shardIndex
	w.globalNodes = globalNodes
	w.toGlobal = toGlobal
	w.owned = owned
	return nil
}

// Encode serializes the snapshot into a byte slice laid out per the
// package's format documentation.
func (w *Writer) Encode() ([]byte, error) {
	offsets, adj := w.g.Arrays()
	n := w.g.NumNodes()

	type section struct {
		kind uint32
		data []byte
	}
	sections := []section{
		{kindOffsets, int64Bytes(offsets)},
		{kindAdj, int32Bytes(adj)},
		{kindScores, float64Bytes(w.scores)},
	}
	if w.ix != nil {
		sections = append(sections, section{kindIndex, int32Bytes(w.ix.Size)})
	}
	if w.shard {
		sections = append(sections,
			section{kindToGlobal, int32Bytes(w.toGlobal)},
			section{kindOwned, int32Bytes(w.owned)})
	}

	// Lay out: header, table, then 64-byte aligned payloads.
	pos := align64(headerSize + len(sections)*tableEntrySz)
	offs := make([]int, len(sections))
	for i, s := range sections {
		offs[i] = pos
		pos = align64(pos + len(s.data))
	}
	buf := make([]byte, pos)

	copy(buf[0:8], Magic)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], Version)
	var flags uint32
	if w.g.Directed() {
		flags |= flagDirected
	}
	if w.shard {
		flags |= flagShard
	}
	le.PutUint32(buf[12:], flags)
	le.PutUint64(buf[16:], uint64(n))
	le.PutUint64(buf[24:], uint64(len(adj)))
	le.PutUint32(buf[32:], uint32(w.h))
	le.PutUint32(buf[36:], uint32(len(sections)))
	le.PutUint64(buf[40:], w.generation)
	le.PutUint32(buf[48:], uint32(w.parts))
	le.PutUint32(buf[52:], uint32(w.shardIndex))
	le.PutUint64(buf[56:], uint64(w.globalNodes))

	for i, s := range sections {
		entry := buf[headerSize+i*tableEntrySz:]
		le.PutUint32(entry[0:], s.kind)
		le.PutUint32(entry[4:], crc(s.data))
		le.PutUint64(entry[8:], uint64(offs[i]))
		le.PutUint64(entry[16:], uint64(len(s.data)))
		copy(buf[offs[i]:], s.data)
	}

	table := buf[headerSize : headerSize+len(sections)*tableEntrySz]
	le.PutUint32(buf[64:], crc(table))
	le.PutUint32(buf[68:], crc(buf[:68]))
	return buf, nil
}

// WriteFile encodes the snapshot and writes it to path atomically: the
// bytes land in a temp file in the same directory which is fsynced and
// renamed over path, so a crash mid-write can never leave a torn
// snapshot under the published name.
func (w *Writer) WriteFile(path string) error {
	blob, err := w.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// The byte-view helpers serialize fixed-width columns in little-endian
// order. On little-endian hosts they reinterpret the backing array
// in place (no copy); elsewhere they fall back to an element-wise copy.

func int64Bytes(v []int64) []byte {
	if hostLittle {
		return sliceBytes(v)
	}
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(x))
	}
	return out
}

func int32Bytes(v []int32) []byte {
	if hostLittle {
		return sliceBytes(v)
	}
	out := make([]byte, len(v)*4)
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(x))
	}
	return out
}

func float64Bytes(v []float64) []byte {
	if hostLittle {
		return sliceBytes(v)
	}
	out := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[i*8:], mathFloat64bits(x))
	}
	return out
}
