// Package wideevent defines the shared key schema for the engine's
// canonical structured log events and the slog plumbing around them.
//
// The observability model is "wide events": instead of scattering a
// query's story across many interleaved log lines, each query (and each
// edit batch) emits exactly one slog record carrying every dimension an
// operator would filter or aggregate on — trace id, algorithm, shard
// fan-out, λ raises, cache outcome, bytes, duration, status. Slow
// queries are not a different log; they are the same event escalated to
// WARN, so dashboards and alerts key off one schema.
//
// The key constants here are the single source of truth: the server and
// cluster packages emit with them, tests and CI validate live daemon
// output against them via Validate, and the README's key table mirrors
// them.
package wideevent

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"time"
)

// Event type discriminators, carried under KeyEvent.
const (
	EventQuery     = "query"      // one top-k query, any outcome
	EventEditBatch = "edit_batch" // one ApplyUpdates/ApplyEdits batch
	EventShardWarn = "shard_warn" // coordinator-observed shard anomaly
	EventCatchUp   = "catchup"    // one replay-based worker catch-up pass
)

// Shared schema keys. Every wide event uses these names; never invent
// ad-hoc spellings at emit sites.
const (
	KeyEvent   = "event"    // event type discriminator (above)
	KeyTraceID = "trace_id" // 32-hex W3C trace id, never empty
	KeyStatus  = "status"   // "ok" | "error" | "timeout" | "canceled" | "shutdown"
	KeyDurMS   = "dur_ms"   // wall duration, fractional milliseconds
	KeyError   = "error"    // error text, present only on failure
	KeySlow    = "slow"     // true when dur >= the slow-query threshold

	// Query-shaped keys.
	KeyAlgo           = "algo"            // algorithm actually executed
	KeyAgg            = "agg"             // aggregate function
	KeyK              = "k"               // requested k
	KeyGeneration     = "generation"      // graph generation answered from
	KeyCache          = "cache"           // "hit" | "miss" | "collapsed" | "bypass"
	KeyBytes          = "bytes"           // approximate answer size in bytes
	KeyResults        = "results"         // result rows returned
	KeyEvaluated      = "evaluated"       // nodes exactly aggregated
	KeyShards         = "shards"          // shards launched
	KeyShardsCut      = "shards_cut"      // shards cut before/while running
	KeyLambdaRaises   = "lambda_raises"   // λ tightenings during the merge
	KeyLambdaPrimed   = "lambda_primed"   // launch λ primed from score sketches (0 = cold)
	KeyPartialBatches = "partial_batches" // streamed partial frames folded
	KeyMessages       = "messages"        // cross-shard messages exchanged
	KeyBudgetRedist   = "budget_redist"   // traversals moved between shards
	KeyGrantRequests  = "grant_requests"  // mid-run budget grant round trips
	KeyTruncated      = "truncated"       // budget stopped the query early

	// Edit-batch keys.
	KeyEdits    = "edits"     // structural edits applied
	KeyUpdates  = "updates"   // score updates applied
	KeyEditMode = "edit_mode" // "repair" | "rebuild" | "scores"

	// Shard-warn keys.
	KeyShard   = "shard"           // shard index the warning concerns
	KeyDetail  = "detail"          // human-readable anomaly description
	KeyWantGen = "want_generation" // coordinator's generation
	KeyGotGen  = "got_generation"  // worker-reported generation

	// Catch-up keys.
	KeyProbed   = "probed"    // workers health-probed this pass
	KeyCaughtUp = "caught_up" // workers that replayed at least one commit
	KeyCommits  = "commits"   // journal commits applied across all workers
)

// Status values for KeyStatus.
const (
	StatusOK       = "ok"
	StatusError    = "error"
	StatusTimeout  = "timeout"
	StatusCanceled = "canceled"
	StatusShutdown = "shutdown"
)

// Cache outcomes for KeyCache.
const (
	CacheHit       = "hit"       // answered from the server cache
	CacheMiss      = "miss"      // executed and (maybe) inserted
	CacheCollapsed = "collapsed" // rode another caller's in-flight execution
	CacheBypass    = "bypass"    // caching disabled or traced request
)

// Query is the canonical per-query wide event. Build one at the end of
// Server.Run and emit it with Log.
type Query struct {
	TraceID        string
	Algo           string
	Agg            string
	K              int
	Generation     uint64
	Cache          string
	Bytes          int64
	Results        int
	Evaluated      int
	Shards         int
	ShardsCut      int
	LambdaRaises   int
	LambdaPrimed   float64
	PartialBatches int64
	Messages       int64
	BudgetRedist   int
	GrantRequests  int64
	Truncated      bool
	Duration       time.Duration
	Status         string
	Err            string
	Slow           bool
}

// Attrs renders the event as slog attributes in schema order.
func (q Query) Attrs() []slog.Attr {
	attrs := []slog.Attr{
		slog.String(KeyEvent, EventQuery),
		slog.String(KeyTraceID, q.TraceID),
		slog.String(KeyStatus, q.Status),
		slog.Float64(KeyDurMS, durMS(q.Duration)),
		slog.String(KeyAlgo, q.Algo),
		slog.String(KeyAgg, q.Agg),
		slog.Int(KeyK, q.K),
		slog.Uint64(KeyGeneration, q.Generation),
		slog.String(KeyCache, q.Cache),
		slog.Int64(KeyBytes, q.Bytes),
		slog.Int(KeyResults, q.Results),
		slog.Int(KeyEvaluated, q.Evaluated),
		slog.Int(KeyShards, q.Shards),
		slog.Int(KeyShardsCut, q.ShardsCut),
		slog.Int(KeyLambdaRaises, q.LambdaRaises),
		slog.Float64(KeyLambdaPrimed, q.LambdaPrimed),
		slog.Int64(KeyPartialBatches, q.PartialBatches),
		slog.Int64(KeyMessages, q.Messages),
		slog.Int(KeyBudgetRedist, q.BudgetRedist),
		slog.Int64(KeyGrantRequests, q.GrantRequests),
		slog.Bool(KeyTruncated, q.Truncated),
		slog.Bool(KeySlow, q.Slow),
	}
	if q.Err != "" {
		attrs = append(attrs, slog.String(KeyError, q.Err))
	}
	return attrs
}

// Level is the severity escalation rule shared by all wide events: ERROR
// for failures, WARN for slow-but-successful, INFO otherwise.
func level(status string, slow bool) slog.Level {
	switch {
	case status != StatusOK && status != StatusCanceled:
		return slog.LevelError
	case slow:
		return slog.LevelWarn
	default:
		return slog.LevelInfo
	}
}

// Log emits the query event at its escalated severity. Nil-safe on the
// logger for library users who configured none.
func (q Query) Log(ctx context.Context, l *slog.Logger) {
	if l == nil {
		return
	}
	l.LogAttrs(ctx, level(q.Status, q.Slow), EventQuery, q.Attrs()...)
}

// EditBatch is the canonical per-edit-batch wide event.
type EditBatch struct {
	TraceID    string
	Generation uint64
	Edits      int
	Updates    int
	Mode       string
	Shards     int
	Duration   time.Duration
	Status     string
	Err        string
	Slow       bool
}

// Attrs renders the event as slog attributes in schema order.
func (b EditBatch) Attrs() []slog.Attr {
	attrs := []slog.Attr{
		slog.String(KeyEvent, EventEditBatch),
		slog.String(KeyTraceID, b.TraceID),
		slog.String(KeyStatus, b.Status),
		slog.Float64(KeyDurMS, durMS(b.Duration)),
		slog.Uint64(KeyGeneration, b.Generation),
		slog.Int(KeyEdits, b.Edits),
		slog.Int(KeyUpdates, b.Updates),
		slog.String(KeyEditMode, b.Mode),
		slog.Int(KeyShards, b.Shards),
		slog.Bool(KeySlow, b.Slow),
	}
	if b.Err != "" {
		attrs = append(attrs, slog.String(KeyError, b.Err))
	}
	return attrs
}

// Log emits the edit-batch event at its escalated severity.
func (b EditBatch) Log(ctx context.Context, l *slog.Logger) {
	if l == nil {
		return
	}
	l.LogAttrs(ctx, level(b.Status, b.Slow), EventEditBatch, b.Attrs()...)
}

// ShardWarn is a coordinator-observed per-shard anomaly — most notably a
// worker answering from a different graph generation than the
// coordinator expected. Always WARN.
type ShardWarn struct {
	TraceID string
	Shard   int
	WantGen uint64
	GotGen  uint64
	Detail  string
}

// Attrs renders the event as slog attributes in schema order.
func (w ShardWarn) Attrs() []slog.Attr {
	return []slog.Attr{
		slog.String(KeyEvent, EventShardWarn),
		slog.String(KeyTraceID, w.TraceID),
		slog.Int(KeyShard, w.Shard),
		slog.Uint64(KeyWantGen, w.WantGen),
		slog.Uint64(KeyGotGen, w.GotGen),
		slog.String(KeyDetail, w.Detail),
	}
}

// Log emits the shard warning.
func (w ShardWarn) Log(ctx context.Context, l *slog.Logger) {
	if l == nil {
		return
	}
	l.LogAttrs(ctx, slog.LevelWarn, EventShardWarn, w.Attrs()...)
}

// CatchUp is the canonical per-catch-up-pass wide event: one record per
// journal-replay sweep over the shard workers, whether triggered by an
// operator (POST /v1/catchup) or by a fan-out failure's automatic
// retry. Generation is the coordinator generation workers were brought
// up to.
type CatchUp struct {
	TraceID    string
	Generation uint64
	Probed     int
	CaughtUp   int
	Commits    int
	Duration   time.Duration
	Status     string
	Err        string
}

// Attrs renders the event as slog attributes in schema order.
func (c CatchUp) Attrs() []slog.Attr {
	attrs := []slog.Attr{
		slog.String(KeyEvent, EventCatchUp),
		slog.String(KeyTraceID, c.TraceID),
		slog.String(KeyStatus, c.Status),
		slog.Float64(KeyDurMS, durMS(c.Duration)),
		slog.Uint64(KeyGeneration, c.Generation),
		slog.Int(KeyProbed, c.Probed),
		slog.Int(KeyCaughtUp, c.CaughtUp),
		slog.Int(KeyCommits, c.Commits),
	}
	if c.Err != "" {
		attrs = append(attrs, slog.String(KeyError, c.Err))
	}
	return attrs
}

// Log emits the catch-up event at its escalated severity.
func (c CatchUp) Log(ctx context.Context, l *slog.Logger) {
	if l == nil {
		return
	}
	l.LogAttrs(ctx, level(c.Status, false), EventCatchUp, c.Attrs()...)
}

func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// requiredKeys maps each event type to the keys Validate demands. Keys
// emitted conditionally (error) are intentionally absent.
var requiredKeys = map[string][]string{
	EventQuery: {
		KeyTraceID, KeyStatus, KeyDurMS, KeyAlgo, KeyAgg, KeyK,
		KeyGeneration, KeyCache, KeyBytes, KeyResults, KeyShards,
		KeyShardsCut, KeyLambdaRaises, KeyPartialBatches, KeySlow,
	},
	EventEditBatch: {
		KeyTraceID, KeyStatus, KeyDurMS, KeyGeneration, KeyEdits,
		KeyUpdates, KeyEditMode, KeySlow,
	},
	EventShardWarn: {
		KeyTraceID, KeyShard, KeyWantGen, KeyGotGen, KeyDetail,
	},
	EventCatchUp: {
		KeyTraceID, KeyStatus, KeyDurMS, KeyGeneration, KeyProbed,
		KeyCaughtUp, KeyCommits,
	},
}

// Validate checks one JSON log line against the wide-event schema: it
// must parse, carry a known KeyEvent, include every required key for
// that event type, and have a non-empty trace id. Lines without a
// KeyEvent field (startup notices, HTTP noise) return (false, nil) —
// they are not wide events and not an error.
func Validate(line []byte) (isWide bool, err error) {
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		return false, fmt.Errorf("wideevent: line is not JSON: %w", err)
	}
	ev, ok := m[KeyEvent].(string)
	if !ok {
		return false, nil
	}
	req, ok := requiredKeys[ev]
	if !ok {
		return true, fmt.Errorf("wideevent: unknown event type %q", ev)
	}
	for _, k := range req {
		if _, ok := m[k]; !ok {
			return true, fmt.Errorf("wideevent: %s event missing required key %q", ev, k)
		}
	}
	if id, _ := m[KeyTraceID].(string); id == "" {
		return true, fmt.Errorf("wideevent: %s event has empty %s", ev, KeyTraceID)
	}
	return true, nil
}

// discardHandler is a slog.Handler that drops everything — the library
// default when no Logger is configured, so embedding servers stay
// silent without nil checks at every emit site.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Discard returns a logger that drops all records.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }
