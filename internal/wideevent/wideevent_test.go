package wideevent

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// emit renders one event through a JSON slog handler exactly the way
// lonad does, returning the single line produced.
func emit(t *testing.T, log func(context.Context, *slog.Logger)) []byte {
	t.Helper()
	var buf bytes.Buffer
	log(context.Background(), slog.New(slog.NewJSONHandler(&buf, nil)))
	line := bytes.TrimSpace(buf.Bytes())
	if len(line) == 0 {
		t.Fatalf("no log line emitted")
	}
	return line
}

func TestQueryEventRoundTripsSchema(t *testing.T) {
	q := Query{
		TraceID: "0123456789abcdef0123456789abcdef", Algo: "backward", Agg: "sum",
		K: 10, Generation: 3, Cache: CacheMiss, Bytes: 512, Results: 10,
		Evaluated: 900, Shards: 4, ShardsCut: 1, LambdaRaises: 7,
		PartialBatches: 12, Messages: 44, BudgetRedist: 2, Truncated: true,
		Duration: 1500 * time.Microsecond, Status: StatusOK,
	}
	line := emit(t, q.Log)
	isWide, err := Validate(line)
	if !isWide || err != nil {
		t.Fatalf("Validate = (%v, %v) on %s", isWide, err, line)
	}
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatal(err)
	}
	if m[KeyDurMS] != 1.5 || m[KeyCache] != "miss" || m[KeyTruncated] != true {
		t.Fatalf("fields wrong: %v", m)
	}
	if _, ok := m[KeyError]; ok {
		t.Fatalf("ok event should omit %q: %s", KeyError, line)
	}
}

func TestEditBatchAndShardWarnValidate(t *testing.T) {
	b := EditBatch{
		TraceID: strings.Repeat("ab", 16), Generation: 9, Edits: 40,
		Updates: 0, Mode: "repair", Shards: 2, Duration: time.Millisecond,
		Status: StatusOK,
	}
	if isWide, err := Validate(emit(t, b.Log)); !isWide || err != nil {
		t.Fatalf("edit batch: (%v, %v)", isWide, err)
	}
	w := ShardWarn{TraceID: strings.Repeat("cd", 16), Shard: 3, WantGen: 7, GotGen: 5, Detail: "generation mismatch"}
	if isWide, err := Validate(emit(t, w.Log)); !isWide || err != nil {
		t.Fatalf("shard warn: (%v, %v)", isWide, err)
	}
}

func TestSeverityEscalation(t *testing.T) {
	cases := []struct {
		status string
		slow   bool
		want   string
	}{
		{StatusOK, false, "INFO"},
		{StatusOK, true, "WARN"},
		{StatusError, false, "ERROR"},
		{StatusTimeout, true, "ERROR"},
		{StatusCanceled, false, "INFO"},
	}
	for _, c := range cases {
		q := Query{TraceID: strings.Repeat("0a", 16), Status: c.status, Slow: c.slow, Err: "boom"}
		if c.status == StatusOK || c.status == StatusCanceled {
			q.Err = ""
		}
		line := emit(t, q.Log)
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatal(err)
		}
		if m["level"] != c.want {
			t.Errorf("status=%s slow=%v: level = %v, want %s", c.status, c.slow, m["level"], c.want)
		}
	}
}

func TestValidateRejectsBrokenEvents(t *testing.T) {
	if _, err := Validate([]byte("not json")); err == nil {
		t.Fatal("non-JSON accepted")
	}
	// Not a wide event at all: fine, but flagged as such.
	if isWide, err := Validate([]byte(`{"level":"INFO","msg":"listening"}`)); isWide || err != nil {
		t.Fatalf("plain line: (%v, %v)", isWide, err)
	}
	if _, err := Validate([]byte(`{"event":"mystery","trace_id":"x"}`)); err == nil {
		t.Fatal("unknown event type accepted")
	}
	// A query event with keys missing must fail.
	if _, err := Validate([]byte(`{"event":"query","trace_id":"abc"}`)); err == nil {
		t.Fatal("query event missing keys accepted")
	}
	// Empty trace id must fail even when every other key is present.
	full := Query{Status: StatusOK, Cache: CacheHit, Algo: "base", Agg: "sum"}
	line := emit(t, full.Log)
	if _, err := Validate(line); err == nil || !strings.Contains(err.Error(), "trace_id") {
		t.Fatalf("empty trace id: err = %v", err)
	}
}

func TestDiscardLoggerAndNilSafety(t *testing.T) {
	Query{}.Log(context.Background(), nil) // must not panic
	l := Discard()
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("discard logger claims to be enabled")
	}
	Query{TraceID: "x", Status: StatusError}.Log(context.Background(), l)
}
