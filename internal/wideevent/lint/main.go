// Command lint validates a stream of daemon log lines against the
// wide-event schema: every JSON line carrying an "event" field must
// include the full required key set for its event type. Non-wide lines
// (startup notices, shutdown messages) pass through uncounted.
//
// CI pipes a live `lonad -log json` stderr capture into it:
//
//	go run ./internal/wideevent/lint -min 4 < lonad.jsonl
//
// It exits nonzero on the first malformed event, or when fewer than
// -min wide events were seen (a regression where the daemon stopped
// emitting them at all would otherwise pass vacuously).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/wideevent"
)

func main() {
	min := flag.Int("min", 1, "fail unless at least this many wide events were seen")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	wide, lines := 0, 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		lines++
		isWide, err := wideevent.Validate(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint: line %d: %v\n%s\n", lines, err, line)
			os.Exit(1)
		}
		if isWide {
			wide++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(1)
	}
	if wide < *min {
		fmt.Fprintf(os.Stderr, "lint: saw %d wide events in %d lines, want at least %d\n", wide, lines, *min)
		os.Exit(1)
	}
	fmt.Printf("lint: %d wide events valid (%d lines)\n", wide, lines)
}
