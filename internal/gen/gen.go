// Package gen generates synthetic networks. It provides the classic random
// graph models (Erdős–Rényi, Barabási–Albert, Watts–Strogatz, configuration
// model, planted partition) and three dataset simulators that stand in for
// the paper's evaluation graphs:
//
//   - Collaboration — cond-mat 2005-like: community/clique structure from a
//     bipartite author–paper process (~40k nodes, ~180k edges at scale 1).
//   - Citation — cite75_99-like: preferential-attachment citation DAG used
//     as an undirected neighborhood graph (paper: 3M/16M; default scaled).
//   - Intrusion — IPsec-like: heavy-tailed attacker/target contact graph
//     (paper: 2.5M/4.3M proprietary; default scaled).
//
// The substitutions are documented in DESIGN.md §4: the pruning behaviour
// LONA exploits depends on neighborhood overlap and degree skew, both of
// which these models reproduce; the proprietary traces and full-scale sizes
// do not change who wins, only absolute seconds.
//
// All generators are deterministic given a seed.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyi returns G(n, m): n nodes and m distinct uniformly random
// edges (self-loops excluded).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	if n < 2 && m > 0 {
		panic("gen: ErdosRenyi needs at least 2 nodes for any edge")
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("gen: ErdosRenyi m=%d exceeds max %d for n=%d", m, maxEdges, n))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	seen := make(map[uint64]struct{}, m)
	for len(seen) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert grows a scale-free graph by preferential attachment: each
// new node attaches m edges to existing nodes chosen proportionally to
// their current degree. Node 0..m-1 form the initial clique-ish core.
func BarabasiAlbert(n, m int, seed int64) *graph.Graph {
	if m < 1 || n <= m {
		panic(fmt.Sprintf("gen: BarabasiAlbert needs n > m >= 1, got n=%d m=%d", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	// targets holds one entry per half-edge; sampling an index uniformly is
	// sampling a node proportionally to degree.
	targets := make([]int32, 0, 2*m*n)
	// Seed: a path over the first m+1 nodes so everyone has degree >= 1.
	for u := 0; u < m; u++ {
		b.AddEdge(u, u+1)
		targets = append(targets, int32(u), int32(u+1))
	}
	chosen := make(map[int]struct{}, m)
	for u := m + 1; u < n; u++ {
		for k := range chosen {
			delete(chosen, k)
		}
		for len(chosen) < m {
			v := int(targets[rng.Intn(len(targets))])
			if v == u {
				continue
			}
			chosen[v] = struct{}{}
		}
		for v := range chosen {
			b.AddEdge(u, v)
			targets = append(targets, int32(u), int32(v))
		}
	}
	return b.Build()
}

// WattsStrogatz builds a small-world ring lattice over n nodes where each
// node links to its k nearest neighbors per side, then rewires each edge's
// far endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	if k < 1 || n <= 2*k {
		panic(fmt.Sprintf("gen: WattsStrogatz needs n > 2k, got n=%d k=%d", n, k))
	}
	if beta < 0 || beta > 1 {
		panic("gen: WattsStrogatz beta must be in [0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	type edge struct{ u, v int }
	edges := make(map[edge]struct{}, n*k)
	norm := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			edges[norm(u, (u+j)%n)] = struct{}{}
		}
	}
	// Rewire: replace (u, u+j) with (u, random) with probability beta.
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			if rng.Float64() >= beta {
				continue
			}
			old := norm(u, (u+j)%n)
			if _, ok := edges[old]; !ok {
				continue
			}
			for attempt := 0; attempt < 32; attempt++ {
				w := rng.Intn(n)
				if w == u {
					continue
				}
				candidate := norm(u, w)
				if _, dup := edges[candidate]; dup {
					continue
				}
				delete(edges, old)
				edges[candidate] = struct{}{}
				break
			}
		}
	}
	b := graph.NewBuilder(n, false)
	for e := range edges {
		b.AddEdge(e.u, e.v)
	}
	return b.Build()
}

// ConfigurationModel builds a simple graph whose degree sequence
// approximates the one given, by half-edge matching with rejection of
// self-loops and duplicates (rejected stubs are dropped, so low-degree
// tails can lose a few edges — standard for the erased configuration
// model).
func ConfigurationModel(degrees []int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var stubs []int32
	for u, d := range degrees {
		if d < 0 {
			panic(fmt.Sprintf("gen: negative degree %d for node %d", d, u))
		}
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(u))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	n := len(degrees)
	b := graph.NewBuilder(n, false)
	seen := make(map[uint64]struct{}, len(stubs)/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := int(stubs[i]), int(stubs[i+1])
		if u == v {
			continue
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		key := uint64(a)<<32 | uint64(c)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// PowerLawDegrees samples n degrees from a discrete power law with the
// given exponent (>1) and minimum degree dmin, capped at dmax.
func PowerLawDegrees(n int, exponent float64, dmin, dmax int, seed int64) []int {
	if exponent <= 1 {
		panic("gen: power-law exponent must exceed 1")
	}
	if dmin < 1 || dmax < dmin {
		panic("gen: need 1 <= dmin <= dmax")
	}
	rng := rand.New(rand.NewSource(seed))
	degrees := make([]int, n)
	// Inverse-CDF sampling of a continuous Pareto, floored and capped.
	alpha := exponent - 1
	for i := range degrees {
		u := rng.Float64()
		d := int(float64(dmin) / powf(1-u, 1/alpha))
		if d < dmin {
			d = dmin
		}
		if d > dmax {
			d = dmax
		}
		degrees[i] = d
	}
	// Even total stub count so matching wastes at most one stub.
	sum := 0
	for _, d := range degrees {
		sum += d
	}
	if sum%2 == 1 {
		degrees[0]++
	}
	return degrees
}

func powf(x, y float64) float64 {
	// Thin wrapper kept local so the sampling code reads as math;
	// math.Pow is fine for the magnitudes involved.
	return mathPow(x, y)
}

// PlantedPartition builds c communities of size n/c; node pairs inside a
// community connect with probability pin, across communities with pout.
// Used by the gene co-expression example (modules = co-expression
// clusters).
func PlantedPartition(n, c int, pin, pout float64, seed int64) *graph.Graph {
	if c < 1 || n < c {
		panic("gen: PlantedPartition needs 1 <= c <= n")
	}
	if pin < 0 || pin > 1 || pout < 0 || pout > 1 {
		panic("gen: PlantedPartition probabilities must be in [0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	community := func(u int) int { return u % c }
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pout
			if community(u) == community(v) {
				p = pin
			}
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// CommunityOf returns the community index PlantedPartition assigned to u.
func CommunityOf(u, c int) int { return u % c }
