package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

func mathPow(x, y float64) float64 { return math.Pow(x, y) }

// DatasetScale controls how large the simulated evaluation graphs are
// relative to the paper's. Scale 1.0 reproduces the collaboration network
// at full published size (~40k nodes / ~180k edges); the citation and
// intrusion graphs default to documented scale-downs of the 3M- and
// 2.5M-node originals so that a full figure sweep finishes on a laptop.
// The shapes the experiments test (who wins, crossovers) are preserved —
// see DESIGN.md §4.
type DatasetScale float64

// Collaboration simulates the cond-mat 2005 co-authorship network: authors
// participate in papers whose team sizes follow a truncated power law, and
// every pair of co-authors is linked. This yields the high clustering and
// heavy-tailed degrees of real collaboration networks — exactly the h-hop
// neighborhood overlap that forward pruning exploits.
//
// At scale 1.0 it targets ~40,000 nodes and ~180,000 edges.
func Collaboration(scale DatasetScale, seed int64) *graph.Graph {
	n := scaled(40000, scale)
	papers := scaled(38500, scale)
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	for p := 0; p < papers; p++ {
		// Team sizes: mostly 2-4, occasionally large collaborations.
		size := 2 + samplePowerInt(rng, 1.8, 18)
		team := make([]int, 0, size)
		seen := make(map[int]struct{}, size)
		// Authors cluster: a paper draws from a locality window plus a few
		// uniform picks, giving community structure without a fixed
		// partition.
		center := rng.Intn(n)
		window := 200
		for len(team) < size {
			var a int
			if rng.Float64() < 0.8 {
				a = (center + rng.Intn(2*window+1) - window) % n
				if a < 0 {
					a += n
				}
			} else {
				a = rng.Intn(n)
			}
			if _, dup := seen[a]; dup {
				continue
			}
			seen[a] = struct{}{}
			team = append(team, a)
		}
		for i := 0; i < len(team); i++ {
			for j := i + 1; j < len(team); j++ {
				b.AddEdge(team[i], team[j])
			}
		}
	}
	return b.Build()
}

// Citation simulates the NBER patent citation graph (cite75_99):
// preferential attachment with a per-node citation count drawn from a
// skewed distribution, producing the power-law in-degrees and low
// clustering of citation networks. Arcs are stored undirected because the
// paper's h-hop neighborhoods traverse citations in both directions.
//
// The published graph is 3M nodes / 16M edges; the default experiment
// scale (see bench specs) uses 200k / ~1.07M, a 15× scale-down recorded in
// DESIGN.md. Pass a larger scale to approach the original.
func Citation(scale DatasetScale, seed int64) *graph.Graph {
	n := scaled(200000, scale)
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	targets := make([]int32, 0, 12*n)
	core := 10
	if n <= core {
		core = n - 1
	}
	for u := 0; u < core; u++ {
		b.AddEdge(u, u+1)
		targets = append(targets, int32(u), int32(u+1))
	}
	chosen := make(map[int]struct{}, 16)
	for u := core + 1; u < n; u++ {
		// Mean ≈ 4.5 citations per patent, matching the original's ~5.3
		// edges per node after duplicate-citation collapse.
		cites := 2 + samplePowerInt(rng, 1.4, 80)
		if cites >= u {
			cites = u
		}
		for k := range chosen {
			delete(chosen, k)
		}
		attempts := 0
		for len(chosen) < cites && attempts < 20*cites {
			attempts++
			var v int
			if rng.Float64() < 0.85 {
				v = int(targets[rng.Intn(len(targets))]) // preferential
			} else {
				v = rng.Intn(u) // uniform over older patents
			}
			if v == u {
				continue
			}
			chosen[v] = struct{}{}
		}
		for v := range chosen {
			b.AddEdge(u, v)
			targets = append(targets, int32(u), int32(v))
		}
	}
	return b.Build()
}

// Intrusion simulates the proprietary IPsec intrusion network: a sparse,
// hub-dominated contact graph between attacker and target IPs. A small
// fraction of nodes are high-fanout scanners; most nodes touch only a
// couple of peers. The result matches the original's defining ratio —
// barely more edges than nodes (2.5M/4.3M ≈ 1.7 edges per node) — which is
// what makes backward processing shine there.
//
// Default experiment scale uses 150k nodes / ~260k edges.
func Intrusion(scale DatasetScale, seed int64) *graph.Graph {
	n := scaled(150000, scale)
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, false)
	scanners := n / 100 // 1% of IPs generate most contacts
	type key uint64
	seen := make(map[key]struct{}, 2*n)
	add := func(u, v int) {
		if u == v {
			return
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		k := key(uint64(a)<<32 | uint64(c))
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		b.AddEdge(u, v)
	}
	// Scanners probe many uniformly random targets. Fanout is sized so the
	// final graph lands near the original's ~1.7 edges per node.
	for s := 0; s < scanners; s++ {
		fan := 50 + samplePowerInt(rng, 1.2, 1000)
		for i := 0; i < fan; i++ {
			add(s, scanners+rng.Intn(n-scanners))
		}
	}
	// Background peer-to-peer noise keeps the graph loosely connected.
	noise := n
	for i := 0; i < noise; i++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

// scaled applies a DatasetScale to a base count, keeping at least 16.
func scaled(base int, scale DatasetScale) int {
	if scale <= 0 {
		panic(fmt.Sprintf("gen: non-positive dataset scale %v", scale))
	}
	n := int(float64(base) * float64(scale))
	if n < 16 {
		n = 16
	}
	return n
}

// samplePowerInt returns a value in [0, cap] distributed as a discrete
// power law with the given tail exponent; small values dominate.
func samplePowerInt(rng *rand.Rand, alpha float64, capValue int) int {
	u := rng.Float64()
	v := int(math.Pow(1-u, -1/alpha)) - 1
	if v < 0 {
		v = 0
	}
	if v > capValue {
		v = capValue
	}
	return v
}
