package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestErdosRenyiEdgeCount(t *testing.T) {
	g := ErdosRenyi(100, 250, 1)
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d, want 100", g.NumNodes())
	}
	if g.NumEdges() != 250 {
		t.Fatalf("edges = %d, want exactly 250 (distinct sampling)", g.NumEdges())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 100, 7)
	b := ErdosRenyi(50, 100, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for u := 0; u < 50; u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("node %d: degree differs across same-seed runs", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d: adjacency differs across same-seed runs", u)
			}
		}
	}
	c := ErdosRenyi(50, 100, 8)
	same := true
	for u := 0; u < 50 && same; u++ {
		na, nc := a.Neighbors(u), c.Neighbors(u)
		if len(na) != len(nc) {
			same = false
			break
		}
		for i := range na {
			if na[i] != nc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestErdosRenyiRejectsOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m > max possible did not panic")
		}
	}()
	ErdosRenyi(4, 7, 1) // max is 6
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(2000, 3, 11)
	if g.NumNodes() != 2000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	s := graph.ComputeStats(g, 0)
	if s.Isolated != 0 {
		t.Fatalf("%d isolated nodes in a BA graph", s.Isolated)
	}
	if s.Components != 1 {
		t.Fatalf("BA graph has %d components, want 1", s.Components)
	}
	// Scale-free: the max degree should dwarf the median.
	if s.MaxDegree < 5*s.MedianDegree {
		t.Fatalf("degrees not heavy-tailed: max %d vs median %d", s.MaxDegree, s.MedianDegree)
	}
	// Each of the n-m-1 grown nodes adds m distinct edges, plus the m seed
	// path edges; duplicates are impossible by construction.
	wantEdges := 3 + (2000-4)*3
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
}

func TestBarabasiAlbertRejectsBadParams(t *testing.T) {
	for _, c := range []struct{ n, m int }{{5, 0}, {3, 3}, {3, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("BarabasiAlbert(%d,%d) did not panic", c.n, c.m)
				}
			}()
			BarabasiAlbert(c.n, c.m, 1)
		}()
	}
}

func TestWattsStrogatzShape(t *testing.T) {
	g := WattsStrogatz(500, 4, 0.1, 13)
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Edge count is preserved by rewiring (each rewire replaces one edge,
	// failed rewires keep the original).
	if got := g.NumEdges(); got != 500*4 {
		t.Fatalf("edges = %d, want 2000", got)
	}
	s := graph.ComputeStats(g, 200)
	if s.GlobalClustering < 0.2 {
		t.Fatalf("clustering %v too low for beta=0.1 small world", s.GlobalClustering)
	}
}

func TestWattsStrogatzBetaOneStillValid(t *testing.T) {
	g := WattsStrogatz(100, 3, 1.0, 17)
	if g.NumNodes() != 100 {
		t.Fatal("wrong node count")
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges after full rewiring")
	}
}

func TestConfigurationModelApproximatesDegrees(t *testing.T) {
	degrees := PowerLawDegrees(1000, 2.5, 2, 50, 19)
	g := ConfigurationModel(degrees, 19)
	if g.NumNodes() != 1000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	wantStubs := 0
	for _, d := range degrees {
		wantStubs += d
	}
	// Erased configuration model loses a few stubs to rejection; demand
	// at least 90% of the target mass.
	if got := 2 * g.NumEdges(); got < wantStubs*9/10 {
		t.Fatalf("stub mass %d < 90%% of target %d", got, wantStubs)
	}
}

func TestPowerLawDegreesProperties(t *testing.T) {
	property := func(seedRaw uint32) bool {
		seed := int64(seedRaw)
		degrees := PowerLawDegrees(300, 2.2, 1, 40, seed)
		sum := 0
		for _, d := range degrees {
			if d < 1 || d > 41 { // +1 allowed on degrees[0] for parity
				return false
			}
			sum += d
		}
		return sum%2 == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPlantedPartitionCommunityBias(t *testing.T) {
	g := PlantedPartition(200, 4, 0.3, 0.01, 23)
	within, across := 0, 0
	for u := 0; u < 200; u++ {
		for _, v := range g.Neighbors(u) {
			if CommunityOf(u, 4) == CommunityOf(int(v), 4) {
				within++
			} else {
				across++
			}
		}
	}
	if within <= across {
		t.Fatalf("within=%d not dominant over across=%d", within, across)
	}
}

func TestCollaborationShape(t *testing.T) {
	g := Collaboration(0.1, 31) // ~4k nodes for test speed
	s := graph.ComputeStats(g, 500)
	if s.Nodes < 3000 {
		t.Fatalf("nodes = %d, want ~4000", s.Nodes)
	}
	// Collaboration networks are clique-heavy: clustering must be high.
	if s.GlobalClustering < 0.15 {
		t.Fatalf("clustering %v too low for a co-authorship simulation", s.GlobalClustering)
	}
	if s.MaxDegree < 3*s.MedianDegree {
		t.Fatalf("degree distribution not skewed: max %d median %d", s.MaxDegree, s.MedianDegree)
	}
}

func TestCollaborationFullScaleTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	g := Collaboration(1.0, 31)
	if n := g.NumNodes(); n != 40000 {
		t.Fatalf("nodes = %d, want 40000", n)
	}
	m := g.NumEdges()
	if m < 120000 || m > 260000 {
		t.Fatalf("edges = %d, want ~180k (120k-260k band)", m)
	}
}

func TestCitationShape(t *testing.T) {
	g := Citation(0.05, 37) // 10k nodes
	s := graph.ComputeStats(g, 300)
	if s.Nodes != 10000 {
		t.Fatalf("nodes = %d, want 10000", s.Nodes)
	}
	meanDeg := 2 * float64(s.Edges) / float64(s.Nodes)
	if meanDeg < 4 || meanDeg > 16 {
		t.Fatalf("mean degree %v outside citation-like band [4,16]", meanDeg)
	}
	// Citation graphs: hubs exist (heavily cited patents).
	if s.MaxDegree < 10*s.MedianDegree {
		t.Fatalf("no hubs: max %d vs median %d", s.MaxDegree, s.MedianDegree)
	}
	// And clustering is much lower than collaboration graphs.
	if s.GlobalClustering > 0.2 {
		t.Fatalf("clustering %v too high for a citation simulation", s.GlobalClustering)
	}
}

func TestIntrusionShape(t *testing.T) {
	g := Intrusion(0.1, 41) // 15k nodes
	s := graph.ComputeStats(g, 0)
	if s.Nodes != 15000 {
		t.Fatalf("nodes = %d, want 15000", s.Nodes)
	}
	ratio := float64(s.Edges) / float64(s.Nodes)
	// The defining property of the IPsec graph: edges ≈ 1.7 × nodes.
	if ratio < 0.8 || ratio > 3.5 {
		t.Fatalf("edge/node ratio %v outside sparse band", ratio)
	}
	if s.MaxDegree < 50 {
		t.Fatalf("max degree %d: no scanner hubs", s.MaxDegree)
	}
	if s.MedianDegree > 6 {
		t.Fatalf("median degree %d: background traffic too dense", s.MedianDegree)
	}
}

func TestDatasetScaleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive scale did not panic")
		}
	}()
	Collaboration(0, 1)
}

func TestDatasetsDeterministic(t *testing.T) {
	a := Intrusion(0.02, 5)
	b := Intrusion(0.02, 5)
	if a.NumEdges() != b.NumEdges() || a.NumNodes() != b.NumNodes() {
		t.Fatal("same-seed datasets differ")
	}
}
