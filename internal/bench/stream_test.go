package bench

import "testing"

// TestRunStreamSmoke runs S4 on a small-but-real dataset and checks the
// acceptance property of streaming within-shard cuts: for every
// bound-driven algorithm, the streaming run evaluates strictly fewer
// candidates than the whole-shard-cut run on the skewed scenario, while
// the harness itself verified both answers byte-identical to the single
// engine before reporting them.
func TestRunStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("stream benchmark takes seconds")
	}
	w := NewWorkspace(Config{Scale: 0.1, Seed: 42, Workers: 2})
	res, sum, err := w.RunStreamDetailed()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "S4" || len(sum.Cells) != 4 {
		t.Fatalf("unexpected result shape: id=%s cells=%d", res.ID, len(sum.Cells))
	}
	byKey := map[string]StreamGridCell{}
	for _, cell := range sum.Cells {
		if cell.Sec <= 0 {
			t.Fatalf("cell %+v has non-positive timing", cell)
		}
		byKey[cell.Algorithm+"/"+cell.Mode] = cell
	}
	for _, algo := range []string{"Forward-Dist", "Backward"} {
		whole, okW := byKey[algo+"/whole-shard"]
		stream, okS := byKey[algo+"/streaming"]
		if !okW || !okS {
			t.Fatalf("missing cells for %s: %v", algo, byKey)
		}
		if stream.Evaluated >= whole.Evaluated {
			t.Fatalf("%s: streaming evaluated %d, whole-shard %d — within-shard cuts bought nothing",
				algo, stream.Evaluated, whole.Evaluated)
		}
		if stream.Batches == 0 {
			t.Fatalf("%s: streaming run folded no partial batches", algo)
		}
		if whole.Batches != 0 {
			t.Fatalf("%s: whole-shard run reports %d partial batches", algo, whole.Batches)
		}
	}
	if res.Markdown() == "" || res.CSV() == "" {
		t.Fatal("renderers rejected the grid")
	}
}
