package bench

import "testing"

// TestRunStreamSmoke runs S4 on a small-but-real dataset and checks the
// acceptance property of streaming within-shard cuts: for every
// bound-driven algorithm, the streaming run evaluates strictly fewer
// candidates than the whole-shard-cut run on the skewed scenario, while
// the harness itself verified both answers byte-identical to the single
// engine before reporting them.
func TestRunStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("stream benchmark takes seconds")
	}
	w := NewWorkspace(Config{Scale: 0.1, Seed: 42, Workers: 2})
	res, sum, err := w.RunStreamDetailed()
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "S4" || len(sum.Cells) != 6 {
		t.Fatalf("unexpected result shape: id=%s cells=%d", res.ID, len(sum.Cells))
	}
	byKey := map[string]StreamGridCell{}
	for _, cell := range sum.Cells {
		if cell.Sec <= 0 {
			t.Fatalf("cell %+v has non-positive timing", cell)
		}
		byKey[cell.Algorithm+"/"+cell.Mode] = cell
	}
	for _, algo := range []string{"Forward-Dist", "Backward"} {
		whole, okW := byKey[algo+"/whole-shard"]
		stream, okS := byKey[algo+"/streaming"]
		primed, okP := byKey[algo+"/streaming-primed"]
		if !okW || !okS || !okP {
			t.Fatalf("missing cells for %s: %v", algo, byKey)
		}
		if stream.Evaluated >= whole.Evaluated {
			t.Fatalf("%s: streaming evaluated %d, whole-shard %d — within-shard cuts bought nothing",
				algo, stream.Evaluated, whole.Evaluated)
		}
		if stream.Batches == 0 {
			t.Fatalf("%s: streaming run folded no partial batches", algo)
		}
		if whole.Batches != 0 {
			t.Fatalf("%s: whole-shard run reports %d partial batches", algo, whole.Batches)
		}
		if primed.LambdaPrimed <= 0 {
			t.Fatalf("%s: streaming-primed run reports no primed λ: %+v", algo, primed)
		}
		if primed.Evaluated > stream.Evaluated {
			t.Fatalf("%s: priming increased evaluated work: primed %d, unprimed %d",
				algo, primed.Evaluated, stream.Evaluated)
		}
	}
	cold := sum.ColdShards
	if cold == nil {
		t.Fatal("no cold-shard summary")
	}
	if cold.PrimedLambda <= 0 {
		t.Fatalf("cold-shard primed λ = %v, want > 0", cold.PrimedLambda)
	}
	if cold.PrelaunchCutsPrimed != cold.Parts-1 || cold.LaunchedPrimed != 1 {
		t.Fatalf("primed cold run launched %d and pre-launch-cut %d of %d shards, want 1 launch and %d cuts",
			cold.LaunchedPrimed, cold.PrelaunchCutsPrimed, cold.Parts, cold.Parts-1)
	}
	// The unprimed side is timing-dependent: the hot shard's first folded
	// batch raises λ, which may cut trailing shards before their launch
	// slot is decided. Only ordering claims are deterministic there.
	if cold.LaunchedCold < cold.LaunchedPrimed {
		t.Fatalf("unprimed cold run launched %d shards, primed %d — priming should never launch more",
			cold.LaunchedCold, cold.LaunchedPrimed)
	}
	if cold.MessagesPrimed > cold.MessagesCold {
		t.Fatalf("priming increased messages: primed %d, cold %d", cold.MessagesPrimed, cold.MessagesCold)
	}
	if res.Markdown() == "" || res.CSV() == "" {
		t.Fatal("renderers rejected the grid")
	}
}
