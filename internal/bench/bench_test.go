package bench

import (
	"strings"
	"testing"
)

// tinyConfig keeps harness tests fast: tiny datasets, single repeat.
func tinyConfig() Config {
	return Config{Scale: 0.01, Seed: 42, Repeats: 1, Workers: 2}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.Scale != 1 || c.Seed == 0 || c.Repeats != 1 {
		t.Fatalf("normalized zero config = %+v", c)
	}
	c = Config{Scale: 0.5, Seed: 7, Repeats: 3}.normalized()
	if c.Scale != 0.5 || c.Seed != 7 || c.Repeats != 3 {
		t.Fatalf("normalization clobbered explicit values: %+v", c)
	}
}

func TestDatasetKindString(t *testing.T) {
	if Collaboration.String() != "Collaboration" || Citation.String() != "Citation" || Intrusion.String() != "Intrusion" {
		t.Fatal("dataset names wrong")
	}
	if DatasetKind(9).String() == "" {
		t.Fatal("unknown dataset must still print")
	}
}

func TestWorkspaceMemoizesGraphs(t *testing.T) {
	w := NewWorkspace(tinyConfig())
	a, err := w.Graph(Collaboration)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Graph(Collaboration)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("workspace regenerated a memoized dataset")
	}
}

func TestWorkspaceEngineMemoized(t *testing.T) {
	w := NewWorkspace(tinyConfig())
	a, err := w.Engine(Intrusion, BinaryScores, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Engine(Intrusion, BinaryScores, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("workspace rebuilt a memoized engine")
	}
	c, err := w.Engine(Intrusion, BinaryScores, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different h shared an engine")
	}
}

func TestRunFigureSmoke(t *testing.T) {
	w := NewWorkspace(tinyConfig())
	res, err := w.RunFigure(PaperFigures[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "F1" {
		t.Fatalf("ID = %s", res.ID)
	}
	wantRows := len(DefaultKs) * len(figureAlgos)
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	labels := res.Labels()
	if len(labels) != 3 || labels[0] != "Base" {
		t.Fatalf("labels = %v", labels)
	}
	xs := res.Xs()
	if len(xs) != len(DefaultKs) || xs[0] != 1 || xs[len(xs)-1] != 300 {
		t.Fatalf("xs = %v", xs)
	}
	for _, row := range res.Rows {
		if row.Sec < 0 {
			t.Fatalf("negative time %v", row.Sec)
		}
	}
}

func TestRunAllExperimentIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment smoke in -short mode")
	}
	w := NewWorkspace(tinyConfig())
	for _, id := range ExperimentIDs() {
		res, err := w.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		md := res.Markdown()
		if !strings.Contains(md, res.ID) || !strings.Contains(md, "|") {
			t.Fatalf("%s markdown malformed:\n%s", id, md)
		}
		csv := res.CSV()
		if !strings.HasPrefix(csv, "experiment,x,label,seconds\n") {
			t.Fatalf("%s csv malformed:\n%s", id, csv)
		}
		if strings.Count(csv, "\n") != len(res.Rows)+1 {
			t.Fatalf("%s csv row count mismatch", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	w := NewWorkspace(tinyConfig())
	if _, err := w.Run("F99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestMarkdownPivot(t *testing.T) {
	res := &Result{
		ID: "T", Title: "test", XName: "k",
		Rows: []Row{
			{X: 1, Label: "A", Sec: 0.5},
			{X: 1, Label: "B", Sec: 0.25},
			{X: 2, Label: "A", Sec: 1},
		},
	}
	md := res.Markdown()
	if !strings.Contains(md, "| k | A (s) | B (s) |") {
		t.Fatalf("missing header:\n%s", md)
	}
	if !strings.Contains(md, "0.5000") || !strings.Contains(md, "0.2500") {
		t.Fatalf("missing cells:\n%s", md)
	}
	// Missing (2, B) cell renders as dash.
	if !strings.Contains(md, "–") {
		t.Fatalf("missing-cell marker absent:\n%s", md)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		0.01:   "0.01",
		0.2:    "0.2",
		300:    "300",
		0.0001: "0.0001",
		0:      "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestScoresKinds(t *testing.T) {
	w := NewWorkspace(tinyConfig())
	g, err := w.Graph(Citation)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := w.Scores(g, MixtureScores, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != g.NumNodes() {
		t.Fatal("mixture length mismatch")
	}
	bin, err := w.Scores(g, BinaryScores, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range bin {
		if s != 0 && s != 1 {
			t.Fatalf("binary scores contain %v", s)
		}
	}
	if _, err := w.Scores(g, RelevanceKind(9), 0.1); err == nil {
		t.Fatal("unknown relevance kind accepted")
	}
}
