package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// ClusterSummary is the machine-readable result of the S2 distributed-
// serving benchmark — cmd/lonabench writes it as BENCH_cluster.json so
// the sharded execution layer's performance trajectory (wall-clock
// speedup and cross-shard message volume vs the single-engine baseline)
// is tracked mechanically across PRs.
type ClusterSummary struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Nodes   int     `json:"nodes"`
	Edges   int     `json:"edges"`
	H       int     `json:"h"`
	K       int     `json:"k"`
	// CPUs is GOMAXPROCS at run time: the ceiling on in-process fan-out
	// speedup (a 1-CPU machine can only show ~1.0×; the distribution win
	// there is the per-shard latency and the TA work cuts, not wall
	// clock).
	CPUs int `json:"cpus"`

	// BaselineSec is the single-engine Base scan the grid compares
	// against.
	BaselineSec float64           `json:"baseline_sec"`
	Grid        []ClusterGridCell `json:"grid"`
}

// ClusterGridCell is one (parts, transport) measurement.
type ClusterGridCell struct {
	Parts     int     `json:"parts"`
	Transport string  `json:"transport"` // "local" or "http"
	Sec       float64 `json:"sec"`
	// Speedup is baseline_sec / sec — the headline distribution win.
	Speedup float64 `json:"speedup"`
	// SetupSec is the partition + closure + shard-engine build time (the
	// amortized cost of standing the topology up).
	SetupSec float64 `json:"setup_sec"`
	// Messages is the per-query cross-shard message count (bound probes,
	// query round-trips, result items); BoundaryNodes and EdgeCut are the
	// topology's standing replication costs.
	Messages      int64 `json:"messages"`
	BoundaryNodes int64 `json:"boundary_nodes"`
	EdgeCut       int   `json:"edge_cut"`
}

// clusterBenchK matches the paper's mid-sweep k and the S1 benchmark.
const clusterBenchK = 100

// RunCluster executes S2 and returns only the Result grid.
func (w *Workspace) RunCluster() (*Result, error) {
	res, _, err := w.RunClusterDetailed()
	return res, err
}

// RunClusterDetailed benchmarks the sharded execution layer on the
// default synthetic dataset (Collaboration, mixture relevance, r=0.01,
// 2-hop, SUM, k=100): the single-engine Base scan as baseline, then the
// cluster coordinator over in-process shards at P ∈ {1,2,4,8}, plus one
// cross-process point (P=4 behind real HTTP workers) to price the wire.
// Every merged answer is verified byte-identical to the baseline before
// its timing is accepted — a benchmark of a wrong answer is worthless.
func (w *Workspace) RunClusterDetailed() (*Result, *ClusterSummary, error) {
	g, err := w.Graph(Collaboration)
	if err != nil {
		return nil, nil, err
	}
	scores, err := w.Scores(g, MixtureScores, 0.01)
	if err != nil {
		return nil, nil, err
	}
	engine, err := core.NewEngine(g, scores, hops)
	if err != nil {
		return nil, nil, err
	}
	q := core.Query{Algorithm: core.AlgoBase, K: clusterBenchK, Aggregate: core.Sum}

	var baseline core.Answer
	baseSec, err := w.timeQuery(func() error {
		var err error
		baseline, err = engine.Run(context.Background(), q)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	w.logf("S2 baseline (1 engine): %.4fs", baseSec)

	sum := &ClusterSummary{
		Dataset: Collaboration.String(), Scale: w.cfg.Scale,
		Nodes: g.NumNodes(), Edges: g.NumEdges(), H: hops, K: clusterBenchK,
		CPUs:        runtime.GOMAXPROCS(0),
		BaselineSec: baseSec,
	}
	res := &Result{
		ID:    "S2",
		Title: "Sharded execution: coordinator fan-out vs single engine (Collaboration, SUM, k=100)",
		XName: "parts",
		Notes: fmt.Sprintf("%d nodes, %d edges, h=%d; BFS-grown+refined shards over h-hop closures; merged answers verified byte-identical to the baseline",
			g.NumNodes(), g.NumEdges(), hops),
	}
	res.Rows = append(res.Rows, Row{X: 1, Label: "single-engine", Sec: baseSec})

	verify := func(label string, got core.Answer) error {
		if len(got.Results) != len(baseline.Results) {
			return fmt.Errorf("S2 %s: %d results, baseline %d", label, len(got.Results), len(baseline.Results))
		}
		for i := range baseline.Results {
			if got.Results[i] != baseline.Results[i] {
				return fmt.Errorf("S2 %s: result %d = %+v, baseline %+v", label, i, got.Results[i], baseline.Results[i])
			}
		}
		return nil
	}

	measure := func(parts int, transportName string, coord *cluster.Coordinator, setupSec float64, topo cluster.Topology) error {
		var bd cluster.Breakdown
		sec, err := w.timeQuery(func() error {
			ans, b, err := coord.RunDetailed(context.Background(), q)
			if err != nil {
				return err
			}
			bd = b
			return verify(transportName, ans)
		})
		if err != nil {
			return err
		}
		cell := ClusterGridCell{
			Parts: parts, Transport: transportName, Sec: sec, SetupSec: setupSec,
			Messages: bd.Messages, BoundaryNodes: topo.BoundaryNodes, EdgeCut: topo.EdgeCut,
		}
		if sec > 0 {
			cell.Speedup = baseSec / sec
		}
		sum.Grid = append(sum.Grid, cell)
		res.Rows = append(res.Rows, Row{
			X: float64(parts), Label: transportName, Sec: sec,
			Extra: map[string]float64{
				"speedup":        cell.Speedup,
				"messages":       float64(cell.Messages),
				"boundary_nodes": float64(cell.BoundaryNodes),
				"edge_cut":       float64(cell.EdgeCut),
				"setup_sec":      setupSec,
			},
		})
		w.logf("S2 parts=%d %-5s %.4fs (speedup %.2fx, messages=%d, boundary=%d, setup %.2fs)",
			parts, transportName, sec, cell.Speedup, cell.Messages, cell.BoundaryNodes, setupSec)
		return nil
	}

	for _, parts := range []int{1, 2, 4, 8} {
		start := time.Now()
		local, err := cluster.NewLocal(g, scores, hops, parts)
		if err != nil {
			return nil, nil, err
		}
		setupSec := time.Since(start).Seconds()
		coord := cluster.NewCoordinator(local, cluster.Options{PartialEvery: streamBenchEvery})
		if err := measure(parts, "local", coord, setupSec, local.Topology()); err != nil {
			return nil, nil, err
		}
	}

	// One cross-process point: the same P=4 topology behind real HTTP
	// workers (httptest servers — loopback sockets, full JSON protocol).
	const httpParts = 4
	start := time.Now()
	shards, p, err := cluster.BuildShards(g, scores, hops, httpParts)
	if err != nil {
		return nil, nil, err
	}
	urls := make([]string, httpParts)
	for i, s := range shards {
		srv := httptest.NewServer(cluster.NewWorker(s).Handler())
		defer srv.Close()
		urls[i] = srv.URL
	}
	transport, err := cluster.NewHTTP(context.Background(), urls, nil)
	if err != nil {
		return nil, nil, err
	}
	defer transport.Close()
	setupSec := time.Since(start).Seconds()
	topo := transport.Topology()
	topo.EdgeCut = p.EdgeCut(g)
	if err := measure(httpParts, "http", cluster.NewCoordinator(transport, cluster.Options{PartialEvery: streamBenchEvery}), setupSec, topo); err != nil {
		return nil, nil, err
	}
	return res, sum, nil
}
